//! Integration checks on the fault-injection framework: statistical
//! sanity, determinism, protection effectiveness, and the Figure 6
//! utilization correlation.

use tfsim::bitstate::InjectionMask;
use tfsim::inject::{run_campaign_on, CampaignConfig, FailureMode, Outcome};
use tfsim::stats::linear_fit;
use tfsim::uarch::PipelineConfig;
use tfsim::workloads;

fn small_config(seed: u64) -> CampaignConfig {
    let mut c = CampaignConfig::quick(seed);
    c.start_points = 2;
    c.trials_per_start_point = 60;
    c.monitor_cycles = 2_500;
    c
}

fn pick(names: &[&str]) -> Vec<workloads::Workload> {
    workloads::all().into_iter().filter(|w| names.contains(&w.name)).collect()
}

#[test]
fn masking_dominates_and_every_outcome_class_appears() {
    let config = small_config(17);
    let ws = pick(&["gzip-like", "mcf-like", "twolf-like", "parser-like"]);
    let r = run_campaign_on(&config, &ws);
    let t = r.totals();
    assert_eq!(t.total(), 480);
    assert!(
        t.masked_fraction() > 0.55,
        "µArch match must dominate: {:.1}%",
        100.0 * t.masked_fraction()
    );
    assert!(t.benign_fraction() > 0.7, "benign fraction {:.2}", t.benign_fraction());
    assert!(t.failed() > 10, "failures must occur: {}", t.failed());
    assert!(t.gray > 0, "some trials must stay gray");
    // The dominant failure mode must be register-file corruption or ctrl,
    // per the paper's Figure 8.
    let regfile = t.failure(FailureMode::Regfile);
    assert!(regfile > 0, "regfile corruptions expected");
}

#[test]
fn protected_pipeline_reduces_failures() {
    let ws = pick(&["gzip-like", "mcf-like", "twolf-like", "parser-like"]);
    let base = run_campaign_on(&small_config(29), &ws);
    let mut pc = small_config(29);
    pc.pipeline = PipelineConfig::protected();
    let prot = run_campaign_on(&pc, &ws);
    let (b, p) = (base.totals(), prot.totals());
    assert!(
        (p.failed() as f64) < 0.75 * b.failed() as f64,
        "protection must cut failures substantially: {} -> {}",
        b.failed(),
        p.failed()
    );
    // Protected pipelines have more (mostly benign) state.
    assert!(prot.eligible_bits > base.eligible_bits);
}

#[test]
fn latch_only_campaign_masks_at_least_as_well() {
    // The paper: 88% masking for latches vs 85% for latches+RAMs.
    let ws = pick(&["gzip-like", "vortex-like", "perlbmk-like"]);
    let lr = run_campaign_on(&small_config(31), &ws);
    let mut lc = small_config(31);
    lc.mask = InjectionMask::LatchesOnly;
    let l = run_campaign_on(&lc, &ws);
    let (a, b) = (lr.totals(), l.totals());
    assert!(
        b.benign_fraction() >= a.benign_fraction() - 0.06,
        "latch masking ({:.2}) should not be far below latch+RAM masking ({:.2})",
        b.benign_fraction(),
        a.benign_fraction()
    );
}

#[test]
fn valid_instruction_counts_are_recorded() {
    let ws = pick(&["bzip2-like", "gcc-like"]);
    let r = run_campaign_on(&small_config(37), &ws);
    for p in &r.scatter {
        assert!(p.valid_instructions > 0.0, "pipelines hold valid instructions");
        assert!(p.valid_instructions <= 132.0, "cannot exceed machine capacity");
        assert!(p.trials == 60);
    }
    // The Figure 6 regression is computable (slope sign is workload
    // dependent at this tiny scale, so only well-formedness is asserted).
    let pts: Vec<(f64, f64)> =
        r.scatter.iter().map(|p| (p.valid_instructions, p.benign_fraction)).collect();
    if pts.len() >= 2 {
        if let Some(fit) = linear_fit(&pts) {
            assert!(fit.slope.is_finite() && fit.r.is_finite());
        }
    }
}

#[test]
fn outcome_enum_is_exhaustive_in_results() {
    // Category bookkeeping must cover every trial exactly once.
    let ws = pick(&["vpr-like"]);
    let mut c = small_config(41);
    c.start_points = 1;
    c.trials_per_start_point = 50;
    let r = run_campaign_on(&c, &ws);
    let by_cat: u64 = r.by_category.values().map(|o| o.total()).sum();
    let by_kind: u64 = r.by_category_kind.values().map(|o| o.total()).sum();
    assert_eq!(by_cat, 50);
    assert_eq!(by_kind, 50);
    let _ = Outcome::MicroArchMatch; // silence unused-import lints if shapes change
}
