//! Campaign determinism: a campaign's outcome counts must be a pure
//! function of its `CampaignConfig` — in particular of the seed — and
//! must not depend on the worker-thread count or on work-stealing order.
//! This is the classic parallel-RNG partitioning bug: if trial randomness
//! were drawn from a shared (or scheduling-dependent) generator, the
//! paper's tables would change from run to run and machine to machine.
//!
//! The campaign framework avoids it by giving every
//! `(benchmark, start point)` task its own PRNG substream of the campaign
//! seed (`tfsim_check::Rng::from_seed_stream`); these tests pin that
//! contract.

use std::collections::BTreeMap;

use tfsim::bitstate::{Category, StorageKind};
use tfsim::inject::{run_campaign_on, CampaignConfig, CampaignResult, OutcomeCounts};
use tfsim::workloads;

fn config(threads: usize) -> CampaignConfig {
    let mut config = CampaignConfig::quick(0xD5_2004);
    config.start_points = 2;
    config.trials_per_start_point = 12;
    config.monitor_cycles = 800;
    config.scale = 1;
    config.threads = threads;
    config
}

fn run_with(threads: usize) -> CampaignResult {
    // Two workloads x two start points = four tasks, so 2 and N threads
    // genuinely contend for the work list.
    let workloads: Vec<_> = workloads::all()
        .into_iter()
        .filter(|w| w.name == "gzip-like" || w.name == "vpr-like")
        .collect();
    run_campaign_on(&config(threads), &workloads)
}

/// Every per-outcome counter a campaign reports, flattened.
type Census = (
    Vec<(String, OutcomeCounts)>,
    BTreeMap<Category, OutcomeCounts>,
    BTreeMap<(Category, StorageKind), OutcomeCounts>,
);

/// Flattens every per-outcome counter a campaign reports, so equality
/// means *byte-identical counts everywhere*, not just equal totals.
fn outcome_census(r: &CampaignResult) -> Census {
    (
        r.benchmarks.iter().map(|b| (b.name.clone(), b.counts)).collect(),
        r.by_category.clone(),
        r.by_category_kind.clone(),
    )
}

#[test]
fn outcome_counts_identical_across_1_2_and_n_threads() {
    let one = run_with(1);
    let two = run_with(2);
    let all = run_with(0); // 0 = available_parallelism()

    let c1 = outcome_census(&one);
    let c2 = outcome_census(&two);
    let cn = outcome_census(&all);
    assert_eq!(c1, c2, "1-thread vs 2-thread campaigns diverged");
    assert_eq!(c1, cn, "1-thread vs available_parallelism() campaigns diverged");

    // The scatter points (sorted by the framework) must agree too.
    assert_eq!(one.scatter.len(), two.scatter.len());
    for (a, b) in one.scatter.iter().zip(two.scatter.iter()) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.valid_instructions.to_bits(), b.valid_instructions.to_bits());
        assert_eq!(a.benign_fraction.to_bits(), b.benign_fraction.to_bits());
    }
    assert_eq!(one.eligible_bits, two.eligible_bits);
    assert_eq!(one.eligible_bits, all.eligible_bits);

    // Sanity: the campaign actually ran trials.
    assert_eq!(one.totals().total(), 2 * 2 * 12);
}

#[test]
fn sliced_campaign_is_byte_identical_to_the_ladder() {
    use tfsim::inject::{
        run_campaign_journaled, run_campaign_observed, CampaignJournal, CampaignObs, JournalMeta,
    };
    use tfsim::obs::{strip_wall_clock, RingSink};

    let workloads: Vec<_> = workloads::all()
        .into_iter()
        .filter(|w| w.name == "gzip-like" || w.name == "vpr-like")
        .collect();

    // Traced run: the full per-trial event stream (modulo wall clock) must
    // agree, which pins every record, trace, and quarantine field — not
    // just the aggregated census.
    let run_traced = |sliced: bool| {
        let mut cfg = config(2);
        cfg.sliced = sliced;
        let sink = RingSink::new(1 << 16);
        let obs = CampaignObs { sink: &sink, metrics: None, progress: None, spans: None };
        let r = run_campaign_observed(&cfg, &workloads, &obs);
        (outcome_census(&r), strip_wall_clock(&sink.events()))
    };
    let (ladder_census, ladder_events) = run_traced(false);
    let (sliced_census, sliced_events) = run_traced(true);
    assert_eq!(ladder_census, sliced_census, "sliced campaign census diverged from the ladder");
    assert_eq!(
        ladder_events, sliced_events,
        "sliced campaign event stream diverged from the ladder"
    );

    // Journal files written by the two engines must be byte-identical:
    // `sliced` is an execution strategy, not part of the experiment
    // identity, so a journal written by one engine resumes under the other.
    let journal_bytes = |sliced: bool| {
        let mut cfg = config(1);
        cfg.sliced = sliced;
        let path = std::env::temp_dir()
            .join(format!("tfsim-sliced-journal-{}-{sliced}.jsonl", std::process::id()));
        let meta = JournalMeta::new(&cfg, &workloads);
        let j = CampaignJournal::create(&path, &meta).unwrap();
        run_campaign_journaled(&cfg, &workloads, &CampaignObs::disabled(), Some(&j));
        drop(j);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        bytes
    };
    assert_eq!(
        journal_bytes(false),
        journal_bytes(true),
        "sliced campaign journal diverged from the ladder"
    );

    // The containment/quarantine machinery must behave identically when a
    // peeled scalar trial panics mid-run.
    let shim = (1usize, 1u32, 5u32);
    let run_shimmed = |sliced: bool| {
        let mut cfg = config(2);
        cfg.sliced = sliced;
        cfg.panic_shim = Some(shim);
        run_campaign_on(&cfg, &workloads)
    };
    let ladder = run_shimmed(false);
    let sliced = run_shimmed(true);
    assert_eq!(outcome_census(&ladder), outcome_census(&sliced));
    assert_eq!(ladder.quarantined, sliced.quarantined);
    assert_eq!(sliced.quarantined.len(), 1);
}

#[test]
fn pruned_campaign_is_byte_identical_to_the_unpruned_engines() {
    use tfsim::inject::{
        run_campaign_journaled, run_campaign_observed, CampaignJournal, CampaignObs, JournalMeta,
    };
    use tfsim::obs::{strip_wall_clock, Event, RingSink};

    let workloads: Vec<_> = workloads::all()
        .into_iter()
        .filter(|w| w.name == "gzip-like" || w.name == "vpr-like")
        .collect();

    // The full per-trial event stream must agree with both unpruned
    // engines everywhere except the footer, which additionally carries the
    // pruner's disposition tally.
    let run_traced = |pruned: bool, sliced: bool| {
        let mut cfg = config(2);
        cfg.pruned = pruned;
        cfg.sliced = sliced;
        let sink = RingSink::new(1 << 16);
        let obs = CampaignObs { sink: &sink, metrics: None, progress: None, spans: None };
        let r = run_campaign_observed(&cfg, &workloads, &obs);
        (outcome_census(&r), strip_wall_clock(&sink.events()), r.prune)
    };
    let (ladder_census, ladder_events, ladder_prune) = run_traced(false, false);
    let (sliced_census, sliced_events, sliced_prune) = run_traced(false, true);
    let (pruned_census, pruned_events, pruned_prune) = run_traced(true, false);

    assert_eq!(ladder_census, sliced_census);
    assert_eq!(ladder_census, pruned_census, "pruned campaign census diverged");
    assert!(ladder_prune.is_none() && sliced_prune.is_none(), "unpruned runs carry no tally");

    let (pruned_footer, pruned_rest) = pruned_events.split_last().unwrap();
    let (ladder_footer, ladder_rest) = ladder_events.split_last().unwrap();
    assert_eq!(sliced_events.split_last().unwrap().1, pruned_rest);
    assert_eq!(ladder_rest, pruned_rest, "pruned campaign event stream diverged");
    match (ladder_footer, pruned_footer) {
        (
            Event::CampaignEnd {
                trials,
                matched,
                gray,
                failed,
                quarantined,
                eligible_bits,
                wall_ns,
                prune: None,
            },
            Event::CampaignEnd {
                trials: pt,
                matched: pm,
                gray: pg,
                failed: pf,
                quarantined: pq,
                eligible_bits: pe,
                wall_ns: pw,
                prune: Some(p),
            },
        ) => {
            assert_eq!(
                (trials, matched, gray, failed, quarantined, eligible_bits, wall_ns),
                (pt, pm, pg, pf, pq, pe, pw),
                "footer counts diverged"
            );
            assert_eq!(p.total(), *pt, "every trial gets exactly one disposition");
            assert_eq!(Some(*p), pruned_prune, "footer tally must match the result's");
        }
        other => panic!("footers have the wrong shape: {other:?}"),
    }

    // Journal files: `pruned` is an execution strategy, not experiment
    // identity — a journal written by the pruner resumes under any engine,
    // byte for byte.
    let journal_bytes = |pruned: bool| {
        let mut cfg = config(1);
        cfg.pruned = pruned;
        let path = std::env::temp_dir()
            .join(format!("tfsim-pruned-journal-{}-{pruned}.jsonl", std::process::id()));
        let meta = JournalMeta::new(&cfg, &workloads);
        let j = CampaignJournal::create(&path, &meta).unwrap();
        run_campaign_journaled(&cfg, &workloads, &CampaignObs::disabled(), Some(&j));
        drop(j);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        bytes
    };
    assert_eq!(
        journal_bytes(false),
        journal_bytes(true),
        "pruned campaign journal diverged from the ladder"
    );

    // A forced mid-trial panic flows through the pruner's delegate
    // remapping into the same quarantine record.
    let shim = (1usize, 1u32, 5u32);
    let run_shimmed = |pruned: bool| {
        let mut cfg = config(2);
        cfg.pruned = pruned;
        cfg.panic_shim = Some(shim);
        run_campaign_on(&cfg, &workloads)
    };
    let ladder_q = run_shimmed(false);
    let pruned_q = run_shimmed(true);
    assert_eq!(outcome_census(&ladder_q), outcome_census(&pruned_q));
    assert_eq!(ladder_q.quarantined, pruned_q.quarantined);
    assert_eq!(pruned_q.quarantined.len(), 1);
}

#[test]
fn different_seeds_change_the_trial_mix() {
    // Guards against the degenerate "deterministic because the seed is
    // ignored" failure mode: two seeds must draw different trial sets.
    let workloads: Vec<_> =
        workloads::all().into_iter().filter(|w| w.name == "gzip-like").collect();
    let mut a_cfg = config(1);
    a_cfg.seed = 1;
    let mut b_cfg = config(1);
    b_cfg.seed = 2;
    let a = run_campaign_on(&a_cfg, &workloads);
    let b = run_campaign_on(&b_cfg, &workloads);
    let a_cat: Vec<_> = a.by_category.iter().map(|(c, o)| (*c, o.total())).collect();
    let b_cat: Vec<_> = b.by_category.iter().map(|(c, o)| (*c, o.total())).collect();
    assert_ne!(a_cat, b_cat, "seed must influence which bits are hit");
}

#[test]
fn forced_panic_is_quarantined_without_disturbing_other_trials() {
    use tfsim::inject::{run_campaign_observed, CampaignObs};
    use tfsim::obs::{strip_wall_clock, Event, RingSink};

    let workloads: Vec<_> = workloads::all()
        .into_iter()
        .filter(|w| w.name == "gzip-like" || w.name == "vpr-like")
        .collect();
    let shim = (1usize, 1u32, 5u32); // (benchmark, start point, trial)

    // The quarantined census must itself be thread-count-deterministic.
    let shimmed: Vec<CampaignResult> = [1usize, 2, 0]
        .into_iter()
        .map(|threads| {
            let mut cfg = config(threads);
            cfg.panic_shim = Some(shim);
            run_campaign_on(&cfg, &workloads)
        })
        .collect();
    for r in &shimmed {
        assert_eq!(r.quarantined.len(), 1, "exactly the shimmed trial is quarantined");
        let q = &r.quarantined[0];
        assert_eq!((q.benchmark, q.start_point, q.trial), (1, 1, 5));
        assert!(q.panic_msg.contains("forced mid-trial panic"), "got: {}", q.panic_msg);
    }
    assert_eq!(outcome_census(&shimmed[0]), outcome_census(&shimmed[1]));
    assert_eq!(outcome_census(&shimmed[0]), outcome_census(&shimmed[2]));
    assert_eq!(shimmed[0].quarantined, shimmed[1].quarantined);
    assert_eq!(shimmed[0].quarantined, shimmed[2].quarantined);

    // Against the clean run: one trial left the census, none moved.
    let clean = run_campaign_on(&config(1), &workloads);
    assert!(clean.quarantined.is_empty());
    assert_eq!(shimmed[0].totals().total() + 1, clean.totals().total());

    // Event-stream comparison pins "remaining trial records unchanged"
    // exactly: the traces differ in the one Trial that became a
    // Quarantine, plus the CampaignEnd footer. Every other event —
    // numbering included — is identical.
    let run_traced = |panic_shim| {
        let mut cfg = config(1);
        cfg.panic_shim = panic_shim;
        let sink = RingSink::new(1 << 16);
        let obs = CampaignObs { sink: &sink, metrics: None, progress: None, spans: None };
        run_campaign_observed(&cfg, &workloads, &obs);
        strip_wall_clock(&sink.events())
    };
    let clean_events = run_traced(None);
    let shim_events = run_traced(Some(shim));
    assert_eq!(clean_events.len(), shim_events.len());
    let mut diffs = Vec::new();
    for (i, (a, b)) in clean_events.iter().zip(shim_events.iter()).enumerate() {
        if a != b {
            diffs.push(i);
        }
    }
    assert_eq!(diffs.len(), 2, "expected exactly Trial→Quarantine + footer, got {diffs:?}");
    match (&clean_events[diffs[0]], &shim_events[diffs[0]]) {
        (
            Event::Trial { benchmark: cb, start_point: cs, trial: ct, target: ctg, .. },
            Event::Quarantine { benchmark, start_point, trial, target, inject_cycle: _, panic_msg },
        ) => {
            assert_eq!((*benchmark, *start_point, *trial), (1, 1, 5));
            assert_eq!((cb, cs, ct), (benchmark, start_point, trial));
            assert_eq!(ctg, target, "quarantine must name the spec the trial would have run");
            assert!(panic_msg.contains("forced mid-trial panic"));
        }
        other => panic!("first diff is not Trial→Quarantine: {other:?}"),
    }
    match (&clean_events[diffs[1]], &shim_events[diffs[1]]) {
        (
            Event::CampaignEnd { trials: ct, quarantined: cq, .. },
            Event::CampaignEnd { trials, quarantined, .. },
        ) => {
            assert_eq!((*cq, *quarantined), (0, 1));
            assert_eq!(*trials + 1, *ct);
        }
        other => panic!("second diff is not the footer: {other:?}"),
    }
}
