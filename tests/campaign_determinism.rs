//! Campaign determinism: a campaign's outcome counts must be a pure
//! function of its `CampaignConfig` — in particular of the seed — and
//! must not depend on the worker-thread count or on work-stealing order.
//! This is the classic parallel-RNG partitioning bug: if trial randomness
//! were drawn from a shared (or scheduling-dependent) generator, the
//! paper's tables would change from run to run and machine to machine.
//!
//! The campaign framework avoids it by giving every
//! `(benchmark, start point)` task its own PRNG substream of the campaign
//! seed (`tfsim_check::Rng::from_seed_stream`); these tests pin that
//! contract.

use std::collections::BTreeMap;

use tfsim::bitstate::{Category, StorageKind};
use tfsim::inject::{run_campaign_on, CampaignConfig, CampaignResult, OutcomeCounts};
use tfsim::workloads;

fn config(threads: usize) -> CampaignConfig {
    let mut config = CampaignConfig::quick(0xD5_2004);
    config.start_points = 2;
    config.trials_per_start_point = 12;
    config.monitor_cycles = 800;
    config.scale = 1;
    config.threads = threads;
    config
}

fn run_with(threads: usize) -> CampaignResult {
    // Two workloads x two start points = four tasks, so 2 and N threads
    // genuinely contend for the work list.
    let workloads: Vec<_> = workloads::all()
        .into_iter()
        .filter(|w| w.name == "gzip-like" || w.name == "vpr-like")
        .collect();
    run_campaign_on(&config(threads), &workloads)
}

/// Every per-outcome counter a campaign reports, flattened.
type Census = (
    Vec<(String, OutcomeCounts)>,
    BTreeMap<Category, OutcomeCounts>,
    BTreeMap<(Category, StorageKind), OutcomeCounts>,
);

/// Flattens every per-outcome counter a campaign reports, so equality
/// means *byte-identical counts everywhere*, not just equal totals.
fn outcome_census(r: &CampaignResult) -> Census {
    (
        r.benchmarks.iter().map(|b| (b.name.clone(), b.counts)).collect(),
        r.by_category.clone(),
        r.by_category_kind.clone(),
    )
}

#[test]
fn outcome_counts_identical_across_1_2_and_n_threads() {
    let one = run_with(1);
    let two = run_with(2);
    let all = run_with(0); // 0 = available_parallelism()

    let c1 = outcome_census(&one);
    let c2 = outcome_census(&two);
    let cn = outcome_census(&all);
    assert_eq!(c1, c2, "1-thread vs 2-thread campaigns diverged");
    assert_eq!(c1, cn, "1-thread vs available_parallelism() campaigns diverged");

    // The scatter points (sorted by the framework) must agree too.
    assert_eq!(one.scatter.len(), two.scatter.len());
    for (a, b) in one.scatter.iter().zip(two.scatter.iter()) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.valid_instructions.to_bits(), b.valid_instructions.to_bits());
        assert_eq!(a.benign_fraction.to_bits(), b.benign_fraction.to_bits());
    }
    assert_eq!(one.eligible_bits, two.eligible_bits);
    assert_eq!(one.eligible_bits, all.eligible_bits);

    // Sanity: the campaign actually ran trials.
    assert_eq!(one.totals().total(), 2 * 2 * 12);
}

#[test]
fn different_seeds_change_the_trial_mix() {
    // Guards against the degenerate "deterministic because the seed is
    // ignored" failure mode: two seeds must draw different trial sets.
    let workloads: Vec<_> =
        workloads::all().into_iter().filter(|w| w.name == "gzip-like").collect();
    let mut a_cfg = config(1);
    a_cfg.seed = 1;
    let mut b_cfg = config(1);
    b_cfg.seed = 2;
    let a = run_campaign_on(&a_cfg, &workloads);
    let b = run_campaign_on(&b_cfg, &workloads);
    let a_cat: Vec<_> = a.by_category.iter().map(|(c, o)| (*c, o.total())).collect();
    let b_cat: Vec<_> = b.by_category.iter().map(|(c, o)| (*c, o.total())).collect();
    assert_ne!(a_cat, b_cat, "seed must influence which bits are hit");
}
