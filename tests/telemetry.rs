//! End-to-end tests of the campaign telemetry layer: histogram bucket
//! algebra (property-based), JSONL trace round-tripping through the
//! report builder, event-stream determinism across thread counts, and
//! the traced/untraced census byte-identity contract.

use tfsim::check::prop::{any_u64, ints, vecs};
use tfsim_check::{prop_assert, prop_assert_eq, prop_check};

use tfsim::inject::{
    run_campaign_observed, run_campaign_on, CampaignConfig, CampaignMetrics, CampaignObs,
    FailureMode, OutcomeCounts,
};
use tfsim::obs::{parse_trace, strip_wall_clock, Event, Histogram, JsonlSink, Progress, RingSink};
use tfsim::stats::{census_rows, render_census, TelemetryReport};
use tfsim::workloads;

prop_check! {
    /// Every value lands in exactly the bucket whose bounds contain it.
    fn histogram_buckets_contain_their_values(v in any_u64()) {
        let i = Histogram::bucket_of(v);
        let (lo, hi) = Histogram::bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
        // Buckets tile the axis: the next bucket starts right after this one.
        if i + 1 < 65 {
            let (next_lo, _) = Histogram::bucket_bounds(i + 1);
            prop_assert_eq!(next_lo, hi + 1);
        }
    }

    /// Merging histograms is commutative and associative, and merge of
    /// recorded streams equals recording the concatenated stream.
    fn histogram_merge_is_a_commutative_monoid(
        xs in vecs(ints(0u64..1 << 48), 0..40),
        ys in vecs(any_u64(), 0..40),
        zs in vecs(ints(0u64..1000), 0..40),
    ) {
        let of = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (of(&xs), of(&ys), of(&zs));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge must commute");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge must associate");

        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&ab_c, &of(&all), "merge must equal the concatenated stream");
        prop_assert_eq!(ab_c.count(), (xs.len() + ys.len() + zs.len()) as u64);
    }
}

/// A small two-benchmark campaign: big enough to produce failures and
/// unit attributions, small enough to run several times in one test.
fn tiny_config(seed: u64, threads: usize) -> CampaignConfig {
    let mut config = CampaignConfig::quick(seed);
    config.scale = 1;
    config.start_points = 1;
    config.trials_per_start_point = 16;
    config.monitor_cycles = 1_500;
    config.threads = threads;
    config
}

fn tiny_workloads() -> Vec<workloads::Workload> {
    ["gzip-like", "twolf-like"]
        .iter()
        .map(|n| workloads::by_name(n).expect("workload"))
        .collect()
}

fn campaign_events(seed: u64, threads: usize) -> (OutcomeCounts, Vec<Event>) {
    let sink = RingSink::new(1 << 16);
    let obs = CampaignObs { sink: &sink, metrics: None, progress: None };
    let result = run_campaign_observed(&tiny_config(seed, threads), &tiny_workloads(), &obs);
    (result.totals(), sink.events())
}

fn census_of(counts: &OutcomeCounts) -> String {
    let rows = census_rows(
        counts.matched,
        counts.gray,
        FailureMode::ALL.iter().map(|m| (m.label(), counts.failure(*m))),
    );
    render_census(&rows)
}

/// A trace written as JSONL and parsed back yields the identical event
/// stream and the identical rendered report.
#[test]
fn jsonl_trace_round_trips_through_the_report() {
    let sink = JsonlSink::new(Vec::new());
    let metrics = CampaignMetrics::new();
    let progress = Progress::new();
    let obs = CampaignObs { sink: &sink, metrics: Some(&metrics), progress: Some(&progress) };
    let result = run_campaign_observed(&tiny_config(3, 0), &tiny_workloads(), &obs);
    let text = String::from_utf8(sink.into_inner()).expect("utf8 trace");

    let parsed = parse_trace(&text).expect("parseable trace");
    let (_, direct) = campaign_events(3, 0);
    assert_eq!(
        strip_wall_clock(&parsed),
        strip_wall_clock(&direct),
        "JSONL round trip must preserve the stream exactly (modulo wall clock)"
    );

    let report = TelemetryReport::from_events(&parsed).expect("consistent trace");
    assert_eq!(report.trials(), 32);
    assert_eq!(report.trials(), metrics.trials());
    let rendered = report.render(10);
    let stripped_render = |events: &[Event]| {
        TelemetryReport::from_events(&strip_wall_clock(events)).expect("consistent").render(10)
    };
    assert_eq!(
        stripped_render(&parsed),
        stripped_render(&direct),
        "identical streams must render identically"
    );
    assert!(rendered.contains(&census_of(&result.totals())));
    assert_eq!(progress.snapshot(), (2, 2));
}

/// Two identical-seed campaigns produce identical event streams modulo
/// wall-clock, regardless of worker-thread count.
#[test]
fn event_stream_is_deterministic_across_thread_counts() {
    let (totals_a, events_a) = campaign_events(11, 1);
    let (totals_b, events_b) = campaign_events(11, 2);
    assert_eq!(totals_a, totals_b);
    assert_eq!(strip_wall_clock(&events_a), strip_wall_clock(&events_b));
}

/// The untraced census, the traced census, and the census reconstructed
/// from the event stream are byte-identical.
#[test]
fn traced_and_untraced_census_are_byte_identical() {
    let untraced = run_campaign_on(&tiny_config(7, 0), &tiny_workloads());
    let (traced_totals, events) = campaign_events(7, 0);
    assert_eq!(untraced.totals(), traced_totals);

    let direct = census_of(&untraced.totals());
    let from_trace = TelemetryReport::from_events(&events).expect("consistent trace");
    assert_eq!(direct, render_census(&from_trace.census()));
}
