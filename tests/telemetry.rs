//! End-to-end tests of the campaign telemetry layer: histogram bucket
//! algebra (property-based), JSONL trace round-tripping through the
//! report builder, event-stream determinism across thread counts, the
//! traced/untraced census byte-identity contract, and the deep-trace
//! layer (propagation timelines, span profile, journal identity across
//! trace levels).

use tfsim::check::prop::{any_u64, ints, vecs};
use tfsim_check::{prop_assert, prop_assert_eq, prop_check};

use tfsim::inject::{
    run_campaign_journaled, run_campaign_observed, run_campaign_on, CampaignConfig,
    CampaignJournal, CampaignMetrics, CampaignObs, FailureMode, JournalMeta, OutcomeCounts,
};
use tfsim::obs::{
    parse_trace, strip_wall_clock, Event, Histogram, JsonlSink, Progress, RingSink, SpanProfiler,
    SCHEMA_VERSION,
};
use tfsim::stats::{census_rows, render_census, TelemetryReport};
use tfsim::workloads;

prop_check! {
    /// Every value lands in exactly the bucket whose bounds contain it.
    fn histogram_buckets_contain_their_values(v in any_u64()) {
        let i = Histogram::bucket_of(v);
        let (lo, hi) = Histogram::bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
        // Buckets tile the axis: the next bucket starts right after this one.
        if i + 1 < 65 {
            let (next_lo, _) = Histogram::bucket_bounds(i + 1);
            prop_assert_eq!(next_lo, hi + 1);
        }
    }

    /// Merging histograms is commutative and associative, and merge of
    /// recorded streams equals recording the concatenated stream.
    fn histogram_merge_is_a_commutative_monoid(
        xs in vecs(ints(0u64..1 << 48), 0..40),
        ys in vecs(any_u64(), 0..40),
        zs in vecs(ints(0u64..1000), 0..40),
    ) {
        let of = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (of(&xs), of(&ys), of(&zs));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge must commute");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge must associate");

        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&ab_c, &of(&all), "merge must equal the concatenated stream");
        prop_assert_eq!(ab_c.count(), (xs.len() + ys.len() + zs.len()) as u64);
    }
}

/// A small two-benchmark campaign: big enough to produce failures and
/// unit attributions, small enough to run several times in one test.
fn tiny_config(seed: u64, threads: usize) -> CampaignConfig {
    let mut config = CampaignConfig::quick(seed);
    config.scale = 1;
    config.start_points = 1;
    config.trials_per_start_point = 16;
    config.monitor_cycles = 1_500;
    config.threads = threads;
    config
}

fn tiny_workloads() -> Vec<workloads::Workload> {
    ["gzip-like", "twolf-like"]
        .iter()
        .map(|n| workloads::by_name(n).expect("workload"))
        .collect()
}

fn campaign_events(seed: u64, threads: usize) -> (OutcomeCounts, Vec<Event>) {
    let sink = RingSink::new(1 << 16);
    let obs = CampaignObs { sink: &sink, metrics: None, progress: None, spans: None };
    let result = run_campaign_observed(&tiny_config(seed, threads), &tiny_workloads(), &obs);
    (result.totals(), sink.events())
}

fn census_of(counts: &OutcomeCounts) -> String {
    let rows = census_rows(
        counts.matched,
        counts.gray,
        FailureMode::ALL.iter().map(|m| (m.label(), counts.failure(*m))),
    );
    render_census(&rows)
}

/// A trace written as JSONL and parsed back yields the identical event
/// stream and the identical rendered report.
#[test]
fn jsonl_trace_round_trips_through_the_report() {
    let sink = JsonlSink::new(Vec::new());
    let metrics = CampaignMetrics::new();
    let progress = Progress::new();
    let obs = CampaignObs { sink: &sink, metrics: Some(&metrics), progress: Some(&progress), spans: None };
    let result = run_campaign_observed(&tiny_config(3, 0), &tiny_workloads(), &obs);
    let text = String::from_utf8(sink.into_inner()).expect("utf8 trace");

    let parsed = parse_trace(&text).expect("parseable trace");
    let (_, direct) = campaign_events(3, 0);
    assert_eq!(
        strip_wall_clock(&parsed),
        strip_wall_clock(&direct),
        "JSONL round trip must preserve the stream exactly (modulo wall clock)"
    );

    let report = TelemetryReport::from_events(&parsed).expect("consistent trace");
    assert_eq!(report.trials(), 32);
    assert_eq!(report.trials(), metrics.trials());
    let rendered = report.render(10);
    let stripped_render = |events: &[Event]| {
        TelemetryReport::from_events(&strip_wall_clock(events)).expect("consistent").render(10)
    };
    assert_eq!(
        stripped_render(&parsed),
        stripped_render(&direct),
        "identical streams must render identically"
    );
    assert!(rendered.contains(&census_of(&result.totals())));
    assert_eq!(progress.snapshot(), (2, 2));
}

/// Two identical-seed campaigns produce identical event streams modulo
/// wall-clock, regardless of worker-thread count.
#[test]
fn event_stream_is_deterministic_across_thread_counts() {
    let (totals_a, events_a) = campaign_events(11, 1);
    let (totals_b, events_b) = campaign_events(11, 2);
    assert_eq!(totals_a, totals_b);
    assert_eq!(strip_wall_clock(&events_a), strip_wall_clock(&events_b));
}

/// The untraced census, the traced census, and the census reconstructed
/// from the event stream are byte-identical.
#[test]
fn traced_and_untraced_census_are_byte_identical() {
    let untraced = run_campaign_on(&tiny_config(7, 0), &tiny_workloads());
    let (traced_totals, events) = campaign_events(7, 0);
    assert_eq!(untraced.totals(), traced_totals);

    let direct = census_of(&untraced.totals());
    let from_trace = TelemetryReport::from_events(&events).expect("consistent trace");
    assert_eq!(direct, render_census(&from_trace.census()));
}

/// A deep-traced campaign with a span profiler attached: the full
/// schema-v2 stream (trials + propagation timelines + span profile).
fn deep_campaign_events(seed: u64, threads: usize) -> (OutcomeCounts, Vec<Event>) {
    let sink = RingSink::new(1 << 18);
    let profiler = SpanProfiler::new();
    let obs =
        CampaignObs { sink: &sink, metrics: None, progress: None, spans: Some(&profiler) };
    let mut config = tiny_config(seed, threads);
    config.deep_trace = true;
    let result = run_campaign_observed(&config, &tiny_workloads(), &obs);
    (result.totals(), sink.events())
}

/// Deep-traced, traced, and untraced campaigns of the same seed produce
/// byte-identical censuses; the deep stream is a strict superset of the
/// trial stream (propagation + span events added, nothing else changed).
#[test]
fn deep_traced_census_is_byte_identical_and_stream_is_a_superset() {
    let untraced = run_campaign_on(&tiny_config(7, 0), &tiny_workloads());
    let (traced_totals, shallow) = campaign_events(7, 0);
    let (deep_totals, deep) = deep_campaign_events(7, 0);
    assert_eq!(untraced.totals(), traced_totals);
    assert_eq!(untraced.totals(), deep_totals);
    assert_eq!(
        census_of(&untraced.totals()),
        render_census(&TelemetryReport::from_events(&deep).expect("consistent").census())
    );

    // Dropping the new v2 event kinds from the deep stream recovers the
    // shallow stream exactly: deep tracing is pure observation.
    let filtered: Vec<Event> = deep
        .iter()
        .filter(|e| !matches!(e, Event::Propagation { .. } | Event::Span { .. }))
        .cloned()
        .collect();
    assert_eq!(strip_wall_clock(&filtered), strip_wall_clock(&shallow));
    assert!(
        deep.iter().any(|e| matches!(e, Event::Propagation { .. })),
        "deep stream carries propagation timelines"
    );
    assert!(
        deep.iter().any(|e| matches!(e, Event::Span { .. })),
        "deep stream carries the span profile"
    );
}

/// Deep-trace streams (propagation timelines, span node set) are
/// deterministic across worker-thread counts, modulo wall clock.
#[test]
fn deep_trace_stream_is_deterministic_across_thread_counts() {
    let (totals_a, events_a) = deep_campaign_events(11, 1);
    let (totals_b, events_b) = deep_campaign_events(11, 2);
    assert_eq!(totals_a, totals_b);
    assert_eq!(strip_wall_clock(&events_a), strip_wall_clock(&events_b));
}

/// A deep-traced JSONL trace round-trips: parsing the file back yields
/// the identical stream, and the propagation report renders non-empty
/// chains and a residency heatmap from it.
#[test]
fn deep_jsonl_trace_round_trips_and_renders_propagation() {
    let sink = JsonlSink::new(Vec::new());
    let profiler = SpanProfiler::new();
    let obs =
        CampaignObs { sink: &sink, metrics: None, progress: None, spans: Some(&profiler) };
    let mut config = tiny_config(3, 0);
    config.deep_trace = true;
    run_campaign_observed(&config, &tiny_workloads(), &obs);
    let text = String::from_utf8(sink.into_inner()).expect("utf8 trace");

    let parsed = parse_trace(&text).expect("parseable deep trace");
    let (_, direct) = deep_campaign_events(3, 0);
    assert_eq!(strip_wall_clock(&parsed), strip_wall_clock(&direct));

    let report = TelemetryReport::from_events(&parsed).expect("consistent trace");
    assert!(report.deep_trials() > 0, "quick campaign must produce diverging timelines");
    let rendered = report.render_propagation(10);
    assert!(rendered.contains("propagation chains"), "missing chains:\n{rendered}");
    assert!(rendered.contains("residency heatmap"), "missing heatmap:\n{rendered}");
    assert!(rendered.contains("ttd p50"), "missing per-unit latencies:\n{rendered}");
    let json = report.propagation_json().render();
    assert!(json.contains("\"chains\":[{\"chain\":["), "machine aggregates missing:\n{json}");
}

/// Traces from a future (or prehistoric) schema version are rejected at
/// parse time, for the new v2 event kinds like everything else.
#[test]
fn deep_trace_schema_version_gates_parsing() {
    let sink = JsonlSink::new(Vec::new());
    let profiler = SpanProfiler::new();
    let obs =
        CampaignObs { sink: &sink, metrics: None, progress: None, spans: Some(&profiler) };
    let mut config = tiny_config(3, 0);
    config.deep_trace = true;
    run_campaign_observed(&config, &tiny_workloads(), &obs);
    let text = String::from_utf8(sink.into_inner()).expect("utf8 trace");
    assert!(text.contains("\"ev\":\"propagation\""), "deep trace must carry v2 events");

    let current = format!("\"schema\":{SCHEMA_VERSION}");
    assert!(text.contains(&current), "header pins the schema version");
    let future = text.replacen(&current, &format!("\"schema\":{}", SCHEMA_VERSION + 1), 1);
    assert!(parse_trace(&future).is_err(), "future schema must be rejected");
    let ancient = text.replacen(&current, "\"schema\":0", 1);
    assert!(parse_trace(&ancient).is_err(), "pre-v1 schema must be rejected");
}

/// Untraced, traced, and deep-traced journaled runs write byte-identical
/// journal files: trace level is an observation channel, not experiment
/// identity, and journaled runs always journal their traces.
#[test]
fn journal_bytes_are_identical_across_trace_levels() {
    let journal_bytes = |tag: &str, deep: bool, with_sink: bool| {
        let mut cfg = tiny_config(5, 0);
        cfg.deep_trace = deep;
        let workloads = tiny_workloads();
        let path = std::env::temp_dir()
            .join(format!("tfsim-tracelevel-journal-{}-{tag}.jsonl", std::process::id()));
        let meta = JournalMeta::new(&cfg, &workloads);
        let j = CampaignJournal::create(&path, &meta).unwrap();
        let sink = RingSink::new(1 << 18);
        let profiler = SpanProfiler::new();
        let obs = if with_sink {
            CampaignObs {
                sink: &sink,
                metrics: None,
                progress: None,
                spans: Some(&profiler),
            }
        } else {
            CampaignObs::disabled()
        };
        run_campaign_journaled(&cfg, &workloads, &obs, Some(&j));
        drop(j);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        bytes
    };
    let untraced = journal_bytes("untraced", false, false);
    let traced = journal_bytes("traced", false, true);
    let deep = journal_bytes("deep", true, true);
    assert_eq!(untraced, traced, "traced journal diverged from untraced");
    assert_eq!(untraced, deep, "deep-traced journal diverged from untraced");
}
