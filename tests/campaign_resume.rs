//! Journal durability property: a campaign whose journal is cut short at
//! *any* byte boundary — mid-header, mid-line, between lines — must, after
//! `CampaignJournal::resume`, complete to the byte-identical census of an
//! uninterrupted run, at any thread count. Quarantined trials must survive
//! the journal round-trip the same way.

use std::collections::BTreeMap;
use std::path::PathBuf;

use tfsim::bitstate::{Category, StorageKind};
use tfsim::inject::{
    run_campaign_journaled, run_campaign_on, CampaignConfig, CampaignJournal, CampaignObs,
    CampaignResult, FailureMode, JournalMeta,
};
use tfsim::stats::{census_rows, render_census};
use tfsim::workloads::{self, Workload};

fn config(threads: usize) -> CampaignConfig {
    let mut config = CampaignConfig::quick(0xD5_2004);
    config.start_points = 2;
    config.trials_per_start_point = 10;
    config.monitor_cycles = 800;
    config.scale = 1;
    config.threads = threads;
    config
}

fn two_workloads() -> Vec<Workload> {
    workloads::all()
        .into_iter()
        .filter(|w| w.name == "gzip-like" || w.name == "vpr-like")
        .collect()
}

/// Everything `census_of` flattens: the rendered census text plus every
/// per-outcome counter, so equality is the binary's "byte-identical
/// census" plus the full aggregate state.
type Census = (
    String,
    Vec<(String, String)>,
    BTreeMap<Category, String>,
    BTreeMap<(Category, StorageKind), String>,
);

fn census_of(r: &CampaignResult) -> Census {
    let totals = r.totals();
    let rendered = render_census(&census_rows(
        totals.matched,
        totals.gray,
        FailureMode::ALL.iter().map(|m| (m.label(), totals.failure(*m))),
    ));
    (
        format!("{rendered}eligible bits: {}\n", r.eligible_bits),
        r.benchmarks.iter().map(|b| (b.name.clone(), format!("{:?}", b.counts))).collect(),
        r.by_category.iter().map(|(c, o)| (*c, format!("{o:?}"))).collect(),
        r.by_category_kind.iter().map(|(k, o)| (*k, format!("{o:?}"))).collect(),
    )
}

fn journaled(cfg: &CampaignConfig, workloads: &[Workload], j: &CampaignJournal) -> CampaignResult {
    run_campaign_journaled(cfg, workloads, &CampaignObs::disabled(), Some(j))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tfsim-resume-{}-{name}", std::process::id()))
}

/// Byte boundaries worth cutting at: the file ends, every line seam
/// (newline−1, newline, newline+1), and a deterministic pseudo-random
/// sample of interior positions.
fn cut_points(len: usize) -> Vec<usize> {
    let mut cuts = vec![0, 1, len.saturating_sub(1), len];
    let mut x = 0x0020_04D5_2004_u64;
    for _ in 0..10 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        cuts.push((x >> 16) as usize % len);
    }
    cuts
}

#[test]
fn truncated_journal_resumes_to_the_uninterrupted_census() {
    let workloads = two_workloads();
    let cfg = config(2);
    let reference = census_of(&run_campaign_on(&cfg, &workloads));

    let path = tmp("census.jsonl");
    let meta = JournalMeta::new(&cfg, &workloads);
    {
        let j = CampaignJournal::create(&path, &meta).unwrap();
        let full = journaled(&cfg, &workloads, &j);
        assert_eq!(census_of(&full), reference, "journaling itself changed the census");
    }
    let full_bytes = std::fs::read(&path).unwrap();
    let mut newline_cuts: Vec<usize> = Vec::new();
    for (i, b) in full_bytes.iter().enumerate() {
        if *b == b'\n' {
            newline_cuts.extend([i, i + 1, (i + 2).min(full_bytes.len())]);
        }
    }
    let mut cuts = cut_points(full_bytes.len());
    cuts.extend(newline_cuts);
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        std::fs::write(&path, &full_bytes[..cut]).unwrap();
        let j = CampaignJournal::resume(&path, &meta).unwrap();
        let replayed = j.completed().len();
        let resumed = journaled(&cfg, &workloads, &j);
        assert_eq!(
            census_of(&resumed),
            reference,
            "cut at byte {cut} ({replayed} tasks replayed) diverged from the reference"
        );
    }

    // After the last resume the journal is complete again: a fresh resume
    // replays every task and re-runs nothing, to the same census.
    let j = CampaignJournal::resume(&path, &meta).unwrap();
    assert_eq!(j.completed().len(), 2 * 2, "completed journal must hold every task");
    let replay_only = journaled(&cfg, &workloads, &j);
    assert_eq!(census_of(&replay_only), reference);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn resume_is_thread_count_independent() {
    let workloads = two_workloads();
    let reference = census_of(&run_campaign_on(&config(1), &workloads));

    let path = tmp("threads.jsonl");
    for threads in [1usize, 2, 0] {
        let cfg = config(threads);
        let meta = JournalMeta::new(&cfg, &workloads);
        let j = CampaignJournal::create(&path, &meta).unwrap();
        journaled(&cfg, &workloads, &j);
        drop(j);
        // Cut the journal after roughly one and a half tasks and finish
        // the campaign with a different thread count than wrote it.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() * 3 / 8]).unwrap();
        for resume_threads in [1usize, 2, 0] {
            let mut rcfg = config(resume_threads);
            rcfg.threads = resume_threads;
            // Re-truncate for each resume so every combination starts
            // from the same partial journal.
            std::fs::write(&path, &bytes[..bytes.len() * 3 / 8]).unwrap();
            let j = CampaignJournal::resume(&path, &JournalMeta::new(&rcfg, &workloads))
                .unwrap();
            let resumed = journaled(&rcfg, &workloads, &j);
            assert_eq!(
                census_of(&resumed),
                reference,
                "written by {threads} threads, resumed by {resume_threads}"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn quarantined_trials_survive_the_journal_round_trip() {
    let workloads = two_workloads();
    let mut cfg = config(1);
    cfg.panic_shim = Some((0, 0, 3));
    let reference = run_campaign_on(&cfg, &workloads);
    assert_eq!(reference.quarantined.len(), 1);

    let path = tmp("quarantine.jsonl");
    let meta = JournalMeta::new(&cfg, &workloads);
    {
        let j = CampaignJournal::create(&path, &meta).unwrap();
        journaled(&cfg, &workloads, &j);
    }
    // Resume from the *complete* journal: every task — faults included —
    // is replayed, none re-run, so the quarantine record must come back
    // from the journal rather than from re-executing the shim.
    let j = CampaignJournal::resume(&path, &meta).unwrap();
    assert_eq!(j.completed().iter().map(|t| t.faults.len()).sum::<usize>(), 1);
    let mut replay_cfg = cfg.clone();
    replay_cfg.panic_shim = None; // replay must not need the shim
    let resumed = journaled(&replay_cfg, &workloads, &j);
    assert_eq!(resumed.quarantined, reference.quarantined);
    assert_eq!(census_of(&resumed), census_of(&reference));
    std::fs::remove_file(&path).unwrap();
}
