//! Cross-crate integration: every synthetic workload must execute on the
//! pipeline model with a retirement stream identical to the functional
//! simulator's, under both the baseline and the fully protected
//! configuration.

use tfsim::arch::{FuncSim, StepEvent};
use tfsim::isa::Program;
use tfsim::uarch::{Pipeline, PipelineConfig, RetireEvent};
use tfsim::workloads;

/// Runs `program` on both models in lockstep at retirement granularity.
/// Returns (instructions, cycles).
fn lockstep(program: &Program, config: PipelineConfig) -> (u64, u64) {
    let mut probe = FuncSim::new(program);
    probe.run(50_000_000);
    let mut golden = FuncSim::new(program);
    let mut cpu = Pipeline::new(program, config);
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());

    let max_cycles = 20_000_000u64;
    for _ in 0..max_cycles {
        if !cpu.running() {
            break;
        }
        for ev in cpu.step().events {
            match ev {
                RetireEvent::Retired(rec) => match golden.step() {
                    StepEvent::Retired(g) => {
                        assert_eq!(
                            (rec.pc, rec.next_pc, rec.raw, rec.dst, rec.store),
                            (g.pc, g.next_pc, g.raw, g.dst, g.store),
                            "{}: retirement #{} diverged",
                            program.name,
                            rec.seq
                        );
                    }
                    other => panic!("{}: golden ended early: {other:?}", program.name),
                },
                RetireEvent::Halted { code } => {
                    match golden.step() {
                        StepEvent::Halted { code: g } => assert_eq!(code, g),
                        other => panic!("{}: golden did not halt: {other:?}", program.name),
                    }
                    assert_eq!(cpu.output(), golden.output(), "{}: output", program.name);
                    return (cpu.instret(), cpu.cycles());
                }
                RetireEvent::Exception(e) => {
                    panic!("{}: unexpected exception {e:?} at cycle {}", program.name, cpu.cycles())
                }
            }
        }
    }
    panic!(
        "{}: did not finish in {max_cycles} cycles (retired {})",
        program.name,
        cpu.instret()
    );
}

#[test]
fn all_workloads_match_functional_simulator_baseline() {
    for w in workloads::all() {
        let p = w.build(1);
        let (insns, cycles) = lockstep(&p, PipelineConfig::baseline());
        let ipc = insns as f64 / cycles as f64;
        println!("{:<14} {:>8} insns {:>8} cycles  ipc {:.2}", w.name, insns, cycles, ipc);
        assert!(ipc > 0.1, "{}: implausibly low IPC {ipc:.3}", w.name);
        assert!(ipc < 6.0, "{}: implausibly high IPC {ipc:.3}", w.name);
    }
}

#[test]
fn all_workloads_match_functional_simulator_protected() {
    for w in workloads::all() {
        let p = w.build(1);
        lockstep(&p, PipelineConfig::protected());
    }
}

#[test]
fn workload_ipc_ordering_is_plausible() {
    // The paper: gzip has the highest IPC; mcf-like (cache-miss bound) and
    // gcc-like (pointer chasing) should be the slowest.
    let ipc_of = |name: &str| {
        let w = workloads::by_name(name).unwrap();
        let p = w.build(1);
        let (insns, cycles) = lockstep(&p, PipelineConfig::baseline());
        insns as f64 / cycles as f64
    };
    let gzip = ipc_of("gzip-like");
    let mcf = ipc_of("mcf-like");
    let gcc = ipc_of("gcc-like");
    assert!(
        gzip > mcf && gzip > gcc,
        "gzip-like must out-run the memory-bound kernels: gzip {gzip:.2}, mcf {mcf:.2}, gcc {gcc:.2}"
    );
}
