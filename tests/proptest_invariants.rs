//! Property-based tests (on the in-tree `tfsim-check` harness) for the
//! core data structures and invariants: decoder totality and
//! round-tripping, shared ALU semantics, ECC correction, memory
//! consistency, free-list conservation, and constant materialization.
//!
//! A failing property prints its `(seed, case)` pair and the shrunk
//! counterexample; rerun with `TFSIM_PROP_SEED=<seed>` to reproduce.

use tfsim::check::prop::{any_u32, any_u64, ints, select, vecs};
use tfsim_check::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_check};

use tfsim::bitstate::Category;
use tfsim::isa::{alu, decode, Asm, Mnemonic, Program, Reg};
use tfsim::mem::{PageSet, SparseMemory, PAGE_SIZE};
use tfsim::protect::{parity32, pointer_code, ptr7_check, ptr7_fix, regfile_code, Decoded, Hamming};
use tfsim::uarch::rename::FreeList;

/// Shared body of the `alu_identities` property, so the ported
/// regression case and the generated cases run exactly the same checks.
fn check_alu_identities(a: u64, b: u64, c: u64) -> Result<(), String> {
    prop_assert_eq!(
        alu::operate(Mnemonic::Addq, a, b, c).unwrap(),
        alu::operate(Mnemonic::Addq, b, a, c).unwrap()
    );
    prop_assert_eq!(alu::operate(Mnemonic::Xor, a, a, c).unwrap(), 0);
    prop_assert_eq!(alu::operate(Mnemonic::Bis, a, 0, c).unwrap(), a);
    prop_assert_eq!(alu::operate(Mnemonic::And, a, u64::MAX, c).unwrap(), a);
    prop_assert_eq!(alu::operate(Mnemonic::Subq, a, a, c).unwrap(), 0);
    // Scaled adds decompose.
    prop_assert_eq!(
        alu::operate(Mnemonic::S8addq, a, b, c).unwrap(),
        a.wrapping_mul(8).wrapping_add(b)
    );
    // Comparison complement: a < b  iff  !(b <= a).
    let lt = alu::operate(Mnemonic::Cmplt, a, b, 0).unwrap();
    let le_rev = alu::operate(Mnemonic::Cmple, b, a, 0).unwrap();
    prop_assert_eq!(lt == 1, le_rev == 0);
    // Branch-condition complements.
    prop_assert_ne!(alu::branch_taken(Mnemonic::Beq, a), alu::branch_taken(Mnemonic::Bne, a));
    prop_assert_ne!(alu::branch_taken(Mnemonic::Blt, a), alu::branch_taken(Mnemonic::Bge, a));
    prop_assert_ne!(alu::branch_taken(Mnemonic::Blbc, a), alu::branch_taken(Mnemonic::Blbs, a));
    Ok(())
}

/// Shared body of the `cmov_selects` property (see
/// `check_alu_identities` for why it is factored out).
fn check_cmov_selects(a: u64, b: u64, c: u64) -> Result<(), String> {
    for m in [
        Mnemonic::Cmoveq,
        Mnemonic::Cmovne,
        Mnemonic::Cmovlt,
        Mnemonic::Cmovge,
        Mnemonic::Cmovle,
        Mnemonic::Cmovgt,
        Mnemonic::Cmovlbs,
        Mnemonic::Cmovlbc,
    ] {
        let r = alu::operate(m, a, b, c).unwrap();
        prop_assert!(r == b || r == c, "{m:?}: {r} is neither {b} nor {c}");
    }
    Ok(())
}

/// Ported proptest regression (`tests/proptest_invariants.proptest-regressions`,
/// entry `093a87…`, "shrinks to a = 0, b = 1, c = 0"): the shrunk ALU
/// counterexample from early development, kept as an explicit case now
/// that the seed file format is gone.
#[test]
fn regression_alu_identities_a0_b1_c0() {
    check_alu_identities(0, 1, 0).unwrap();
}

/// Second ported regression entry: the same shrunk input run through the
/// CMOV property, which drew from the identical `(a, b, c)` generator.
#[test]
fn regression_cmov_selects_a0_b1_c0() {
    check_cmov_selects(0, 1, 0).unwrap();
}

prop_check! {
    /// The decoder is total: every 32-bit word decodes without panicking,
    /// and re-encoding the decoded form is a fixed point of decoding.
    fn decoder_total_and_idempotent(w in any_u32()) {
        let d1 = decode(w);
        let w2 = d1.encode();
        let d2 = decode(w2);
        prop_assert_eq!(d1.mnemonic, d2.mnemonic);
        prop_assert_eq!(d1.ra, d2.ra);
        prop_assert_eq!(d1.uses_literal, d2.uses_literal);
        if d1.mnemonic != Mnemonic::Illegal {
            prop_assert_eq!(d1.imm, d2.imm);
            prop_assert_eq!(d2.encode(), w2, "encode must be stable");
        }
        // Metadata accessors never panic and stay in range.
        let _ = d1.exec_class();
        prop_assert!(d1.exec_latency() >= 1 && d1.exec_latency() <= 5);
        let srcs = d1.srcs();
        prop_assert!(srcs.iter().flatten().all(|r| !r.is_zero()));
    }

    /// Arithmetic identities of the shared ALU semantics.
    fn alu_identities(a in any_u64(), b in any_u64(), c in any_u64()) {
        check_alu_identities(a, b, c)?;
    }

    /// CMOV keeps exactly one of the two candidate values.
    fn cmov_selects(a in any_u64(), b in any_u64(), c in any_u64()) {
        check_cmov_selects(a, b, c)?;
    }

    /// SECDED corrects any single-bit data error for arbitrary widths.
    fn hamming_corrects_single_flips(width in ints(2u32..65), data in any_u64(), bit in ints(0u32..64)) {
        let bit = bit % width;
        let data = (data as u128) & ((1u128 << width) - 1);
        let code = Hamming::new(width, true);
        let check = code.encode(data);
        prop_assert_eq!(code.decode(data, check), Decoded::Clean);
        let corrupted = data ^ (1u128 << bit);
        prop_assert_eq!(code.decode(corrupted, check), Decoded::CorrectedData(data));
    }

    /// SECDED detects (never miscorrects) any double-bit data error.
    fn hamming_detects_double_flips(data in any_u64(), b1 in ints(0u32..65), b2 in ints(0u32..65)) {
        prop_assume!(b1 != b2);
        let data = (data as u128) | (((data >> 1) as u128 & 1) << 64);
        let code = regfile_code();
        let check = code.encode(data);
        let corrupted = data ^ (1u128 << b1) ^ (1u128 << b2);
        prop_assert_eq!(code.decode(corrupted, check), Decoded::Uncorrectable);
    }

    /// The pointer-ECC lookup tables agree with the codec everywhere.
    fn ptr_tables_agree(data in ints(0u64..128), check in ints(0u64..16)) {
        prop_assert_eq!(ptr7_check(data), pointer_code().encode(data as u128) as u64);
        let fixed = ptr7_fix(data, check);
        match pointer_code().decode(data as u128, check as u32) {
            Decoded::CorrectedData(f) => prop_assert_eq!(fixed, f as u64),
            _ => prop_assert_eq!(fixed, data),
        }
    }

    /// Parity distributes over disjoint bit partitions (the paper's
    /// "update the parity as word portions are dropped" scheme).
    fn parity_partition(w in any_u32(), mask in any_u32()) {
        prop_assert_eq!(parity32(w), parity32(w & mask) ^ parity32(w & !mask));
    }

    /// Sparse memory is byte-exact against a HashMap reference model.
    fn memory_matches_reference(
        ops in vecs((ints(0u64..0x4_0000), any_u64(), select(vec![1u64, 2, 4, 8])), 1..60)
    ) {
        let mut mem = SparseMemory::new();
        let mut reference = std::collections::HashMap::new();
        for (addr, value, size) in &ops {
            mem.write_sized(*addr, *value, *size);
            for i in 0..*size {
                reference.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for (addr, _, size) in &ops {
            let expect: u64 = (0..*size)
                .map(|i| (*reference.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i))
                .sum();
            prop_assert_eq!(mem.read_sized(*addr, *size), expect);
        }
    }

    /// Page sets cover exactly the inserted ranges.
    fn pageset_covers_inserted(addr in ints(0u64..0x10_0000), len in ints(1u64..0x8000)) {
        let mut s = PageSet::new();
        s.insert_range(addr, len);
        prop_assert!(s.covers(addr, 1));
        prop_assert!(s.covers(addr + len - 1, 1));
        prop_assert!(s.covers(addr, len.min(8)));
        // An address at least a full page past the range is not covered.
        prop_assert!(!s.covers(addr + len + PAGE_SIZE, 1));
    }

    /// Free lists conserve registers across arbitrary pop/push/unpop
    /// sequences that respect stack discipline for unpop.
    fn freelist_conservation(ops in vecs(ints(0u8..3), 1..200)) {
        let mut fl = FreeList::new(Category::SpecFreelist, false);
        let mut popped: Vec<u64> = Vec::new();
        let mut retired: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                // rename: allocate
                0 => {
                    if let Some(p) = fl.pop() {
                        popped.push(p);
                    }
                }
                // squash walk: unpop youngest allocation
                1 => {
                    if let Some(p) = popped.pop() {
                        fl.unpop(p);
                    }
                }
                // retire: oldest allocation becomes a freed old mapping
                _ => {
                    if !popped.is_empty() {
                        let p = popped.remove(0);
                        retired.push(p);
                        fl.push(p);
                    }
                }
            }
            prop_assert_eq!(fl.len() as usize + popped.len(), 48, "registers conserved");
        }
        // Drain: every register is still distinct.
        let mut seen = std::collections::BTreeSet::new();
        while let Some(p) = fl.pop() {
            prop_assert!(seen.insert(p), "duplicate register {}", p);
        }
        for p in popped {
            prop_assert!(seen.insert(p), "duplicate register {}", p);
        }
        prop_assert_eq!(seen.len(), 48);
    }

    /// `li` materializes arbitrary constants exactly (validated through the
    /// functional simulator, end to end).
    fn li_materializes_any_constant(v in any_u64()) {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, v);
        a.li(Reg::R2, 0x2_0000);
        a.stq(Reg::R1, Reg::R2, 0);
        a.li(Reg::V0, 1); // exit
        a.li(Reg::A0, 0);
        a.callsys();
        let mut sim = tfsim::arch::FuncSim::new(&Program::new("li", a));
        let r = sim.run(100);
        prop_assert_eq!(r.exit_code, Some(0));
        prop_assert_eq!(sim.mem.read_u64(0x2_0000), v);
    }
}
