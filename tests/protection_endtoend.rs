//! End-to-end protection-mechanism tests: inject targeted faults into a
//! *protected* pipeline and verify the program still completes correctly —
//! the mechanism-level ground truth behind the Figure 9 campaign.

use tfsim::arch::FuncSim;
use tfsim::bitstate::{Category, FlipBit, InjectionMask, StorageKind, VisitState};
use tfsim::isa::{syscall, Asm, Program, Reg};
use tfsim::uarch::{Pipeline, PipelineConfig};

fn program() -> Program {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R10, 0x5bd1e995);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R7, 4_000);
    a.li(Reg::R9, 1);
    let top = a.here_label();
    a.mulq_i(Reg::R10, 33, Reg::R10);
    a.addq_i(Reg::R10, 7, Reg::R10);
    a.srl_i(Reg::R10, 17, Reg::R4);
    a.and_i(Reg::R4, 0xf8, Reg::R5);
    a.addq(Reg::R1, Reg::R5, Reg::R5);
    a.stq(Reg::R4, Reg::R5, 0);
    a.ldq(Reg::R6, Reg::R5, 0);
    a.addq(Reg::R9, Reg::R6, Reg::R9);
    a.subq_i(Reg::R7, 1, Reg::R7);
    a.bne(Reg::R7, top);
    a.li(Reg::V0, syscall::EXIT);
    a.mov(Reg::R9, Reg::A0); // full 64-bit checksum: any corruption shows
    a.callsys();
    Program::new("protect-bed", a).with_data(0x10_0000, vec![0u8; 256])
}

fn golden_exit(p: &Program) -> u64 {
    let mut sim = FuncSim::new(p);
    sim.run(10_000_000).exit_code.expect("golden completes")
}

fn warmed(p: &Program, config: PipelineConfig, cycles: u64) -> Pipeline {
    let mut probe = FuncSim::new(p);
    probe.run(10_000_000);
    let mut cpu = Pipeline::new(p, config);
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    for _ in 0..cycles {
        cpu.step();
    }
    cpu
}

/// Finds eligible-bit indices whose flip would land in `category`/`kind`
/// (probing a clone; the order is deterministic).
fn find_bits(
    cpu: &Pipeline,
    category: Category,
    kind: StorageKind,
    count: usize,
    stride: u64,
) -> Vec<u64> {
    let mut found = Vec::new();
    let mut target = 0u64;
    while found.len() < count && target < 200_000 {
        let mut probe = cpu.clone();
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, target);
        probe.visit_state(&mut flip);
        match flip.flipped {
            Some(hit) if hit.category == category && hit.kind == kind => {
                found.push(target);
                target += stride;
            }
            Some(_) => target += 1,
            None => break,
        }
    }
    found
}

fn run_flipped(cpu: &Pipeline, target: u64) -> Option<u64> {
    let mut victim = cpu.clone();
    let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, target);
    victim.visit_state(&mut flip);
    assert!(flip.flipped.is_some());
    victim.run(10_000_000);
    victim.halted()
}

#[test]
fn regfile_ecc_corrects_every_sampled_flip() {
    // Between cycles the check bits are always up to date (the one-cycle
    // window closes at the end of each step), so every single-bit regfile
    // flip in the protected pipeline must be corrected.
    let p = program();
    let exit = golden_exit(&p);
    let cpu = warmed(&p, PipelineConfig::protected(), 300);
    let bits = find_bits(&cpu, Category::Regfile, StorageKind::Ram, 24, 173);
    assert!(bits.len() >= 20, "found only {} regfile bits", bits.len());
    for target in bits {
        assert_eq!(
            run_flipped(&cpu, target),
            Some(exit),
            "regfile ECC must mask bit {target}"
        );
    }
}

#[test]
fn unprotected_regfile_flips_do_fail_sometimes() {
    // Control for the ECC test: the same flips on the baseline pipeline
    // must corrupt at least one run (otherwise the ECC test proves nothing).
    let p = program();
    let exit = golden_exit(&p);
    let cpu = warmed(&p, PipelineConfig::baseline(), 300);
    let bits = find_bits(&cpu, Category::Regfile, StorageKind::Ram, 24, 173);
    let wrong = bits.iter().filter(|&&t| run_flipped(&cpu, t) != Some(exit)).count();
    assert!(wrong > 0, "expected some baseline regfile corruption out of {}", bits.len());
}

#[test]
fn pointer_ecc_protects_rat_and_freelist_bits() {
    let p = program();
    let exit = golden_exit(&p);
    let cpu = warmed(&p, PipelineConfig::protected(), 300);
    for category in [Category::SpecRat, Category::ArchRat, Category::SpecFreelist] {
        let bits = find_bits(&cpu, category, StorageKind::Ram, 8, 13);
        assert!(!bits.is_empty(), "no {category} bits found");
        for target in bits {
            assert_eq!(
                run_flipped(&cpu, target),
                Some(exit),
                "pointer ECC must mask {category} bit {target}"
            );
        }
    }
}

#[test]
fn insn_parity_recovers_instruction_word_flips() {
    // Parity detects the corrupted word before retirement and flushes;
    // execution restarts from the intact memory image, so the program
    // completes correctly.
    let p = program();
    let exit = golden_exit(&p);
    let cpu = warmed(&p, PipelineConfig::protected(), 300);
    let bits = find_bits(&cpu, Category::Insn, StorageKind::Ram, 16, 97);
    assert!(bits.len() >= 10, "found only {} insn bits", bits.len());
    let correct = bits.iter().filter(|&&t| run_flipped(&cpu, t) == Some(exit)).count();
    assert_eq!(correct, bits.len(), "parity must recover all sampled insn flips");
}

#[test]
fn timeout_counter_bounds_deadlocks() {
    // Flips into ROB tags frequently wedge the baseline machine; the
    // protected machine must always terminate (flush-and-restart).
    let p = program();
    let exit = golden_exit(&p);
    let protected = warmed(&p, PipelineConfig::protected(), 300);
    let bits = find_bits(&protected, Category::Robptr, StorageKind::Ram, 12, 7);
    assert!(!bits.is_empty());
    for target in bits {
        let outcome = run_flipped(&protected, target);
        assert!(
            outcome.is_some(),
            "protected pipeline must not hang on robptr bit {target}"
        );
        // Most recoveries are also *correct* (the flush discards the
        // corrupted speculative state).
        let _ = exit;
    }
}
