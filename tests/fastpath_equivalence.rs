//! Property tests pinning the campaign fast path to the naive reference:
//!
//! * `StartPoint::run_trials` (snapshot ladder + cached fingerprints) must
//!   return exactly the same `TrialRecord` sequence as per-trial
//!   `StartPoint::run_trial` over random trial plans.
//! * The hierarchical root fingerprint (`CachedFingerprint`) must equal
//!   the flat `fingerprint_of` on a live pipeline after random bit flips
//!   and random stepping.
//!
//! Together these are the proof obligations that let the campaign use the
//! fast path without ever changing an outcome census. A failing property
//! prints its `(seed, case)` pair; rerun with `TFSIM_PROP_SEED=<seed>`.

use std::sync::OnceLock;

use tfsim::bitstate::{
    fingerprint_of, BitCount, CachedFingerprint, FlipBit, InjectionMask, VisitState,
};
use tfsim::check::prop::{self, any_u64, ints, vecs, Config};
use tfsim::inject::{StartPoint, TrialSpec};
use tfsim::isa::{Asm, Program, Reg};
use tfsim::uarch::{Pipeline, PipelineConfig};
use tfsim_check::prop_assert_eq;

const MASK: InjectionMask = InjectionMask::LatchesAndRams;

/// A store/branch-heavy loop kernel, warmed past the cold-start phase with
/// the flow log on (the shape `StartPoint::prepare` expects).
fn warmed_pipeline() -> Pipeline {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R10, 0x9e3779b97f4a7c15u64);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R7, 50_000);
    a.li(Reg::R9, 0);
    let top = a.here_label();
    a.mulq_i(Reg::R10, 33, Reg::R10);
    a.addq_i(Reg::R10, 7, Reg::R10);
    a.srl_i(Reg::R10, 20, Reg::R4);
    a.and_i(Reg::R4, 0xf8, Reg::R5);
    a.addq(Reg::R1, Reg::R5, Reg::R5);
    a.stq(Reg::R4, Reg::R5, 0);
    a.ldq(Reg::R6, Reg::R5, 0);
    a.addq(Reg::R9, Reg::R6, Reg::R9);
    a.subq_i(Reg::R7, 1, Reg::R7);
    a.bne(Reg::R7, top);
    a.li(Reg::V0, tfsim::isa::syscall::EXIT);
    a.mov(Reg::R9, Reg::A0);
    a.callsys();
    let p = Program::new("fastpath-bed", a).with_data(0x10_0000, vec![0u8; 256]);
    let mut probe = tfsim::arch::FuncSim::new(&p);
    probe.run(50_000_000);
    let mut cpu = Pipeline::new(&p, PipelineConfig::baseline());
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    cpu.enable_flow_log();
    for _ in 0..400 {
        cpu.step();
    }
    cpu
}

fn start_point() -> &'static StartPoint {
    static SP: OnceLock<StartPoint> = OnceLock::new();
    SP.get_or_init(|| StartPoint::prepare(&warmed_pipeline(), 700, MASK))
}

fn base_pipeline() -> &'static Pipeline {
    static CPU: OnceLock<Pipeline> = OnceLock::new();
    CPU.get_or_init(warmed_pipeline)
}

#[test]
fn batched_run_trials_equals_per_trial_run_trial() {
    // Random plans: unsorted injection cycles with duplicates, random
    // targets. Each case cross-checks the whole batch against the naive
    // path, so a handful of cases covers hundreds of trials — and trials
    // are expensive in debug builds, hence the reduced case count.
    let mut cfg = Config::from_env();
    cfg.cases = cfg.cases.min(24);
    let sp = start_point();
    assert!(sp.bit_count() > 40_000, "plan generator assumes ≥40k eligible bits");
    let gen = (vecs((ints(0u64..40_000), ints(0u64..64)), 1..5),);
    prop::run(&cfg, "batched_run_trials_equals_per_trial_run_trial", &gen, |val| {
        let (plan,) = val.clone();
        let specs: Vec<TrialSpec> =
            plan.iter().map(|&(target, inject_cycle)| TrialSpec { target, inject_cycle }).collect();
        let monitor = 400;
        let batched = sp.run_trials(MASK, &specs, monitor);
        prop_assert_eq!(batched.len(), specs.len());
        for (i, s) in specs.iter().enumerate() {
            let naive = sp.run_trial(MASK, s.target, s.inject_cycle, monitor);
            prop_assert_eq!(batched[i], naive);
        }
        Ok(())
    });
}

#[test]
fn hierarchical_root_equals_flat_fingerprint_after_flips() {
    let cfg = Config::from_env();
    let base = base_pipeline();
    let mut count = BitCount::new(MASK);
    base.clone().visit_state(&mut count);
    let bits = count.count;
    let gen = (vecs(any_u64(), 0..6), ints(0u64..40));
    prop::run(&cfg, "hierarchical_root_equals_flat_fingerprint_after_flips", &gen, move |val| {
        let (flips, steps) = val.clone();
        let mut cpu = base.clone();
        for _ in 0..steps {
            cpu.step();
        }
        for f in &flips {
            let mut flip = FlipBit::new(MASK, f % bits);
            cpu.visit_state(&mut flip);
        }
        // A fresh engine after out-of-band mutation (the contract the
        // trial classifier follows): root must equal the flat hash.
        let mut engine = CachedFingerprint::new();
        prop_assert_eq!(engine.fingerprint(&mut cpu), fingerprint_of(&mut cpu));
        // And reusing the same engine across further in-API mutation
        // (stepping) must stay in lockstep with the flat hash.
        for _ in 0..10 {
            cpu.step();
            prop_assert_eq!(engine.fingerprint(&mut cpu), fingerprint_of(&mut cpu));
        }
        Ok(())
    });
}
