//! Property tests pinning the campaign fast path to the naive reference:
//!
//! * `StartPoint::run_trials` (snapshot ladder + cached fingerprints) must
//!   return exactly the same `TrialRecord` sequence as per-trial
//!   `StartPoint::run_trial` over random trial plans.
//! * The hierarchical root fingerprint (`CachedFingerprint`) must equal
//!   the flat `fingerprint_of` on a live pipeline after random bit flips
//!   and random stepping.
//! * The word-parallel (bit-sliced) engine `run_trials_sliced` must return
//!   the same records as the ladder and the naive path over random plans
//!   at every lane width in `1..=64`, including partial final words.
//! * A lane of the dense `SlicedState` container, flipped and extracted,
//!   must equal the scalar machine flipped by `FlipBit` at the same
//!   target — hit attribution (`FlippedBit.unit`) included.
//! * The analytic masking pruner `run_trials_pruned` must return the same
//!   records as the ladder and the naive path over random plans, windows,
//!   protection configs, and delegate lane widths in `1..=64` — and a
//!   site the pruner proves dead must classify identically under a full
//!   scalar `run_trial` replay.
//!
//! Together these are the proof obligations that let the campaign use the
//! fast path without ever changing an outcome census. A failing property
//! prints its `(seed, case)` pair; rerun with `TFSIM_PROP_SEED=<seed>`.

use std::sync::OnceLock;

use tfsim::bitstate::{
    fingerprint_of, BitCount, CachedFingerprint, FlipBit, InjectionMask, SlicedState, Snapshot,
    VisitState,
};
use tfsim::check::prop::{self, any_u64, ints, vecs, Config};
use tfsim::inject::{OutcomeCounts, StartPoint, TrialSpec};
use tfsim::isa::{Asm, Program, Reg};
use tfsim::uarch::{Pipeline, PipelineConfig};
use tfsim_check::{prop_assert, prop_assert_eq};

const MASK: InjectionMask = InjectionMask::LatchesAndRams;

/// A store/branch-heavy loop kernel, warmed past the cold-start phase with
/// the flow log on (the shape `StartPoint::prepare` expects).
fn warmed_pipeline() -> Pipeline {
    warmed_pipeline_with(PipelineConfig::baseline())
}

fn warmed_pipeline_with(config: PipelineConfig) -> Pipeline {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R10, 0x9e3779b97f4a7c15u64);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R7, 50_000);
    a.li(Reg::R9, 0);
    let top = a.here_label();
    a.mulq_i(Reg::R10, 33, Reg::R10);
    a.addq_i(Reg::R10, 7, Reg::R10);
    a.srl_i(Reg::R10, 20, Reg::R4);
    a.and_i(Reg::R4, 0xf8, Reg::R5);
    a.addq(Reg::R1, Reg::R5, Reg::R5);
    a.stq(Reg::R4, Reg::R5, 0);
    a.ldq(Reg::R6, Reg::R5, 0);
    a.addq(Reg::R9, Reg::R6, Reg::R9);
    a.subq_i(Reg::R7, 1, Reg::R7);
    a.bne(Reg::R7, top);
    a.li(Reg::V0, tfsim::isa::syscall::EXIT);
    a.mov(Reg::R9, Reg::A0);
    a.callsys();
    let p = Program::new("fastpath-bed", a).with_data(0x10_0000, vec![0u8; 256]);
    let mut probe = tfsim::arch::FuncSim::new(&p);
    probe.run(50_000_000);
    let mut cpu = Pipeline::new(&p, config);
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    cpu.enable_flow_log();
    for _ in 0..400 {
        cpu.step();
    }
    cpu
}

fn start_point() -> &'static StartPoint {
    static SP: OnceLock<StartPoint> = OnceLock::new();
    SP.get_or_init(|| StartPoint::prepare(&warmed_pipeline(), 700, MASK))
}

fn protected_start_point() -> &'static StartPoint {
    static SP: OnceLock<StartPoint> = OnceLock::new();
    SP.get_or_init(|| {
        StartPoint::prepare(&warmed_pipeline_with(PipelineConfig::protected()), 700, MASK)
    })
}

fn base_pipeline() -> &'static Pipeline {
    static CPU: OnceLock<Pipeline> = OnceLock::new();
    CPU.get_or_init(warmed_pipeline)
}

#[test]
fn batched_run_trials_equals_per_trial_run_trial() {
    // Random plans: unsorted injection cycles with duplicates, random
    // targets. Each case cross-checks the whole batch against the naive
    // path, so a handful of cases covers hundreds of trials — and trials
    // are expensive in debug builds, hence the reduced case count.
    let mut cfg = Config::from_env();
    cfg.cases = cfg.cases.min(24);
    let sp = start_point();
    assert!(sp.bit_count() > 40_000, "plan generator assumes ≥40k eligible bits");
    let gen = (vecs((ints(0u64..40_000), ints(0u64..64)), 1..5),);
    prop::run(&cfg, "batched_run_trials_equals_per_trial_run_trial", &gen, |val| {
        let (plan,) = val.clone();
        let specs: Vec<TrialSpec> =
            plan.iter().map(|&(target, inject_cycle)| TrialSpec { target, inject_cycle }).collect();
        let monitor = 400;
        let batched = sp.run_trials(MASK, &specs, monitor);
        prop_assert_eq!(batched.len(), specs.len());
        for (i, s) in specs.iter().enumerate() {
            let naive = sp.run_trial(MASK, s.target, s.inject_cycle, monitor);
            prop_assert_eq!(batched[i], naive);
        }
        Ok(())
    });
}

#[test]
fn sliced_equals_ladder_equals_naive_at_every_lane_width() {
    // Random plans through all three engines: naive per-trial replay,
    // batched snapshot ladder, and the word-parallel (bit-sliced) engine
    // at a random lane width in 1..=64. Plans of 1..8 trials against
    // widths up to 64 exercise partial final words constantly (any plan
    // shorter than the width is one partial word). Record equality is
    // per-trial and total: outcome, FailureMode, category, kind, unit,
    // inject cycle, and valid-instruction count all pinned.
    let mut cfg = Config::from_env();
    cfg.cases = cfg.cases.min(16);
    let sp = start_point();
    assert!(sp.bit_count() > 40_000, "plan generator assumes ≥40k eligible bits");
    let gen = (vecs((ints(0u64..40_000), ints(0u64..64)), 1..8), ints(1usize..65));
    prop::run(&cfg, "sliced_equals_ladder_equals_naive_at_every_lane_width", &gen, |val| {
        let (plan, width) = val.clone();
        let specs: Vec<TrialSpec> =
            plan.iter().map(|&(target, inject_cycle)| TrialSpec { target, inject_cycle }).collect();
        let monitor = 400;
        let ladder = sp.run_trials(MASK, &specs, monitor);
        let sliced = sp.run_trials_sliced_with_width(MASK, &specs, monitor, width);
        prop_assert_eq!(sliced.len(), specs.len());
        prop_assert_eq!(&sliced, &ladder, "sliced (width {}) != ladder", width);
        let mut sliced_census = OutcomeCounts::default();
        let mut naive_census = OutcomeCounts::default();
        for (i, s) in specs.iter().enumerate() {
            let naive = sp.run_trial(MASK, s.target, s.inject_cycle, monitor);
            prop_assert_eq!(sliced[i], naive, "sliced != naive at trial {}", i);
            sliced_census.add(sliced[i].outcome);
            naive_census.add(naive.outcome);
        }
        prop_assert_eq!(sliced_census, naive_census);
        Ok(())
    });
}

#[test]
fn pruned_equals_ladder_equals_naive_at_every_lane_width() {
    // Random plans through the analytic masking pruner against the ladder
    // and the naive path, across random monitoring windows, protection
    // configs, and delegate lane widths. The pruner may discharge a site
    // analytically, collapse it into a class, or delegate it — whatever it
    // picks, the records must be bit-identical to the scalar walk, and
    // every site must land in exactly one disposition bucket.
    let mut cfg = Config::from_env();
    cfg.cases = cfg.cases.min(12);
    let gen = (
        vecs((ints(0u64..40_000), ints(0u64..64)), 1..8),
        ints(1usize..65),
        ints(120u64..500),
        ints(0u8..2),
    );
    prop::run(&cfg, "pruned_equals_ladder_equals_naive_at_every_lane_width", &gen, |val| {
        let (plan, width, monitor, protected) = val.clone();
        let sp = if protected == 1 { protected_start_point() } else { start_point() };
        let specs: Vec<TrialSpec> =
            plan.iter().map(|&(target, inject_cycle)| TrialSpec { target, inject_cycle }).collect();
        let ladder = sp.run_trials(MASK, &specs, monitor);
        let (pruned, dispo) = sp.run_trials_pruned_with_width(MASK, &specs, monitor, width);
        prop_assert_eq!(&pruned, &ladder, "pruned (width {}) != ladder", width);
        prop_assert_eq!(dispo.total(), specs.len() as u64, "dispositions must cover every site");
        for (i, s) in specs.iter().enumerate() {
            let naive = sp.run_trial(MASK, s.target, s.inject_cycle, monitor);
            prop_assert_eq!(pruned[i], naive, "pruned != naive at trial {}", i);
        }
        Ok(())
    });
}

#[test]
fn pruned_proved_dead_site_equals_the_scalar_trial() {
    // Single-site plans make the disposition tally name *this* site's
    // fate: when the pruner proves the site dead (dead window, overwrite
    // before read, or pre-read lock/halt decision), the record it emits
    // without simulating anything must equal the full scalar replay's.
    // The cross-case counter then pins that the property actually
    // exercised the analytic path, not just delegated everything.
    let cfg = Config::from_env();
    let proved = std::cell::Cell::new(0u64);
    let gen = (ints(0u64..40_000), ints(0u64..64), ints(60u64..500), ints(0u8..2));
    prop::run(&cfg, "pruned_proved_dead_site_equals_the_scalar_trial", &gen, |val| {
        let (target, inject_cycle, monitor, protected) = *val;
        let sp = if protected == 1 { protected_start_point() } else { start_point() };
        let spec = TrialSpec { target, inject_cycle };
        let (pruned, dispo) = sp.run_trials_pruned(MASK, &[spec], monitor);
        prop_assert_eq!(dispo.total(), 1);
        prop_assert_eq!(pruned.len(), 1);
        let naive = sp.run_trial(MASK, target, inject_cycle, monitor);
        prop_assert_eq!(pruned[0], naive, "disposition {:?} changed the record", dispo);
        proved.set(proved.get() + dispo.proved_dead);
        Ok(())
    });
    assert!(proved.get() > 0, "no case ever took the analytic proved-dead path");
}

#[test]
fn sliced_lane_flip_round_trips_to_the_scalar_trial() {
    // The dense bit-sliced container is the reference semantics for the
    // campaign engine's sparse realization: flipping eligible bit `target`
    // in lane `k` of the transposed state, then extracting lane `k` back
    // to a scalar machine, must equal flipping the scalar machine with
    // `FlipBit` at the same (bit, cycle) — and the reported hit (category,
    // kind, bit, width, enclosing unit) must be identical.
    let mut cfg = Config::from_env();
    cfg.cases = cfg.cases.min(48);
    let base = base_pipeline();
    let gen = (ints(0u64..40_000), ints(0u32..64), ints(0u64..24));
    prop::run(&cfg, "sliced_lane_flip_round_trips_to_the_scalar_trial", &gen, move |val| {
        let (target, lane, cycle) = *val;
        let mut cpu = base.clone();
        for _ in 0..cycle {
            cpu.step();
        }

        let mut scalar = cpu.clone();
        let mut flip = FlipBit::new(MASK, target);
        scalar.visit_state(&mut flip);
        prop_assert!(flip.flipped.is_some(), "target {} not eligible", target);

        let mut sliced = SlicedState::capture(&mut cpu.clone());
        let hit = sliced.flip(MASK, target, lane);
        prop_assert_eq!(hit, flip.flipped, "lane flip reports a different hit than FlipBit");
        prop_assert_eq!(sliced.divergent_lanes(), 1u64 << lane, "only lane {} may diverge", lane);

        // The flipped lane extracts to exactly the scalar-flipped state…
        let mut extracted = cpu.clone();
        sliced.load_lane(lane, &mut extracted);
        let diff = Snapshot::capture(&mut extracted).diff(&Snapshot::capture(&mut scalar));
        prop_assert!(diff.is_empty(), "lane {} != scalar flip: {:?}", lane, diff);

        // …and a neighboring lane is still bit-for-bit golden.
        let other = (lane + 1) % 64;
        let mut golden = cpu.clone();
        sliced.load_lane(other, &mut golden);
        prop_assert_eq!(fingerprint_of(&mut golden), fingerprint_of(&mut cpu.clone()));
        Ok(())
    });
}

#[test]
fn peel_off_stress_many_simultaneous_divergences() {
    // A dense burst of trials packed into three adjacent injection cycles:
    // whole words of lanes dispatch together, so every diverging lane must
    // peel off its own scalar walker from the shared monotonic one while
    // its word-mates ride. Deliberate duplicate specs check that each
    // trial lands in the census exactly once — never merged, never lost.
    let sp = start_point();
    let monitor = 400;
    let mut specs = Vec::new();
    let mut x = 0x0020_04D5_u64;
    for i in 0..96u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        specs.push(TrialSpec { target: (x >> 16) % 40_000, inject_cycle: 17 + (i % 3) });
    }
    let dup = specs[5];
    specs.extend(std::iter::repeat_n(dup, 8));

    // The shared walker a peeled lane clones is the *uncorrupted* machine
    // advanced to the injection cycle: it must satisfy every structural
    // invariant at each peel point.
    let mut walker = base_pipeline().clone();
    let mut walked = 0u64;
    for c in [17u64, 18, 19] {
        while walked < c && walker.running() {
            walker.step();
            walked += 1;
        }
        let violations = walker.check_invariants();
        assert!(violations.is_empty(), "shared walker corrupt at cycle {c}: {violations:?}");
    }

    let ladder = sp.run_trials(MASK, &specs, monitor);
    let sliced = sp.run_trials_sliced(MASK, &specs, monitor);
    assert_eq!(sliced.len(), specs.len(), "every trial must land in the census exactly once");
    assert_eq!(sliced, ladder, "peel-off burst diverged from the ladder");
    for (i, (r, s)) in sliced.iter().zip(&specs).enumerate() {
        assert_eq!(r.inject_cycle, s.inject_cycle, "record {i} lost input-order alignment");
    }
    let dup_count = specs.iter().filter(|s| **s == dup).count();
    assert_eq!(dup_count, 9, "test bed: 1 original + 8 duplicates");
    let dup_records: Vec<_> =
        sliced.iter().zip(&specs).filter(|(_, s)| **s == dup).map(|(r, _)| *r).collect();
    assert_eq!(dup_records.len(), 9, "duplicate specs must each keep their own record");
    assert!(
        dup_records.windows(2).all(|w| w[0] == w[1]),
        "identical specs must classify identically"
    );
}

#[test]
fn hierarchical_root_equals_flat_fingerprint_after_flips() {
    let cfg = Config::from_env();
    let base = base_pipeline();
    let mut count = BitCount::new(MASK);
    base.clone().visit_state(&mut count);
    let bits = count.count;
    let gen = (vecs(any_u64(), 0..6), ints(0u64..40));
    prop::run(&cfg, "hierarchical_root_equals_flat_fingerprint_after_flips", &gen, move |val| {
        let (flips, steps) = val.clone();
        let mut cpu = base.clone();
        for _ in 0..steps {
            cpu.step();
        }
        for f in &flips {
            let mut flip = FlipBit::new(MASK, f % bits);
            cpu.visit_state(&mut flip);
        }
        // A fresh engine after out-of-band mutation (the contract the
        // trial classifier follows): root must equal the flat hash.
        let mut engine = CachedFingerprint::new();
        prop_assert_eq!(engine.fingerprint(&mut cpu), fingerprint_of(&mut cpu));
        // And reusing the same engine across further in-API mutation
        // (stepping) must stay in lockstep with the flat hash.
        for _ in 0..10 {
            cpu.step();
            prop_assert_eq!(engine.fingerprint(&mut cpu), fingerprint_of(&mut cpu));
        }
        Ok(())
    });
}
