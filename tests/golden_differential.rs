//! Golden-run differential test: with zero faults injected, the pipeline
//! model and the functional simulator must agree *exactly* on final
//! architectural state — every register, the whole memory image, the
//! retired-instruction count, the output stream, and the exit code. Any
//! drift here would silently bias every injection campaign's µArch-Match
//! comparison, so this is the first thing to re-check when touching
//! either model.

use tfsim::arch::FuncSim;
use tfsim::isa::{syscall, Asm, Program, Reg};
use tfsim::uarch::{Pipeline, PipelineConfig};

/// A small assembly workload exercising arithmetic, memory traffic, a
/// data-dependent branch pattern, and syscall output.
fn workload() -> Program {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R10, 0x9e3779b97f4a7c15u64);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R7, 2_000);
    a.li(Reg::R9, 0);
    let top = a.here_label();
    a.mulq_i(Reg::R10, 33, Reg::R10);
    a.addq_i(Reg::R10, 7, Reg::R10);
    a.srl_i(Reg::R10, 20, Reg::R4);
    a.and_i(Reg::R4, 0xf8, Reg::R5);
    a.addq(Reg::R1, Reg::R5, Reg::R5);
    a.stq(Reg::R4, Reg::R5, 0);
    a.ldq(Reg::R6, Reg::R5, 0);
    a.addq(Reg::R9, Reg::R6, Reg::R9);
    a.subq_i(Reg::R7, 1, Reg::R7);
    a.bne(Reg::R7, top);
    // Write 8 bytes of the accumulator to the output stream.
    a.li(Reg::R2, 0x10_0100);
    a.stq(Reg::R9, Reg::R2, 0);
    a.li(Reg::V0, syscall::WRITE);
    a.li(Reg::A0, 1);
    a.li(Reg::A1, 0x10_0100);
    a.li(Reg::A2, 8);
    a.callsys();
    a.li(Reg::V0, syscall::EXIT);
    a.li(Reg::A0, 0);
    a.callsys();
    Program::new("golden-diff", a).with_data(0x10_0000, vec![0u8; 0x200])
}

#[test]
fn pipeline_and_funcsim_agree_on_final_architectural_state() {
    let program = workload();

    // Functional (golden) run.
    let mut golden = FuncSim::new(&program);
    let result = golden.run(10_000_000);
    assert_eq!(result.exit_code, Some(0), "golden run must terminate cleanly");

    // Pipeline run, zero faults injected.
    let mut probe = FuncSim::new(&program);
    probe.run(10_000_000);
    let mut cpu = Pipeline::new(&program, PipelineConfig::baseline());
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    let max_cycles = 10_000_000u64;
    for _ in 0..max_cycles {
        if !cpu.running() {
            break;
        }
        cpu.step();
    }

    // Termination and retired-instruction count.
    assert_eq!(cpu.halted(), Some(0), "pipeline must halt with the golden exit code");
    assert_eq!(cpu.exception(), None);
    assert_eq!(
        cpu.instret(),
        golden.instret(),
        "retired-instruction counts must match exactly"
    );

    // Every architectural register.
    let pregs = cpu.arch_regs();
    for (areg, (&p, &g)) in pregs.iter().zip(golden.state.regs().iter()).enumerate() {
        assert_eq!(p, g, "architectural register r{areg} diverged: pipeline {p:#x} vs golden {g:#x}");
    }

    // The entire memory image and the output stream.
    assert_eq!(
        cpu.mem_checksum(),
        golden.mem.checksum(),
        "memory images must be identical"
    );
    assert_eq!(cpu.output(), golden.output(), "output streams must be identical");
}

#[test]
fn differential_holds_under_protected_configuration() {
    // The fully protected pipeline adds ECC/parity state and a watchdog;
    // with no faults injected, none of it may perturb architectural
    // results.
    let program = workload();
    let mut golden = FuncSim::new(&program);
    golden.run(10_000_000);

    let mut probe = FuncSim::new(&program);
    probe.run(10_000_000);
    let mut cpu = Pipeline::new(&program, PipelineConfig::protected());
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    for _ in 0..10_000_000u64 {
        if !cpu.running() {
            break;
        }
        cpu.step();
    }

    assert_eq!(cpu.halted(), Some(0));
    assert_eq!(cpu.instret(), golden.instret());
    assert_eq!(cpu.arch_regs(), *golden.state.regs());
    assert_eq!(cpu.mem_checksum(), golden.mem.checksum());
    assert_eq!(cpu.output(), golden.output());
}
