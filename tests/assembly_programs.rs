//! Textual-assembly integration: programs written as `.s` listings must
//! assemble, run identically on both simulators, and disassemble back to
//! readable text.

use tfsim::arch::FuncSim;
use tfsim::isa::text::{disassemble, parse_program};
use tfsim::uarch::{Pipeline, PipelineConfig};

fn run_both(name: &str, source: &str) -> (u64, Vec<u8>) {
    let p = parse_program(name, source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut func = FuncSim::new(&p);
    let fr = func.run(10_000_000);
    let exit = fr.exit_code.unwrap_or_else(|| panic!("{name}: {fr:?}"));

    let mut cpu = Pipeline::new(&p, PipelineConfig::baseline());
    cpu.set_tlbs(func.code_pages().clone(), func.data_pages().clone());
    cpu.run(10_000_000);
    assert_eq!(cpu.halted(), Some(exit), "{name}: pipeline exit");
    assert_eq!(cpu.output(), func.output(), "{name}: output");
    (exit, func.output().to_vec())
}

#[test]
fn gcd_program() {
    let (exit, _) = run_both(
        "gcd",
        r#"
        .org 0x10000
            li   t0, 1071        ; a
            li   t1, 462         ; b
        loop:
            beq  t1, done
            ; t2 = a mod b, by repeated subtraction
        modloop:
            cmpult t0, t1, t3
            bne  t3, moddone
            subq t0, t1, t0
            br   modloop
        moddone:
            mov  t1, t2
            mov  t0, t1
            mov  t2, t0          ; swap: a=b, b=a mod b
            ; careful: after the swap above, t0=old b, t1=old a mod b
            br   loop
        done:
            mov  t0, a0
            li   v0, 1
            callsys
        "#,
    );
    assert_eq!(exit, 21, "gcd(1071, 462)");
}

#[test]
fn string_reverse_with_byte_ops() {
    // Reverses an 8-byte string with the Alpha byte-manipulation
    // instructions, writes it out, exits 0.
    let (exit, out) = run_both(
        "strrev",
        r#"
        .org 0x10000
            li   s0, 0x20000
            ldq  t0, (s0)        ; "ABCDEFGH" little-endian
            li   t4, 0           ; result
            li   t1, 0           ; i
        rev:
            extbl t0, t1, t2     ; byte i
            li    t3, 7
            subq  t3, t1, t3     ; 7 - i
            insbl t2, t3, t2     ; placed at mirrored position
            bis   t4, t2, t4
            addq  t1, #1, t1
            cmplt t1, #8, t2
            bne   t2, rev
            stq   t4, 8(s0)
            li   v0, 4           ; write(1, s0+8, 8)
            li   a0, 1
            lda  a1, 8(s0)
            li   a2, 8
            callsys
            exit 0

        .data 0x20000
        .ascii "ABCDEFGH"
        .zero 8
        "#,
    );
    assert_eq!(exit, 0);
    assert_eq!(out, b"HGFEDCBA");
}

#[test]
fn collatz_steps() {
    let (exit, _) = run_both(
        "collatz",
        r#"
        .org 0x10000
            li   t0, 27          ; famous long trajectory
            li   t5, 0           ; steps
        step:
            cmpeq t0, #1, t1
            bne  t1, done
            blbs t0, odd
            srl  t0, #1, t0      ; even: n /= 2
            br   next
        odd:
            s4addq t0, t0, t2    ; 4n + n = 5n? no: we need 3n+1
            ; 3n+1 = n + n + n + 1
            addq t0, t0, t2
            addq t2, t0, t2
            addq t2, #1, t0
        next:
            addq t5, #1, t5
            br   step
        done:
            mov  t5, a0
            li   v0, 1
            callsys
        "#,
    );
    assert_eq!(exit, 111, "collatz(27) takes 111 steps");
}

#[test]
fn disassembly_is_stable() {
    let src = ".org 0x4000\n li t0, 5\nx: subq t0, #1, t0\n bne t0, x\n exit 0\n";
    let p = parse_program("d", src).expect("parse");
    let words: Vec<u32> = p.sections[0]
        .bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let text = disassemble(&words, p.entry);
    assert!(text.contains("subq r1, #1, r1"), "{text}");
    assert!(text.contains("bne r1, 0x4004"), "{text}");
}
