//! Write a program in textual assembly, run it, disassemble it, and watch
//! the two simulators agree.
//!
//! ```text
//! cargo run --release --example custom_assembly
//! ```

use tfsim::arch::FuncSim;
use tfsim::isa::text::{disassemble, parse_program};
use tfsim::uarch::{Pipeline, PipelineConfig};

const SOURCE: &str = r#"
; Compute fib(20) iteratively, store the sequence to memory, write the
; final value through the output syscall, and exit with fib(20) mod 256.
.org 0x10000
        li      s0, 0x20000       ; results buffer
        li      t0, 0             ; fib(i-2)
        li      t1, 1             ; fib(i-1)
        li      t2, 20            ; iterations
loop:
        addq    t0, t1, t3        ; next
        mov     t1, t0
        mov     t3, t1
        stq     t3, (s0)
        lda     s0, 8(s0)
        subq    t2, #1, t2
        bne     t2, loop

        li      v0, 4             ; write(1, buf, 8): the last value
        li      a0, 1
        subq    s0, #8, a1
        li      a2, 8
        callsys

        and     t1, #0xff, a0
        li      v0, 1             ; exit
        callsys

.data 0x20000
.zero 256
"#;

fn main() {
    let program = parse_program("fib", SOURCE).expect("assembly parses");

    // Show the machine code we produced.
    let code = &program.sections[0];
    let words: Vec<u32> = code
        .bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    println!("disassembly:\n{}", disassemble(&words[..12.min(words.len())], code.addr));

    let mut func = FuncSim::new(&program);
    let r = func.run(100_000);
    let fib20 = u64::from_le_bytes(func.output().try_into().expect("8 bytes"));
    println!("functional: fib(20) = {fib20}, exit code {:?}", r.exit_code);
    assert_eq!(fib20, 10_946, "fib(20) with fib(1)=1");

    let mut cpu = Pipeline::new(&program, PipelineConfig::baseline());
    cpu.set_tlbs(func.code_pages().clone(), func.data_pages().clone());
    cpu.run(100_000);
    println!(
        "pipeline:   {} instructions in {} cycles (IPC {:.2}), exit code {:?}",
        cpu.instret(),
        cpu.cycles(),
        cpu.instret() as f64 / cpu.cycles() as f64,
        cpu.halted()
    );
    assert_eq!(cpu.output(), func.output());
    assert_eq!(cpu.halted(), r.exit_code);
    println!("both simulators agree.");
}
