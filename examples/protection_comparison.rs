//! Section-4 in miniature: compare the unprotected pipeline against each
//! protection mechanism individually and all four together (an ablation
//! the paper's Figure 9/10 data implies but does not plot).
//!
//! ```text
//! cargo run --release --example protection_comparison
//! ```

use tfsim::bitstate::InjectionMask;
use tfsim::inject::{run_campaign_on, CampaignConfig};
use tfsim::stats::{pct, Table};
use tfsim::uarch::PipelineConfig;
use tfsim::workloads;

fn main() {
    let selected: Vec<_> = workloads::all()
        .into_iter()
        .filter(|w| matches!(w.name, "gzip-like" | "twolf-like" | "vortex-like"))
        .collect();

    let variants: Vec<(&str, PipelineConfig)> = vec![
        ("baseline", PipelineConfig::baseline()),
        ("timeout only", {
            let mut c = PipelineConfig::baseline();
            c.timeout_counter = true;
            c
        }),
        ("regfile ECC only", {
            let mut c = PipelineConfig::baseline();
            c.regfile_ecc = true;
            c
        }),
        ("pointer ECC only", {
            let mut c = PipelineConfig::baseline();
            c.pointer_ecc = true;
            c
        }),
        ("insn parity only", {
            let mut c = PipelineConfig::baseline();
            c.insn_parity = true;
            c
        }),
        ("all four", PipelineConfig::protected()),
    ];

    let mut t = Table::new(&["configuration", "trials", "masked %", "gray %", "fail %", "eligible bits"]);
    let mut baseline_fail = None;
    for (name, pipeline) in variants {
        let mut config = CampaignConfig::quick(7);
        config.mask = InjectionMask::LatchesAndRams;
        config.pipeline = pipeline;
        config.start_points = 2;
        config.trials_per_start_point = 90;
        eprintln!("running {name}...");
        let result = run_campaign_on(&config, &selected);
        let o = result.totals();
        t.row_owned(vec![
            name.to_string(),
            o.total().to_string(),
            pct(o.matched, o.total()),
            pct(o.gray, o.total()),
            pct(o.failed(), o.total()),
            result.eligible_bits.to_string(),
        ]);
        if name == "baseline" {
            baseline_fail = Some((o.failure_fraction(), result.eligible_bits as f64));
        } else if name == "all four" {
            let (bf, bb) = baseline_fail.expect("baseline ran first");
            let reduction = 1.0
                - (o.failure_fraction() * result.eligible_bits as f64) / (bf * bb);
            println!("\n{}", t.render());
            println!(
                "state-normalized failure reduction with all four mechanisms: {:.0}%\n\
                 (the paper reports ~75%; this miniature run uses few trials, so expect\n\
                 wide error bars — `figures --scale default` reproduces the full number)",
                100.0 * reduction
            );
        }
    }
}
