//! A miniature Section-3 experiment: run a fault-injection campaign on two
//! workloads and print the outcome distribution, per state category.
//!
//! ```text
//! cargo run --release --example injection_campaign [-- <benchmark> ...]
//! ```

use tfsim::bitstate::InjectionMask;
use tfsim::inject::{run_campaign_on, CampaignConfig, FailureMode};
use tfsim::stats::{binomial_ci, pct, Confidence, Table};
use tfsim::workloads;

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<_> = if names.is_empty() {
        workloads::all()
            .into_iter()
            .filter(|w| w.name == "gzip-like" || w.name == "mcf-like")
            .collect()
    } else {
        names
            .iter()
            .map(|n| workloads::by_name(n).unwrap_or_else(|| panic!("unknown workload {n}")))
            .collect()
    };

    let mut config = CampaignConfig::quick(2024);
    config.mask = InjectionMask::LatchesAndRams;
    config.start_points = 2;
    config.trials_per_start_point = 60;
    println!(
        "injecting {} trials into each of {} workload(s)...",
        config.start_points * config.trials_per_start_point,
        selected.len()
    );
    let result = run_campaign_on(&config, &selected);

    let mut t = Table::new(&["benchmark", "trials", "masked %", "gray %", "SDC %", "terminated %"]);
    for b in &result.benchmarks {
        let o = &b.counts;
        t.row_owned(vec![
            b.name.clone(),
            o.total().to_string(),
            pct(o.matched, o.total()),
            pct(o.gray, o.total()),
            pct(o.sdc(), o.total()),
            pct(o.terminated(), o.total()),
        ]);
    }
    println!("\n{}", t.render());

    let totals = result.totals();
    let ci = binomial_ci(totals.matched + totals.gray, totals.total(), Confidence::P95);
    println!(
        "benign fraction: {:.1}% ± {:.1}% — the paper's headline: fewer than 15% of\n\
         single-bit corruptions become software visible",
        100.0 * ci.estimate,
        100.0 * ci.half_width
    );

    println!("\nfailures by mode:");
    for mode in FailureMode::ALL {
        let n: u64 = result.by_category.values().map(|o| o.failure(mode)).sum();
        if n > 0 {
            println!(
                "  {:<8} {:>4}  ({})",
                mode.label(),
                n,
                if mode.is_termination() { "Terminated" } else { "SDC" }
            );
        }
    }

    println!("\nmost vulnerable categories (by failure share):");
    let total_failures: u64 = result.by_category.values().map(|o| o.failed()).sum();
    let mut cats: Vec<_> = result.by_category.iter().collect();
    cats.sort_by_key(|(_, o)| std::cmp::Reverse(o.failed()));
    for (cat, o) in cats.into_iter().take(5) {
        if o.failed() > 0 {
            println!("  {:<14} {:>3} failures ({}% of all)", cat.label(), o.failed(), pct(o.failed(), total_failures));
        }
    }
}
