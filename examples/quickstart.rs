//! Quickstart: assemble a small program, run it on both simulators, and
//! inject a single fault.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tfsim::arch::FuncSim;
use tfsim::bitstate::{fingerprint_of, Census, FlipBit, InjectionMask, VisitState};
use tfsim::isa::{syscall, Asm, Program, Reg};
use tfsim::uarch::{Pipeline, PipelineConfig};

fn main() {
    // 1. Assemble a program: sum the integers 1..=100 and exit with the
    //    low bits of the result.
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, 100); // counter
    a.li(Reg::R2, 0); // accumulator
    let top = a.here_label();
    a.addq(Reg::R2, Reg::R1, Reg::R2);
    a.subq_i(Reg::R1, 1, Reg::R1);
    a.bne(Reg::R1, top);
    a.li(Reg::V0, syscall::EXIT);
    a.and_i(Reg::R2, 0xff, Reg::A0);
    a.callsys();
    let program = Program::new("sum100", a);

    // 2. Run it on the architectural (functional) simulator.
    let mut func = FuncSim::new(&program);
    let result = func.run(100_000);
    println!("functional simulator: exit = {:?} after {} instructions", result.exit_code, func.instret());

    // 3. Run it on the bit-accurate pipeline model.
    let mut cpu = Pipeline::new(&program, PipelineConfig::baseline());
    cpu.run(100_000);
    println!(
        "pipeline model:       exit = {:?} after {} instructions in {} cycles (IPC {:.2})",
        cpu.halted(),
        cpu.instret(),
        cpu.cycles(),
        cpu.instret() as f64 / cpu.cycles() as f64
    );
    assert_eq!(result.exit_code, cpu.halted(), "the two models must agree");

    // 4. Census: every bit of pipeline state is enumerable and categorized.
    let mut census = Census::new();
    let mut probe = Pipeline::new(&program, PipelineConfig::baseline());
    probe.visit_state(&mut census);
    println!("\npipeline state census (Table 1 style):\n{}", census.to_table());

    // 5. Inject one fault: flip an eligible bit in a warmed-up machine and
    //    watch whether execution still completes correctly.
    let mut victim = Pipeline::new(&program, PipelineConfig::baseline());
    for _ in 0..40 {
        victim.step();
    }
    let before = fingerprint_of(&mut victim);
    let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 12_345);
    victim.visit_state(&mut flip);
    let hit = flip.flipped.expect("bit in range");
    println!(
        "flipped one bit of {} ({:?}) state; fingerprint changed: {}",
        hit.category,
        hit.kind,
        before != fingerprint_of(&mut victim)
    );
    victim.run(100_000);
    match victim.halted() {
        Some(code) if Some(code) == result.exit_code => {
            println!("the injected machine still produced the correct exit code {code} — fault masked")
        }
        Some(code) => println!("the injected machine exited with WRONG code {code} — silent data corruption"),
        None => println!("the injected machine did not finish — terminated/hung"),
    }
}
