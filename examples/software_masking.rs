//! Section-5 in miniature: apply the six architectural fault models to a
//! workload's dynamic instruction stream and classify the outcomes.
//!
//! ```text
//! cargo run --release --example software_masking [-- <workload>]
//! ```

use tfsim::arch::swinject::{golden_ref, run_campaign, FaultModel};
use tfsim::stats::{pct, Table};
use tfsim::workloads;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "perlbmk-like".to_string());
    let w = workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let program = w.build(1);

    println!("reference run of {name}...");
    let golden = golden_ref(&program, 10_000_000);
    println!(
        "  {} dynamic instructions, {} output bytes, exit {:?}\n",
        golden.retired(),
        golden.output().len(),
        golden.exit_code()
    );

    let trials = 150;
    let mut t = Table::new(&[
        "fault model",
        "exception %",
        "state-ok %",
        "output-ok %",
        "output-bad %",
    ]);
    for model in FaultModel::ALL {
        let tally = run_campaign(&program, &golden, model, trials, 99);
        let n = tally.total();
        t.row_owned(vec![
            model.label().to_string(),
            pct(tally.exception, n),
            pct(tally.state_ok, n),
            pct(tally.output_ok, n),
            pct(tally.output_bad, n),
        ]);
    }
    println!("{}", t.render());
    println!(
        "State OK = the architectural state fully reconverged before any output escaped:\n\
         the software layer masked the fault (the paper finds roughly half of all\n\
         hardware-escaped faults die here, mostly in dead and transitively dead values)."
    );
}
