//! # tfsim — transient-fault characterization of a processor pipeline
//!
//! Umbrella crate re-exporting the workspace: a from-scratch Rust
//! reproduction of *Characterizing the Effects of Transient Faults on a
//! High-Performance Processor Pipeline* (DSN 2004).
//!
//! See the individual crates for details:
//!
//! * [`check`] — hermetic verification substrate (PRNG, property tests,
//!   micro-benchmarks).
//! * [`isa`] — the Alpha AXP integer subset and assembler.
//! * [`mem`] — sparse memory and the preloaded-TLB model.
//! * [`arch`] — the functional simulator (golden reference + Section 5).
//! * [`bitstate`] — the bit-level state registry and visitors.
//! * [`uarch`] — the bit-accurate out-of-order pipeline model.
//! * [`protect`] — ECC/parity codecs and the timeout watchdog.
//! * [`inject`] — the fault-injection campaign framework.
//! * [`workloads`] — ten SPECint-2000-like synthetic kernels.
//! * [`stats`] — confidence intervals, regression, and tables.
//! * [`obs`] — campaign telemetry: event sinks, JSONL traces, metrics.

pub use tfsim_arch as arch;
pub use tfsim_bitstate as bitstate;
pub use tfsim_check as check;
pub use tfsim_inject as inject;
pub use tfsim_isa as isa;
pub use tfsim_mem as mem;
pub use tfsim_obs as obs;
pub use tfsim_protect as protect;
pub use tfsim_stats as stats;
pub use tfsim_uarch as uarch;
pub use tfsim_workloads as workloads;
