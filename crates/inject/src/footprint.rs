//! The golden access footprint: one tracked replay of the fault-free run,
//! shared by the word-parallel (sliced) engine and the analytic masking
//! pruner.
//!
//! A footprint records, for every word of the tracked RAM-like structures,
//! the cycles at which the golden run read or wrote that word, plus the
//! per-cycle retire aggregates the analytic classifiers consume. Two
//! tracking tiers exist:
//!
//! * [`Tier::Core`] — the audited kernel the sliced engine rides on:
//!   load/store queues, the physical register file, and the miss handling
//!   registers (`Pipeline::set_access_tracking`).
//! * [`Tier::Extended`] — everything the pipeline can log: core plus the
//!   fetch queue, rename maps and free lists, scheduler entries, and the
//!   reorder buffer (`Pipeline::set_access_tracking_extended`). Only the
//!   pruner uses this tier; the sliced engine's dispositions stay pinned
//!   to the core tier so its behaviour is bit-for-bit unchanged.
//!
//! The extended tier obeys a deliberately weaker write contract: a
//! structure may under-claim a write by logging a read instead (the ROB's
//! `entry_mut` does), which can only demote an analytic disposition to a
//! simulated one — never the reverse. What would be unsound, and what the
//! `access_ordinals` pipeline tests rule out, is a tracked word changing
//! with no event at all.

use tfsim_bitstate::{
    Category, FieldMeta, InjectionMask, StateVisitor, StorageKind, UnitId, VisitState,
};
use tfsim_uarch::{Pipeline, RetireEvent};

use crate::trial::StartPoint;

/// Which access-tracking tier a footprint was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tier {
    /// Load/store queues, register file, miss handling registers.
    Core,
    /// Core plus fetch queue, rename, scheduler, and reorder buffer.
    Extended,
}

impl Tier {
    /// Whether this tier tracks the word at `(unit, ord)` on `cpu`'s
    /// configuration.
    pub(crate) fn tracked(self, cpu: &Pipeline, unit: UnitId, ord: u32) -> bool {
        match self {
            Tier::Core => cpu.access_tracked(unit, ord),
            Tier::Extended => cpu.access_tracked_extended(unit, ord),
        }
    }
}

/// Golden per-cycle aggregates needed by the analytic classifiers: exactly
/// what `classify` extracts from a `CycleReport` of a machine that replays
/// the golden run.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CycleAgg {
    /// Number of `RetireEvent::Retired` events this step.
    pub(crate) retired: u16,
    /// Whether the step performed a protective (watchdog/parity) flush.
    pub(crate) pflush: bool,
}

/// One tracked replay of the golden run: per-word access timelines plus
/// per-cycle retire aggregates. Built lazily once per start point and
/// tier, and shared by every batch (and every thread — the data is
/// immutable after construction).
#[derive(Debug)]
pub(crate) struct Footprint {
    /// `timelines[unit.index()][ord]` = `(cycle, is_write)` events for the
    /// word at visit ordinal `ord` of that unit, ascending by cycle, at
    /// most one event per cycle (the first access of a cycle wins, so
    /// read-before-write inside one cycle shows as a read).
    timelines: Vec<Vec<Vec<(u32, bool)>>>,
    /// Indexed by step; entry 0 is unused (the checkpoint itself).
    pub(crate) percycle: Vec<CycleAgg>,
}

impl Footprint {
    /// Replays the golden run once with the tier's access tracking on.
    ///
    /// The walk covers exactly the steps `StartPoint::prepare` executed:
    /// it stops once the golden machine halts (stepping a halted machine
    /// is a no-op and logs nothing).
    pub(crate) fn build(sp: &StartPoint, tier: Tier) -> Footprint {
        let horizon = sp.fps.len() as u64 - 1;
        let mut golden = sp.checkpoint.clone();
        match tier {
            Tier::Core => golden.set_access_tracking(true),
            Tier::Extended => golden.set_access_tracking_extended(true),
        }
        let mut fp = Footprint {
            timelines: vec![Vec::new(); UnitId::COUNT],
            percycle: vec![CycleAgg::default(); sp.fps.len()],
        };
        for step in 1..=horizon {
            if !golden.running() {
                break;
            }
            let report = golden.step();
            let retired = report
                .events
                .iter()
                .filter(|e| matches!(e, RetireEvent::Retired(_)))
                .count() as u16;
            fp.percycle[step as usize] =
                CycleAgg { retired, pflush: report.protective_flush };
            let cycle = step as u32;
            let mut record = |unit: UnitId, ord: u32, is_write: bool| {
                let lanes = &mut fp.timelines[unit.index()];
                let ord = ord as usize;
                if lanes.len() <= ord {
                    lanes.resize_with(ord + 1, Vec::new);
                }
                let tl = &mut lanes[ord];
                if tl.last().is_none_or(|&(c, _)| c != cycle) {
                    tl.push((cycle, is_write));
                }
            };
            match tier {
                Tier::Core => golden.drain_accesses(&mut record),
                Tier::Extended => golden.drain_accesses_extended(&mut record),
            }
        }
        fp
    }

    /// The event timeline of one tracked word (empty when the word was
    /// never accessed in the golden window).
    pub(crate) fn timeline(&self, unit: UnitId, ord: u32) -> &[(u32, bool)] {
        self.timelines[unit.index()].get(ord as usize).map_or(&[], |v| v.as_slice())
    }
}

/// Where an eligible bit lives: enough to rebuild a `TrialRecord`'s site
/// attribution and to look the word up in the footprint.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Span {
    /// First eligible-bit index of this field under the mask.
    pub(crate) start: u64,
    /// Field width in bits.
    pub(crate) width: u32,
    pub(crate) category: Category,
    pub(crate) kind: StorageKind,
    /// Enclosing fingerprint unit, if any.
    pub(crate) unit: Option<UnitId>,
    /// Visit-order field ordinal within the unit (what the drain callbacks
    /// report and the footprint is indexed by).
    pub(crate) unit_ord: u32,
}

/// Collects the eligible-bit spans of a machine in visit order. The
/// within-unit ordinal counts *every* visited field (eligible or not),
/// matching the drain ordinal space — pinned by the `access_ordinals`
/// tests in the pipeline crate.
struct SpanCollector {
    mask: InjectionMask,
    pos: u64,
    unit: Option<UnitId>,
    ord: u32,
    spans: Vec<Span>,
}

impl StateVisitor for SpanCollector {
    fn field(&mut self, meta: FieldMeta, width: u32, _bits: &mut u64) {
        if self.mask.eligible(meta) {
            self.spans.push(Span {
                start: self.pos,
                width,
                category: meta.category,
                kind: meta.kind,
                unit: self.unit,
                unit_ord: self.ord,
            });
            self.pos += width as u64;
        }
        self.ord += 1;
    }

    // The default `array` forwards entry-by-entry to `field`, which is
    // exactly the per-word granularity the footprint uses. Do not override.

    fn enter_unit(&mut self, unit: UnitId, _gen: u64) -> bool {
        self.unit = Some(unit);
        self.ord = 0;
        true
    }

    fn exit_unit(&mut self, _unit: UnitId) {
        self.unit = None;
    }
}

/// Maps eligible-bit indices to [`Span`]s by binary search. Rebuilt per
/// batch call (one checkpoint clone + one visit walk).
pub(crate) struct Resolver {
    spans: Vec<Span>,
}

impl Resolver {
    pub(crate) fn build(checkpoint: &Pipeline, mask: InjectionMask) -> Resolver {
        let mut probe = checkpoint.clone();
        let mut c = SpanCollector { mask, pos: 0, unit: None, ord: 0, spans: Vec::new() };
        probe.visit_state(&mut c);
        Resolver { spans: c.spans }
    }

    /// The span containing eligible bit `target`, or `None` when the
    /// target is out of range (the scalar path then reproduces the naive
    /// path's behaviour for such targets).
    pub(crate) fn resolve(&self, target: u64) -> Option<&Span> {
        let i = self.spans.partition_point(|s| s.start + s.width as u64 <= target);
        self.spans.get(i).filter(|s| s.start <= target)
    }

    /// All eligible spans in visit order (test diagnostics only).
    #[cfg(test)]
    pub(crate) fn spans(&self) -> &[Span] {
        &self.spans
    }
}

/// What the footprint says about a lane's faulted word.
pub(crate) enum Disposition {
    /// No access in `(inject, horizon]`: the δ is never consumed.
    Ride,
    /// First access is a content-independent overwrite at this cycle.
    Heal(u64),
    /// First access is a read: the fault is consumed — go scalar.
    Peel,
}

/// The first event strictly after the injection cycle, as
/// `(timeline_index, cycle, is_write)`. The flip lands in the state
/// *after* `inject` steps, so accesses during step `inject` itself saw the
/// pre-flip value.
pub(crate) fn first_event_after(
    timeline: &[(u32, bool)],
    inject: u64,
) -> Option<(usize, u32, bool)> {
    let i = timeline.partition_point(|&(c, _)| (c as u64) <= inject);
    timeline.get(i).map(|&(c, w)| (i, c, w))
}

pub(crate) fn disposition(timeline: &[(u32, bool)], inject: u64) -> Disposition {
    match first_event_after(timeline, inject) {
        Some((_, c, true)) => Disposition::Heal(c as u64),
        Some((_, _, false)) => Disposition::Peel,
        None => Disposition::Ride,
    }
}

impl StartPoint {
    /// The core-tier golden footprint, built on first use and shared by
    /// every subsequent sliced batch on this start point.
    pub(crate) fn golden_footprint(&self) -> &Footprint {
        self.footprint.get_or_init(|| Footprint::build(self, Tier::Core))
    }

    /// The extended-tier golden footprint used by the analytic pruner,
    /// built on first use.
    pub(crate) fn extended_footprint(&self) -> &Footprint {
        self.footprint_ext.get_or_init(|| Footprint::build(self, Tier::Extended))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::warm_pipeline;
    use tfsim_bitstate::Loggability;
    use tfsim_isa::{Asm, Reg};
    use tfsim_uarch::PipelineConfig;

    fn start_point(config: PipelineConfig) -> StartPoint {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 0x10_0000);
        a.li(Reg::R7, 4_000);
        let top = a.here_label();
        a.stq(Reg::R7, Reg::R1, 0);
        a.ldq(Reg::R6, Reg::R1, 0);
        a.subq_i(Reg::R7, 1, Reg::R7);
        a.bne(Reg::R7, top);
        a.halt();
        let p = tfsim_isa::Program::new("footprint-bed", a)
            .with_data(0x10_0000, vec![0u8; 64]);
        let warmed = warm_pipeline(&p, config, 200);
        StartPoint::prepare(&warmed, 1_000, InjectionMask::LatchesAndRams)
    }

    #[test]
    fn first_event_after_is_strictly_after_inject() {
        let tl = [(5u32, false), (9, true), (20, false)];
        assert_eq!(first_event_after(&tl, 0), Some((0, 5, false)));
        assert_eq!(first_event_after(&tl, 4), Some((0, 5, false)));
        assert_eq!(first_event_after(&tl, 5), Some((1, 9, true)));
        assert_eq!(first_event_after(&tl, 9), Some((2, 20, false)));
        assert_eq!(first_event_after(&tl, 20), None);
        assert_eq!(first_event_after(&[], 0), None);
    }

    #[test]
    fn disposition_follows_the_first_event() {
        let tl = [(5u32, false), (9, true)];
        assert!(matches!(disposition(&tl, 0), Disposition::Peel));
        assert!(matches!(disposition(&tl, 5), Disposition::Heal(9)));
        assert!(matches!(disposition(&tl, 9), Disposition::Ride));
    }

    #[test]
    fn resolver_maps_targets_to_spans_exhaustively() {
        let sp = start_point(PipelineConfig::baseline());
        let r = Resolver::build(&sp.checkpoint, InjectionMask::LatchesAndRams);
        // Every eligible bit resolves to a span containing it; the bit one
        // past the end resolves to nothing.
        let bits = sp.bit_count();
        for target in (0..bits).step_by(97) {
            let s = r.resolve(target).expect("in-range target must resolve");
            assert!(s.start <= target && target < s.start + s.width as u64);
        }
        assert!(r.resolve(bits).is_none());
    }

    #[test]
    fn extended_footprint_extends_the_core_one() {
        let sp = start_point(PipelineConfig::baseline());
        let core = Footprint::build(&sp, Tier::Core);
        let ext = Footprint::build(&sp, Tier::Extended);

        // The per-cycle aggregates describe the same golden run: tracking
        // tier cannot change execution.
        assert_eq!(core.percycle.len(), ext.percycle.len());
        for (c, e) in core.percycle.iter().zip(ext.percycle.iter()) {
            assert_eq!((c.retired, c.pflush), (e.retired, e.pflush));
        }

        for unit in UnitId::ALL {
            match unit.loggability() {
                Loggability::Core => {
                    // Core-tier units produce identical timelines in both
                    // tiers (the extended drain forwards to the core one).
                    let n = core.timelines[unit.index()].len();
                    assert!(n > 0, "{unit:?} never logged in the core tier");
                    assert_eq!(n, ext.timelines[unit.index()].len(), "{unit:?}");
                    for ord in 0..n as u32 {
                        assert_eq!(
                            core.timeline(unit, ord),
                            ext.timeline(unit, ord),
                            "{unit:?} ord {ord}"
                        );
                    }
                }
                Loggability::Extended => {
                    assert!(
                        core.timelines[unit.index()].is_empty(),
                        "{unit:?} must not be logged in the core tier"
                    );
                    assert!(
                        !ext.timelines[unit.index()].is_empty(),
                        "{unit:?} never logged in the extended tier"
                    );
                }
                Loggability::Unlogged | Loggability::Shadow => {
                    assert!(core.timelines[unit.index()].is_empty(), "{unit:?}");
                    assert!(ext.timelines[unit.index()].is_empty(), "{unit:?}");
                }
            }
        }
    }

    #[test]
    fn tier_tracked_agrees_with_recorded_timelines() {
        let sp = start_point(PipelineConfig::protected());
        let ext = Footprint::build(&sp, Tier::Extended);
        // Any word with events must be claimed trackable by its tier, for
        // both tiers (the converse does not hold: a tracked word the run
        // never touches has an empty timeline).
        for unit in UnitId::ALL {
            for (ord, tl) in ext.timelines[unit.index()].iter().enumerate() {
                if !tl.is_empty() {
                    assert!(
                        Tier::Extended.tracked(&sp.checkpoint, unit, ord as u32),
                        "{unit:?} ord {ord} has events but is not extended-tracked"
                    );
                }
            }
        }
    }
}
