//! Start-point preparation and trial execution.
//!
//! Two equivalent execution paths classify trials:
//!
//! * [`StartPoint::run_trial`] — the naive reference: clone the checkpoint,
//!   replay fault-free to the injection cycle, flip, monitor with flat
//!   whole-machine fingerprints. Deliberately simple; the baseline every
//!   optimization is measured and verified against.
//! * [`StartPoint::run_trials`] — the campaign fast path: trials of one
//!   start point are sorted by injection cycle and served from a single
//!   fault-free *walker* advanced monotonically through the injection
//!   window (one clone per trial instead of a replay per trial), and
//!   µArch-Match checks use a [`CachedFingerprint`] that only rehashes
//!   dirty units. Produces bit-identical [`TrialRecord`]s — pinned by a
//!   property test.

use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::Instant;

use tfsim_arch::RetireRecord;
use tfsim_bitstate::{
    fingerprint_of, BitCount, CachedFingerprint, Category, Fingerprint, FlipBit, InjectionMask,
    StorageKind, UnitId, VisitState,
};
use tfsim_isa::{decode, Program};
use tfsim_obs::DeepTrace;
use tfsim_uarch::{ExcCode, FlowEvent, Pipeline, RetireEvent};

/// The paper's seven failure modes (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureMode {
    /// Control-flow violation: an incorrect (but valid) instruction was
    /// fetched, executed, and committed (SDC).
    Ctrl,
    /// Non-speculative access to an invalid virtual page (SDC).
    Dtlb,
    /// An exception was generated (Terminated).
    Except,
    /// Processor redirected to an invalid virtual page (SDC).
    Itlb,
    /// Deadlock or livelock: 100 cycles without retirement (Terminated).
    Locked,
    /// Memory image inconsistent (SDC).
    Mem,
    /// Register file inconsistent (SDC).
    Regfile,
}

impl FailureMode {
    /// All modes, in the paper's Table 2 order.
    pub const ALL: [FailureMode; 7] = [
        FailureMode::Ctrl,
        FailureMode::Dtlb,
        FailureMode::Except,
        FailureMode::Itlb,
        FailureMode::Locked,
        FailureMode::Mem,
        FailureMode::Regfile,
    ];

    /// Position of this mode in [`FailureMode::ALL`] (the declaration
    /// order matches, so this is a cast, not a scan).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this mode is a `Terminated` outcome (vs. SDC).
    pub fn is_termination(self) -> bool {
        matches!(self, FailureMode::Except | FailureMode::Locked)
    }

    /// The paper's lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            FailureMode::Ctrl => "ctrl",
            FailureMode::Dtlb => "dtlb",
            FailureMode::Except => "except",
            FailureMode::Itlb => "itlb",
            FailureMode::Locked => "locked",
            FailureMode::Mem => "mem",
            FailureMode::Regfile => "regfile",
        }
    }
}

/// Trial outcome (Section 2.2's four categories, with failures subdivided
/// by mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Entire microarchitectural state matched the golden run.
    MicroArchMatch,
    /// Neither a state match nor a failure within the window.
    GrayArea,
    /// Architectural state diverged (SDC) or execution terminated.
    Failure(FailureMode),
}

impl Outcome {
    /// Whether the trial is a known failure (SDC or Terminated).
    pub fn is_failure(self) -> bool {
        matches!(self, Outcome::Failure(_))
    }
}

/// One planned trial for the batched [`StartPoint::run_trials`] path:
/// which eligible bit to flip and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSpec {
    /// Eligible-bit index under the campaign mask.
    pub target: u64,
    /// Injection cycle relative to the checkpoint.
    pub inject_cycle: u64,
}

/// One completed trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// The classification.
    pub outcome: Outcome,
    /// Category of the flipped bit.
    pub category: Category,
    /// Storage kind of the flipped bit.
    pub kind: StorageKind,
    /// Fingerprint unit the flipped bit landed in (the injection site),
    /// when the machine brackets that state into a unit.
    pub unit: Option<UnitId>,
    /// Cycle (relative to the checkpoint) at which the flip occurred.
    pub inject_cycle: u64,
    /// Number of in-flight instructions at injection time that eventually
    /// commit in the golden run (Figure 6's x-axis).
    pub valid_instructions: u32,
}

/// Telemetry gathered alongside a [`TrialRecord`] on the traced path.
///
/// Separate from the record so the untraced campaign path carries no extra
/// state: [`TrialRecord`] equality (pinned by the batched-vs-naive property
/// test) stays the scientific result, and this is pure observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialTrace {
    /// Cycle (relative to the checkpoint) at which the outcome was decided:
    /// the failure-detection cycle, the re-convergence cycle for a µArch
    /// Match, or the end of the monitoring window for the Gray Area.
    pub detect_cycle: u64,
    /// First cycle at which a µArch-Match check observed the machine
    /// diverged from golden (sampled at the classifier's check cadence),
    /// if any check ran before the outcome was decided.
    pub divergence_cycle: Option<u64>,
    /// Unit whose fingerprint subhash differed from golden at
    /// `divergence_cycle` — where the fault was first architecturally
    /// visible. `None` when the divergence sits outside any unit.
    pub diverged_unit: Option<UnitId>,
}

/// The per-trial observer slots a classification writes into: `trace`
/// receives the decision and first-divergence cycles, `deep` the full
/// divergence timeline. Both are pure observability — a `None` slot costs
/// nothing and never alters the outcome.
#[derive(Default)]
pub(crate) struct TrialObservers<'a> {
    pub trace: Option<&'a mut TrialTrace>,
    pub deep: Option<&'a mut DeepTrace>,
}

/// A trial whose faulted run escaped the hardened model and unwound.
///
/// This is a *harness-level* record, kept strictly separate from the
/// paper's outcome taxonomy: a real latch upset never aborts the chip, so
/// a simulator panic is a bug in the model (a site the corrupted-state
/// hardening missed), not a ninth outcome. Quarantining the trial keeps
/// the census faithful while preserving everything needed to reproduce
/// the escape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFault {
    /// Position of the quarantined trial in the input spec slice.
    pub index: usize,
    /// The spec whose faulted run unwound (replay: same start point, same
    /// spec, same monitor window).
    pub spec: TrialSpec,
    /// The panic payload, when it carried a message.
    pub panic_msg: String,
}

/// Output of [`StartPoint::run_trials_traced`]: records plus per-trial
/// traces and the batch's phase timing.
#[derive(Debug, Clone)]
pub struct TracedBatch {
    /// One record per *classified* input spec, in input order (identical
    /// to what [`StartPoint::run_trials`] returns for the same specs).
    /// Quarantined trials (see `faults`) have no record.
    pub records: Vec<TrialRecord>,
    /// One trace per classified input spec, aligned with `records`.
    pub traces: Vec<TrialTrace>,
    /// Trials whose faulted run panicked, contained by the per-trial
    /// `catch_unwind` supervisor. Empty on every fault-free-harness run;
    /// `faults[k].index` names the input spec each one came from.
    pub faults: Vec<TrialFault>,
    /// One divergence timeline per classified input spec, aligned with
    /// `records`. Empty unless the batch ran in deep-trace mode.
    pub deeps: Vec<DeepTrace>,
    /// Wall-clock time spent advancing the fault-free walker.
    pub advance_ns: u64,
    /// Wall-clock time spent flipping, monitoring, and classifying.
    pub monitor_ns: u64,
    /// Portion of `monitor_ns` spent in the analytic ride/heal classifier
    /// (sliced and pruned paths; zero on the scalar ladder).
    pub ride_ns: u64,
    /// Portion of `monitor_ns` spent in scalar classification.
    pub classify_ns: u64,
    /// Wall-clock time spent in the pruner's analysis passes (disposition
    /// proofs and class formation). Zero outside the pruned path; *not*
    /// part of `monitor_ns` — the analysis runs before any trial.
    pub prune_ns: u64,
}

thread_local! {
    /// Set while a trial runs under the containment supervisor, so the
    /// process panic hook stays quiet for contained unwinds (the fault is
    /// captured in a [`TrialFault`]; stderr noise would interleave across
    /// worker threads).
    pub(crate) static CONTAINED: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that suppresses output for
/// contained trial panics and delegates everything else to the previous
/// hook unchanged.
pub(crate) fn install_containment_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CONTAINED.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// A prepared start point: a warmed checkpoint plus everything the
/// classifier needs from the fault-free continuation.
pub struct StartPoint {
    pub(crate) checkpoint: Pipeline,
    /// Per-cycle fingerprints, `fps[i]` = state after `i` steps (index 0
    /// is the checkpoint itself).
    pub(crate) fps: Vec<u128>,
    /// Per-cycle, per-unit subhashes aligned with `fps` (row `i` indexed
    /// by [`UnitId::index`]): lets a diverging trial name the units that
    /// differ from golden at a given cycle.
    unit_fps: Vec<[u128; UnitId::COUNT]>,
    /// Cumulative retirements after `i` steps.
    pub(crate) instret: Vec<u64>,
    /// The golden retirement trace (index = commit number since the
    /// checkpoint).
    pub(crate) records: Vec<RetireRecord>,
    /// Cycle (steps after checkpoint) at which the golden run halted.
    pub(crate) halted_at: Option<(u64, u64)>, // (step, exit code)
    /// Golden in-flight valid-instruction count per cycle.
    valid_counts: Vec<u32>,
    /// Eligible bit count for the campaign's mask.
    bit_count: u64,
    /// Lazily built golden access footprint for the word-parallel path
    /// (see `crate::sliced`): per-cell read/write timelines plus per-cycle
    /// retire aggregates from one tracked replay of the golden run.
    pub(crate) footprint: std::sync::OnceLock<crate::footprint::Footprint>,
    /// Extended-tier footprint for the analytic pruner (see
    /// `crate::pruner`), from a second tracked replay covering every
    /// loggable structure.
    pub(crate) footprint_ext: std::sync::OnceLock<crate::footprint::Footprint>,
}

impl StartPoint {
    /// Prepares a start point from a *warmed* pipeline whose flow log has
    /// been enabled since reset. Runs the golden continuation for
    /// `horizon` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the fault-free continuation raises an exception.
    pub fn prepare(warmed: &Pipeline, horizon: u64, mask: InjectionMask) -> StartPoint {
        let mut checkpoint = warmed.clone();
        checkpoint.disable_flow_log();
        let mut golden = warmed.clone();

        let mut fps = Vec::with_capacity(horizon as usize + 1);
        let mut unit_fps = Vec::with_capacity(horizon as usize + 1);
        let mut instret = Vec::with_capacity(horizon as usize + 1);
        let mut records = Vec::new();
        let mut halted_at = None;
        let base_instret = golden.instret();
        // The golden ladder is hashed with the cached engine: the golden
        // machine mutates only through `step()`, so unit stamps are exact
        // and unchanged predictor/cache arrays hash for free.
        let mut engine = CachedFingerprint::new();
        fps.push(engine.fingerprint(&mut golden));
        unit_fps.push(*engine.unit_hashes());
        instret.push(0);
        for step in 1..=horizon {
            let report = golden.step();
            for ev in report.events {
                match ev {
                    RetireEvent::Retired(r) => records.push(r),
                    RetireEvent::Halted { code } => {
                        halted_at.get_or_insert((step, code));
                    }
                    RetireEvent::Exception(e) => {
                        panic!("golden run raised {e:?} at step {step}")
                    }
                }
            }
            fps.push(engine.fingerprint(&mut golden));
            unit_fps.push(*engine.unit_hashes());
            instret.push(golden.instret() - base_instret);
            if !golden.running() && halted_at.is_some() {
                // Freeze: replicate the terminal state for the remaining
                // horizon so comparisons stay index-aligned.
                let last_fp = *fps.last().expect("nonempty");
                let last_units = *unit_fps.last().expect("nonempty");
                let last_ir = *instret.last().expect("nonempty");
                while fps.len() <= horizon as usize {
                    fps.push(last_fp);
                    unit_fps.push(last_units);
                    instret.push(last_ir);
                }
                break;
            }
        }

        // Figure 6 instrumentation: for each cycle, how many in-flight
        // instructions eventually commit. Flow events use absolute cycle
        // numbers; the checkpoint sits at `warmed.cycles()`.
        let base_cycle = warmed.cycles();
        let events = golden.take_flow_events();
        let mut valid_counts = vec![0u32; horizon as usize + 1];
        {
            use std::collections::HashMap;
            // seq -> (fetch_cycle, end_cycle, committed)
            let mut spans: HashMap<u64, (u64, Option<u64>, bool)> = HashMap::new();
            for ev in &events {
                match *ev {
                    FlowEvent::Fetch { seq, cycle } => {
                        spans.entry(seq).or_insert((cycle, None, false)).0 = cycle;
                    }
                    FlowEvent::Commit { seq, cycle } => {
                        let e = spans.entry(seq).or_insert((0, None, false));
                        e.1 = Some(cycle);
                        e.2 = true;
                    }
                    FlowEvent::Squash { seq, cycle } => {
                        let e = spans.entry(seq).or_insert((0, None, false));
                        e.1 = Some(cycle);
                    }
                }
            }
            for (_, (fetch, end, committed)) in spans {
                if !committed {
                    continue;
                }
                let end = end.unwrap_or(u64::MAX);
                // Clamp the span to the [checkpoint, horizon] window in
                // relative cycles.
                let lo = fetch.saturating_sub(base_cycle);
                let hi = end.saturating_sub(base_cycle).min(horizon);
                for c in lo..hi {
                    if let Some(slot) = valid_counts.get_mut(c as usize) {
                        *slot += 1;
                    }
                }
            }
        }

        let mut count = BitCount::new(mask);
        checkpoint.visit_state(&mut count);

        StartPoint {
            checkpoint,
            fps,
            unit_fps,
            instret,
            records,
            halted_at,
            valid_counts,
            bit_count: count.count,
            footprint: std::sync::OnceLock::new(),
            footprint_ext: std::sync::OnceLock::new(),
        }
    }

    /// Number of eligible bits under the campaign mask.
    pub fn bit_count(&self) -> u64 {
        self.bit_count
    }

    /// The golden valid-instruction count at a relative cycle.
    pub fn valid_at(&self, cycle: u64) -> u32 {
        self.valid_counts.get(cycle as usize).copied().unwrap_or(0)
    }

    /// Units whose subhash differs from the golden run at relative cycle
    /// `cycle`, given a trial machine's unit hashes (e.g. from the
    /// [`CachedFingerprint`] of a diverging µArch-Match check). First-
    /// divergence attribution for debugging and reporting.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is beyond the prepared horizon.
    pub fn diverging_units(&self, cycle: u64, units: &[u128; UnitId::COUNT]) -> Vec<UnitId> {
        let golden = &self.unit_fps[cycle as usize];
        UnitId::ALL
            .iter()
            .copied()
            .filter(|u| golden[u.index()] != units[u.index()])
            .collect()
    }

    /// Runs one trial: flip eligible bit number `target` at `inject_cycle`
    /// (relative to the checkpoint) and monitor for `monitor` cycles.
    ///
    /// This is the naive reference path: it replays fault-free from the
    /// checkpoint and hashes the whole machine at every µArch-Match check.
    /// Campaigns use the equivalent-but-fast [`StartPoint::run_trials`].
    pub fn run_trial(
        &self,
        mask: InjectionMask,
        target: u64,
        inject_cycle: u64,
        monitor: u64,
    ) -> TrialRecord {
        let mut cpu = self.checkpoint.clone();

        // Advance fault-free to the injection cycle.
        for _ in 0..inject_cycle {
            if !cpu.running() {
                break;
            }
            cpu.step();
        }

        self.classify(
            mask,
            cpu,
            TrialSpec { target, inject_cycle },
            monitor,
            false,
            TrialObservers::default(),
        )
    }

    /// Runs a batch of trials against this start point, equivalent to
    /// calling [`StartPoint::run_trial`] per spec (results are returned in
    /// input order) but without the per-trial fault-free replay:
    ///
    /// * Trials are processed in ascending `inject_cycle` order while one
    ///   *walker* clone of the checkpoint advances monotonically through
    ///   the injection window — each trial costs one `Pipeline::clone`
    ///   instead of an `inject_cycle`-step replay. Equivalence holds
    ///   because the walker is deterministic, stepping a halted machine is
    ///   a no-op, and cloning is exact.
    /// * µArch-Match checks use a fresh per-trial [`CachedFingerprint`]
    ///   (created after the flip, so the flip cannot stale the cache; the
    ///   flip itself can only land in injectable state, which lives in the
    ///   cycle-stamped units).
    pub fn run_trials(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
    ) -> Vec<TrialRecord> {
        self.run_trials_core::<false>(mask, specs, monitor, None, false).records
    }

    /// [`StartPoint::run_trials`] with telemetry: additionally returns a
    /// [`TrialTrace`] per spec (detection cycle, first observed divergence
    /// and its unit) and the batch's advance/monitor wall-clock split.
    ///
    /// Records are identical to the untraced path; the traced walk only
    /// *observes* decisions the classifier already made, plus — for trials
    /// that fail or gray out without any µArch check having seen the
    /// divergence — one extra fingerprint walk at the decision state to
    /// attribute the divergence to a unit. That walk happens after the
    /// outcome is sealed, so it cannot perturb classification.
    pub fn run_trials_traced(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
    ) -> TracedBatch {
        self.run_trials_core::<true>(mask, specs, monitor, None, false)
    }

    /// [`StartPoint::run_trials_traced`] in deep-trace mode: additionally
    /// fills [`TracedBatch::deeps`] with each trial's change-only
    /// divergence timeline — the set of diverged units sampled at every
    /// µArch check that ran, recovered from the hierarchical per-unit
    /// fingerprints rather than per-cycle state diffs.
    ///
    /// Records and traces are byte-identical to the plain traced path:
    /// deep sampling reads fingerprints the classifier computes anyway (or
    /// performs its own walks after the relevant decision), never touching
    /// the decision state.
    pub fn run_trials_deep_traced(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
    ) -> TracedBatch {
        self.run_trials_core::<true>(mask, specs, monitor, None, true)
    }

    /// The shared batched ladder. `TRACED` is a compile-time switch: the
    /// `false` instantiation contains no timing calls and passes no trace
    /// slots, so the campaign hot path is the pre-telemetry machine code.
    ///
    /// Every trial's flip-and-monitor run executes under a `catch_unwind`
    /// supervisor: a panic out of the faulted model (a hardening escape)
    /// quarantines that one trial as a [`TrialFault`] and the batch
    /// continues. The fault-free walker is never touched by a contained
    /// unwind — the trial runs on a clone — so the surviving trials'
    /// records are bit-identical to a batch without the panic.
    ///
    /// `panic_shim` names an input spec index whose trial panics on
    /// purpose before classification (campaign test hook: exercises the
    /// quarantine machinery end-to-end without needing a real escape).
    ///
    /// `deep` (only meaningful with `TRACED`; the untraced instantiation
    /// constant-folds `TRACED && deep` to `false`, so its machine code is
    /// untouched) additionally records each trial's divergence timeline.
    pub(crate) fn run_trials_core<const TRACED: bool>(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
        panic_shim: Option<usize>,
        deep: bool,
    ) -> TracedBatch {
        let deep = TRACED && deep;
        install_containment_hook();
        let mut order: Vec<usize> = (0..specs.len()).collect();
        order.sort_by_key(|&i| specs[i].inject_cycle);

        let mut walker = self.checkpoint.clone();
        let mut walked = 0u64;
        let mut out: Vec<Option<TrialRecord>> = vec![None; specs.len()];
        let mut traces = vec![TrialTrace::default(); if TRACED { specs.len() } else { 0 }];
        let mut deeps = vec![DeepTrace::new(); if deep { specs.len() } else { 0 }];
        let mut faults = Vec::new();
        let mut advance_ns = 0u64;
        let mut monitor_ns = 0u64;
        for i in order {
            let spec = specs[i];
            let t0 = TRACED.then(Instant::now);
            while walked < spec.inject_cycle && walker.running() {
                walker.step();
                walked += 1;
            }
            let t1 = TRACED.then(Instant::now);
            if let (Some(t0), Some(t1)) = (t0, t1) {
                advance_ns += t1.duration_since(t0).as_nanos() as u64;
            }
            let trace_slot = if TRACED { Some(&mut traces[i]) } else { None };
            let deep_slot = if deep { Some(&mut deeps[i]) } else { None };
            CONTAINED.with(|c| c.set(true));
            let classified = panic::catch_unwind(AssertUnwindSafe(|| {
                if panic_shim == Some(i) {
                    panic!(
                        "forced mid-trial panic (test shim, target {} cycle {})",
                        spec.target, spec.inject_cycle
                    );
                }
                self.classify(
                    mask,
                    walker.clone(),
                    spec,
                    monitor,
                    true,
                    TrialObservers { trace: trace_slot, deep: deep_slot },
                )
            }));
            CONTAINED.with(|c| c.set(false));
            match classified {
                Ok(rec) => out[i] = Some(rec),
                Err(payload) => {
                    faults.push(TrialFault { index: i, spec, panic_msg: panic_message(payload) })
                }
            }
            if let Some(t1) = t1 {
                monitor_ns += t1.elapsed().as_nanos() as u64;
            }
        }
        // Quarantined trials have no record, trace, or deep timeline;
        // everything else stays in input order.
        faults.sort_by_key(|f| f.index);
        let mut records = Vec::with_capacity(specs.len());
        let mut kept_traces = Vec::with_capacity(traces.len());
        let mut kept_deeps = Vec::with_capacity(deeps.len());
        for (i, rec) in out.into_iter().enumerate() {
            if let Some(rec) = rec {
                records.push(rec);
                if TRACED {
                    kept_traces.push(traces[i]);
                }
                if deep {
                    kept_deeps.push(std::mem::take(&mut deeps[i]));
                }
            }
        }
        // On the scalar ladder all monitor time is classification time.
        TracedBatch {
            records,
            traces: kept_traces,
            faults,
            deeps: kept_deeps,
            advance_ns,
            monitor_ns,
            ride_ns: 0,
            classify_ns: monitor_ns,
            prune_ns: 0,
        }
    }

    /// The shared classification loop: takes a machine already advanced
    /// fault-free to `spec.inject_cycle`, flips the bit, and monitors. With
    /// `cached_fp` the µArch-Match checks run on a [`CachedFingerprint`]
    /// (fast path); without, on flat [`fingerprint_of`] (reference path).
    /// Both hash definitions are identical by construction.
    ///
    /// With `obs.trace`, the decision cycle and first observed divergence
    /// are recorded into it. Tracing never alters the classification: all
    /// trace work happens off the decision path, after the outcome is
    /// sealed.
    ///
    /// With `obs.deep`, divergent µArch checks additionally sample the
    /// full diverged-unit set into the given [`DeepTrace`] — densely just
    /// after injection, at every eighth check once sparse. The samples come
    /// from a *dedicated* incremental [`CachedFingerprint`], never the
    /// classifier's, whose suspect short-circuit feeds the journaled
    /// `diverged_unit` attribution and must stay byte-identical to the
    /// non-deep run.
    pub(crate) fn classify(
        &self,
        mask: InjectionMask,
        mut cpu: Pipeline,
        spec: TrialSpec,
        monitor: u64,
        cached_fp: bool,
        obs: TrialObservers<'_>,
    ) -> TrialRecord {
        let TrialObservers { trace, mut deep } = obs;
        let TrialSpec { target, inject_cycle } = spec;
        let traced = trace.is_some();
        let base_instret = self.checkpoint.instret();

        // Flip the bit.
        let mut flip = FlipBit::new(mask, target);
        cpu.visit_state(&mut flip);
        let hit = flip.flipped.expect("target bit within eligible range");

        let make = |outcome| TrialRecord {
            outcome,
            category: hit.category,
            kind: hit.kind,
            unit: hit.unit,
            inject_cycle,
            valid_instructions: self.valid_at(inject_cycle),
        };

        // First divergence a µArch check observed: (cycle, unit).
        let mut divergence: Option<(u64, Option<UnitId>)> = None;
        let mut last_step = inject_cycle;

        let (outcome, decided_at) = 'decide: {
            // If the golden run halted before the injection point, the flip
            // landed in a halted machine: architecturally invisible.
            if !cpu.running() {
                break 'decide (Outcome::MicroArchMatch, inject_cycle);
            }

            let mut matched_records = (cpu.instret() - base_instret) as usize;
            let mut last_retire_cycle = inject_cycle;
            let mut flushes_without_retire = 0u32;
            let horizon = (self.fps.len() as u64 - 1).min(inject_cycle + monitor);
            // Created after the flip: the cache starts cold, so the flip
            // (which bypasses generation stamps) can never be hidden by a
            // stale entry.
            let mut engine = cached_fp.then(CachedFingerprint::new);
            // Deep sampling gets its own incremental engine: it must never
            // touch the classifier's (whose suspect short-circuit feeds the
            // journaled attribution), and a flat walk per divergent check
            // would dominate the monitor loop on long-lived divergences.
            // Also created post-flip, so its cold cache cannot hide the
            // flipped word.
            let mut deep_engine = deep.is_some().then(CachedFingerprint::new);

            for step in (inject_cycle + 1)..=horizon {
                last_step = step;
                let report = cpu.step();
                if report.retired > 0 {
                    last_retire_cycle = step;
                    flushes_without_retire = 0;
                }
                if report.protective_flush {
                    // The timeout watchdog attempted a recovery: give it
                    // time to refill the pipeline before declaring deadlock
                    // — but a machine that keeps flushing without ever
                    // retiring is wedged beyond the watchdog's reach (the
                    // paper's store-buffer example).
                    flushes_without_retire += 1;
                    if flushes_without_retire >= 3 {
                        break 'decide (Outcome::Failure(FailureMode::Locked), step);
                    }
                    last_retire_cycle = step;
                }
                for ev in report.events {
                    match ev {
                        RetireEvent::Retired(rec) => {
                            match self.records.get(matched_records) {
                                Some(g) => {
                                    // Architectural-state comparison. The
                                    // record's `pc`/`raw` fields (and the
                                    // next_pc of non-branches, which is
                                    // pc+4 by wiring) are ROB metadata, not
                                    // architectural state: flips there
                                    // leave execution untouched. The
                                    // checker compares the resolved flow of
                                    // control transfers, register writes,
                                    // and stores — any wrong-instruction
                                    // commit diverges in those.
                                    if decode(g.raw).is_control() && rec.next_pc != g.next_pc {
                                        break 'decide (
                                            Outcome::Failure(FailureMode::Ctrl),
                                            step,
                                        );
                                    }
                                    if rec.dst != g.dst {
                                        break 'decide (
                                            Outcome::Failure(FailureMode::Regfile),
                                            step,
                                        );
                                    }
                                    if rec.store != g.store {
                                        break 'decide (
                                            Outcome::Failure(FailureMode::Mem),
                                            step,
                                        );
                                    }
                                }
                                None => {
                                    // The injected machine ran ahead of the
                                    // golden horizon; nothing left to
                                    // verify.
                                    break 'decide (Outcome::GrayArea, step);
                                }
                            }
                            matched_records += 1;
                        }
                        RetireEvent::Halted { code } => {
                            // Correct only if the golden run also halts
                            // having retired exactly the same stream.
                            let golden_total = self.records.len();
                            let outcome = match self.halted_at {
                                Some((_, gcode))
                                    if gcode == code && matched_records == golden_total =>
                                {
                                    Outcome::MicroArchMatch
                                }
                                _ => Outcome::Failure(FailureMode::Ctrl),
                            };
                            break 'decide (outcome, step);
                        }
                        RetireEvent::Exception(e) => {
                            let mode = match e {
                                ExcCode::Itlb => FailureMode::Itlb,
                                ExcCode::Dtlb => FailureMode::Dtlb,
                                _ => FailureMode::Except,
                            };
                            break 'decide (Outcome::Failure(mode), step);
                        }
                    }
                }

                // Deadlock/livelock detection (Section 4.1: 100 cycles
                // without retirement).
                if cpu.running() && step - last_retire_cycle >= 100 {
                    break 'decide (Outcome::Failure(FailureMode::Locked), step);
                }

                // µArch Match: full-state fingerprint equality at the same
                // cycle with the same retirement count. Once equal, the two
                // deterministic machines stay equal, so sparse checking
                // after an initial dense window loses nothing.
                let dense = step - inject_cycle <= 64;
                if (dense || step % 8 == 0)
                    && self.instret[step as usize] == cpu.instret() - base_instret
                    && matched_records as u64 == cpu.instret() - base_instret
                {
                    let eq = match engine.as_mut() {
                        // Fast path: per-unit comparison against the golden
                        // row, short-circuiting on the unit a latent fault
                        // keeps diverged.
                        Some(e) => e.matches(
                            &mut cpu,
                            self.fps[step as usize],
                            &self.unit_fps[step as usize],
                        ),
                        None => fingerprint_of(&mut cpu) == self.fps[step as usize],
                    };
                    if eq {
                        // A heal closes the divergence timeline (change-only
                        // push: a no-op unless divergence was ever sampled).
                        if let Some(d) = deep.as_deref_mut() {
                            d.push(step, 0);
                        }
                        break 'decide (Outcome::MicroArchMatch, step);
                    }
                    if traced && divergence.is_none() {
                        // The check already localized the mismatch while
                        // short-circuiting: reading the suspect is free.
                        divergence =
                            Some((step, engine.as_ref().and_then(|e| e.suspect())));
                    }
                    if let Some(d) = deep.as_deref_mut() {
                        // Deep sample: which units hold faulty state right
                        // now — at every check in the dense window, then at
                        // every eighth check. Change-only encoding collapses
                        // repeats anyway, and the residency buckets the
                        // timeline feeds are far coarser than 64 cycles.
                        // The sampling cadence is mirrored verbatim by
                        // `ride_lane`'s synthesized timelines.
                        if dense || step % 64 == 0 {
                            let e = deep_engine.as_mut().expect("deep sampling engine");
                            e.fingerprint(&mut cpu);
                            d.push(
                                step,
                                UnitId::diverged_mask(
                                    e.unit_hashes(),
                                    &self.unit_fps[step as usize],
                                ),
                            );
                        }
                    }
                }

                if !cpu.running() {
                    break;
                }
            }
            (Outcome::GrayArea, last_step)
        };

        if outcome != Outcome::MicroArchMatch
            && ((traced && divergence.is_none()) || deep.is_some())
        {
            // The outcome was decided without any µArch check observing
            // the divergence (e.g. an architectural mismatch in the
            // retire stream): attribute it with one hierarchical walk
            // at the decision state. Deep mode reuses the same walk to
            // close the timeline with the final diverged-unit set.
            // Happens after the outcome is sealed, so it cannot perturb
            // classification.
            let at = last_step.min(self.fps.len() as u64 - 1);
            let mut fp = Fingerprint::new();
            cpu.visit_state(&mut fp);
            if traced && divergence.is_none() && fp.value() != self.fps[at as usize] {
                let units = self.diverging_units(at, fp.unit_hashes());
                divergence = Some((at, units.first().copied()));
            }
            if let Some(d) = deep {
                d.push(at, UnitId::diverged_mask(fp.unit_hashes(), &self.unit_fps[at as usize]));
            }
        }
        if let Some(tr) = trace {
            tr.detect_cycle = decided_at;
            if let Some((cycle, unit)) = divergence {
                tr.divergence_cycle = Some(cycle);
                tr.diverged_unit = unit;
            }
        }
        make(outcome)
    }
}

/// Warm-up helper: builds a flow-logged pipeline, runs it `cycles`, and
/// returns it (TLBs preloaded from a fault-free functional run).
pub(crate) fn warm_pipeline(
    program: &Program,
    config: tfsim_uarch::PipelineConfig,
    cycles: u64,
) -> Pipeline {
    let mut probe = tfsim_arch::FuncSim::new(program);
    probe.run(50_000_000);
    let mut cpu = Pipeline::new(program, config);
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    cpu.enable_flow_log();
    for _ in 0..cycles {
        if !cpu.running() {
            break;
        }
        cpu.step();
    }
    cpu
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_isa::{Asm, Reg};
    use tfsim_uarch::PipelineConfig;

    fn start_point() -> StartPoint {
        let mut a = Asm::new(0x1_0000);
        // A long-running loop with stores and branches.
        a.li(Reg::R10, 0x9e3779b97f4a7c15u64);
        a.li(Reg::R1, 0x10_0000);
        a.li(Reg::R7, 60_000);
        a.li(Reg::R9, 0);
        let top = a.here_label();
        a.mulq_i(Reg::R10, 33, Reg::R10);
        a.addq_i(Reg::R10, 7, Reg::R10);
        a.srl_i(Reg::R10, 20, Reg::R4);
        a.and_i(Reg::R4, 0xf8, Reg::R5);
        a.addq(Reg::R1, Reg::R5, Reg::R5);
        a.stq(Reg::R4, Reg::R5, 0);
        a.ldq(Reg::R6, Reg::R5, 0);
        a.addq(Reg::R9, Reg::R6, Reg::R9);
        a.subq_i(Reg::R7, 1, Reg::R7);
        a.bne(Reg::R7, top);
        a.li(Reg::V0, tfsim_isa::syscall::EXIT);
        a.mov(Reg::R9, Reg::A0);
        a.callsys();
        let p = tfsim_isa::Program::new("trial-bed", a).with_data(0x10_0000, vec![0u8; 256]);
        let warmed = warm_pipeline(&p, PipelineConfig::baseline(), 500);
        StartPoint::prepare(&warmed, 3_000, InjectionMask::LatchesAndRams)
    }

    #[test]
    fn golden_precompute_is_sane() {
        let sp = start_point();
        assert!(sp.bit_count() > 40_000, "bit count {}", sp.bit_count());
        assert!(sp.records.len() > 1_000);
        assert!(sp.halted_at.is_none(), "workload must outlast the horizon");
        assert!(sp.valid_at(100) > 0, "pipeline should hold valid instructions");
        assert!(sp.valid_at(100) <= 132);
    }

    #[test]
    fn no_flip_trial_would_match() {
        // Sanity for the comparison machinery: run a trial whose flip hits
        // a bit and immediately flips it back by running a second trial on
        // the same target — instead, verify a masked-dominated sample.
        let sp = start_point();
        let mut masked = 0;
        let mut failures = 0;
        for t in 0..40 {
            let target = (t * 1_123) % sp.bit_count();
            let rec = sp.run_trial(InjectionMask::LatchesAndRams, target, 10 + t, 2_000);
            match rec.outcome {
                Outcome::MicroArchMatch => masked += 1,
                Outcome::Failure(_) => failures += 1,
                Outcome::GrayArea => {}
            }
        }
        assert!(masked > failures, "masking should dominate: {masked} vs {failures}");
        assert!(masked >= 20, "most single-bit flips are benign: {masked}/40");
    }

    #[test]
    fn trials_are_deterministic() {
        let sp = start_point();
        let a = sp.run_trial(InjectionMask::LatchesAndRams, 12_345, 25, 2_000);
        let b = sp.run_trial(InjectionMask::LatchesAndRams, 12_345, 25, 2_000);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.category, b.category);
    }

    /// A workload short enough to halt well inside the monitoring horizon.
    fn halting_start_point() -> StartPoint {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R7, 40);
        let top = a.here_label();
        a.subq_i(Reg::R7, 1, Reg::R7);
        a.bne(Reg::R7, top);
        a.li(Reg::V0, tfsim_isa::syscall::EXIT);
        a.li(Reg::A0, 0);
        a.callsys();
        let p = tfsim_isa::Program::new("short", a);
        let warmed = warm_pipeline(&p, PipelineConfig::baseline(), 10);
        StartPoint::prepare(&warmed, 2_000, InjectionMask::LatchesAndRams)
    }

    #[test]
    fn zero_monitor_window_is_provably_gray_area() {
        // With no cycles to observe, the classifier can neither match
        // state nor detect a failure, whatever bit is hit: the definition
        // of the Gray Area (Section 2.2).
        let sp = start_point();
        for target in [0, 997, 40_001] {
            let rec = sp.run_trial(InjectionMask::LatchesAndRams, target, 5, 0);
            assert_eq!(rec.outcome, Outcome::GrayArea, "target {target}");
        }
    }

    #[test]
    fn flip_after_golden_halt_is_provably_micro_arch_match() {
        // A fault injected into a machine that already halted cannot
        // change any architecturally visible behaviour.
        let sp = halting_start_point();
        let (halt_step, code) = sp.halted_at.expect("short workload must halt in horizon");
        assert_eq!(code, 0);
        for target in [3, 1_234, 20_011] {
            let rec =
                sp.run_trial(InjectionMask::LatchesAndRams, target, halt_step + 50, 500);
            assert_eq!(rec.outcome, Outcome::MicroArchMatch, "target {target}");
        }
    }

    #[test]
    fn deterministic_sweep_reaches_every_outcome_class() {
        // A spaced sweep over eligible bits must surface all four of the
        // paper's outcome classes: µArch Match, Gray Area, at least one
        // SDC mode, and at least one Terminated mode. Fully deterministic,
        // so a classifier regression shows up as a stable diff here.
        let sp = start_point();
        let mut matched = 0u32;
        let mut gray = 0u32;
        let mut sdc = 0u32;
        let mut terminated = 0u32;
        for t in 0..120u64 {
            let target = (t * 40_127) % sp.bit_count();
            let rec = sp.run_trial(InjectionMask::LatchesAndRams, target, t % 60, 1_500);
            match rec.outcome {
                Outcome::MicroArchMatch => matched += 1,
                Outcome::GrayArea => gray += 1,
                Outcome::Failure(m) if m.is_termination() => terminated += 1,
                Outcome::Failure(_) => sdc += 1,
            }
        }
        assert!(matched > 0, "no µArch Match in sweep");
        assert!(gray > 0, "no Gray Area in sweep");
        assert!(sdc > 0, "no SDC failure in sweep");
        assert!(terminated > 0, "no Terminated failure in sweep");
        // The paper's headline result at pipeline level: most flips mask.
        assert!(matched >= 60, "masking should dominate: {matched}/120");
    }

    #[test]
    fn batched_trials_match_the_naive_path() {
        // The snapshot ladder must reproduce run_trial record-for-record,
        // including unsorted plans, duplicate injection cycles, and cycles
        // at the window edges.
        let sp = start_point();
        let specs: Vec<TrialSpec> = (0..24u64)
            .map(|t| TrialSpec {
                target: (t * 9_491) % sp.bit_count(),
                inject_cycle: [40, 3, 117, 3, 0, 249, 60, 117][t as usize % 8] + (t / 8),
            })
            .collect();
        let batched = sp.run_trials(InjectionMask::LatchesAndRams, &specs, 1_200);
        assert_eq!(batched.len(), specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let naive =
                sp.run_trial(InjectionMask::LatchesAndRams, spec.target, spec.inject_cycle, 1_200);
            assert_eq!(batched[i], naive, "spec {i} ({spec:?}) diverged");
        }
    }

    #[test]
    fn batched_trials_handle_a_halting_golden_run() {
        // Injection cycles past the golden halt: the walker parks on the
        // halted machine and every such trial is a µArch Match, exactly as
        // the naive path reports.
        let sp = halting_start_point();
        let (halt_step, _) = sp.halted_at.expect("short workload halts");
        let specs: Vec<TrialSpec> = (0..8u64)
            .map(|t| TrialSpec { target: 1_000 + t * 777, inject_cycle: halt_step + 20 + t })
            .collect();
        let batched = sp.run_trials(InjectionMask::LatchesAndRams, &specs, 400);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(batched[i].outcome, Outcome::MicroArchMatch);
            let naive =
                sp.run_trial(InjectionMask::LatchesAndRams, spec.target, spec.inject_cycle, 400);
            assert_eq!(batched[i], naive, "spec {i} diverged");
        }
    }

    #[test]
    fn traced_batch_matches_untraced_records() {
        // The traced path must be pure observation: identical records, and
        // traces that are consistent with them.
        let sp = start_point();
        let specs: Vec<TrialSpec> = (0..20u64)
            .map(|t| TrialSpec {
                target: (t * 13_577) % sp.bit_count(),
                inject_cycle: (t * 31) % 180,
            })
            .collect();
        let plain = sp.run_trials(InjectionMask::LatchesAndRams, &specs, 1_500);
        let traced = sp.run_trials_traced(InjectionMask::LatchesAndRams, &specs, 1_500);
        assert_eq!(traced.records, plain, "tracing must not change classification");
        assert_eq!(traced.traces.len(), specs.len());
        assert!(traced.advance_ns > 0 || traced.monitor_ns > 0, "timing was captured");
        for (rec, tr) in traced.records.iter().zip(traced.traces.iter()) {
            assert!(
                tr.detect_cycle >= rec.inject_cycle,
                "detection cannot precede injection: {tr:?} vs {rec:?}"
            );
            if let Some(div) = tr.divergence_cycle {
                assert!(div > rec.inject_cycle, "divergence is observed after the flip");
                assert!(div <= tr.detect_cycle, "divergence observed at or before decision");
            }
            match rec.outcome {
                // A failure means the machine diverged; the traced path
                // must have attributed it (divergence cycle known, though
                // the unit may be None for stray state).
                Outcome::Failure(_) => assert!(
                    tr.divergence_cycle.is_some(),
                    "failure without divergence attribution: {rec:?} {tr:?}"
                ),
                Outcome::MicroArchMatch => {}
                Outcome::GrayArea => {}
            }
        }
        // The sweep is wide enough that at least one trial names a unit.
        assert!(
            traced.traces.iter().any(|t| t.diverged_unit.is_some()),
            "no trial attributed a divergence to a unit"
        );
        // Injection sites are attributed too (the machine brackets all
        // injectable state into units).
        assert!(traced.records.iter().all(|r| r.unit.is_some()));
    }

    #[test]
    fn deep_traced_batch_is_pure_observation() {
        // Deep mode fills divergence timelines without changing a byte of
        // the records or traces the plain traced path produces.
        let sp = start_point();
        let specs: Vec<TrialSpec> = (0..20u64)
            .map(|t| TrialSpec {
                target: (t * 13_577) % sp.bit_count(),
                inject_cycle: (t * 31) % 180,
            })
            .collect();
        let traced = sp.run_trials_traced(InjectionMask::LatchesAndRams, &specs, 1_500);
        let deep = sp.run_trials_deep_traced(InjectionMask::LatchesAndRams, &specs, 1_500);
        assert_eq!(deep.records, traced.records, "deep tracing must not change classification");
        assert_eq!(deep.traces, traced.traces, "deep tracing must not change attribution");
        assert!(traced.deeps.is_empty(), "plain traced path records no timelines");
        assert_eq!(deep.deeps.len(), specs.len());
        assert!(deep.deeps.iter().any(|d| !d.is_empty()), "sweep should see divergence");
        for (tr, d) in deep.traces.iter().zip(deep.deeps.iter()) {
            let samples = d.samples();
            // Timelines are strictly cycle-ordered and change-only.
            for w in samples.windows(2) {
                assert!(w[0].0 < w[1].0, "timeline out of order: {samples:?}");
                assert_ne!(w[0].1, w[1].1, "timeline not change-only: {samples:?}");
            }
            if let Some(&(first, mask)) = samples.first() {
                assert!(mask != 0, "a timeline opens with a diverged set");
                // A non-empty timeline means a fingerprint diverged, which
                // the trace must have attributed no later than the sample.
                let dc = tr.divergence_cycle.expect("timeline without attributed divergence");
                assert!(dc <= first, "deep sample before divergence: {tr:?} {samples:?}");
            }
        }
    }

    #[test]
    fn diverging_units_name_the_faulty_subtree() {
        let sp = start_point();
        // Walk a fault-free clone to some cycle: no unit diverges.
        let k = 37u64;
        let mut cpu = sp.checkpoint.clone();
        for _ in 0..k {
            cpu.step();
        }
        let mut engine = CachedFingerprint::new();
        let fp = engine.fingerprint(&mut cpu);
        assert_eq!(fp, sp.fps[k as usize], "fault-free clone must match golden");
        assert!(sp.diverging_units(k, engine.unit_hashes()).is_empty());

        // Flip a bit: the root diverges and at least one unit is named.
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 12_345);
        cpu.visit_state(&mut flip);
        let mut fresh = CachedFingerprint::new();
        let fp = fresh.fingerprint(&mut cpu);
        assert_ne!(fp, sp.fps[k as usize]);
        let diverged = sp.diverging_units(k, fresh.unit_hashes());
        assert!(!diverged.is_empty(), "a flipped machine must name a diverging unit");
    }

    #[test]
    fn failure_mode_index_matches_table_order() {
        for (i, m) in FailureMode::ALL.iter().enumerate() {
            assert_eq!(m.index(), i, "{m:?} out of place in FailureMode::ALL");
        }
    }

    #[test]
    fn failure_mode_classification_properties() {
        assert!(FailureMode::Locked.is_termination());
        assert!(FailureMode::Except.is_termination());
        for m in [FailureMode::Regfile, FailureMode::Mem, FailureMode::Ctrl, FailureMode::Itlb, FailureMode::Dtlb] {
            assert!(!m.is_termination(), "{m:?} is SDC");
        }
        assert_eq!(FailureMode::ALL.len(), 7);
    }
}
