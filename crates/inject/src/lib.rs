#![warn(missing_docs)]

//! # tfsim-inject — the fault-injection framework
//!
//! Implements the paper's experimental methodology (Section 2):
//!
//! 1. **Warm-up and checkpoints.** A workload runs on the pipeline model;
//!    checkpoints (clones of the warmed machine) become *start points*.
//! 2. **Golden precomputation.** From each start point the fault-free
//!    machine runs for the monitoring horizon, recording a per-cycle
//!    128-bit fingerprint of *every* state bit, the retirement trace, and
//!    the per-cycle count of in-flight instructions that eventually commit
//!    (for the Figure 6 utilization analysis).
//! 3. **Trials.** Each trial clones the checkpoint, flips one uniformly
//!    chosen eligible state bit at a uniformly chosen cycle, and monitors
//!    up to 10,000 cycles, classifying the outcome as:
//!    * [`Outcome::MicroArchMatch`] — entire machine state re-converged
//!      with the golden run (fault conclusively masked);
//!    * [`Outcome::Failure`] — architectural state diverged, subdivided
//!      into the paper's seven failure modes ([`FailureMode`]);
//!    * [`Outcome::GrayArea`] — neither, within the monitoring window.
//!
//! Architectural checking happens at *retirement granularity*: the
//! injected machine's k-th retired instruction must match the golden k-th
//! record (PC, next PC, instruction word, destination value, store).
//! This makes the check timing-tolerant, so protection-induced pipeline
//! flushes land in the Gray Area rather than being counted as failures —
//! matching the paper's semantics.
//!
//! Campaigns are observable via [`run_campaign_observed`]: per-trial events
//! into a `tfsim_obs::EventSink` (JSONL traces for the `tfsim-run report`
//! subcommand), counters and latency histograms into [`CampaignMetrics`],
//! and a live progress gauge. Telemetry is strictly pay-for-what-you-use:
//! [`run_campaign`] uses [`CampaignObs::disabled`] and runs the
//! pre-telemetry code path.
//!
//! ```no_run
//! use tfsim_inject::{run_campaign, run_campaign_observed, CampaignConfig, CampaignObs};
//! use tfsim_bitstate::InjectionMask;
//! use tfsim_obs::RingSink;
//!
//! let mut config = CampaignConfig::quick(7);
//! config.mask = InjectionMask::LatchesOnly;
//! let result = run_campaign(&config);
//! println!("masked: {:.1}%", 100.0 * result.totals().masked_fraction());
//!
//! // The same campaign with the trial-event stream kept in memory:
//! let sink = RingSink::new(4096);
//! let obs = CampaignObs { sink: &sink, metrics: None, progress: None, spans: None };
//! let traced = run_campaign_observed(&config, &tfsim_workloads::all(), &obs);
//! assert_eq!(traced.totals(), result.totals());
//! println!("{} events captured", sink.events().len());
//! ```

mod campaign;
mod footprint;
mod journal;
mod pruner;
mod sliced;
mod trial;

pub use campaign::{
    run_campaign, run_campaign_journaled, run_campaign_observed, run_campaign_on, BenchmarkResult,
    CampaignConfig, CampaignMetrics, CampaignObs, CampaignQuarantine, CampaignResult,
    OutcomeCounts, ScatterPoint,
};
pub use journal::{CampaignJournal, JournalMeta, JournaledTask};
pub use sliced::LANE_WIDTH;
pub use tfsim_obs::PruneDispositions;
pub use trial::{
    FailureMode, Outcome, StartPoint, TracedBatch, TrialFault, TrialRecord, TrialSpec, TrialTrace,
};
