//! Word-parallel (bit-sliced) trial execution.
//!
//! The snapshot-ladder path ([`StartPoint::run_trials`]) pays one
//! `Pipeline::clone` plus a full monitored replay per trial. Most trials
//! do not need any of that: a single-bit fault is a *difference* δ against
//! the golden run, and as long as no computation consumes the faulted
//! word, the trial's observable behaviour — its retire stream, its halt,
//! its per-cycle retirement pattern — is the golden run's, already
//! precomputed by [`StartPoint::prepare`].
//!
//! This module exploits that with a *golden access footprint*: one extra
//! tracked replay of the fault-free run (per start point, built lazily and
//! shared by every batch) records, for every word of the RAM-like tracked
//! structures (load/store queues, physical register file, miss handling
//! registers), the cycles at which the machine read or wrote that word.
//! A batch of trials is then processed as words of up to 64 *lanes*, one
//! trial per lane, all sharing the single golden evaluation:
//!
//! * **Ride** — the faulted word is never accessed in the monitoring
//!   window. The lane never needs a machine: its outcome follows
//!   analytically from the golden aggregates (the δ keeps the fingerprint
//!   diverged, so the trial grays out — or matches trivially when the
//!   golden run already halted).
//! * **Heal** — the first access is a full-word overwrite whose value
//!   cannot depend on the word's prior content. From that cycle on the
//!   lane's state *is* the golden state; the first fingerprint check at or
//!   after the heal declares µArch Match, exactly as the ladder would.
//! * **Peel** — the first access is a read: the fault is consumed and the
//!   lane's future genuinely diverges from golden. The lane peels off to
//!   the scalar path — the same monotonic fault-free walker and the same
//!   [`StartPoint::classify`] the snapshot ladder uses — so peeled
//!   records are the ladder's records by construction.
//!
//! Untracked targets (front-end latches, scheduler, ROB, rename, …) and
//! targets outside any unit always peel. Equivalence with the ladder and
//! the naive path is pinned by `tests/fastpath_equivalence.rs`.
//!
//! # Soundness contract
//!
//! The analytic shortcut is sound because the access log obeys (and the
//! `access_ordinals` pipeline tests plus the differential suite enforce):
//!
//! * **Reads may be over-logged, never under-logged.** A spurious logged
//!   read only demotes a ride/heal to a peel — the scalar path is always
//!   correct. A *missing* read would let a consumed fault ride, so every
//!   step-path accessor of tracked words logs.
//! * **Writes are logged only for full-word overwrites whose value cannot
//!   depend on the word's prior content.** Read-modify-write sites log the
//!   read first; per-cycle dedup keeps the first event, so the cell shows
//!   read-first and the lane peels.
//! * **Observers never log.** Fingerprint walks, state dumps, invariant
//!   checks and census visitors read state without consuming it
//!   architecturally; logging them would only cost throughput, but they
//!   are also run on machines whose tracking is off.
//! * δ ≠ 0 in a tracked word keeps that unit's 128-bit subhash diverged —
//!   the same collision exposure the root-fingerprint equality check
//!   always had.

use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use tfsim_bitstate::{InjectionMask, UnitId};

use tfsim_obs::DeepTrace;

use crate::footprint::{disposition, Disposition, Footprint, Resolver, Span};
use crate::trial::{
    install_containment_hook, panic_message, FailureMode, Outcome, StartPoint, TracedBatch,
    TrialFault, TrialObservers, TrialRecord, TrialSpec, TrialTrace, CONTAINED,
};

/// Lanes per word: one trial per bit of a 64-bit bookkeeping word.
pub const LANE_WIDTH: usize = 64;

/// How a lane was dispatched, for the per-word bookkeeping masks.
enum Plan<'a> {
    /// Ride or heal: share the golden evaluation analytically.
    Share(&'a Span, Option<u64>),
    /// Peel (or untracked / out-of-range / forced-panic): scalar path.
    Scalar,
}

impl StartPoint {
    /// [`StartPoint::run_trials`] semantics on the word-parallel path:
    /// bit-identical records, radically fewer machine replays. See the
    /// module docs for the ride/heal/peel protocol.
    pub fn run_trials_sliced(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
    ) -> Vec<TrialRecord> {
        self.run_trials_sliced_core::<false>(mask, specs, monitor, LANE_WIDTH, None, false).records
    }

    /// [`StartPoint::run_trials_traced`] semantics on the word-parallel
    /// path: identical records and traces; `advance_ns`/`monitor_ns`
    /// reflect this path's actual phase split (wall-clock is the only
    /// field allowed to differ from the ladder).
    pub fn run_trials_sliced_traced(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
    ) -> TracedBatch {
        self.run_trials_sliced_core::<true>(mask, specs, monitor, LANE_WIDTH, None, false)
    }

    /// [`StartPoint::run_trials_deep_traced`] semantics on the
    /// word-parallel path: identical records, traces, *and* divergence
    /// timelines. Riding/healing lanes synthesize their timelines
    /// analytically (the δ diverges exactly its own unit until healed);
    /// peeled lanes sample through the scalar classifier.
    pub fn run_trials_sliced_deep_traced(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
    ) -> TracedBatch {
        self.run_trials_sliced_core::<true>(mask, specs, monitor, LANE_WIDTH, None, true)
    }

    /// [`StartPoint::run_trials_sliced`] with an explicit lane width in
    /// `1..=64`. Results are provably width-independent (each lane is
    /// decided from the shared footprint alone); the equivalence suite
    /// exercises every width including partial final words.
    pub fn run_trials_sliced_with_width(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
        lane_width: usize,
    ) -> Vec<TrialRecord> {
        self.run_trials_sliced_core::<false>(mask, specs, monitor, lane_width, None, false).records
    }

    /// The shared word-parallel ladder. Mirrors `run_trials_core`'s
    /// contract exactly: input-order records, quarantined panics, sorted
    /// monotonic walker for everything scalar.
    pub(crate) fn run_trials_sliced_core<const TRACED: bool>(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
        lane_width: usize,
        panic_shim: Option<usize>,
        deep: bool,
    ) -> TracedBatch {
        let deep = TRACED && deep;
        assert!((1..=LANE_WIDTH).contains(&lane_width), "lane width must be 1..=64");
        install_containment_hook();
        let fp = self.golden_footprint();
        let resolver = Resolver::build(&self.checkpoint, mask);

        let mut order: Vec<usize> = (0..specs.len()).collect();
        order.sort_by_key(|&i| specs[i].inject_cycle);

        let mut walker = self.checkpoint.clone();
        let mut walked = 0u64;
        let mut out: Vec<Option<TrialRecord>> = vec![None; specs.len()];
        let mut traces = vec![TrialTrace::default(); if TRACED { specs.len() } else { 0 }];
        let mut deeps = vec![DeepTrace::new(); if deep { specs.len() } else { 0 }];
        let mut faults = Vec::new();
        let mut advance_ns = 0u64;
        let mut monitor_ns = 0u64;
        let mut ride_ns = 0u64;
        let mut classify_ns = 0u64;

        for word in order.chunks(lane_width) {
            // Per-word lane masks: bookkeeping plus the invariant that
            // every lane is dispatched exactly one way.
            let mut riding = 0u64;
            let mut healed = 0u64;
            let mut peeled = 0u64;
            for (lane, &i) in word.iter().enumerate() {
                let spec = specs[i];
                let lane_bit = 1u64 << lane;
                let plan = if panic_shim == Some(i)
                    || spec.inject_cycle as usize >= self.fps.len()
                {
                    Plan::Scalar
                } else {
                    match resolver.resolve(spec.target) {
                        Some(span)
                            if span.unit.is_some_and(|u| {
                                self.checkpoint.access_tracked(u, span.unit_ord)
                            }) =>
                        {
                            let unit = span.unit.expect("tracked implies unit");
                            match disposition(
                                fp.timeline(unit, span.unit_ord),
                                spec.inject_cycle,
                            ) {
                                Disposition::Ride => Plan::Share(span, None),
                                Disposition::Heal(hc) => Plan::Share(span, Some(hc)),
                                Disposition::Peel => Plan::Scalar,
                            }
                        }
                        _ => Plan::Scalar,
                    }
                };
                let t0 = TRACED.then(Instant::now);
                match plan {
                    Plan::Share(span, heal) => {
                        match heal {
                            Some(_) => healed |= lane_bit,
                            None => riding |= lane_bit,
                        }
                        let trace_slot = if TRACED { Some(&mut traces[i]) } else { None };
                        let deep_slot = if deep { Some(&mut deeps[i]) } else { None };
                        let obs = TrialObservers { trace: trace_slot, deep: deep_slot };
                        out[i] = Some(self.ride_lane(fp, span, heal, spec, monitor, obs));
                        if let Some(t0) = t0 {
                            let dt = t0.elapsed().as_nanos() as u64;
                            monitor_ns += dt;
                            ride_ns += dt;
                        }
                    }
                    Plan::Scalar => {
                        peeled |= lane_bit;
                        while walked < spec.inject_cycle && walker.running() {
                            walker.step();
                            walked += 1;
                        }
                        let t1 = TRACED.then(Instant::now);
                        if let (Some(t0), Some(t1)) = (t0, t1) {
                            advance_ns += t1.duration_since(t0).as_nanos() as u64;
                        }
                        let trace_slot = if TRACED { Some(&mut traces[i]) } else { None };
                        let deep_slot = if deep { Some(&mut deeps[i]) } else { None };
                        CONTAINED.with(|c| c.set(true));
                        let classified = panic::catch_unwind(AssertUnwindSafe(|| {
                            if panic_shim == Some(i) {
                                panic!(
                                    "forced mid-trial panic (test shim, target {} cycle {})",
                                    spec.target, spec.inject_cycle
                                );
                            }
                            self.classify(
                                mask,
                                walker.clone(),
                                spec,
                                monitor,
                                true,
                                TrialObservers { trace: trace_slot, deep: deep_slot },
                            )
                        }));
                        CONTAINED.with(|c| c.set(false));
                        match classified {
                            Ok(rec) => out[i] = Some(rec),
                            Err(payload) => faults.push(TrialFault {
                                index: i,
                                spec,
                                panic_msg: panic_message(payload),
                            }),
                        }
                        if let Some(t1) = t1 {
                            let dt = t1.elapsed().as_nanos() as u64;
                            monitor_ns += dt;
                            classify_ns += dt;
                        }
                    }
                }
            }
            let full = if word.len() == LANE_WIDTH { u64::MAX } else { (1 << word.len()) - 1 };
            debug_assert_eq!(riding | healed | peeled, full, "every lane dispatched");
            debug_assert_eq!(
                (riding & healed) | (riding & peeled) | (healed & peeled),
                0,
                "lane dispositions are exclusive"
            );
        }

        faults.sort_by_key(|f| f.index);
        let mut records = Vec::with_capacity(specs.len());
        let mut kept_traces = Vec::with_capacity(traces.len());
        let mut kept_deeps = Vec::with_capacity(deeps.len());
        for (i, rec) in out.into_iter().enumerate() {
            if let Some(rec) = rec {
                records.push(rec);
                if TRACED {
                    kept_traces.push(traces[i]);
                }
                if deep {
                    kept_deeps.push(std::mem::take(&mut deeps[i]));
                }
            }
        }
        TracedBatch {
            records,
            traces: kept_traces,
            faults,
            deeps: kept_deeps,
            advance_ns,
            monitor_ns,
            ride_ns,
            classify_ns,
            prune_ns: 0,
        }
    }

    /// The analytic classifier for a riding/healing lane: a literal mirror
    /// of `classify`'s decision loop, evaluated against the golden
    /// aggregates instead of a stepped machine. Valid because the lane's
    /// machine, were it stepped, would replay the golden run exactly — the
    /// δ sits in a word nothing reads before it is (possibly) overwritten.
    pub(crate) fn ride_lane(
        &self,
        fp: &Footprint,
        span: &Span,
        heal_cycle: Option<u64>,
        spec: TrialSpec,
        monitor: u64,
        obs: TrialObservers<'_>,
    ) -> TrialRecord {
        let TrialObservers { trace, mut deep } = obs;
        let inject_cycle = spec.inject_cycle;
        let traced = trace.is_some();
        // Deep-trace mirror: a riding/healing lane's state differs from
        // golden in exactly its own unit until healed, so the diverged-unit
        // set the scalar walk would sample is `{span.unit}` (or empty once
        // healed). Change-only pushes at the same check cycles make the
        // synthesized timeline byte-equal to the scalar one.
        let unit_mask = span.unit.map(|u| 1u16 << u.index()).unwrap_or(0);
        // Whether the machine is still running after `c` steps: the golden
        // run raises no exceptions (prepare forbids it), so only the halt
        // ends it — and the lane replays golden.
        let running_at = |c: u64| self.halted_at.is_none_or(|(hc, _)| c < hc);

        let make = |outcome| TrialRecord {
            outcome,
            category: span.category,
            kind: span.kind,
            unit: span.unit,
            inject_cycle,
            valid_instructions: self.valid_at(inject_cycle),
        };

        let mut divergence: Option<(u64, Option<UnitId>)> = None;
        let mut last_step = inject_cycle;

        let (outcome, decided_at) = 'decide: {
            if !running_at(inject_cycle) {
                break 'decide (Outcome::MicroArchMatch, inject_cycle);
            }

            let mut matched = self.instret[inject_cycle as usize] as usize;
            let mut last_retire_cycle = inject_cycle;
            let mut flushes_without_retire = 0u32;
            let horizon = (self.fps.len() as u64 - 1).min(inject_cycle + monitor);

            for step in (inject_cycle + 1)..=horizon {
                last_step = step;
                let g = fp.percycle[step as usize];
                if g.retired > 0 {
                    last_retire_cycle = step;
                    flushes_without_retire = 0;
                }
                if g.pflush {
                    flushes_without_retire += 1;
                    if flushes_without_retire >= 3 {
                        break 'decide (Outcome::Failure(FailureMode::Locked), step);
                    }
                    last_retire_cycle = step;
                }
                for _ in 0..g.retired {
                    // A golden-replaying lane retires the golden records
                    // verbatim: the per-record architectural comparisons
                    // pass by identity, and the ran-ahead guard below is
                    // provably dead (kept for literal parity).
                    if matched >= self.records.len() {
                        break 'decide (Outcome::GrayArea, step);
                    }
                    matched += 1;
                }
                if let Some((hc, _code)) = self.halted_at {
                    if hc == step {
                        // The lane halts with the golden exit code; correct
                        // iff the full golden stream was retired.
                        let outcome = if matched == self.records.len() {
                            Outcome::MicroArchMatch
                        } else {
                            Outcome::Failure(FailureMode::Ctrl)
                        };
                        break 'decide (outcome, step);
                    }
                }
                if running_at(step) && step - last_retire_cycle >= 100 {
                    break 'decide (Outcome::Failure(FailureMode::Locked), step);
                }
                let dense = step - inject_cycle <= 64;
                if (dense || step % 8 == 0) && self.instret[step as usize] == matched as u64 {
                    // Fingerprint check: the lane equals golden except for
                    // the δ, so equality holds exactly once healed.
                    if heal_cycle.is_some_and(|hc| step >= hc) {
                        if let Some(d) = deep.as_deref_mut() {
                            d.push(step, 0);
                        }
                        break 'decide (Outcome::MicroArchMatch, step);
                    }
                    if traced && divergence.is_none() {
                        divergence = Some((step, span.unit));
                    }
                    if let Some(d) = deep.as_deref_mut() {
                        // Mirror of `classify`'s deep-sampling cadence:
                        // dense window, then every eighth check.
                        if dense || step % 64 == 0 {
                            d.push(step, unit_mask);
                        }
                    }
                }
                if !running_at(step) {
                    break;
                }
            }
            (Outcome::GrayArea, last_step)
        };

        if outcome != Outcome::MicroArchMatch && (traced || deep.is_some()) {
            // Mirror of `classify`'s post-decision attribution walk:
            // at the decision state the lane differs from golden iff
            // the δ is still unhealed, and then exactly in its unit.
            let at = last_step.min(self.fps.len() as u64 - 1);
            let unhealed = heal_cycle.is_none_or(|hc| last_step < hc);
            if traced && divergence.is_none() && unhealed {
                divergence = Some((at, span.unit));
            }
            if let Some(d) = deep {
                d.push(at, if unhealed { unit_mask } else { 0 });
            }
        }
        if let Some(tr) = trace {
            tr.detect_cycle = decided_at;
            if let Some((cycle, unit)) = divergence {
                tr.divergence_cycle = Some(cycle);
                tr.diverged_unit = unit;
            }
        }
        make(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::warm_pipeline;
    use tfsim_isa::{Asm, Reg};
    use tfsim_uarch::PipelineConfig;

    fn start_point(config: PipelineConfig) -> StartPoint {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R10, 0x9e3779b97f4a7c15u64);
        a.li(Reg::R1, 0x10_0000);
        a.li(Reg::R7, 60_000);
        a.li(Reg::R9, 0);
        let top = a.here_label();
        a.mulq_i(Reg::R10, 33, Reg::R10);
        a.addq_i(Reg::R10, 7, Reg::R10);
        a.srl_i(Reg::R10, 20, Reg::R4);
        a.and_i(Reg::R4, 0xf8, Reg::R5);
        a.addq(Reg::R1, Reg::R5, Reg::R5);
        a.stq(Reg::R4, Reg::R5, 0);
        a.ldq(Reg::R6, Reg::R5, 0);
        a.addq(Reg::R9, Reg::R6, Reg::R9);
        a.subq_i(Reg::R7, 1, Reg::R7);
        a.bne(Reg::R7, top);
        a.li(Reg::V0, tfsim_isa::syscall::EXIT);
        a.mov(Reg::R9, Reg::A0);
        a.callsys();
        let p = tfsim_isa::Program::new("sliced-bed", a).with_data(0x10_0000, vec![0u8; 256]);
        let warmed = warm_pipeline(&p, config, 500);
        StartPoint::prepare(&warmed, 3_000, InjectionMask::LatchesAndRams)
    }

    #[test]
    fn sliced_matches_the_ladder_on_a_dense_sweep() {
        let sp = start_point(PipelineConfig::baseline());
        let specs: Vec<TrialSpec> = (0..96u64)
            .map(|t| TrialSpec {
                target: (t * 9_491) % sp.bit_count(),
                inject_cycle: [40, 3, 117, 3, 0, 249, 60, 117][t as usize % 8] + (t / 8),
            })
            .collect();
        let ladder = sp.run_trials(InjectionMask::LatchesAndRams, &specs, 1_200);
        let sliced = sp.run_trials_sliced(InjectionMask::LatchesAndRams, &specs, 1_200);
        assert_eq!(sliced.len(), ladder.len());
        for (i, (s, l)) in sliced.iter().zip(ladder.iter()).enumerate() {
            assert_eq!(s, l, "spec {i} ({:?}) diverged", specs[i]);
        }
    }

    #[test]
    fn sliced_traced_matches_the_ladder_traced() {
        let sp = start_point(PipelineConfig::baseline());
        let specs: Vec<TrialSpec> = (0..40u64)
            .map(|t| TrialSpec {
                target: (t * 13_577) % sp.bit_count(),
                inject_cycle: (t * 31) % 180,
            })
            .collect();
        let ladder = sp.run_trials_traced(InjectionMask::LatchesAndRams, &specs, 1_500);
        let sliced = sp.run_trials_sliced_traced(InjectionMask::LatchesAndRams, &specs, 1_500);
        assert_eq!(sliced.records, ladder.records);
        assert_eq!(sliced.traces, ladder.traces, "traces must match cycle-for-cycle");
        assert_eq!(sliced.faults, ladder.faults);
    }

    #[test]
    fn sliced_deep_traced_matches_the_ladder_deep_traced() {
        let sp = start_point(PipelineConfig::baseline());
        let specs: Vec<TrialSpec> = (0..40u64)
            .map(|t| TrialSpec {
                target: (t * 13_577) % sp.bit_count(),
                inject_cycle: (t * 31) % 180,
            })
            .collect();
        let ladder = sp.run_trials_deep_traced(InjectionMask::LatchesAndRams, &specs, 1_500);
        let sliced = sp.run_trials_sliced_deep_traced(InjectionMask::LatchesAndRams, &specs, 1_500);
        assert_eq!(sliced.records, ladder.records);
        assert_eq!(sliced.traces, ladder.traces);
        assert_eq!(sliced.deeps, ladder.deeps, "timelines must match sample-for-sample");
        assert!(sliced.deeps.iter().any(|d| !d.is_empty()), "sweep should see divergence");
        // Deep mode must not perturb what the plain traced path records.
        let plain = sp.run_trials_sliced_traced(InjectionMask::LatchesAndRams, &specs, 1_500);
        assert_eq!(plain.records, sliced.records);
        assert_eq!(plain.traces, sliced.traces);
        assert!(plain.deeps.is_empty());
    }

    #[test]
    fn sliced_is_width_independent() {
        let sp = start_point(PipelineConfig::baseline());
        let specs: Vec<TrialSpec> = (0..70u64)
            .map(|t| TrialSpec {
                target: (t * 7_919) % sp.bit_count(),
                inject_cycle: (t * 17) % 200,
            })
            .collect();
        let full = sp.run_trials_sliced(InjectionMask::LatchesAndRams, &specs, 1_000);
        for width in [1usize, 2, 7, 63, 64] {
            let w = sp.run_trials_sliced_with_width(
                InjectionMask::LatchesAndRams,
                &specs,
                1_000,
                width,
            );
            assert_eq!(w, full, "lane width {width} changed results");
        }
    }

    #[test]
    fn sliced_matches_under_the_protected_config() {
        let sp = start_point(PipelineConfig::protected());
        let specs: Vec<TrialSpec> = (0..60u64)
            .map(|t| TrialSpec {
                target: (t * 11_003) % sp.bit_count(),
                inject_cycle: (t * 13) % 150,
            })
            .collect();
        let ladder = sp.run_trials(InjectionMask::LatchesAndRams, &specs, 1_000);
        let sliced = sp.run_trials_sliced(InjectionMask::LatchesAndRams, &specs, 1_000);
        assert_eq!(sliced, ladder);
    }
}
