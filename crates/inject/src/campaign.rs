//! Campaign orchestration: many trials across benchmarks and start
//! points, executed on a thread pool, aggregated per benchmark and per
//! state category.
//!
//! # Telemetry
//!
//! [`run_campaign_observed`] threads a [`CampaignObs`] through the run:
//! per-trial events into an [`EventSink`], counters and latency histograms
//! into a [`CampaignMetrics`], and task completions into a
//! [`tfsim_obs::Progress`] gauge. With [`CampaignObs::disabled`] (what
//! [`run_campaign`] / [`run_campaign_on`] use) the workers take the exact
//! pre-telemetry code path — no timing calls, no trace slots.
//!
//! Event streams are deterministic: workers buffer per-task results, and
//! events are emitted *after* the thread pool drains, in canonical
//! (benchmark, start point) order. Two identical-seed campaigns produce
//! identical streams modulo the wall-clock fields, regardless of thread
//! count.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use tfsim_check::Rng;

use tfsim_bitstate::{Category, InjectionMask, StorageKind, UnitId};
use tfsim_isa::Program;
use tfsim_obs::{
    CounterId, DeepTrace, Event, EventSink, HistogramId, LocalSpans, MetricsRegistry, NoopSink,
    Progress, PruneDispositions, SpanProfiler, SCHEMA_VERSION,
};
use tfsim_uarch::PipelineConfig;
use tfsim_workloads::Workload;

use crate::journal::{CampaignJournal, JournaledTask};
use crate::trial::{
    warm_pipeline, FailureMode, Outcome, StartPoint, TrialFault, TrialRecord, TrialSpec, TrialTrace,
};

/// Locks a mutex, recovering from poisoning.
///
/// Campaign state behind these locks (the worklist, the output buffer) is
/// only ever mutated by short, panic-free push/pop sections, so a poisoned
/// lock means a *different* part of the worker unwound while holding the
/// guard-free data intact. Recovering the guard keeps the campaign alive
/// and lets the original panic surface instead of being masked by a
/// secondary `PoisonError` unwind in every other worker.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Campaign parameters. The defaults mirror the paper's methodology at a
/// reduced scale; [`CampaignConfig::paper_scale`] approaches the paper's
/// 25–30k trials per campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Which bits are eligible (latches+RAMs, or latches only).
    pub mask: InjectionMask,
    /// Pipeline configuration (baseline or protected).
    pub pipeline: PipelineConfig,
    /// Workload scale factor passed to the generators.
    pub scale: u32,
    /// Start points per benchmark.
    pub start_points: u32,
    /// Trials per start point.
    pub trials_per_start_point: u32,
    /// Cycles of warm-up before the first start point (cache/predictor
    /// warm-up, per the paper).
    pub warmup_cycles: u64,
    /// Cycles between consecutive start points of one benchmark.
    pub spacing_cycles: u64,
    /// Injection cycle is drawn uniformly from `[0, inject_window)`.
    pub inject_window: u64,
    /// Monitoring limit after injection (the paper uses 10,000).
    pub monitor_cycles: u64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (0 = all available).
    pub threads: usize,
    /// Run trials on the word-parallel (bit-sliced) engine instead of the
    /// scalar snapshot ladder. An execution strategy like `threads`:
    /// censuses, records, traces, and journals are byte-identical either
    /// way, so the flag is deliberately *not* part of the journal
    /// identity.
    pub sliced: bool,
    /// Run the analytic masking pruner before any trial: dead-window
    /// proofs and equivalence classes discharge most sites without a
    /// machine, and the remainder delegates to the sliced engine. An
    /// execution strategy like `sliced` and `threads`: censuses, records,
    /// traces, and journals are byte-identical either way, so the flag is
    /// deliberately *not* part of the journal identity. Implies the sliced
    /// engine for whatever still simulates.
    pub pruned: bool,
    /// Record each trial's full divergence timeline (which units held
    /// faulty state, per µArch check) and emit it as
    /// [`Event::Propagation`] after the trial's event. A trace *level*,
    /// not an experiment parameter: censuses, records, traces, and
    /// journals are byte-identical with or without it, so — like `sliced`
    /// and `threads` — it is deliberately not part of the journal
    /// identity. Timelines are not journaled either: tasks replayed from a
    /// journal contribute no `Propagation` events. Only effective when
    /// telemetry is on (an [`EventSink`] or metrics are attached).
    pub deep_trace: bool,
    /// Test hook: force the trial at `(benchmark, start_point, trial)` to
    /// panic mid-run, exercising the containment/quarantine machinery
    /// end-to-end. Never set by the presets; not part of the experiment
    /// configuration (and deliberately excluded from the journal header).
    #[doc(hidden)]
    pub panic_shim: Option<(usize, u32, u32)>,
}

impl CampaignConfig {
    /// A fast configuration for tests and smoke runs (~800 trials).
    pub fn quick(seed: u64) -> CampaignConfig {
        CampaignConfig {
            mask: InjectionMask::LatchesAndRams,
            pipeline: PipelineConfig::baseline(),
            scale: 2,
            start_points: 2,
            trials_per_start_point: 40,
            warmup_cycles: 1_500,
            spacing_cycles: 600,
            inject_window: 200,
            monitor_cycles: 3_000,
            seed,
            threads: 0,
            sliced: false,
            pruned: false,
            deep_trace: false,
            panic_shim: None,
        }
    }

    /// The default experiment scale used by the figure harness
    /// (~6,000 trials per campaign; tighter than `quick`, far faster than
    /// the paper's full 25–30k).
    pub fn default_scale(seed: u64) -> CampaignConfig {
        CampaignConfig {
            mask: InjectionMask::LatchesAndRams,
            pipeline: PipelineConfig::baseline(),
            scale: 2,
            start_points: 6,
            trials_per_start_point: 100,
            warmup_cycles: 2_000,
            spacing_cycles: 500,
            inject_window: 250,
            monitor_cycles: 10_000,
            seed,
            threads: 0,
            sliced: false,
            pruned: false,
            deep_trace: false,
            panic_shim: None,
        }
    }

    /// The paper's scale: ~25,000–30,000 trials, 10,000-cycle monitoring.
    pub fn paper_scale(seed: u64) -> CampaignConfig {
        CampaignConfig {
            mask: InjectionMask::LatchesAndRams,
            pipeline: PipelineConfig::baseline(),
            scale: 4,
            start_points: 27,
            trials_per_start_point: 100,
            warmup_cycles: 2_000,
            spacing_cycles: 700,
            inject_window: 250,
            monitor_cycles: 10_000,
            seed,
            threads: 0,
            sliced: false,
            pruned: false,
            deep_trace: false,
            panic_shim: None,
        }
    }

    /// Monitoring horizon needed from the latest start point.
    fn horizon(&self) -> u64 {
        self.inject_window + self.monitor_cycles
    }
}

/// Outcome counters for a slice of trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// µArch Match trials.
    pub matched: u64,
    /// Gray Area trials.
    pub gray: u64,
    /// Failures indexed by [`FailureMode::ALL`] order.
    pub failures: [u64; 7],
}

impl OutcomeCounts {
    /// Records one outcome.
    pub fn add(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::MicroArchMatch => self.matched += 1,
            Outcome::GrayArea => self.gray += 1,
            Outcome::Failure(mode) => self.failures[mode.index()] += 1,
        }
    }

    /// Merges another counter.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.matched += other.matched;
        self.gray += other.gray;
        for i in 0..7 {
            self.failures[i] += other.failures[i];
        }
    }

    /// Count for a specific failure mode.
    pub fn failure(&self, mode: FailureMode) -> u64 {
        self.failures[mode.index()]
    }

    /// All failures (SDC + Terminated).
    pub fn failed(&self) -> u64 {
        self.failures.iter().sum()
    }

    /// Failures classified as SDC.
    pub fn sdc(&self) -> u64 {
        FailureMode::ALL
            .iter()
            .filter(|m| !m.is_termination())
            .map(|m| self.failure(*m))
            .sum()
    }

    /// Failures classified as Terminated.
    pub fn terminated(&self) -> u64 {
        FailureMode::ALL
            .iter()
            .filter(|m| m.is_termination())
            .map(|m| self.failure(*m))
            .sum()
    }

    /// All trials.
    pub fn total(&self) -> u64 {
        self.matched + self.gray + self.failed()
    }

    /// Fraction of trials conclusively masked (µArch Match).
    pub fn masked_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.matched as f64 / self.total() as f64
    }

    /// Fraction of trials that are not known failures (µArch Match + Gray).
    pub fn benign_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.matched + self.gray) as f64 / self.total() as f64
    }

    /// Fraction of known failures.
    pub fn failure_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.failed() as f64 / self.total() as f64
    }
}

/// One Figure 6 scatter point: trials of one start point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// Benchmark index within the campaign.
    pub benchmark: usize,
    /// Mean golden valid-instruction count at the injection cycles.
    pub valid_instructions: f64,
    /// Fraction of trials that did not fail.
    pub benign_fraction: f64,
    /// Trials behind this point.
    pub trials: u64,
}

/// Aggregated results for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// Workload name.
    pub name: String,
    /// Outcome totals.
    pub counts: OutcomeCounts,
}

/// One quarantined trial: a [`TrialFault`] located within the campaign.
///
/// Harness bookkeeping, not science: quarantined trials never enter the
/// outcome census (`CampaignResult::totals` and friends), they are
/// reported alongside it so an escaped panic is visible without
/// contaminating the paper's taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignQuarantine {
    /// Benchmark index within the campaign.
    pub benchmark: usize,
    /// Start point within the benchmark.
    pub start_point: u32,
    /// Trial index within the start point (position in the drawn plan).
    pub trial: usize,
    /// The spec whose run unwound.
    pub spec: TrialSpec,
    /// The panic payload, when it carried a message.
    pub panic_msg: String,
}

/// Full campaign results.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Per-benchmark outcome totals (paper Figure 3).
    pub benchmarks: Vec<BenchmarkResult>,
    /// Outcomes grouped by the flipped bit's category (Figures 4/5/9).
    pub by_category: BTreeMap<Category, OutcomeCounts>,
    /// Outcomes grouped by (category, storage kind).
    pub by_category_kind: BTreeMap<(Category, StorageKind), OutcomeCounts>,
    /// Figure 6 scatter points (one per start point).
    pub scatter: Vec<ScatterPoint>,
    /// Eligible bits per model instance (constant across a campaign).
    pub eligible_bits: u64,
    /// Trials contained by the per-trial supervisor, in canonical
    /// (benchmark, start point, trial) order. Empty unless the hardened
    /// model has an escape (or the test shim forced one).
    pub quarantined: Vec<CampaignQuarantine>,
    /// Pruner disposition totals over the live-executed tasks. `None`
    /// unless the campaign ran with `pruned` (journal-replayed tasks
    /// contribute nothing: their trials were not re-pruned).
    pub prune: Option<PruneDispositions>,
}

impl CampaignResult {
    /// Aggregate outcome counts over every benchmark.
    pub fn totals(&self) -> OutcomeCounts {
        let mut t = OutcomeCounts::default();
        for b in &self.benchmarks {
            t.merge(&b.counts);
        }
        t
    }

    /// Failure-mode breakdown by category: for each category, the count of
    /// trials ending in each of the seven modes (Figure 7).
    pub fn failure_modes_by_category(&self) -> BTreeMap<Category, [u64; 7]> {
        self.by_category.iter().map(|(c, o)| (*c, o.failures)).collect()
    }
}

/// Campaign instruments pre-registered on a [`MetricsRegistry`].
///
/// Workers record into thread-local [`tfsim_obs::LocalMetrics`] scratchpads
/// and merge once per (benchmark, start point) task, so the per-trial hot
/// path touches plain integers only.
pub struct CampaignMetrics {
    registry: MetricsRegistry,
    trials: CounterId,
    matched: CounterId,
    gray: CounterId,
    failed: CounterId,
    warmup_ns: CounterId,
    prepare_ns: CounterId,
    advance_ns: CounterId,
    monitor_ns: CounterId,
    fail_latency: HistogramId,
    match_latency: HistogramId,
}

impl CampaignMetrics {
    /// Creates the standard campaign instrument set.
    pub fn new() -> CampaignMetrics {
        let mut registry = MetricsRegistry::new();
        CampaignMetrics {
            trials: registry.counter("trials"),
            matched: registry.counter("matched"),
            gray: registry.counter("gray"),
            failed: registry.counter("failed"),
            warmup_ns: registry.counter("phase/warmup_ns"),
            prepare_ns: registry.counter("phase/prepare_ns"),
            advance_ns: registry.counter("phase/advance_ns"),
            monitor_ns: registry.counter("phase/monitor_ns"),
            fail_latency: registry.histogram("cycles-to-failure-detection"),
            match_latency: registry.histogram("cycles-to-reconvergence"),
            registry,
        }
    }

    /// Total trials recorded so far.
    pub fn trials(&self) -> u64 {
        self.registry.counter_value(self.trials)
    }

    /// Trials that ended in a known failure so far.
    pub fn failed(&self) -> u64 {
        self.registry.counter_value(self.failed)
    }

    /// Snapshot of the failure-detection latency histogram (cycles from
    /// injection to the decision).
    pub fn fail_latency(&self) -> tfsim_obs::Histogram {
        self.registry.histogram_value(self.fail_latency)
    }

    /// Renders every instrument as text.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

impl Default for CampaignMetrics {
    fn default() -> Self {
        CampaignMetrics::new()
    }
}

/// Observability hooks for one campaign run.
///
/// All three channels are optional in effect: [`CampaignObs::disabled`]
/// yields a run whose workers execute the pre-telemetry code path (no
/// per-trial trace collection, no timing syscalls) — the zero-overhead-
/// when-disabled contract, pinned by the `inject/trials-per-sec` bench.
pub struct CampaignObs<'a> {
    /// Destination for the per-trial event stream.
    pub sink: &'a dyn EventSink,
    /// Counters and latency histograms, if wanted.
    pub metrics: Option<&'a CampaignMetrics>,
    /// Live task-completion gauge, if wanted.
    pub progress: Option<&'a Progress>,
    /// Hierarchical wall-time self-profile, if wanted: workers time each
    /// task's phases into thread-local [`LocalSpans`] scratchpads, merged
    /// here once per task. With a sink attached, the merged tree is also
    /// emitted as [`Event::Span`] events before the campaign footer.
    pub spans: Option<&'a SpanProfiler>,
}

impl CampaignObs<'static> {
    /// No sink, no metrics, no progress: campaigns run exactly as if the
    /// telemetry layer did not exist.
    pub fn disabled() -> CampaignObs<'static> {
        static NOOP: NoopSink = NoopSink;
        CampaignObs { sink: &NOOP, metrics: None, progress: None, spans: None }
    }
}

fn outcome_strings(outcome: Outcome) -> (&'static str, Option<&'static str>) {
    match outcome {
        Outcome::MicroArchMatch => ("match", None),
        Outcome::GrayArea => ("gray", None),
        Outcome::Failure(mode) => ("fail", Some(mode.label())),
    }
}

/// Runs a campaign over the ten standard workloads.
pub fn run_campaign(config: &CampaignConfig) -> CampaignResult {
    let workloads = tfsim_workloads::all();
    run_campaign_on(config, &workloads)
}

/// Runs a campaign over an explicit workload list.
pub fn run_campaign_on(config: &CampaignConfig, workloads: &[Workload]) -> CampaignResult {
    run_campaign_observed(config, workloads, &CampaignObs::disabled())
}

/// Runs a campaign over an explicit workload list with telemetry.
pub fn run_campaign_observed(
    config: &CampaignConfig,
    workloads: &[Workload],
    obs: &CampaignObs<'_>,
) -> CampaignResult {
    run_campaign_journaled(config, workloads, obs, None)
}

/// Runs a campaign over an explicit workload list with telemetry and an
/// optional durable [`CampaignJournal`].
///
/// With a journal, every completed (benchmark, start point) task is
/// appended (and fsync'd) as it finishes, and tasks the journal already
/// holds — from an interrupted earlier run resumed with
/// [`CampaignJournal::resume`] — are replayed from it instead of being
/// re-executed. Because each task's trial plan is a pure function of the
/// seed (per-task PRNG substreams) and aggregation happens in canonical
/// task order, a resumed campaign produces results byte-identical to an
/// uninterrupted run at any thread count.
pub fn run_campaign_journaled(
    config: &CampaignConfig,
    workloads: &[Workload],
    obs: &CampaignObs<'_>,
    journal: Option<&CampaignJournal>,
) -> CampaignResult {
    struct Task {
        bench: usize,
        start_point: u32,
    }
    let replayed: Vec<JournaledTask> =
        journal.map(|j| j.completed().to_vec()).unwrap_or_default();
    let done: std::collections::BTreeSet<(usize, u32)> =
        replayed.iter().map(|t| (t.bench, t.start_point)).collect();
    let mut tasks: Vec<Task> = (0..workloads.len())
        .flat_map(|b| (0..config.start_points).map(move |s| Task { bench: b, start_point: s }))
        .filter(|t| !done.contains(&(t.bench, t.start_point)))
        .collect();
    // Workers take tasks with `pop()`, so order the list to serve the
    // longest warm-ups (highest start point) first: scheduling the most
    // expensive tasks early keeps the pool from stranding one worker on
    // them at the tail. Aggregation is order-independent, so schedules
    // cannot change results.
    tasks.sort_by_key(|t| (t.start_point, std::cmp::Reverse(t.bench)));
    let task_count = (tasks.len() + replayed.len()) as u64;
    let work = Mutex::new(tasks);

    // Trace collection is active if anything downstream consumes it; the
    // untraced path must stay byte-for-byte the pre-telemetry machine code.
    // A journal is such a consumer: journaled runs always compute (and
    // journal) traces so the file's bytes are independent of trace level
    // and a resume replays full trial fidelity.
    let traced =
        obs.sink.enabled() || obs.metrics.is_some() || obs.spans.is_some() || journal.is_some();
    // Deep tracing is a refinement of tracing: without a consumer the
    // timelines would be dropped on the floor, so the flag is inert.
    let deep = traced && config.deep_trace;
    let campaign_t0 = traced.then(Instant::now);
    if let Some(p) = obs.progress {
        p.set_total(task_count);
    }
    if obs.sink.enabled() {
        obs.sink.emit(&Event::CampaignStart {
            schema: SCHEMA_VERSION,
            seed: config.seed,
            benchmarks: workloads.iter().map(|w| w.name.to_string()).collect(),
            start_points: config.start_points as u64,
            trials_per_start_point: config.trials_per_start_point as u64,
            inject_window: config.inject_window,
            monitor_cycles: config.monitor_cycles,
        });
    }

    struct TaskOutput {
        bench: usize,
        start_point: u32,
        records: Vec<TrialRecord>,
        scatter: ScatterPoint,
        eligible_bits: u64,
        faults: Vec<TrialFault>,
        /// Pruner disposition tally (`None` unless the task ran pruned;
        /// journal-replayed tasks report none — no pruning was re-done).
        prune: Option<PruneDispositions>,
        // Telemetry (empty / zero on the untraced path).
        specs: Vec<TrialSpec>,
        traces: Vec<TrialTrace>,
        /// Divergence timelines, aligned with `records` (empty unless the
        /// campaign ran deep-traced; replayed tasks have none — timelines
        /// are not journaled).
        deeps: Vec<DeepTrace>,
        warmup_ns: u64,
        prepare_ns: u64,
        advance_ns: u64,
        monitor_ns: u64,
    }

    /// The Figure 6 scatter point of one task (classified records only;
    /// the same arithmetic whether the task ran live or was replayed from
    /// a journal).
    fn scatter_of(bench: usize, records: &[TrialRecord]) -> ScatterPoint {
        let mut benign = 0u64;
        let mut valid_sum = 0u64;
        for rec in records {
            if !rec.outcome.is_failure() {
                benign += 1;
            }
            valid_sum += rec.valid_instructions as u64;
        }
        let n = records.len().max(1) as f64;
        ScatterPoint {
            benchmark: bench,
            valid_instructions: valid_sum as f64 / n,
            benign_fraction: benign as f64 / n,
            trials: records.len() as u64,
        }
    }

    // Tasks replayed from the journal become ordinary task outputs (zero
    // phase timings: no work was re-done). Metrics and progress see them
    // so a resumed run's counters cover the whole campaign.
    let mut restored: Vec<TaskOutput> = Vec::with_capacity(replayed.len());
    for t in replayed {
        if let Some(metrics) = obs.metrics {
            let mut local = metrics.registry.local();
            local.add(metrics.trials, t.records.len() as u64);
            for (rec, tr) in t.records.iter().zip(t.traces.iter()) {
                let latency = tr.detect_cycle - rec.inject_cycle;
                match rec.outcome {
                    Outcome::MicroArchMatch => {
                        local.add(metrics.matched, 1);
                        local.observe(metrics.match_latency, latency);
                    }
                    Outcome::GrayArea => local.add(metrics.gray, 1),
                    Outcome::Failure(_) => {
                        local.add(metrics.failed, 1);
                        local.observe(metrics.fail_latency, latency);
                    }
                }
            }
            metrics.registry.absorb(&local);
        }
        if let Some(p) = obs.progress {
            p.add(1);
        }
        restored.push(TaskOutput {
            bench: t.bench,
            start_point: t.start_point,
            scatter: scatter_of(t.bench, &t.records),
            records: t.records,
            eligible_bits: t.eligible_bits,
            faults: t.faults,
            prune: None,
            specs: t.specs,
            traces: t.traces,
            deeps: Vec::new(),
            warmup_ns: 0,
            prepare_ns: 0,
            advance_ns: 0,
            monitor_ns: 0,
        });
    }
    let outputs: Mutex<Vec<TaskOutput>> = Mutex::new(restored);

    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        config.threads
    };

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let task = {
                    let mut q = lock_recover(&work);
                    match q.pop() {
                        Some(t) => t,
                        None => return,
                    }
                };
                let w = &workloads[task.bench];
                let program: Program = w.build(config.scale);
                let warm = config.warmup_cycles + config.spacing_cycles * task.start_point as u64;
                // Per-task span scratchpad: campaign → benchmark → spN →
                // {warmup, golden, trials, journal}, merged into the shared
                // profiler once, after the task.
                let mut spans = obs.spans.map(|_| {
                    let mut ls = LocalSpans::new();
                    ls.enter("campaign");
                    ls.enter(w.name);
                    ls.enter(&format!("sp{}", task.start_point));
                    ls
                });
                if let Some(ls) = spans.as_mut() {
                    ls.enter("warmup");
                }
                let t0 = traced.then(Instant::now);
                let pipeline = warm_pipeline(&program, config.pipeline, warm);
                let t1 = traced.then(Instant::now);
                if let Some(ls) = spans.as_mut() {
                    ls.exit();
                    ls.enter("golden");
                }
                let sp = StartPoint::prepare(&pipeline, config.horizon(), config.mask);
                let t2 = traced.then(Instant::now);
                if let Some(ls) = spans.as_mut() {
                    ls.exit();
                }

                // Every (benchmark, start point) task owns PRNG substream
                // `bench << 32 | start_point` of the campaign seed, so the
                // trial sequence is a pure function of the config — not of
                // thread count or work-stealing order.
                let mut rng = Rng::from_seed_stream(
                    config.seed,
                    (task.bench as u64) << 32 | task.start_point as u64,
                );
                // Draw the whole trial plan first (target then cycle per
                // trial — the exact draw order of the historical per-trial
                // loop, so seeds reproduce the same campaigns), then run it
                // through the batched snapshot-ladder path.
                let specs: Vec<TrialSpec> = (0..config.trials_per_start_point)
                    .map(|_| TrialSpec {
                        target: rng.gen_range(0..sp.bit_count()),
                        inject_cycle: rng.gen_range(0..config.inject_window),
                    })
                    .collect();
                let shim = config.panic_shim.and_then(|(b, s, t)| {
                    (b == task.bench && s == task.start_point).then_some(t as usize)
                });
                let mut prune = None;
                if let Some(ls) = spans.as_mut() {
                    ls.enter("trials");
                }
                let batch = match (traced, config.pruned, config.sliced) {
                    (true, true, _) => {
                        let (batch, d) = sp.run_trials_pruned_core::<true>(
                            config.mask,
                            &specs,
                            config.monitor_cycles,
                            crate::sliced::LANE_WIDTH,
                            shim,
                            deep,
                        );
                        prune = Some(d);
                        batch
                    }
                    (false, true, _) => {
                        let (batch, d) = sp.run_trials_pruned_core::<false>(
                            config.mask,
                            &specs,
                            config.monitor_cycles,
                            crate::sliced::LANE_WIDTH,
                            shim,
                            false,
                        );
                        prune = Some(d);
                        batch
                    }
                    (true, false, false) => sp.run_trials_core::<true>(
                        config.mask,
                        &specs,
                        config.monitor_cycles,
                        shim,
                        deep,
                    ),
                    (false, false, false) => sp.run_trials_core::<false>(
                        config.mask,
                        &specs,
                        config.monitor_cycles,
                        shim,
                        false,
                    ),
                    (true, false, true) => sp.run_trials_sliced_core::<true>(
                        config.mask,
                        &specs,
                        config.monitor_cycles,
                        crate::sliced::LANE_WIDTH,
                        shim,
                        deep,
                    ),
                    (false, false, true) => sp.run_trials_sliced_core::<false>(
                        config.mask,
                        &specs,
                        config.monitor_cycles,
                        crate::sliced::LANE_WIDTH,
                        shim,
                        false,
                    ),
                };
                if let Some(ls) = spans.as_mut() {
                    // Engine-internal phase attribution: counted by the
                    // batch itself (no extra clocks here), charged as
                    // children of the open `trials` span.
                    ls.record("advance", batch.advance_ns, batch.records.len() as u64);
                    ls.record("ride", batch.ride_ns, 1);
                    ls.record("classify", batch.classify_ns, 1);
                    ls.record("prune", batch.prune_ns, 1);
                    ls.exit();
                }
                let (records, traces, deeps, faults, advance_ns, monitor_ns) = (
                    batch.records,
                    batch.traces,
                    batch.deeps,
                    batch.faults,
                    batch.advance_ns,
                    batch.monitor_ns,
                );
                let warmup_ns = match (t0, t1) {
                    (Some(a), Some(b)) => b.duration_since(a).as_nanos() as u64,
                    _ => 0,
                };
                let prepare_ns = match (t1, t2) {
                    (Some(a), Some(b)) => b.duration_since(a).as_nanos() as u64,
                    _ => 0,
                };

                if let Some(metrics) = obs.metrics {
                    // One scratchpad per task, merged under one short lock:
                    // the per-trial recording below is lock- and atomic-free.
                    let mut local = metrics.registry.local();
                    local.add(metrics.trials, records.len() as u64);
                    local.add(metrics.warmup_ns, warmup_ns);
                    local.add(metrics.prepare_ns, prepare_ns);
                    local.add(metrics.advance_ns, advance_ns);
                    local.add(metrics.monitor_ns, monitor_ns);
                    for (rec, tr) in records.iter().zip(traces.iter()) {
                        let latency = tr.detect_cycle - rec.inject_cycle;
                        match rec.outcome {
                            Outcome::MicroArchMatch => {
                                local.add(metrics.matched, 1);
                                local.observe(metrics.match_latency, latency);
                            }
                            Outcome::GrayArea => local.add(metrics.gray, 1),
                            Outcome::Failure(_) => {
                                local.add(metrics.failed, 1);
                                local.observe(metrics.fail_latency, latency);
                            }
                        }
                    }
                    metrics.registry.absorb(&local);
                }
                if let Some(p) = obs.progress {
                    p.add(1);
                }

                let scatter = scatter_of(task.bench, &records);
                if let Some(ls) = spans.as_mut() {
                    ls.enter("journal");
                }
                if let Some(j) = journal {
                    // Durability before visibility: the task joins the
                    // in-memory aggregation only after its journal line is
                    // on disk (a crash between the two re-runs the task,
                    // which is idempotent). Append failures must not kill
                    // a campaign that can still finish in memory.
                    let entry = JournaledTask {
                        bench: task.bench,
                        start_point: task.start_point,
                        eligible_bits: sp.bit_count(),
                        specs: specs.clone(),
                        records: records.clone(),
                        traces: traces.clone(),
                        faults: faults.clone(),
                    };
                    if let Err(e) = j.append_task(&entry) {
                        eprintln!(
                            "warning: journal append failed for task ({}, {}): {e}",
                            task.bench, task.start_point
                        );
                    }
                }
                if let Some((ls, profiler)) = spans.as_mut().zip(obs.spans) {
                    ls.exit(); // journal
                    ls.exit(); // spN
                    ls.exit(); // benchmark
                    ls.exit(); // campaign
                    profiler.absorb(ls);
                }
                lock_recover(&outputs).push(TaskOutput {
                    bench: task.bench,
                    start_point: task.start_point,
                    records,
                    scatter,
                    eligible_bits: sp.bit_count(),
                    faults,
                    prune,
                    specs,
                    traces,
                    deeps,
                    warmup_ns,
                    prepare_ns,
                    advance_ns,
                    monitor_ns,
                });
            });
        }
    });

    // Canonical task order: events must not depend on worker scheduling.
    let mut outputs = outputs.into_inner().unwrap_or_else(|e| e.into_inner());
    outputs.sort_by_key(|o| (o.bench, o.start_point));

    // Aggregate.
    let mut benchmarks: Vec<BenchmarkResult> = workloads
        .iter()
        .map(|w| BenchmarkResult { name: w.name.to_string(), counts: OutcomeCounts::default() })
        .collect();
    let mut by_category: BTreeMap<Category, OutcomeCounts> = BTreeMap::new();
    let mut by_category_kind: BTreeMap<(Category, StorageKind), OutcomeCounts> = BTreeMap::new();
    let mut scatter = Vec::new();
    let mut eligible_bits = 0;
    let mut quarantined = Vec::new();
    let mut prune_totals: Option<PruneDispositions> = None;
    for out in &outputs {
        if let Some(p) = &out.prune {
            prune_totals.get_or_insert_with(PruneDispositions::default).merge(p);
        }
        for rec in &out.records {
            benchmarks[out.bench].counts.add(rec.outcome);
            by_category.entry(rec.category).or_default().add(rec.outcome);
            by_category_kind.entry((rec.category, rec.kind)).or_default().add(rec.outcome);
        }
        for f in &out.faults {
            quarantined.push(CampaignQuarantine {
                benchmark: out.bench,
                start_point: out.start_point,
                trial: f.index,
                spec: f.spec,
                panic_msg: f.panic_msg.clone(),
            });
        }
        scatter.push(out.scatter);
        // Same mask + same machine model ⇒ every task must count the same
        // eligible-bit population. A mismatch means the model diverged
        // between tasks (e.g. configuration-dependent state walk) and the
        // per-bit rates would be wrong — fail loudly, never keep one
        // arbitrary winner.
        assert!(
            eligible_bits == 0 || eligible_bits == out.eligible_bits,
            "eligible-bit count disagrees across campaign tasks: {} vs {} (benchmark {})",
            eligible_bits,
            out.eligible_bits,
            out.bench,
        );
        eligible_bits = out.eligible_bits;
    }
    scatter.sort_by(|a, b| {
        a.benchmark
            .cmp(&b.benchmark)
            .then(a.valid_instructions.total_cmp(&b.valid_instructions))
    });

    let result = CampaignResult {
        benchmarks,
        by_category,
        by_category_kind,
        scatter,
        eligible_bits,
        quarantined,
        prune: prune_totals,
    };

    if obs.sink.enabled() {
        for out in &outputs {
            let (bench, sp) = (out.bench as u64, out.start_point as u64);
            for (phase, ns) in [
                ("warmup", out.warmup_ns),
                ("prepare", out.prepare_ns),
                ("advance", out.advance_ns),
                ("monitor", out.monitor_ns),
            ] {
                obs.sink.emit(&Event::Phase {
                    benchmark: bench,
                    start_point: sp,
                    phase: phase.to_string(),
                    wall_ns: ns,
                });
            }
            // Trial numbers index the drawn plan (`specs`), so a
            // quarantined trial keeps its slot — it becomes a `Quarantine`
            // event — and every surviving trial's number is unchanged vs.
            // a run without the panic.
            let mut fault_iter = out.faults.iter().peekable();
            let mut classified = out.records.iter().zip(out.traces.iter());
            let mut deep_iter = out.deeps.iter();
            for (i, spec) in out.specs.iter().enumerate() {
                if fault_iter.peek().is_some_and(|f| f.index == i) {
                    let f = fault_iter.next().expect("peeked");
                    obs.sink.emit(&Event::Quarantine {
                        benchmark: bench,
                        start_point: sp,
                        trial: i as u64,
                        target: spec.target,
                        inject_cycle: spec.inject_cycle,
                        panic_msg: f.panic_msg.clone(),
                    });
                    continue;
                }
                let (rec, tr) = classified.next().expect("record per surviving spec");
                let (outcome, mode) = outcome_strings(rec.outcome);
                obs.sink.emit(&Event::Trial {
                    benchmark: bench,
                    start_point: sp,
                    trial: i as u64,
                    target: spec.target,
                    inject_cycle: rec.inject_cycle,
                    category: rec.category.label().to_string(),
                    kind: rec.kind.label().to_string(),
                    unit: rec.unit.map(|u| u.label().to_string()),
                    outcome: outcome.to_string(),
                    mode: mode.map(str::to_string),
                    detect_cycle: tr.detect_cycle,
                    divergence_cycle: tr.divergence_cycle,
                    diverged_unit: tr.diverged_unit.map(|u| u.label().to_string()),
                    valid_instructions: rec.valid_instructions as u64,
                });
                // Deep-traced campaigns follow each trial with its
                // divergence timeline (omitted when the trial never
                // diverged — an empty timeline carries no information).
                if let Some(d) = deep_iter.next() {
                    if !d.is_empty() {
                        obs.sink.emit(&Event::Propagation {
                            benchmark: bench,
                            start_point: sp,
                            trial: i as u64,
                            samples: d.to_labels(|b| UnitId::ALL[b].label().to_string()),
                        });
                    }
                }
            }
        }
        // The merged span tree rides in the event stream too (sorted by
        // path: deterministic at any thread count once wall clocks are
        // stripped).
        if let Some(profiler) = obs.spans {
            for ev in profiler.snapshot().events() {
                obs.sink.emit(&ev);
            }
        }
        let totals = result.totals();
        obs.sink.emit(&Event::CampaignEnd {
            trials: totals.total(),
            matched: totals.matched,
            gray: totals.gray,
            failed: totals.failed(),
            quarantined: result.quarantined.len() as u64,
            eligible_bits,
            wall_ns: campaign_t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
            prune: result.prune,
        });
        obs.sink.flush();
    }

    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counts_bookkeeping() {
        let mut c = OutcomeCounts::default();
        c.add(Outcome::MicroArchMatch);
        c.add(Outcome::GrayArea);
        c.add(Outcome::Failure(FailureMode::Regfile));
        c.add(Outcome::Failure(FailureMode::Locked));
        assert_eq!(c.total(), 4);
        assert_eq!(c.failed(), 2);
        assert_eq!(c.sdc(), 1);
        assert_eq!(c.terminated(), 1);
        assert_eq!(c.failure(FailureMode::Regfile), 1);
        assert!((c.masked_fraction() - 0.25).abs() < 1e-12);
        assert!((c.benign_fraction() - 0.5).abs() < 1e-12);
        let mut d = OutcomeCounts::default();
        d.merge(&c);
        assert_eq!(d, c);
    }

    #[test]
    fn tiny_campaign_runs_end_to_end() {
        // One small benchmark, few trials: checks threading, aggregation,
        // and that masking dominates.
        let mut config = CampaignConfig::quick(3);
        config.start_points = 1;
        config.trials_per_start_point = 30;
        config.monitor_cycles = 1_500;
        config.scale = 1;
        let workloads: Vec<_> = tfsim_workloads::all()
            .into_iter()
            .filter(|w| w.name == "gzip-like" || w.name == "twolf-like")
            .collect();
        let result = run_campaign_on(&config, &workloads);
        let totals = result.totals();
        assert_eq!(totals.total(), 60);
        assert_eq!(result.benchmarks.len(), 2);
        assert_eq!(result.scatter.len(), 2);
        assert!(result.eligible_bits > 40_000);
        assert!(
            totals.benign_fraction() > 0.5,
            "most faults must be benign: {totals:?}"
        );
        // Category attribution covered every trial.
        let cat_total: u64 = result.by_category.values().map(|c| c.total()).sum();
        assert_eq!(cat_total, 60);
    }

    #[test]
    fn observed_campaign_matches_unobserved_and_emits_events() {
        let mut config = CampaignConfig::quick(5);
        config.start_points = 1;
        config.trials_per_start_point = 12;
        config.monitor_cycles = 800;
        config.scale = 1;
        let workloads: Vec<_> = tfsim_workloads::all()
            .into_iter()
            .filter(|w| w.name == "gzip-like")
            .collect();

        let plain = run_campaign_on(&config, &workloads);

        let sink = tfsim_obs::RingSink::new(10_000);
        let metrics = CampaignMetrics::new();
        let progress = Progress::new();
        let obs = CampaignObs {
            sink: &sink,
            metrics: Some(&metrics),
            progress: Some(&progress),
            spans: None,
        };
        let observed = run_campaign_observed(&config, &workloads, &obs);

        // Observation must not change science.
        assert_eq!(observed.totals(), plain.totals());
        assert_eq!(observed.eligible_bits, plain.eligible_bits);

        // Event stream: header, 4 phase events, 12 trials, footer.
        let events = sink.events();
        assert_eq!(events.len(), 1 + 4 + 12 + 1);
        assert!(matches!(events[0], Event::CampaignStart { seed: 5, .. }));
        let trials = events
            .iter()
            .filter(|e| matches!(e, Event::Trial { .. }))
            .count();
        assert_eq!(trials, 12);
        match events.last().unwrap() {
            Event::CampaignEnd { trials, matched, gray, failed, .. } => {
                let t = observed.totals();
                assert_eq!((*trials, *matched, *gray, *failed), (12, t.matched, t.gray, t.failed()));
            }
            other => panic!("expected campaign_end, got {other:?}"),
        }

        // Metrics and progress agree with the result.
        assert_eq!(metrics.trials(), 12);
        assert_eq!(metrics.failed(), observed.totals().failed());
        assert_eq!(progress.snapshot(), (1, 1));
        assert!(metrics.render().contains("trials"));
    }

    #[test]
    fn campaigns_are_reproducible() {
        let mut config = CampaignConfig::quick(11);
        config.start_points = 1;
        config.trials_per_start_point = 15;
        config.monitor_cycles = 800;
        config.scale = 1;
        config.threads = 2;
        let workloads: Vec<_> = tfsim_workloads::all()
            .into_iter()
            .filter(|w| w.name == "vpr-like")
            .collect();
        let a = run_campaign_on(&config, &workloads);
        let b = run_campaign_on(&config, &workloads);
        assert_eq!(a.totals(), b.totals());
    }
}
