//! Crash-safe, append-only campaign journal.
//!
//! One JSONL file per campaign: a header line pinning the experiment
//! configuration, then one line per completed `(benchmark, start point)`
//! task carrying everything needed to replay that task's contribution to
//! the census without re-running it. Every append is flushed and
//! `sync_data`'d before the task becomes visible to the in-memory
//! aggregation, so the journal never claims work the disk has not seen
//! ("durability before visibility").
//!
//! Recovery rule for a file cut short by a crash (or by the resume
//! property test, which truncates at *every* byte boundary):
//!
//! * an unterminated final line is the torn tail of an interrupted
//!   append — dropped silently;
//! * a newline-terminated final line that fails to parse is treated the
//!   same way (the line plus its `\n` can still land in separate disk
//!   sectors) — dropped with a warning;
//! * a parse failure *before* the final line is not a torn append and is
//!   a hard error: the file is damaged, not merely interrupted;
//! * the file is physically truncated ([`File::set_len`]) to the valid
//!   prefix, so subsequent appends extend a clean journal.
//!
//! Because each task's trial plan is a pure function of the campaign seed
//! and aggregation happens in canonical task order, replaying journaled
//! tasks and re-running the rest reproduces the byte-identical census of
//! an uninterrupted run (see `tests/campaign_resume.rs`).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

use tfsim_bitstate::{Category, InjectionMask, StorageKind, UnitId};
use tfsim_obs::json::{self, obj, Json};
use tfsim_workloads::Workload;

use crate::campaign::CampaignConfig;
use crate::trial::{FailureMode, Outcome, TrialFault, TrialRecord, TrialSpec, TrialTrace};

/// Format marker on the header line.
const MAGIC: &str = "tfsim-campaign";
/// Journal format version.
///
/// History: v1 carried a `traced` flag in the header; v2 dropped it —
/// trace *level* (untraced / traced / deep-traced) is an observation
/// choice, not part of the experiment identity, so journals are
/// byte-identical across it and any run can resume any journal.
const VERSION: u64 = 2;

/// The experiment configuration a journal belongs to, pinned on the
/// header line and validated on [`CampaignJournal::resume`]: replaying a
/// task into a campaign with a different seed, mask, scale, workload set,
/// or protection config would silently corrupt the census.
///
/// `CampaignConfig::threads`, `sliced`, `pruned`, and `deep_trace` are
/// deliberately *not* part of the identity (they are execution strategies
/// or observation levels and results are byte-identical across them), and
/// neither is the trace level of the run (traced or not) or the hidden
/// `panic_shim` test hook. Divergence timelines are likewise not
/// journaled: a deep-traced campaign resumed from a journal emits no
/// `propagation` events for the replayed tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalMeta {
    seed: u64,
    mask: InjectionMask,
    timeout_counter: bool,
    timeout_threshold: u32,
    regfile_ecc: bool,
    pointer_ecc: bool,
    insn_parity: bool,
    scale: u32,
    start_points: u32,
    trials_per_start_point: u32,
    warmup_cycles: u64,
    spacing_cycles: u64,
    inject_window: u64,
    monitor_cycles: u64,
    benchmarks: Vec<String>,
}

impl JournalMeta {
    /// Captures the identity of a campaign over `workloads`. Trace level
    /// is not part of it: a journaled run always computes and journals
    /// per-trial traces (they are a deterministic observation of the same
    /// trials), so untraced, traced, and deep-traced runs write
    /// byte-identical journals and share them freely.
    pub fn new(config: &CampaignConfig, workloads: &[Workload]) -> JournalMeta {
        JournalMeta {
            seed: config.seed,
            mask: config.mask,
            timeout_counter: config.pipeline.timeout_counter,
            timeout_threshold: config.pipeline.timeout_threshold,
            regfile_ecc: config.pipeline.regfile_ecc,
            pointer_ecc: config.pipeline.pointer_ecc,
            insn_parity: config.pipeline.insn_parity,
            scale: config.scale,
            start_points: config.start_points,
            trials_per_start_point: config.trials_per_start_point,
            warmup_cycles: config.warmup_cycles,
            spacing_cycles: config.spacing_cycles,
            inject_window: config.inject_window,
            monitor_cycles: config.monitor_cycles,
            benchmarks: workloads.iter().map(|w| w.name.to_string()).collect(),
        }
    }

    fn to_json(&self) -> Json {
        obj([
            ("journal", Json::Str(MAGIC.to_string())),
            ("version", Json::Int(VERSION as i128)),
            ("seed", Json::Int(self.seed as i128)),
            (
                "mask",
                Json::Str(
                    match self.mask {
                        InjectionMask::LatchesAndRams => "latches+rams",
                        InjectionMask::LatchesOnly => "latches",
                    }
                    .to_string(),
                ),
            ),
            ("timeout_counter", Json::Bool(self.timeout_counter)),
            ("timeout_threshold", Json::Int(self.timeout_threshold as i128)),
            ("regfile_ecc", Json::Bool(self.regfile_ecc)),
            ("pointer_ecc", Json::Bool(self.pointer_ecc)),
            ("insn_parity", Json::Bool(self.insn_parity)),
            ("scale", Json::Int(self.scale as i128)),
            ("start_points", Json::Int(self.start_points as i128)),
            (
                "trials_per_start_point",
                Json::Int(self.trials_per_start_point as i128),
            ),
            ("warmup_cycles", Json::Int(self.warmup_cycles as i128)),
            ("spacing_cycles", Json::Int(self.spacing_cycles as i128)),
            ("inject_window", Json::Int(self.inject_window as i128)),
            ("monitor_cycles", Json::Int(self.monitor_cycles as i128)),
            (
                "benchmarks",
                Json::Arr(self.benchmarks.iter().map(|b| Json::Str(b.clone())).collect()),
            ),
        ])
    }
}

/// One completed `(benchmark, start point)` task, as journaled: the drawn
/// trial plan, the classified records (aligned with the surviving specs),
/// the per-trial traces when the run was traced, and any quarantined
/// trials.
#[derive(Debug, Clone, PartialEq)]
pub struct JournaledTask {
    /// Benchmark index into the campaign's workload list.
    pub bench: usize,
    /// Start-point index within the benchmark.
    pub start_point: u32,
    /// Eligible-bit count of the start point (constant per config, but
    /// journaled so replay needs no pipeline).
    pub eligible_bits: u64,
    /// The drawn trial plan, in draw order.
    pub specs: Vec<TrialSpec>,
    /// One record per classified spec, in spec order.
    pub records: Vec<TrialRecord>,
    /// Aligned with `records` on the traced path; empty otherwise.
    pub traces: Vec<TrialTrace>,
    /// Quarantined trials (panics contained by the harness), if any.
    pub faults: Vec<TrialFault>,
}

fn category_from_label(s: &str) -> Option<Category> {
    Category::ALL.into_iter().find(|c| c.label() == s)
}

fn unit_from_label(s: &str) -> Option<UnitId> {
    UnitId::ALL.into_iter().find(|u| u.label() == s)
}

fn kind_from_label(s: &str) -> Option<StorageKind> {
    [StorageKind::Latch, StorageKind::Ram]
        .into_iter()
        .find(|k| k.label() == s)
}

fn mode_from_label(s: &str) -> Option<FailureMode> {
    FailureMode::ALL.into_iter().find(|m| m.label() == s)
}

fn spec_to_json(s: &TrialSpec) -> Json {
    Json::Arr(vec![
        Json::Int(s.target as i128),
        Json::Int(s.inject_cycle as i128),
    ])
}

fn spec_from_json(v: &Json) -> Result<TrialSpec, String> {
    match v {
        Json::Arr(xs) if xs.len() == 2 => Ok(TrialSpec {
            target: xs[0].as_u64().ok_or("spec target not a u64")?,
            inject_cycle: xs[1].as_u64().ok_or("spec cycle not a u64")?,
        }),
        _ => Err("spec is not a 2-element array".to_string()),
    }
}

fn record_to_json(r: &TrialRecord) -> Json {
    let (o, fm) = match r.outcome {
        Outcome::MicroArchMatch => ("match", None),
        Outcome::GrayArea => ("gray", None),
        Outcome::Failure(m) => ("fail", Some(m)),
    };
    let mut fields = vec![
        ("o", Json::Str(o.to_string())),
        ("cat", Json::Str(r.category.label().to_string())),
        ("kind", Json::Str(r.kind.label().to_string())),
        ("ic", Json::Int(r.inject_cycle as i128)),
        ("vi", Json::Int(r.valid_instructions as i128)),
    ];
    if let Some(m) = fm {
        fields.push(("fm", Json::Str(m.label().to_string())));
    }
    if let Some(u) = r.unit {
        fields.push(("unit", Json::Str(u.label().to_string())));
    }
    obj(fields)
}

fn record_from_json(v: &Json) -> Result<TrialRecord, String> {
    let text = |key: &str| -> Result<&str, String> {
        v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record missing string {key:?}"))
    };
    let num = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("record missing integer {key:?}"))
    };
    let outcome = match text("o")? {
        "match" => Outcome::MicroArchMatch,
        "gray" => Outcome::GrayArea,
        "fail" => {
            let label = text("fm")?;
            Outcome::Failure(
                mode_from_label(label).ok_or_else(|| format!("unknown failure mode {label:?}"))?,
            )
        }
        other => return Err(format!("unknown outcome {other:?}")),
    };
    let unit = match v.get("unit") {
        None => None,
        Some(u) => {
            let label = u.as_str().ok_or("record unit is not a string")?;
            Some(unit_from_label(label).ok_or_else(|| format!("unknown unit {label:?}"))?)
        }
    };
    let cat_label = text("cat")?;
    let kind_label = text("kind")?;
    Ok(TrialRecord {
        outcome,
        category: category_from_label(cat_label)
            .ok_or_else(|| format!("unknown category {cat_label:?}"))?,
        kind: kind_from_label(kind_label)
            .ok_or_else(|| format!("unknown storage kind {kind_label:?}"))?,
        unit,
        inject_cycle: num("ic")?,
        valid_instructions: u32::try_from(num("vi")?).map_err(|_| "vi out of range")?,
    })
}

fn trace_to_json(t: &TrialTrace) -> Json {
    Json::Arr(vec![
        Json::Int(t.detect_cycle as i128),
        t.divergence_cycle.map_or(Json::Null, |c| Json::Int(c as i128)),
        t.diverged_unit
            .map_or(Json::Null, |u| Json::Str(u.label().to_string())),
    ])
}

fn trace_from_json(v: &Json) -> Result<TrialTrace, String> {
    let Json::Arr(xs) = v else {
        return Err("trace is not an array".to_string());
    };
    if xs.len() != 3 {
        return Err("trace is not a 3-element array".to_string());
    }
    let divergence_cycle = match &xs[1] {
        Json::Null => None,
        other => Some(other.as_u64().ok_or("trace divergence cycle not a u64")?),
    };
    let diverged_unit = match &xs[2] {
        Json::Null => None,
        other => {
            let label = other.as_str().ok_or("trace unit is not a string")?;
            Some(unit_from_label(label).ok_or_else(|| format!("unknown unit {label:?}"))?)
        }
    };
    Ok(TrialTrace {
        detect_cycle: xs[0].as_u64().ok_or("trace detect cycle not a u64")?,
        divergence_cycle,
        diverged_unit,
    })
}

fn fault_to_json(f: &TrialFault) -> Json {
    obj([
        ("i", Json::Int(f.index as i128)),
        ("target", Json::Int(f.spec.target as i128)),
        ("ic", Json::Int(f.spec.inject_cycle as i128)),
        ("msg", Json::Str(f.panic_msg.clone())),
    ])
}

fn fault_from_json(v: &Json) -> Result<TrialFault, String> {
    let num = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("fault missing integer {key:?}"))
    };
    Ok(TrialFault {
        index: num("i")? as usize,
        spec: TrialSpec {
            target: num("target")?,
            inject_cycle: num("ic")?,
        },
        panic_msg: v
            .get("msg")
            .and_then(Json::as_str)
            .ok_or("fault missing string \"msg\"")?
            .to_string(),
    })
}

fn task_to_json(t: &JournaledTask) -> Json {
    obj([
        ("t", Json::Str("task".to_string())),
        ("bench", Json::Int(t.bench as i128)),
        ("sp", Json::Int(t.start_point as i128)),
        ("bits", Json::Int(t.eligible_bits as i128)),
        ("specs", Json::Arr(t.specs.iter().map(spec_to_json).collect())),
        ("recs", Json::Arr(t.records.iter().map(record_to_json).collect())),
        ("traces", Json::Arr(t.traces.iter().map(trace_to_json).collect())),
        ("faults", Json::Arr(t.faults.iter().map(fault_to_json).collect())),
    ])
}

fn task_from_json(v: &Json) -> Result<JournaledTask, String> {
    if v.get("t").and_then(Json::as_str) != Some("task") {
        return Err("line is not a task record".to_string());
    }
    let num = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("task missing integer {key:?}"))
    };
    let arr = |key: &str| -> Result<&[Json], String> {
        match v.get(key) {
            Some(Json::Arr(xs)) => Ok(xs),
            _ => Err(format!("task missing array {key:?}")),
        }
    };
    let task = JournaledTask {
        bench: num("bench")? as usize,
        start_point: u32::try_from(num("sp")?).map_err(|_| "sp out of range")?,
        eligible_bits: num("bits")?,
        specs: arr("specs")?.iter().map(spec_from_json).collect::<Result<_, _>>()?,
        records: arr("recs")?.iter().map(record_from_json).collect::<Result<_, _>>()?,
        traces: arr("traces")?.iter().map(trace_from_json).collect::<Result<_, _>>()?,
        faults: arr("faults")?.iter().map(fault_from_json).collect::<Result<_, _>>()?,
    };
    if task.records.len() + task.faults.len() != task.specs.len() {
        return Err(format!(
            "task ({}, {}) accounts for {} of {} specs",
            task.bench,
            task.start_point,
            task.records.len() + task.faults.len(),
            task.specs.len()
        ));
    }
    if !task.traces.is_empty() && task.traces.len() != task.records.len() {
        return Err("task traces not aligned with records".to_string());
    }
    Ok(task)
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A durable campaign journal: a header-validated JSONL file whose
/// already-completed tasks are replayed by
/// [`run_campaign_journaled`](crate::run_campaign_journaled) and to which
/// workers append (fsync'd) as tasks finish.
#[derive(Debug)]
pub struct CampaignJournal {
    file: Mutex<File>,
    completed: Vec<JournaledTask>,
}

impl CampaignJournal {
    /// Starts a fresh journal at `path` (truncating any existing file)
    /// and durably writes the header line.
    pub fn create(path: &Path, meta: &JournalMeta) -> io::Result<CampaignJournal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        write_line(&mut file, &meta.to_json())?;
        Ok(CampaignJournal { file: Mutex::new(file), completed: Vec::new() })
    }

    /// Reopens the journal at `path`, applying the torn-tail recovery
    /// rule (see the module docs), validating the header against `meta`,
    /// and physically truncating the file to its valid prefix. A file so
    /// short that even the header was torn resumes as an empty journal.
    pub fn resume(path: &Path, meta: &JournalMeta) -> io::Result<CampaignJournal> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // Newline-terminated line ranges; anything after the last `\n` is
        // a torn tail by definition.
        let mut lines: Vec<(usize, usize)> = Vec::new();
        let mut start = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                lines.push((start, i));
                start = i + 1;
            }
        }
        if start < bytes.len() {
            eprintln!(
                "warning: journal {}: dropping {}-byte torn tail",
                path.display(),
                bytes.len() - start
            );
        }

        let header_json = meta.to_json();
        let mut completed: Vec<JournaledTask> = Vec::new();
        let mut valid_end = 0usize;
        for (idx, &(lo, hi)) in lines.iter().enumerate() {
            let tail = idx == lines.len() - 1 && start == bytes.len();
            let parsed = std::str::from_utf8(&bytes[lo..hi])
                .map_err(|e| e.to_string())
                .and_then(json::parse);
            let value = match parsed {
                Ok(v) => v,
                Err(e) if tail => {
                    // A terminated-but-unparseable final line is still a
                    // torn append: the line body and its newline can land
                    // in different sectors.
                    eprintln!(
                        "warning: journal {}: dropping unparseable tail line: {e}",
                        path.display()
                    );
                    break;
                }
                Err(e) => {
                    return Err(invalid(format!(
                        "journal {}: line {} is unparseable mid-file: {e}",
                        path.display(),
                        idx + 1
                    )));
                }
            };
            if idx == 0 {
                if value.get("journal").and_then(Json::as_str) != Some(MAGIC) {
                    return Err(invalid(format!(
                        "journal {}: not a campaign journal",
                        path.display()
                    )));
                }
                if value != header_json {
                    return Err(invalid(format!(
                        "journal {}: header does not match this campaign \
                         configuration (different seed, mask, scale, workloads, \
                         or protection)",
                        path.display()
                    )));
                }
            } else {
                match task_from_json(&value) {
                    Ok(task) => {
                        // A crash window exists between a task's fsync'd
                        // append and the harness observing it; the same
                        // task can then be re-run and re-appended on a
                        // later resume. First occurrence wins.
                        if completed
                            .iter()
                            .any(|t| (t.bench, t.start_point) == (task.bench, task.start_point))
                        {
                            eprintln!(
                                "warning: journal {}: duplicate task ({}, {}) ignored",
                                path.display(),
                                task.bench,
                                task.start_point
                            );
                        } else {
                            completed.push(task);
                        }
                    }
                    Err(e) if tail => {
                        eprintln!(
                            "warning: journal {}: dropping malformed tail task: {e}",
                            path.display()
                        );
                        break;
                    }
                    Err(e) => {
                        return Err(invalid(format!(
                            "journal {}: line {}: {e}",
                            path.display(),
                            idx + 1
                        )));
                    }
                }
            }
            valid_end = hi + 1;
        }

        file.set_len(valid_end as u64)?;
        file.seek(SeekFrom::Start(valid_end as u64))?;
        if valid_end == 0 {
            // Even the header was torn away: start over.
            write_line(&mut file, &header_json)?;
        }
        Ok(CampaignJournal { file: Mutex::new(file), completed })
    }

    /// The tasks recovered by [`CampaignJournal::resume`] (empty for a
    /// fresh journal).
    pub fn completed(&self) -> &[JournaledTask] {
        &self.completed
    }

    /// Durably appends one completed task: the line is written, flushed,
    /// and `sync_data`'d before this returns, so a caller that orders the
    /// append before exposing the task's results gets
    /// durability-before-visibility.
    pub fn append_task(&self, task: &JournaledTask) -> io::Result<()> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        write_line(&mut file, &task_to_json(task))
    }
}

fn write_line(file: &mut File, value: &Json) -> io::Result<()> {
    let mut line = value.render();
    line.push('\n');
    file.write_all(line.as_bytes())?;
    file.flush()?;
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tfsim-journal-{}-{name}", std::process::id()))
    }

    fn meta() -> JournalMeta {
        JournalMeta::new(&CampaignConfig::quick(0xD5_2004), &tfsim_workloads::all())
    }

    fn sample_task(sp: u32) -> JournaledTask {
        JournaledTask {
            bench: 1,
            start_point: sp,
            eligible_bits: 11_000,
            specs: vec![
                TrialSpec { target: 4_242, inject_cycle: 17 },
                TrialSpec { target: 99, inject_cycle: 180 },
                TrialSpec { target: 7, inject_cycle: 3 },
            ],
            records: vec![
                TrialRecord {
                    outcome: Outcome::MicroArchMatch,
                    category: Category::ALL[3],
                    kind: StorageKind::Latch,
                    unit: Some(UnitId::ALL[5]),
                    inject_cycle: 17,
                    valid_instructions: 31,
                },
                TrialRecord {
                    outcome: Outcome::Failure(FailureMode::Regfile),
                    category: Category::ALL[9],
                    kind: StorageKind::Ram,
                    unit: None,
                    inject_cycle: 180,
                    valid_instructions: 2,
                },
            ],
            traces: vec![],
            faults: vec![TrialFault {
                index: 2,
                spec: TrialSpec { target: 7, inject_cycle: 3 },
                panic_msg: "forced \"panic\"\nwith newline".to_string(),
            }],
        }
    }

    #[test]
    fn task_round_trips_through_json() {
        let task = sample_task(0);
        let line = task_to_json(&task).render();
        let back = task_from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, task);
    }

    #[test]
    fn traced_task_round_trips() {
        let mut task = sample_task(0);
        task.traces = vec![
            TrialTrace { detect_cycle: 40, divergence_cycle: Some(21), diverged_unit: Some(UnitId::ALL[0]) },
            TrialTrace { detect_cycle: 200, divergence_cycle: None, diverged_unit: None },
        ];
        let line = task_to_json(&task).render();
        let back = task_from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, task);
    }

    #[test]
    fn create_append_resume_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let m = meta();
        {
            let j = CampaignJournal::create(&path, &m).unwrap();
            j.append_task(&sample_task(0)).unwrap();
            j.append_task(&sample_task(1)).unwrap();
        }
        let j = CampaignJournal::resume(&path, &m).unwrap();
        assert_eq!(j.completed(), &[sample_task(0), sample_task(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let path = tmp("mismatch.jsonl");
        let m = meta();
        CampaignJournal::create(&path, &m).unwrap();
        let mut other = CampaignConfig::quick(0xD5_2004);
        other.seed ^= 1;
        let err = CampaignJournal::resume(
            &path,
            &JournalMeta::new(&other, &tfsim_workloads::all()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_at_every_boundary_recovers_a_prefix() {
        let path = tmp("truncate.jsonl");
        let m = meta();
        {
            let j = CampaignJournal::create(&path, &m).unwrap();
            j.append_task(&sample_task(0)).unwrap();
            j.append_task(&sample_task(1)).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let j = CampaignJournal::resume(&path, &m).unwrap();
            let n = j.completed().len();
            assert!(n <= 2, "cut {cut}: recovered {n} tasks");
            for (i, t) in j.completed().iter().enumerate() {
                assert_eq!(*t, sample_task(i as u32), "cut {cut}");
            }
            drop(j);
            // The file must have been truncated back to a clean prefix:
            // resuming again recovers the same tasks with no warnings.
            let again = CampaignJournal::resume(&path, &m).unwrap();
            assert_eq!(again.completed().len(), n, "cut {cut} second resume");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let path = tmp("midfile.jsonl");
        let m = meta();
        {
            let j = CampaignJournal::create(&path, &m).unwrap();
            j.append_task(&sample_task(0)).unwrap();
            j.append_task(&sample_task(1)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the first task line (not the tail).
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_nl + 4] = b'#';
        std::fs::write(&path, &bytes).unwrap();
        let err = CampaignJournal::resume(&path, &m).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_task_keeps_first_occurrence() {
        let path = tmp("dup.jsonl");
        let m = meta();
        {
            let j = CampaignJournal::create(&path, &m).unwrap();
            j.append_task(&sample_task(0)).unwrap();
            let mut dup = sample_task(0);
            dup.eligible_bits = 1; // distinguishable from the original
            j.append_task(&dup).unwrap();
        }
        let j = CampaignJournal::resume(&path, &m).unwrap();
        assert_eq!(j.completed(), &[sample_task(0)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_resume_extends_the_journal() {
        let path = tmp("extend.jsonl");
        let m = meta();
        {
            let j = CampaignJournal::create(&path, &m).unwrap();
            j.append_task(&sample_task(0)).unwrap();
        }
        // Tear the file mid-append, resume, and append the next task.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        {
            let j = CampaignJournal::resume(&path, &m).unwrap();
            assert!(j.completed().is_empty());
            j.append_task(&sample_task(0)).unwrap();
            j.append_task(&sample_task(1)).unwrap();
        }
        let j = CampaignJournal::resume(&path, &m).unwrap();
        assert_eq!(j.completed(), &[sample_task(0), sample_task(1)]);
        std::fs::remove_file(&path).unwrap();
    }
}
