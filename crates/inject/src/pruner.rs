//! The analytic masking pruner: dead-window proofs and site equivalence
//! classes over the extended-tier golden access footprint.
//!
//! The sliced engine (`crate::sliced`) already discharges rides and heals
//! analytically, but only for the core-tier tracked structures (LSQ,
//! register file, MHRs). Everything else — fetch queue, rename, scheduler,
//! reorder buffer — peels to a scalar replay even when the faulted word is
//! plainly dead. On campaign-shaped batches those peels dominate the wall
//! clock: most land in idle entries of the big untracked RAMs and grind a
//! full monitoring window to conclude nothing happened.
//!
//! The pruner runs once per batch, before any trial, using the
//! [`Tier::Extended`] footprint (one extra tracked golden replay per start
//! point, built lazily and cached). Every site gets exactly one of three
//! dispositions:
//!
//! * **Proved dead** — the fault provably never alters the classification
//!   relative to the analytic rider:
//!   - no access to the word in `(inject, horizon]` (a *dead window*: the
//!     word is never read again before the window closes),
//!   - the first access is a content-independent full-word overwrite (the
//!     word dies by being rewritten before its next read), or
//!   - the first access is a read, but the golden aggregates decide the
//!     trial (lock, halt) strictly before that read consumes the fault.
//!
//!   These sites produce their records through the same analytic
//!   classifier the sliced engine uses ([`StartPoint::ride_lane`]) and
//!   never occupy a lane.
//! * **Class-collapsed** — surviving sites that share a word, the same
//!   inter-access gap, and the same decision-loop state at the first read
//!   are grouped into an *equivalence class*: their machines are
//!   bit-identical at the moment the fault is consumed, so one
//!   representative trial determines every member's outcome. The
//!   representative simulates; members multiply its outcome into the
//!   census.
//! * **Simulated** — everything else (plus class representatives and
//!   singleton classes) delegates to the sliced engine unchanged.
//!
//! # Proof obligations
//!
//! The dispositions are sound because (enforced by the `access_ordinals`
//! pipeline tests and the `prop_pruned_*` property suite):
//!
//! 1. *Reads are never under-logged* in either tier: a word with no read
//!    event in a window really was not consumed there, so the machine
//!    replays the golden run and the analytic rider's record is exact.
//! 2. *Logged writes are full-word and content-independent*: a heal event
//!    restores the golden value no matter the δ. The extended tier may
//!    under-claim a write by logging a read instead (the ROB does), which
//!    only demotes a site to `simulated` — never the reverse.
//! 3. *Class members are state-identical at consumption.* Two faults in
//!    the same word and the same access gap build the same machine: golden
//!    state plus the same δ, untouched since injection. The class key adds
//!    the classifier's loop state (last retire cycle, protective-flush
//!    streak) at the first read, and membership requires the dense
//!    fingerprint-check cadence to have elapsed (`inject + 64 < read`), so
//!    the decision walk from the read onward is step-for-step identical
//!    for every member. The only member-dependent outputs are the
//!    injection cycle, the valid-instruction count (both taken from the
//!    member's own spec), and the window horizon — a member whose shorter
//!    window expires before the representative's decision cycle grays out
//!    at its own horizon, exactly as its scalar run would.
//!
//! The one knowing deviation: a member whose scalar run would *panic*
//! (quarantine) is instead derived from its non-panicking representative.
//! Panics are harness escapes, not outcomes; a representative that panics
//! falls back to simulating every member individually, so the census only
//! ever differs where the unpruned path had no census entry at all.

use std::collections::BTreeMap;

use tfsim_bitstate::InjectionMask;
use tfsim_obs::{DeepTrace, PruneDispositions};

use crate::footprint::{first_event_after, Resolver, Span, Tier};
use crate::trial::{
    Outcome, StartPoint, TracedBatch, TrialFault, TrialObservers, TrialRecord, TrialSpec, TrialTrace,
};
use crate::sliced::LANE_WIDTH;

/// Identity of an equivalence class: same word and bit, same inter-access
/// gap (by timeline index, which fixes the first-read cycle), and the same
/// analytic decision-loop state carried into that read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ClassKey {
    target: u64,
    /// Index of the first post-injection event in the word's timeline.
    gap: usize,
    /// `last_retire_cycle` at the start of the first-read step.
    last_retire: u64,
    /// `flushes_without_retire` at the start of the first-read step.
    flushes: u32,
}

/// Per-site pruning decision.
#[derive(Clone, Copy)]
enum Plan {
    /// Proved dead: the analytic rider produces the record.
    Analytic { span: Span, heal: Option<u64> },
    /// Delegate to the sliced engine (residuals, representatives,
    /// singletons, and the forced-panic shim).
    Simulate,
    /// Derive the record from the class representative's trial.
    Derived { rep: usize, span: Span },
}

/// Result of walking the golden aggregates from `inject` through `end`.
enum Prefix {
    /// A decision fires at or before `end`: the analytic classifier fully
    /// determines the record without the fault ever being consumed.
    Decided,
    /// No decision: the loop state at the start of step `end + 1`.
    Pending { last_retire: u64, flushes: u32 },
}

impl StartPoint {
    /// Mirrors the decision loop of [`StartPoint::ride_lane`] over the
    /// steps `(inject, end]`, reporting whether any golden-aggregate
    /// decision (lock, halt, ran-ahead) fires in that prefix. Fingerprint
    /// checks cannot decide here — the δ is still latent — so they are
    /// irrelevant to the walk.
    fn walk_prefix(&self, inject: u64, end: u64) -> Prefix {
        let fp = self.extended_footprint();
        let running_at = |c: u64| self.halted_at.is_none_or(|(hc, _)| c < hc);
        if !running_at(inject) {
            return Prefix::Decided;
        }
        let mut matched = self.instret[inject as usize] as usize;
        let mut last_retire = inject;
        let mut flushes = 0u32;
        for step in (inject + 1)..=end {
            let g = fp.percycle[step as usize];
            if g.retired > 0 {
                last_retire = step;
                flushes = 0;
            }
            if g.pflush {
                flushes += 1;
                if flushes >= 3 {
                    return Prefix::Decided;
                }
                last_retire = step;
            }
            for _ in 0..g.retired {
                if matched >= self.records.len() {
                    return Prefix::Decided;
                }
                matched += 1;
            }
            if let Some((hc, _)) = self.halted_at {
                if hc == step {
                    return Prefix::Decided;
                }
            }
            if running_at(step) && step - last_retire >= 100 {
                return Prefix::Decided;
            }
            if !running_at(step) {
                break;
            }
        }
        Prefix::Pending { last_retire, flushes }
    }

    /// [`StartPoint::run_trials`] semantics with analytic pruning: the
    /// records are the sliced engine's records for every site the pruner
    /// could not discharge, and the analytically derived equivalents
    /// everywhere else. Returns the per-site disposition tally alongside.
    pub fn run_trials_pruned(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
    ) -> (Vec<TrialRecord>, PruneDispositions) {
        let (batch, dispo) =
            self.run_trials_pruned_core::<false>(mask, specs, monitor, LANE_WIDTH, None, false);
        (batch.records, dispo)
    }

    /// [`StartPoint::run_trials_pruned`] with an explicit delegate lane
    /// width in `1..=64`. Pruning decisions depend only on the golden
    /// footprint, so the records (and the disposition tally) are provably
    /// width-independent; the equivalence suite pins both.
    pub fn run_trials_pruned_with_width(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
        lane_width: usize,
    ) -> (Vec<TrialRecord>, PruneDispositions) {
        let (batch, dispo) =
            self.run_trials_pruned_core::<false>(mask, specs, monitor, lane_width, None, false);
        (batch.records, dispo)
    }

    /// [`StartPoint::run_trials_traced`] semantics with analytic pruning.
    pub fn run_trials_pruned_traced(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
    ) -> (TracedBatch, PruneDispositions) {
        self.run_trials_pruned_core::<true>(mask, specs, monitor, LANE_WIDTH, None, false)
    }

    /// [`StartPoint::run_trials_deep_traced`] semantics with analytic
    /// pruning: class members derive their divergence timelines from the
    /// representative's ([`DeepTrace::derive`] — head cycle pinned to the
    /// member's own injection, horizon clipped to its window).
    pub fn run_trials_pruned_deep_traced(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
    ) -> (TracedBatch, PruneDispositions) {
        self.run_trials_pruned_core::<true>(mask, specs, monitor, LANE_WIDTH, None, true)
    }

    /// The pruning pass plus delegation. Mirrors the contracts of
    /// `run_trials_core`: input-order records, quarantined panics under
    /// their original spec indices.
    pub(crate) fn run_trials_pruned_core<const TRACED: bool>(
        &self,
        mask: InjectionMask,
        specs: &[TrialSpec],
        monitor: u64,
        lane_width: usize,
        panic_shim: Option<usize>,
        deep: bool,
    ) -> (TracedBatch, PruneDispositions) {
        let deep = TRACED && deep;
        // Passes 1 and 2 (and the footprint/resolver builds they need) are
        // the pruner's own analysis time, attributed to `prune_ns` — they
        // run before any trial, outside the monitor bracket.
        let prune_t0 = TRACED.then(std::time::Instant::now);
        let fp = self.extended_footprint();
        let resolver = Resolver::build(&self.checkpoint, mask);
        let last = self.fps.len() as u64 - 1;
        let horizon_of = |c: u64| last.min(c + monitor);

        // Pass 1: per-site disposition from the extended footprint.
        let mut plan: Vec<Plan> = Vec::with_capacity(specs.len());
        let mut classes: BTreeMap<ClassKey, Vec<usize>> = BTreeMap::new();
        for (i, spec) in specs.iter().enumerate() {
            if panic_shim == Some(i) || spec.inject_cycle as usize >= self.fps.len() {
                plan.push(Plan::Simulate);
                continue;
            }
            let Some(&span) = resolver.resolve(spec.target) else {
                plan.push(Plan::Simulate);
                continue;
            };
            let tracked = span
                .unit
                .is_some_and(|u| Tier::Extended.tracked(&self.checkpoint, u, span.unit_ord));
            if !tracked {
                plan.push(Plan::Simulate);
                continue;
            }
            let unit = span.unit.expect("tracked implies unit");
            let c = spec.inject_cycle;
            plan.push(match first_event_after(fp.timeline(unit, span.unit_ord), c) {
                // Dead window: never accessed again inside the window.
                None => Plan::Analytic { span, heal: None },
                // Dead window: overwritten before its next read.
                Some((_, hc, true)) => Plan::Analytic { span, heal: Some(hc as u64) },
                Some((gap, r, false)) => {
                    let r = r as u64;
                    if r > horizon_of(c) {
                        // The read falls outside this site's window: within
                        // the window the word is dead.
                        Plan::Analytic { span, heal: None }
                    } else {
                        match self.walk_prefix(c, r - 1) {
                            // Locked/halted before the read: the analytic
                            // rider reaches the identical decision.
                            Prefix::Decided => Plan::Analytic { span, heal: None },
                            // Class membership requires the dense check
                            // cadence to have fully elapsed before the
                            // read, so every member checks on the same
                            // steps from the read onward.
                            Prefix::Pending { last_retire, flushes } if c + 64 < r => {
                                let key =
                                    ClassKey { target: spec.target, gap, last_retire, flushes };
                                classes.entry(key).or_default().push(i);
                                // Provisional: singletons demote below, and
                                // the representative is picked per class.
                                Plan::Derived { rep: i, span }
                            }
                            Prefix::Pending { .. } => Plan::Simulate,
                        }
                    }
                }
            });
        }

        // Pass 2: pick representatives. The member with the longest window
        // simulates (ties to the lowest index), so every other member's
        // horizon is covered by the representative's decision walk.
        for members in classes.values() {
            if members.len() == 1 {
                plan[members[0]] = Plan::Simulate;
                continue;
            }
            let rep = *members
                .iter()
                .max_by_key(|&&j| (horizon_of(specs[j].inject_cycle), std::cmp::Reverse(j)))
                .expect("class is non-empty");
            for &j in members {
                if j == rep {
                    plan[j] = Plan::Simulate;
                } else if let Plan::Derived { span, .. } = plan[j] {
                    plan[j] = Plan::Derived { rep, span };
                }
            }
        }

        let prune_ns = prune_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64);

        // Delegate everything simulated to the sliced engine in one batch.
        // Always traced internally: representative detect cycles drive the
        // member derivation, and records are trace-independent.
        let delegate_idx: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Plan::Simulate))
            .map(|(i, _)| i)
            .collect();
        let delegate_specs: Vec<TrialSpec> = delegate_idx.iter().map(|&i| specs[i]).collect();
        let delegate_shim = panic_shim.and_then(|s| delegate_idx.binary_search(&s).ok());
        let sub = self.run_trials_sliced_core::<true>(
            mask,
            &delegate_specs,
            monitor,
            lane_width,
            delegate_shim,
            deep,
        );
        let mut advance_ns = sub.advance_ns;
        let mut monitor_ns = sub.monitor_ns;
        let mut ride_ns = sub.ride_ns;
        let mut classify_ns = sub.classify_ns;

        // Scatter the delegate's outputs back to original indices.
        let mut sub_out: Vec<Option<(TrialRecord, TrialTrace, DeepTrace)>> =
            vec![None; delegate_idx.len()];
        {
            let mut faulted: Vec<usize> = sub.faults.iter().map(|f| f.index).collect();
            faulted.sort_unstable();
            let sub_deeps = if deep { sub.deeps } else { vec![DeepTrace::new(); sub.records.len()] };
            let mut recs = sub
                .records
                .into_iter()
                .zip(sub.traces)
                .zip(sub_deeps)
                .map(|((r, t), d)| (r, t, d));
            for (k, slot) in sub_out.iter_mut().enumerate() {
                if faulted.binary_search(&k).is_err() {
                    *slot = recs.next();
                }
            }
        }
        let mut faults: Vec<TrialFault> = sub
            .faults
            .into_iter()
            .map(|f| TrialFault {
                index: delegate_idx[f.index],
                spec: f.spec,
                panic_msg: f.panic_msg,
            })
            .collect();

        // A quarantined representative cannot vouch for its members: fall
        // back to simulating each of them individually.
        let rep_result = |rep: usize| {
            let k = delegate_idx.binary_search(&rep).expect("representatives are delegated");
            sub_out[k].clone()
        };
        let mut retry_idx: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Plan::Derived { rep, .. } if rep_result(*rep).is_none()))
            .map(|(i, _)| i)
            .collect();
        retry_idx.sort_unstable();
        let mut retry_out: Vec<Option<(TrialRecord, TrialTrace, DeepTrace)>> =
            vec![None; retry_idx.len()];
        if !retry_idx.is_empty() {
            let retry_specs: Vec<TrialSpec> = retry_idx.iter().map(|&i| specs[i]).collect();
            let sub2 = self.run_trials_sliced_core::<true>(
                mask,
                &retry_specs,
                monitor,
                lane_width,
                None,
                deep,
            );
            advance_ns += sub2.advance_ns;
            monitor_ns += sub2.monitor_ns;
            ride_ns += sub2.ride_ns;
            classify_ns += sub2.classify_ns;
            let mut faulted: Vec<usize> = sub2.faults.iter().map(|f| f.index).collect();
            faulted.sort_unstable();
            let sub2_deeps =
                if deep { sub2.deeps } else { vec![DeepTrace::new(); sub2.records.len()] };
            let mut recs = sub2
                .records
                .into_iter()
                .zip(sub2.traces)
                .zip(sub2_deeps)
                .map(|((r, t), d)| (r, t, d));
            for (k, slot) in retry_out.iter_mut().enumerate() {
                if faulted.binary_search(&k).is_err() {
                    *slot = recs.next();
                }
            }
            faults.extend(sub2.faults.into_iter().map(|f| TrialFault {
                index: retry_idx[f.index],
                spec: f.spec,
                panic_msg: f.panic_msg,
            }));
        }

        // Pass 3: assemble records in input order.
        let mut dispo = PruneDispositions::default();
        let mut out: Vec<Option<TrialRecord>> = vec![None; specs.len()];
        let mut traces = vec![TrialTrace::default(); if TRACED { specs.len() } else { 0 }];
        let mut deeps = vec![DeepTrace::new(); if deep { specs.len() } else { 0 }];
        let t0 = TRACED.then(std::time::Instant::now);
        for (i, p) in plan.iter().enumerate() {
            let spec = specs[i];
            match p {
                Plan::Analytic { span, heal } => {
                    dispo.proved_dead += 1;
                    let trace_slot = if TRACED { Some(&mut traces[i]) } else { None };
                    let deep_slot = if deep { Some(&mut deeps[i]) } else { None };
                    let obs = TrialObservers { trace: trace_slot, deep: deep_slot };
                    out[i] = Some(self.ride_lane(fp, span, *heal, spec, monitor, obs));
                }
                Plan::Simulate => {
                    dispo.simulated += 1;
                    let k = delegate_idx.binary_search(&i).expect("simulated sites delegate");
                    if let Some((rec, tr, dp)) = sub_out[k].clone() {
                        out[i] = Some(rec);
                        if TRACED {
                            traces[i] = tr;
                        }
                        if deep {
                            deeps[i] = dp;
                        }
                    }
                }
                Plan::Derived { rep, span } => match rep_result(*rep) {
                    Some((rrec, rtr, rdeep)) => {
                        dispo.class_collapsed += 1;
                        let horizon = horizon_of(spec.inject_cycle);
                        // The representative's window covers this one; a
                        // decision past this member's horizon means the
                        // member's own walk ends undecided.
                        let outcome = if rtr.detect_cycle <= horizon {
                            rrec.outcome
                        } else {
                            Outcome::GrayArea
                        };
                        out[i] = Some(TrialRecord {
                            outcome,
                            category: span.category,
                            kind: span.kind,
                            unit: span.unit,
                            inject_cycle: spec.inject_cycle,
                            valid_instructions: self.valid_at(spec.inject_cycle),
                        });
                        if TRACED {
                            // The first fingerprint check after injection
                            // always sees the latent δ: divergence is
                            // immediate and attributed to the site's unit.
                            traces[i] = TrialTrace {
                                detect_cycle: rtr.detect_cycle.min(horizon),
                                divergence_cycle: Some(spec.inject_cycle + 1),
                                diverged_unit: span.unit,
                            };
                        }
                        if deep {
                            // Rep and member are state-identical from the
                            // shared read on, and before it both timelines
                            // hold the single sample {injected unit}: the
                            // member's timeline is the rep's with the head
                            // pinned to its own injection and the tail
                            // clipped to its own window.
                            deeps[i] = rdeep.derive(spec.inject_cycle + 1, horizon);
                        }
                    }
                    None => {
                        dispo.simulated += 1;
                        let k = retry_idx.binary_search(&i).expect("orphaned members retry");
                        if let Some((rec, tr, dp)) = retry_out[k].clone() {
                            out[i] = Some(rec);
                            if TRACED {
                                traces[i] = tr;
                            }
                            if deep {
                                deeps[i] = dp;
                            }
                        }
                    }
                },
            }
        }
        if let Some(t0) = t0 {
            // Pass 3 is dominated by the analytic riders: monitor time on
            // the ride side of the split.
            let dt = t0.elapsed().as_nanos() as u64;
            monitor_ns += dt;
            ride_ns += dt;
        }

        faults.sort_by_key(|f| f.index);
        let mut records = Vec::with_capacity(specs.len());
        let mut kept_traces = Vec::with_capacity(traces.len());
        let mut kept_deeps = Vec::with_capacity(deeps.len());
        for (i, rec) in out.into_iter().enumerate() {
            if let Some(rec) = rec {
                records.push(rec);
                if TRACED {
                    kept_traces.push(traces[i]);
                }
                if deep {
                    kept_deeps.push(std::mem::take(&mut deeps[i]));
                }
            }
        }
        let batch = TracedBatch {
            records,
            traces: kept_traces,
            faults,
            deeps: kept_deeps,
            advance_ns,
            monitor_ns,
            ride_ns,
            classify_ns,
            prune_ns,
        };
        (batch, dispo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::warm_pipeline;
    use tfsim_isa::{Asm, Reg};
    use tfsim_uarch::PipelineConfig;

    const MASK: InjectionMask = InjectionMask::LatchesAndRams;

    /// The sliced test bed: a memory-heavy hash loop touching every
    /// extended-tier structure at a brisk cadence.
    fn hash_start_point(config: PipelineConfig) -> StartPoint {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R10, 0x9e3779b97f4a7c15u64);
        a.li(Reg::R1, 0x10_0000);
        a.li(Reg::R7, 60_000);
        a.li(Reg::R9, 0);
        let top = a.here_label();
        a.mulq_i(Reg::R10, 33, Reg::R10);
        a.addq_i(Reg::R10, 7, Reg::R10);
        a.srl_i(Reg::R10, 20, Reg::R4);
        a.and_i(Reg::R4, 0xf8, Reg::R5);
        a.addq(Reg::R1, Reg::R5, Reg::R5);
        a.stq(Reg::R4, Reg::R5, 0);
        a.ldq(Reg::R6, Reg::R5, 0);
        a.addq(Reg::R9, Reg::R6, Reg::R9);
        a.subq_i(Reg::R7, 1, Reg::R7);
        a.bne(Reg::R7, top);
        a.li(Reg::V0, tfsim_isa::syscall::EXIT);
        a.mov(Reg::R9, Reg::A0);
        a.callsys();
        let p = tfsim_isa::Program::new("pruner-bed", a).with_data(0x10_0000, vec![0u8; 256]);
        let warmed = warm_pipeline(&p, config, 500);
        StartPoint::prepare(&warmed, 3_000, MASK)
    }

    /// A bed with a long serial multiply chain per iteration (~90+ cycles
    /// at 4-cycle mulq latency), so per-word access gaps comfortably clear
    /// the 64-cycle dense-check cadence and equivalence classes can form.
    fn gapped_start_point(config: PipelineConfig) -> StartPoint {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R10, 0x9e3779b97f4a7c15u64);
        a.li(Reg::R1, 0x10_0000);
        a.li(Reg::R7, 40_000);
        a.li(Reg::R9, 0);
        let top = a.here_label();
        a.stq(Reg::R10, Reg::R1, 0);
        for _ in 0..18 {
            a.mulq_i(Reg::R10, 33, Reg::R10);
        }
        a.ldq(Reg::R6, Reg::R1, 0);
        a.addq(Reg::R9, Reg::R6, Reg::R9);
        a.subq_i(Reg::R7, 1, Reg::R7);
        a.bne(Reg::R7, top);
        a.li(Reg::V0, tfsim_isa::syscall::EXIT);
        a.mov(Reg::R9, Reg::A0);
        a.callsys();
        let p = tfsim_isa::Program::new("pruner-gap-bed", a).with_data(0x10_0000, vec![0u8; 64]);
        let warmed = warm_pipeline(&p, config, 500);
        StartPoint::prepare(&warmed, 3_000, MASK)
    }

    #[test]
    fn pruned_matches_the_ladder_on_a_dense_sweep() {
        let sp = hash_start_point(PipelineConfig::baseline());
        let specs: Vec<TrialSpec> = (0..96u64)
            .map(|t| TrialSpec {
                target: (t * 9_491) % sp.bit_count(),
                inject_cycle: [40, 3, 117, 3, 0, 249, 60, 117][t as usize % 8] + (t / 8),
            })
            .collect();
        let ladder = sp.run_trials(MASK, &specs, 1_200);
        let (pruned, dispo) = sp.run_trials_pruned(MASK, &specs, 1_200);
        assert_eq!(pruned.len(), ladder.len());
        for (i, (p, l)) in pruned.iter().zip(ladder.iter()).enumerate() {
            assert_eq!(p, l, "spec {i} ({:?}) diverged", specs[i]);
        }
        assert_eq!(dispo.total(), specs.len() as u64, "every site gets one disposition");
        assert!(dispo.proved_dead > 0, "the sweep should prove some sites dead: {dispo:?}");
    }

    #[test]
    fn pruned_traced_matches_the_ladder_traced() {
        let sp = hash_start_point(PipelineConfig::baseline());
        let specs: Vec<TrialSpec> = (0..40u64)
            .map(|t| TrialSpec {
                target: (t * 13_577) % sp.bit_count(),
                inject_cycle: (t * 31) % 180,
            })
            .collect();
        let ladder = sp.run_trials_traced(MASK, &specs, 1_500);
        let (pruned, dispo) = sp.run_trials_pruned_traced(MASK, &specs, 1_500);
        assert_eq!(pruned.records, ladder.records);
        assert_eq!(pruned.traces, ladder.traces, "traces must match cycle-for-cycle");
        assert_eq!(pruned.faults, ladder.faults);
        assert_eq!(dispo.total(), specs.len() as u64);
    }

    #[test]
    fn pruned_is_width_independent() {
        let sp = hash_start_point(PipelineConfig::baseline());
        let specs: Vec<TrialSpec> = (0..70u64)
            .map(|t| TrialSpec {
                target: (t * 7_919) % sp.bit_count(),
                inject_cycle: (t * 17) % 200,
            })
            .collect();
        let (full, full_dispo) = sp.run_trials_pruned(MASK, &specs, 1_000);
        for width in [1usize, 2, 7, 63, 64] {
            let (batch, dispo) =
                sp.run_trials_pruned_core::<false>(MASK, &specs, 1_000, width, None, false);
            assert_eq!(batch.records, full, "lane width {width} changed results");
            assert_eq!(dispo, full_dispo, "lane width {width} changed dispositions");
        }
    }

    #[test]
    fn pruned_matches_under_the_protected_config() {
        let sp = hash_start_point(PipelineConfig::protected());
        let specs: Vec<TrialSpec> = (0..60u64)
            .map(|t| TrialSpec {
                target: (t * 11_003) % sp.bit_count(),
                inject_cycle: (t * 13) % 150,
            })
            .collect();
        let ladder = sp.run_trials(MASK, &specs, 1_000);
        let (pruned, dispo) = sp.run_trials_pruned(MASK, &specs, 1_000);
        assert_eq!(pruned, ladder);
        assert_eq!(dispo.total(), specs.len() as u64);
    }

    /// Scans the extended footprint for words whose first read sits more
    /// than 70 cycles past the previous access, then aims multiple trials
    /// into each gap: the pruner must collapse them into classes while the
    /// records stay identical to the scalar ladder's.
    #[test]
    fn pruned_collapses_classes_and_matches_the_ladder() {
        let sp = gapped_start_point(PipelineConfig::baseline());
        let fp = sp.extended_footprint();
        let resolver = Resolver::build(&sp.checkpoint, MASK);

        let mut specs: Vec<TrialSpec> = Vec::new();
        for span in resolver.spans() {
            let Some(unit) = span.unit else { continue };
            if !Tier::Extended.tracked(&sp.checkpoint, unit, span.unit_ord) {
                continue;
            }
            let tl = fp.timeline(unit, span.unit_ord);
            let mut prev = 0u32;
            for &(c, is_write) in tl {
                // A read at `c` with no access since `prev`, and a gap wide
                // enough that injections at `prev` and `prev + 1` both sit
                // 64+ cycles clear of the read.
                if !is_write && c > prev + 70 {
                    specs.push(TrialSpec { target: span.start, inject_cycle: prev as u64 });
                    specs.push(TrialSpec { target: span.start, inject_cycle: prev as u64 + 1 });
                    break;
                }
                prev = c;
            }
            if specs.len() >= 16 {
                break;
            }
        }
        assert!(
            specs.len() >= 4,
            "the gapped bed should expose read-after-gap words, found {}",
            specs.len() / 2
        );

        let ladder = sp.run_trials_traced(MASK, &specs, 1_200);
        let (pruned, dispo) = sp.run_trials_pruned_traced(MASK, &specs, 1_200);
        assert_eq!(pruned.records, ladder.records);
        assert_eq!(pruned.traces, ladder.traces, "derived traces must match the scalar walk");
        assert_eq!(dispo.total(), specs.len() as u64);
        assert!(dispo.class_collapsed > 0, "gap-aimed pairs should form classes: {dispo:?}");

        // Deep mode on the same bed: derived timelines must equal the
        // scalar walk's sample-for-sample, through the class collapse.
        let deep_ladder = sp.run_trials_deep_traced(MASK, &specs, 1_200);
        let (deep_pruned, deep_dispo) = sp.run_trials_pruned_deep_traced(MASK, &specs, 1_200);
        assert_eq!(deep_pruned.records, ladder.records);
        assert_eq!(deep_pruned.traces, ladder.traces);
        assert_eq!(deep_pruned.deeps, deep_ladder.deeps, "derived timelines must match");
        assert_eq!(deep_dispo, dispo, "deep mode must not change dispositions");
    }

    #[test]
    fn pruned_deep_traced_matches_the_ladder_deep_traced() {
        let sp = hash_start_point(PipelineConfig::baseline());
        let specs: Vec<TrialSpec> = (0..40u64)
            .map(|t| TrialSpec {
                target: (t * 13_577) % sp.bit_count(),
                inject_cycle: (t * 31) % 180,
            })
            .collect();
        let ladder = sp.run_trials_deep_traced(MASK, &specs, 1_500);
        let (pruned, dispo) = sp.run_trials_pruned_deep_traced(MASK, &specs, 1_500);
        assert_eq!(pruned.records, ladder.records);
        assert_eq!(pruned.traces, ladder.traces);
        assert_eq!(pruned.deeps, ladder.deeps, "timelines must match sample-for-sample");
        assert!(pruned.deeps.iter().any(|d| !d.is_empty()), "sweep should see divergence");
        assert_eq!(dispo.total(), specs.len() as u64);
    }

    /// The forced-panic shim flows through the delegate remapping: the
    /// quarantined fault surfaces under its original spec index and every
    /// other record is unperturbed.
    #[test]
    fn pruned_panic_shim_quarantines_the_original_index() {
        let sp = hash_start_point(PipelineConfig::baseline());
        let specs: Vec<TrialSpec> = (0..24u64)
            .map(|t| TrialSpec {
                target: (t * 9_491) % sp.bit_count(),
                inject_cycle: (t * 19) % 160,
            })
            .collect();
        let shim = 13usize;
        let (batch, dispo) =
            sp.run_trials_pruned_core::<false>(MASK, &specs, 1_000, 64, Some(shim), false);
        assert_eq!(batch.faults.len(), 1);
        assert_eq!(batch.faults[0].index, shim);
        assert_eq!(batch.faults[0].spec, specs[shim]);
        assert_eq!(batch.records.len(), specs.len() - 1);
        assert_eq!(dispo.total(), specs.len() as u64);

        let clean = sp.run_trials(MASK, &specs, 1_000);
        let mut expected = clean.clone();
        expected.remove(shim);
        assert_eq!(batch.records, expected, "surviving records are unperturbed by the shim");
    }
}

