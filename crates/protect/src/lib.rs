#![warn(missing_docs)]

//! # tfsim-protect — lightweight protection mechanisms
//!
//! The four Section-4 protection mechanisms and their supporting codecs:
//!
//! * **Register file ECC** — SECDED Hamming over each 65-bit register file
//!   entry, 8 check bits per entry ([`regfile_code`]). Single-bit errors in
//!   an entry are corrected in place; the paper reports the same 8-bit
//!   overhead.
//! * **Register pointer ECC** — SEC Hamming over each 7-bit physical
//!   register pointer, 4 check bits ([`pointer_code`]). Pointers are
//!   encoded once at pipeline initialization and checked/repaired at use.
//! * **Instruction word parity** — even parity over each 32-bit instruction
//!   word, generated at fetch and checked before retirement; a mismatch
//!   forces a pipeline flush before the instruction can write architectural
//!   state ([`parity32`]).
//! * **Timeout counter** — detects 100 cycles without retirement and forces
//!   a pipeline flush to clear potential deadlocks ([`TimeoutCounter`]).
//!
//! ```
//! use tfsim_protect::{pointer_code, Decoded};
//!
//! let code = pointer_code();
//! let check = code.encode(0b1011001);
//! // A fault flips pointer bit 3; the decoder repairs it.
//! let corrupted = 0b1011001 ^ (1 << 3);
//! assert_eq!(code.decode(corrupted, check), Decoded::CorrectedData(0b1011001));
//! ```

/// Outcome of decoding a protected word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// No error detected.
    Clean,
    /// A single data-bit error was corrected; the repaired data is given.
    CorrectedData(u128),
    /// A single check-bit error was detected (data is intact).
    CorrectedCheck,
    /// An uncorrectable (multi-bit) error was detected (SECDED only).
    Uncorrectable,
}

/// A Hamming code over up to 120 data bits, optionally extended with an
/// overall parity bit for SECDED.
///
/// The layout follows the textbook construction: codeword positions are
/// numbered from 1; power-of-two positions hold check bits; the remaining
/// positions hold data bits in ascending order. With `secded`, one extra
/// overall-parity bit distinguishes single (correctable) from double
/// (detectable) errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hamming {
    data_width: u32,
    hamming_checks: u32,
    secded: bool,
    /// Per-check-bit parity masks over the data bits (precomputed so
    /// encoding is a handful of popcounts on the pipeline's hot paths).
    masks: [u128; 8],
}

impl Hamming {
    /// Creates a code for `data_width` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `data_width` is 0 or exceeds 120.
    pub fn new(data_width: u32, secded: bool) -> Hamming {
        assert!((1..=120).contains(&data_width), "unsupported data width {data_width}");
        let mut checks = 0u32;
        while (1u32 << checks) < data_width + checks + 1 {
            checks += 1;
        }
        assert!(checks <= 8);
        let mut code = Hamming { data_width, hamming_checks: checks, secded, masks: [0; 8] };
        for c in 0..checks {
            let mut mask = 0u128;
            for i in 0..data_width {
                if code.data_position(i) & (1 << c) != 0 {
                    mask |= 1 << i;
                }
            }
            code.masks[c as usize] = mask;
        }
        code
    }

    /// Number of data bits covered.
    pub fn data_width(&self) -> u32 {
        self.data_width
    }

    /// Number of check bits (including the SECDED overall parity bit).
    pub fn check_width(&self) -> u32 {
        self.hamming_checks + self.secded as u32
    }

    /// Codeword position (1-based) of data bit `i`.
    fn data_position(&self, i: u32) -> u32 {
        // Skip power-of-two positions.
        let mut pos = 1;
        let mut seen = 0;
        loop {
            if !pos_is_check(pos) {
                if seen == i {
                    return pos;
                }
                seen += 1;
            }
            pos += 1;
        }
    }

    /// Computes the check bits for `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` has bits set beyond the data width.
    pub fn encode(&self, data: u128) -> u32 {
        assert_eq!(data >> self.data_width, 0, "data exceeds code width");
        let mut checks = 0u32;
        for c in 0..self.hamming_checks {
            if (data & self.masks[c as usize]).count_ones() % 2 == 1 {
                checks |= 1 << c;
            }
        }
        if self.secded {
            // The overall parity bit makes the total codeword parity even.
            if (data.count_ones() + checks.count_ones()) % 2 == 1 {
                checks |= 1 << self.hamming_checks;
            }
        }
        checks
    }

    /// Checks `data` against `check` and classifies/corrects the error.
    pub fn decode(&self, data: u128, check: u32) -> Decoded {
        let check_mask = (1u32 << self.check_width()) - 1;
        let check = check & check_mask;
        let expected = self.encode(data);
        let syndrome = (check ^ expected) & ((1u32 << self.hamming_checks) - 1);
        let overall_mismatch = if self.secded {
            ((data.count_ones() + check.count_ones()) % 2) == 1
        } else {
            false
        };

        if syndrome == 0 {
            if !self.secded || !overall_mismatch {
                return Decoded::Clean;
            }
            // Syndrome clean but overall parity wrong: the overall parity
            // bit itself flipped.
            return Decoded::CorrectedCheck;
        }

        if self.secded && !overall_mismatch {
            // Non-zero syndrome with even overall parity: double error.
            return Decoded::Uncorrectable;
        }

        // Single error at codeword position `syndrome`.
        if pos_is_check(syndrome) {
            return Decoded::CorrectedCheck;
        }
        // Find which data bit sits at that position.
        for i in 0..self.data_width {
            if self.data_position(i) == syndrome {
                return Decoded::CorrectedData(data ^ (1u128 << i));
            }
        }
        // Syndrome points past the codeword: corrupted beyond repair.
        Decoded::Uncorrectable
    }
}

fn pos_is_check(pos: u32) -> bool {
    pos.is_power_of_two()
}

/// The register-file entry code: 65 data bits, 8 check bits (SECDED), as in
/// the paper ("an overhead of eight bits for each of the 80 register file
/// entries").
pub fn regfile_code() -> Hamming {
    static CODE: OnceLock<Hamming> = OnceLock::new();
    *CODE.get_or_init(|| {
        let code = Hamming::new(65, true);
        debug_assert_eq!(code.check_width(), 8);
        code
    })
}

/// The register-pointer code: 7 data bits, 4 check bits (SEC), as in the
/// paper ("4 bits of overhead to each 7 bit register file pointer").
pub fn pointer_code() -> Hamming {
    static CODE: OnceLock<Hamming> = OnceLock::new();
    *CODE.get_or_init(|| {
        let code = Hamming::new(7, false);
        debug_assert_eq!(code.check_width(), 4);
        code
    })
}

use std::sync::OnceLock;

static PTR7_CHECKS: OnceLock<[u8; 128]> = OnceLock::new();
static PTR7_FIXES: OnceLock<Box<[u8; 2048]>> = OnceLock::new();

/// Fast table-driven check-bit computation for 7-bit pointers
/// (equivalent to `pointer_code().encode`, used on the pipeline's hot
/// paths where pointers travel with their check bits).
pub fn ptr7_check(data: u64) -> u64 {
    let table = PTR7_CHECKS.get_or_init(|| {
        let code = pointer_code();
        let mut t = [0u8; 128];
        for (v, slot) in t.iter_mut().enumerate() {
            *slot = code.encode(v as u128) as u8;
        }
        t
    });
    table[(data & 0x7f) as usize] as u64
}

/// Fast table-driven repair for 7-bit pointers: returns the corrected
/// pointer for a (data, check) pair (equivalent to running
/// `pointer_code().decode` and applying any single-bit data correction;
/// uncorrectable or check-bit errors return the data unchanged).
pub fn ptr7_fix(data: u64, check: u64) -> u64 {
    let table = PTR7_FIXES.get_or_init(|| {
        let code = pointer_code();
        let mut t = Box::new([0u8; 2048]);
        for d in 0..128u64 {
            for c in 0..16u64 {
                let fixed = match code.decode(d as u128, c as u32) {
                    Decoded::CorrectedData(f) => f as u8,
                    _ => d as u8,
                };
                t[(d * 16 + c) as usize] = fixed;
            }
        }
        t
    });
    table[((data & 0x7f) * 16 + (check & 0xf)) as usize] as u64
}

/// Even parity of a 32-bit instruction word: the stored parity bit makes
/// the total number of ones even.
pub fn parity32(word: u32) -> bool {
    word.count_ones() % 2 == 1
}

/// Even parity of a 64-bit word.
pub fn parity64(word: u64) -> bool {
    word.count_ones() % 2 == 1
}

/// Action requested by the [`TimeoutCounter`] after a cycle tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutAction {
    /// Keep running.
    None,
    /// Force a pipeline flush to clear a potential deadlock.
    Flush,
}

/// The watchdog of Section 4.2: counts cycles without retirement and
/// requests a pipeline flush at the threshold (100 cycles in the paper).
///
/// The counter holds ~10 bits of state; the pipeline registers them as
/// injectable `ctrl` latches when the mechanism is enabled (the paper also
/// subjects protection state to injection). After requesting a flush the
/// counter restarts, so a hard deadlock produces a flush every `threshold`
/// cycles rather than livelocking the watchdog itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutCounter {
    threshold: u32,
    /// Current count of consecutive cycles without retirement (10 bits).
    pub count: u64,
}

impl TimeoutCounter {
    /// Creates a watchdog with the paper's 100-cycle threshold.
    pub fn new() -> TimeoutCounter {
        TimeoutCounter::with_threshold(100)
    }

    /// Creates a watchdog with a custom threshold (must fit in 10 bits).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or does not fit in 10 bits.
    pub fn with_threshold(threshold: u32) -> TimeoutCounter {
        assert!(threshold > 0 && threshold < 1024);
        TimeoutCounter { threshold, count: 0 }
    }

    /// Advances one cycle. `retired_any` is whether the retire stage
    /// committed at least one instruction this cycle.
    pub fn tick(&mut self, retired_any: bool) -> TimeoutAction {
        if retired_any {
            self.count = 0;
            return TimeoutAction::None;
        }
        // Compare before wrapping so a fault-corrupted high count still
        // trips the watchdog rather than silently wrapping past it.
        if self.count + 1 >= self.threshold as u64 {
            self.count = 0;
            TimeoutAction::Flush
        } else {
            self.count = (self.count + 1) & 0x3ff;
            TimeoutAction::None
        }
    }
}

impl Default for TimeoutCounter {
    fn default() -> Self {
        TimeoutCounter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_dimensions_match_paper() {
        assert_eq!(regfile_code().check_width(), 8);
        assert_eq!(regfile_code().data_width(), 65);
        assert_eq!(pointer_code().check_width(), 4);
        assert_eq!(pointer_code().data_width(), 7);
    }

    #[test]
    fn clean_words_decode_clean() {
        let code = pointer_code();
        for data in 0..128u128 {
            assert_eq!(code.decode(data, code.encode(data)), Decoded::Clean);
        }
    }

    #[test]
    fn pointer_code_corrects_every_single_data_bit() {
        let code = pointer_code();
        for data in 0..128u128 {
            let check = code.encode(data);
            for bit in 0..7 {
                let corrupted = data ^ (1 << bit);
                assert_eq!(
                    code.decode(corrupted, check),
                    Decoded::CorrectedData(data),
                    "data {data:#x} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn pointer_code_detects_check_bit_errors() {
        let code = pointer_code();
        for data in [0u128, 0x55, 0x7f] {
            let check = code.encode(data);
            for bit in 0..4 {
                let d = code.decode(data, check ^ (1 << bit));
                assert_eq!(d, Decoded::CorrectedCheck, "data {data:#x} check bit {bit}");
            }
        }
    }

    #[test]
    fn regfile_code_corrects_single_data_bits() {
        let code = regfile_code();
        let samples = [0u128, 1, (1 << 65) - 1, 0xdead_beef_cafe_f00d, 1 << 64];
        for &data in &samples {
            let check = code.encode(data);
            for bit in [0u32, 1, 31, 32, 63, 64] {
                let corrupted = data ^ (1u128 << bit);
                assert_eq!(
                    code.decode(corrupted, check),
                    Decoded::CorrectedData(data),
                    "data {data:#x} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn regfile_code_detects_double_errors() {
        let code = regfile_code();
        let data = 0x0123_4567_89ab_cdefu128;
        let check = code.encode(data);
        for (a, b) in [(0u32, 1u32), (5, 40), (63, 64), (10, 20)] {
            let corrupted = data ^ (1u128 << a) ^ (1u128 << b);
            assert_eq!(
                code.decode(corrupted, check),
                Decoded::Uncorrectable,
                "bits {a},{b}"
            );
        }
    }

    #[test]
    fn regfile_code_detects_overall_parity_flip() {
        let code = regfile_code();
        let data = 42u128;
        let check = code.encode(data);
        // Flip the overall parity bit (top check bit).
        let d = code.decode(data, check ^ (1 << 7));
        assert_eq!(d, Decoded::CorrectedCheck);
    }

    #[test]
    fn parity_functions() {
        assert!(!parity32(0));
        assert!(parity32(1));
        assert!(!parity32(3));
        assert!(parity64(1 << 63));
        assert!(!parity64(0x3));
        // Parity over a dropped-bits update: parity(w) = parity(hi) ^ parity(lo).
        let w: u32 = 0xdead_beef;
        let hi = w & 0xffff_0000;
        let lo = w & 0x0000_ffff;
        assert_eq!(parity32(w), parity32(hi) ^ parity32(lo));
    }

    #[test]
    fn ptr7_tables_match_the_codec() {
        let code = pointer_code();
        for d in 0..128u64 {
            assert_eq!(ptr7_check(d), code.encode(d as u128) as u64, "check of {d}");
            let check = ptr7_check(d);
            assert_eq!(ptr7_fix(d, check), d, "clean {d}");
            for bit in 0..7 {
                assert_eq!(ptr7_fix(d ^ (1 << bit), check), d, "repair {d} bit {bit}");
            }
            for bit in 0..4 {
                assert_eq!(ptr7_fix(d, check ^ (1 << bit)), d, "check-bit flip {d} bit {bit}");
            }
        }
    }

    #[test]
    fn timeout_counter_fires_at_threshold() {
        let mut t = TimeoutCounter::with_threshold(3);
        assert_eq!(t.tick(false), TimeoutAction::None);
        assert_eq!(t.tick(false), TimeoutAction::None);
        assert_eq!(t.tick(false), TimeoutAction::Flush);
        // Restarts after firing.
        assert_eq!(t.tick(false), TimeoutAction::None);
        assert_eq!(t.tick(false), TimeoutAction::None);
        assert_eq!(t.tick(false), TimeoutAction::Flush);
    }

    #[test]
    fn timeout_counter_resets_on_retirement() {
        let mut t = TimeoutCounter::with_threshold(3);
        t.tick(false);
        t.tick(false);
        assert_eq!(t.tick(true), TimeoutAction::None);
        assert_eq!(t.count, 0);
        assert_eq!(t.tick(false), TimeoutAction::None);
    }

    #[test]
    fn corrupted_counter_state_recovers() {
        // A fault can set the count to any 10-bit value; the counter must
        // still behave sanely (fire and reset, no livelock).
        let mut t = TimeoutCounter::new();
        t.count = 0x3ff;
        assert_eq!(t.tick(false), TimeoutAction::Flush);
        assert_eq!(t.count, 0);
    }
}
