#![warn(missing_docs)]

//! # tfsim-mem — memory substrate
//!
//! Sparse paged physical memory and the preloaded-TLB model shared by the
//! architectural simulator and the pipeline model.
//!
//! The paper preloads both TLBs with every page the fault-free execution
//! touches; any access outside that set indicates a fault-induced wild
//! access and is conservatively classified as SDC (`itlb`/`dtlb` failure
//! modes). [`PageSet`] implements that model.
//!
//! ```
//! use tfsim_mem::{SparseMemory, PAGE_SIZE};
//!
//! let mut m = SparseMemory::new();
//! m.write_u64(0x1000, 0xdead_beef);
//! assert_eq!(m.read_u64(0x1000), 0xdead_beef);
//! assert_eq!(m.read_u64(0x2000), 0); // untouched memory reads as zero
//! assert_eq!(PAGE_SIZE, 8192);
//! ```

use std::collections::{BTreeMap, BTreeSet};

use tfsim_isa::Program;

/// Page size in bytes (8 KB, the classic Alpha page size).
pub const PAGE_SIZE: u64 = 8192;

/// Byte-addressed sparse memory backed by 8 KB pages.
///
/// Untouched locations read as zero. All multi-byte accesses are
/// little-endian and may span page boundaries.
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Creates a memory initialized from a program image.
    pub fn from_program(program: &Program) -> SparseMemory {
        let mut m = SparseMemory::new();
        m.load(program);
        m
    }

    /// Copies every section of `program` into memory.
    pub fn load(&mut self, program: &Program) {
        for s in &program.sections {
            self.write_bytes(s.addr, &s.bytes);
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(p) => p[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    fn read_le<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut buf = [0u8; N];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        buf
    }

    fn write_le(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads a little-endian 16-bit value.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_le(addr))
    }

    /// Reads a little-endian 32-bit value.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_le(addr))
    }

    /// Reads a little-endian 64-bit value.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_le(addr))
    }

    /// Writes a little-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_le(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_le(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian 64-bit value.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_le(addr, &value.to_le_bytes());
    }

    /// Reads `size` bytes (1, 2, 4, or 8) zero-extended into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics on any other size.
    pub fn read_sized(&self, addr: u64, size: u64) -> u64 {
        match size {
            1 => self.read_u8(addr) as u64,
            2 => self.read_u16(addr) as u64,
            4 => self.read_u32(addr) as u64,
            8 => self.read_u64(addr),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Writes the low `size` bytes (1, 2, 4, or 8) of `value`.
    ///
    /// # Panics
    ///
    /// Panics on any other size.
    pub fn write_sized(&mut self, addr: u64, value: u64, size: u64) {
        match size {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    /// Writes a byte slice starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        self.write_le(addr, bytes);
    }

    /// Number of allocated pages (for capacity diagnostics).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Iterator over allocated page numbers.
    pub fn pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages.keys().copied()
    }

    /// A deterministic checksum over all allocated pages (used by tests to
    /// compare memory images cheaply).
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for (num, page) in &self.pages {
            h ^= *num;
            h = h.wrapping_mul(0x100_0000_01b3);
            for &b in page.iter() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

/// Whether `addr` is naturally aligned for an access of `size` bytes.
///
/// Misaligned accesses raise alignment exceptions, one source of the
/// paper's `except` failure mode.
pub fn is_aligned(addr: u64, size: u64) -> bool {
    size == 0 || addr.is_multiple_of(size)
}

/// The preloaded-TLB model: the set of virtual pages the fault-free
/// execution is allowed to touch.
///
/// The paper preloads both TLBs with all pages accessed by the workload in
/// the absence of faults, so any TLB miss during an injected run signals a
/// potentially illegal access and counts as SDC.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageSet {
    pages: BTreeSet<u64>,
}

impl PageSet {
    /// Creates an empty page set.
    pub fn new() -> PageSet {
        PageSet::default()
    }

    /// Inserts the page containing `addr`.
    pub fn insert_addr(&mut self, addr: u64) {
        self.pages.insert(addr / PAGE_SIZE);
    }

    /// Inserts every page overlapping `[addr, addr + len)`.
    pub fn insert_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        for page in (addr / PAGE_SIZE)..=((addr + len - 1) / PAGE_SIZE) {
            self.pages.insert(page);
        }
    }

    /// Whether an access of `size` bytes at `addr` stays within loaded pages.
    pub fn covers(&self, addr: u64, size: u64) -> bool {
        let size = size.max(1);
        let first = addr / PAGE_SIZE;
        let last = (addr + size - 1) / PAGE_SIZE;
        (first..=last).all(|p| self.pages.contains(&p))
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Merges another page set into this one.
    pub fn extend_from(&mut self, other: &PageSet) {
        self.pages.extend(other.pages.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_isa::{Asm, Reg};

    #[test]
    fn read_your_writes_all_sizes() {
        let mut m = SparseMemory::new();
        m.write_u8(10, 0xab);
        m.write_u16(100, 0x1234);
        m.write_u32(200, 0xdead_beef);
        m.write_u64(300, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(100), 0x1234);
        assert_eq!(m.read_u32(200), 0xdead_beef);
        assert_eq!(m.read_u64(300), 0x0102_0304_0506_0708);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let addr = PAGE_SIZE - 4;
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn sized_access_round_trip() {
        let mut m = SparseMemory::new();
        for size in [1u64, 2, 4, 8] {
            let v = 0xfedc_ba98_7654_3210u64;
            m.write_sized(0x400, v, size);
            let mask = if size == 8 { u64::MAX } else { (1 << (8 * size)) - 1 };
            assert_eq!(m.read_sized(0x400, size), v & mask);
        }
    }

    #[test]
    fn program_loading() {
        let mut a = Asm::new(0x1_0000);
        a.addq(Reg::R1, Reg::R2, Reg::R3);
        let p = tfsim_isa::Program::new("t", a).with_data_words(0x2_0000, &[99]);
        let m = SparseMemory::from_program(&p);
        assert_ne!(m.read_u32(0x1_0000), 0);
        assert_eq!(m.read_u64(0x2_0000), 99);
    }

    #[test]
    fn checksum_detects_differences() {
        let mut a = SparseMemory::new();
        let mut b = SparseMemory::new();
        a.write_u8(0, 1);
        b.write_u8(0, 1);
        assert_eq!(a.checksum(), b.checksum());
        b.write_u8(12345, 7);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn alignment_rules() {
        assert!(is_aligned(0x1000, 8));
        assert!(!is_aligned(0x1001, 2));
        assert!(is_aligned(0x1001, 1));
        assert!(!is_aligned(0x1004, 8));
        assert!(is_aligned(0x1004, 4));
    }

    #[test]
    fn page_set_covers() {
        let mut s = PageSet::new();
        s.insert_range(0x1000, 0x100);
        assert!(s.covers(0x1000, 8));
        assert!(s.covers(0x1ff8, 8)); // same page (0)
        assert!(!s.covers(PAGE_SIZE, 1)); // page 1 not loaded
        s.insert_addr(PAGE_SIZE);
        assert!(s.covers(PAGE_SIZE - 4, 8)); // straddles pages 0 and 1
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn page_set_range_spans_pages() {
        let mut s = PageSet::new();
        s.insert_range(PAGE_SIZE - 1, 2);
        assert_eq!(s.len(), 2);
        s.insert_range(0, 0);
        assert_eq!(s.len(), 2);
        let mut t = PageSet::new();
        t.extend_from(&s);
        assert_eq!(t, s);
        assert!(!t.is_empty());
    }
}
