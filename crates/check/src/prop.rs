//! A minimal property-testing harness (the workspace's `proptest`
//! replacement).
//!
//! A property is an ordinary function body run against many generated
//! inputs. The [`prop_check!`] macro expands each property into a
//! `#[test]`:
//!
//! ```
//! use tfsim_check::prop::{any_u64, ints};
//! use tfsim_check::{prop_check, prop_assert, prop_assert_eq};
//!
//! prop_check! {
//!     fn addition_commutes(a in any_u64(), b in any_u64()) {
//!         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     }
//!
//!     fn small_values_stay_small(v in ints(0u32..10)) {
//!         prop_assert!(v < 10, "generator out of range: {}", v);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Every case `i` draws its input from the deterministic substream
//! `(seed, i)` of [`crate::Rng`], so a failure report names the exact
//! `(seed, case)` pair that produced the counterexample; rerunning with
//! `TFSIM_PROP_SEED=<seed>` reproduces it bit-for-bit, independent of how
//! many cases pass first. On failure the harness greedily shrinks the
//! input (integers toward the range origin, vectors by removing and
//! shrinking elements, tuples coordinate-wise) before panicking with the
//! minimal counterexample.

use std::fmt::Debug;
use std::ops::Range;

use crate::rng::Rng;

/// Harness configuration. [`Config::from_env`] honors `TFSIM_PROP_SEED`
/// and `TFSIM_PROP_CASES` so any reported failure can be replayed.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; case `i` uses substream `(seed, i)`.
    pub seed: u64,
    /// Upper bound on accepted shrink steps.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256, seed: 0x7f4a_7c15, max_shrink_steps: 4_096 }
    }
}

impl Config {
    /// The default configuration with environment overrides applied.
    pub fn from_env() -> Config {
        let mut cfg = Config::default();
        if let Ok(s) = std::env::var("TFSIM_PROP_SEED") {
            cfg.seed = parse_u64(&s).unwrap_or_else(|| panic!("bad TFSIM_PROP_SEED: {s:?}"));
        }
        if let Ok(s) = std::env::var("TFSIM_PROP_CASES") {
            cfg.cases =
                s.parse().unwrap_or_else(|_| panic!("bad TFSIM_PROP_CASES: {s:?}"));
        }
        cfg
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A value generator with attached shrinking.
pub trait Gen {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes strictly "smaller" candidates for a failing value. The
    /// runner keeps a candidate only if the property still fails on it.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Runs `prop` against `cfg.cases` generated inputs, shrinking and
/// panicking on the first failure. `Err(msg)` and panics inside the
/// property both count as failures (the `prop_assert*` macros return
/// `Err`; panics — a plain `assert!` deep in library code, an
/// out-of-bounds index — are contained and reported the same way, so the
/// `TFSIM_PROP_SEED` replay line is printed no matter how the property
/// fails).
pub fn run<G, F>(cfg: &Config, name: &str, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let mut rng = Rng::from_seed_stream(cfg.seed, case as u64);
        let value = gen.generate(&mut rng);
        if let Err(msg) = guarded(&prop, &value) {
            let (value, msg, steps) = shrink_loop(cfg, gen, value, msg, &prop);
            panic!(
                "property `{name}` failed: seed={seed:#x} case={case}\n  \
                 reproduce with: TFSIM_PROP_SEED={seed:#x} cargo test {name}\n  \
                 minimal counterexample ({steps} shrink steps): {value:?}\n  {msg}",
                seed = cfg.seed,
            );
        }
    }
}

thread_local! {
    /// True while a property body runs under [`guarded`]; the panic hook
    /// stays silent for contained panics so a shrink search does not spray
    /// hundreds of backtraces before the real report.
    static GUARDED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn install_guard_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !GUARDED.with(|g| g.get()) {
                prev(info);
            }
        }));
    });
}

/// Runs the property on one value with panics converted to `Err`, so both
/// the first-failure path and every shrink candidate keep the harness in
/// control of the final report. Without this, a panicking shrink candidate
/// would unwind straight through [`shrink_loop`] and the replay line would
/// be lost.
fn guarded<V, F>(prop: &F, value: &V) -> Result<(), String>
where
    F: Fn(&V) -> Result<(), String>,
{
    install_guard_hook();
    GUARDED.with(|g| g.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(value)));
    GUARDED.with(|g| g.set(false));
    match result {
        Ok(r) => r,
        Err(payload) => Err(if let Some(s) = payload.downcast_ref::<&str>() {
            format!("property panicked: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("property panicked: {s}")
        } else {
            "property panicked (non-string payload)".to_string()
        }),
    }
}

fn shrink_loop<G, F>(
    cfg: &Config,
    gen: &G,
    mut value: G::Value,
    mut msg: String,
    prop: &F,
) -> (G::Value, String, u32)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in gen.shrink(&value) {
            if let Err(m) = guarded(prop, &cand) {
                value = cand;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

// ---------------------------------------------------------------------------
// Integer generators.

/// Uniform integers in a half-open range (or the type's full range for the
/// `any_*` constructors). Shrinks toward the range origin.
#[derive(Debug, Clone, Copy)]
pub struct IntRange<T> {
    start: T,
    end: T,
    full: bool,
}

/// Uniform integers in `range` (half-open).
pub fn ints<T>(range: Range<T>) -> IntRange<T> {
    IntRange { start: range.start, end: range.end, full: false }
}

macro_rules! int_gen {
    ($t:ty, $anyfn:ident) => {
        /// Uniform integers over the type's full range.
        pub fn $anyfn() -> IntRange<$t> {
            IntRange { start: 0 as $t, end: 0 as $t, full: true }
        }

        impl Gen for IntRange<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                if self.full {
                    rng.next_u64() as $t
                } else {
                    rng.gen_range(self.start..self.end)
                }
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                // Bisecting candidate ladder (the QuickCheck scheme): the
                // origin first, then values ever closer to `v`. The runner
                // takes the first still-failing candidate, so accepted
                // steps converge to the minimal counterexample in
                // O(log range) rather than one decrement at a time.
                let origin: i128 = if self.full { 0 } else { self.start as i128 };
                let x = *v as i128;
                if x == origin {
                    return Vec::new();
                }
                let mut out: Vec<$t> = vec![origin as $t];
                let mut d = (x - origin) / 2;
                while d != 0 {
                    let cand = x - d;
                    if cand != origin {
                        out.push(cand as $t);
                    }
                    d /= 2;
                }
                out
            }
        }
    };
}

int_gen!(u8, any_u8);
int_gen!(u16, any_u16);
int_gen!(u32, any_u32);
int_gen!(u64, any_u64);
int_gen!(usize, any_usize);
int_gen!(i8, any_i8);
int_gen!(i16, any_i16);
int_gen!(i32, any_i32);
int_gen!(i64, any_i64);

/// Booleans (shrink `true` → `false`).
#[derive(Debug, Clone, Copy)]
pub struct BoolGen;

/// Uniform booleans.
pub fn bools() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.next_u64() & 1 != 0
    }

    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ---------------------------------------------------------------------------
// Collection generators.

/// Vectors of generated elements with length drawn from a half-open
/// range. Shrinks by halving, dropping endpoints, and shrinking elements.
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min: usize,
    max: usize,
}

/// Vectors of `elem` values with `len` in the given half-open range.
pub fn vecs<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "vecs: empty length range");
    VecGen { elem, min: len.start, max: len.end }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let len = rng.gen_range(self.min..self.max);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        if v.len() > self.min {
            let half = v.len() / 2;
            if half >= self.min && half < v.len() {
                out.push(v[..half].to_vec());
            }
            out.push(v[..v.len() - 1].to_vec());
            out.push(v[1..].to_vec());
        }
        for i in 0..v.len() {
            for s in self.elem.shrink(&v[i]) {
                let mut c = v.clone();
                c[i] = s;
                out.push(c);
            }
        }
        out
    }
}

/// Uniform choice from a fixed option list. Shrinks toward earlier
/// options.
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Uniform choice among `options` (must be non-empty).
pub fn select<T: Clone + Debug + PartialEq>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: no options");
    Select { options }
}

impl<T: Clone + Debug + PartialEq> Gen for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        self.options[rng.gen_below(self.options.len() as u64) as usize].clone()
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        match self.options.iter().position(|o| o == v) {
            Some(idx) => self.options[..idx].to_vec(),
            None => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Tuple generators (shrink one coordinate at a time).

impl<A: Gen> Gen for (A,) {
    type Value = (A::Value,);

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng),)
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        self.0.shrink(&v.0).into_iter().map(|a| (a,)).collect()
    }
}

impl<A: Gen, B: Gen> Gen for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        out.extend(self.0.shrink(&v.0).into_iter().map(|a| (a, v.1.clone())));
        out.extend(self.1.shrink(&v.1).into_iter().map(|b| (v.0.clone(), b)));
        out
    }
}

impl<A: Gen, B: Gen, C: Gen> Gen for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        out.extend(self.0.shrink(&v.0).into_iter().map(|a| (a, v.1.clone(), v.2.clone())));
        out.extend(self.1.shrink(&v.1).into_iter().map(|b| (v.0.clone(), b, v.2.clone())));
        out.extend(self.2.shrink(&v.2).into_iter().map(|c| (v.0.clone(), v.1.clone(), c)));
        out
    }
}

impl<A: Gen, B: Gen, C: Gen, D: Gen> Gen for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        out.extend(
            self.0.shrink(&v.0).into_iter().map(|a| (a, v.1.clone(), v.2.clone(), v.3.clone())),
        );
        out.extend(
            self.1.shrink(&v.1).into_iter().map(|b| (v.0.clone(), b, v.2.clone(), v.3.clone())),
        );
        out.extend(
            self.2.shrink(&v.2).into_iter().map(|c| (v.0.clone(), v.1.clone(), c, v.3.clone())),
        );
        out.extend(
            self.3.shrink(&v.3).into_iter().map(|d| (v.0.clone(), v.1.clone(), v.2.clone(), d)),
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Macros.

/// Declares property tests. Each `fn name(arg in generator, ...) { body }`
/// item expands to a `#[test]` that runs the body against
/// [`Config::from_env`]-many generated inputs, shrinking failures. The
/// body uses [`prop_assert!`](crate::prop_assert),
/// [`prop_assert_eq!`](crate::prop_assert_eq),
/// [`prop_assert_ne!`](crate::prop_assert_ne), and
/// [`prop_assume!`](crate::prop_assume).
#[macro_export]
macro_rules! prop_check {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg = $crate::prop::Config::from_env();
            let __gen = ( $($gen,)+ );
            $crate::prop::run(&__cfg, stringify!($name), &__gen, |__val| {
                #[allow(unused_parens)]
                let ( $($arg,)+ ) = ::std::clone::Clone::clone(__val);
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
        $crate::prop_check! { $($rest)* }
    };
}

/// Asserts a condition inside a [`prop_check!`] body; on failure the case
/// is reported (and shrunk) instead of aborting the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert failed at {}:{}: {}",
                file!(),
                line!(),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion for [`prop_check!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}: {}",
                file!(),
                line!(),
                __l,
                __r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion for [`prop_check!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne! failed at {}:{}: both sides are {:?}",
                file!(),
                line!(),
                __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne! failed at {}:{}: both sides are {:?}: {}",
                file!(),
                line!(),
                __l,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Discards cases that do not satisfy a precondition (the case counts as
/// passed; generators should make discards rare).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Config {
        Config { cases: 64, seed: 1, max_shrink_steps: 1_000 }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        run(&small_cfg(), "always_true", &(any_u64(),), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn cases_are_reproducible_across_runs() {
        let collect = |cfg: &Config| {
            let vals = std::cell::RefCell::new(Vec::new());
            run(cfg, "collect", &(any_u64(),), |&(v,)| {
                vals.borrow_mut().push(v);
                Ok(())
            });
            vals.into_inner()
        };
        let a = collect(&small_cfg());
        let b = collect(&small_cfg());
        assert_eq!(a, b);
        assert_ne!(a, collect(&Config { seed: 2, ..small_cfg() }));
    }

    #[test]
    fn failure_reports_seed_and_shrinks_to_minimum() {
        let err = std::panic::catch_unwind(|| {
            run(&small_cfg(), "ge_1000", &(any_u64(),), |&(v,)| {
                if v >= 1_000 {
                    Err(format!("{v} too big"))
                } else {
                    Ok(())
                }
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("seed=0x1"), "missing seed: {msg}");
        assert!(msg.contains("TFSIM_PROP_SEED"), "missing repro hint: {msg}");
        // Integer shrinking must reach the smallest failing value.
        assert!(msg.contains("(1000,)"), "not fully shrunk: {msg}");
    }

    #[test]
    fn panicking_property_still_reports_seed_and_shrinks() {
        // A property that panics outright (a plain `assert!`, not a
        // `prop_assert!`) must produce the same seeded report as an `Err`
        // return — including through panicking shrink candidates.
        let err = std::panic::catch_unwind(|| {
            run(&small_cfg(), "panics_ge_1000", &(any_u64(),), |&(v,)| {
                assert!(v < 1_000, "{v} too big");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("TFSIM_PROP_SEED"), "missing repro hint: {msg}");
        assert!(msg.contains("(1000,)"), "not fully shrunk: {msg}");
        assert!(msg.contains("property panicked"), "panic not attributed: {msg}");
        assert!(msg.contains("1000 too big"), "original message lost: {msg}");
    }

    #[test]
    fn int_shrink_moves_toward_origin() {
        let g = ints(10u32..100);
        let cands = g.shrink(&50);
        assert!(cands.contains(&10));
        assert!(cands.iter().all(|&c| (10..50).contains(&c)));
        assert!(g.shrink(&10).is_empty());
    }

    #[test]
    fn signed_shrink_moves_toward_zero() {
        let g = any_i64();
        assert!(g.shrink(&-40).contains(&0));
        assert!(g.shrink(&-40).contains(&-20));
        assert!(g.shrink(&0).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len_and_shrinks_elems() {
        let g = vecs(ints(0u32..10), 2..6);
        let v = vec![3u32, 5, 7];
        let cands = g.shrink(&v);
        assert!(cands.iter().all(|c| c.len() >= 2));
        assert!(cands.contains(&vec![3, 5]), "drops the tail");
        assert!(cands.contains(&vec![5, 7]), "drops the head");
        assert!(cands.contains(&vec![0, 5, 7]), "shrinks an element");
    }

    #[test]
    fn vec_failure_shrinks_to_minimal_witness() {
        // Property: no vector contains a value >= 500. Minimal failing
        // input under shrinking is the single-element vector [500].
        let err = std::panic::catch_unwind(|| {
            run(
                &Config { cases: 200, ..small_cfg() },
                "no_big_elem",
                &(vecs(any_u64(), 1..20),),
                |(v,)| {
                    if v.iter().any(|&x| x >= 500) {
                        Err("big".into())
                    } else {
                        Ok(())
                    }
                },
            );
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("([500],)"), "not minimal: {msg}");
    }

    #[test]
    fn select_generates_only_options_and_shrinks_left() {
        let g = select(vec![1u64, 2, 4, 8]);
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            assert!([1, 2, 4, 8].contains(&g.generate(&mut rng)));
        }
        assert_eq!(g.shrink(&4), vec![1, 2]);
        assert!(g.shrink(&1).is_empty());
    }

    #[test]
    fn bool_gen_shrinks_true_to_false() {
        assert_eq!(bools().shrink(&true), vec![false]);
        assert!(bools().shrink(&false).is_empty());
    }

    #[test]
    fn tuple_shrink_is_coordinate_wise() {
        let g = (ints(0u32..10), ints(0u32..10));
        let cands = g.shrink(&(4, 6));
        assert!(cands.contains(&(0, 6)));
        assert!(cands.contains(&(4, 0)));
        assert!(!cands.contains(&(0, 0)), "one coordinate at a time");
    }

    // The macro surface itself, used exactly as call sites do.
    crate::prop_check! {
        /// Doc comments and extra attributes pass through.
        fn macro_smoke(a in any_u32(), b in ints(1u64..100)) {
            crate::prop_assert!(b >= 1);
            crate::prop_assert!(b < 100, "b out of range: {}", b);
            crate::prop_assert_eq!(a as u64 + b, b + a as u64);
            crate::prop_assert_ne!(b, 0, "b is never zero");
            crate::prop_assume!(a % 2 == 0);
            crate::prop_assert_eq!(a % 2, 0);
        }

        fn macro_single_arg(v in vecs(any_u8(), 0..8)) {
            crate::prop_assert!(v.len() < 8);
        }
    }
}
