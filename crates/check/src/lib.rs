#![warn(missing_docs)]

//! # tfsim-check — the hermetic verification substrate
//!
//! Everything the workspace needs to randomize, property-test, and
//! benchmark itself without a single external crate:
//!
//! * [`rng`] — a deterministic, splittable PRNG (SplitMix64 seeding,
//!   xoshiro256\*\* core). Campaign results are bit-reproducible from one
//!   `u64` seed; per-trial substreams make them independent of thread
//!   count and scheduling.
//! * [`prop`] — a minimal property-testing harness: the [`prop_check!`]
//!   macro runs a property over generated inputs, reports the failing
//!   `(seed, case)` pair on failure, and shrinks integers, tuples, and
//!   vectors to a minimal counterexample.
//! * [`bench`] — a wall-clock micro-bench runner (warm-up, calibrated
//!   batches, median-of-N, JSON output) replacing `criterion`.
//!
//! The repo's hermetic policy (no crates.io dependencies anywhere in the
//! workspace) exists because the DSN 2004 reproduction's claims rest on
//! reproducible injection campaigns: owning the randomness and the
//! verification layer keeps every reported number derivable from a seed,
//! offline, forever.

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::{Bench, BenchResult};
pub use prop::{Config, Gen};
pub use rng::{Rng, SplitMix64};
