//! Deterministic, splittable pseudo-random numbers.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through
//! SplitMix64 so that any `u64` — including 0 — expands to a full-entropy
//! 256-bit state. Both algorithms are public-domain reference designs with
//! published test vectors; the unit tests below pin this implementation to
//! those vectors so the campaign results of every future session stay
//! bit-identical.
//!
//! Streams: [`Rng::from_seed_stream`] derives an independent generator
//! from a `(seed, stream)` pair — the campaign framework gives every
//! `(benchmark, start point)` task its own stream, which is what makes
//! outcome counts identical regardless of how tasks are scheduled across
//! threads. [`Rng::split`] peels off a child generator 2^128 steps away
//! from the parent for ad-hoc forking.
//!
//! ```
//! use tfsim_check::Rng;
//!
//! let mut a = Rng::new(7);
//! let mut b = Rng::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(10u64..20);
//! assert!((10..20).contains(&x));
//! ```

use std::ops::Range;

/// SplitMix64: a tiny 64-bit generator used here to expand seeds.
///
/// Every output of a distinct state is distinct (it is a bijective
/// mixing of a counter), which makes it ideal for turning one `u64`
/// seed into the four xoshiro state words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workspace's one and only random-number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn new(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Derives the generator for substream `stream` of `seed`.
    ///
    /// Distinct streams of the same seed are decorrelated by passing the
    /// stream index through its own SplitMix64 mix before the seed
    /// expansion, so `(seed, 0)`, `(seed, 1)`, … behave as unrelated
    /// generators while remaining a pure function of the pair.
    pub fn from_seed_stream(seed: u64, stream: u64) -> Rng {
        let mut sm = SplitMix64::new(stream);
        Rng::new(seed ^ sm.next_u64())
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits (upper half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)` (Lemire's multiply-with-rejection, so the
    /// distribution is exactly uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        let mut m = (self.next_u64() as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = (self.next_u64() as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// The xoshiro256 jump: advances this generator by 2^128 steps.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Splits off a child generator: the child continues from the current
    /// state while `self` jumps 2^128 steps ahead, so the two sequences
    /// cannot overlap in any feasible computation.
    pub fn split(&mut self) -> Rng {
        let child = Rng { s: self.s };
        self.jump();
        child
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Uniform sample in `[lo, hi)`; panics if the range is empty.
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut Rng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                lo + rng.gen_below((hi - lo) as u64) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut Rng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.gen_below(span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    /// Published SplitMix64 test vector (seed 0).
    #[test]
    fn splitmix_reference_vector() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
        assert_eq!(sm.next_u64(), 0xf88b_b8a8_724c_81ec);
    }

    /// xoshiro256** driven from the SplitMix64 expansion of seed 42,
    /// cross-checked against an independent reference implementation.
    #[test]
    fn xoshiro_reference_vector() {
        let mut rng = Rng::new(42);
        assert_eq!(rng.next_u64(), 0x1578_0b2e_0c2e_c716);
        assert_eq!(rng.next_u64(), 0x6104_d986_6d11_3a7e);
        assert_eq!(rng.next_u64(), 0xae17_5332_39e4_99a1);
        assert_eq!(rng.next_u64(), 0xecb8_ad47_03b3_60a1);
        assert_eq!(rng.next_u64(), 0xfde6_dc7f_e2ec_5e64);
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        let mut c = Rng::new(124);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn streams_are_decorrelated_and_deterministic() {
        let mut s0 = Rng::from_seed_stream(9, 0);
        let mut s1 = Rng::from_seed_stream(9, 1);
        let mut s0b = Rng::from_seed_stream(9, 0);
        let a: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| s0b.next_u64()).collect();
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn gen_below_stays_in_range_and_covers() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn gen_range_all_widths() {
        let mut rng = Rng::new(17);
        for _ in 0..200 {
            let a = rng.gen_range(3u8..7);
            assert!((3..7).contains(&a));
            let b = rng.gen_range(0u32..1);
            assert_eq!(b, 0);
            let c = rng.gen_range(100u64..1_000_000);
            assert!((100..1_000_000).contains(&c));
            let d = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&d));
            let e = rng.gen_range(0usize..3);
            assert!(e < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(0).gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = Rng::new(31);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!Rng::new(1).gen_bool(0.0));
        assert!(Rng::new(1).gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = Rng::new(77);
        let mut b = Rng::new(77);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..13], &w1[..5]);
    }

    #[test]
    fn split_produces_distinct_streams() {
        let mut parent = Rng::new(99);
        let mut child = parent.split();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
        // The child replays what the un-jumped parent would have produced.
        let mut replay = Rng::new(99);
        let r: Vec<u64> = (0..8).map(|_| replay.next_u64()).collect();
        assert_eq!(c, r);
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..1_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
