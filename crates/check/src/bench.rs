//! A wall-clock micro-bench runner (the workspace's `criterion`
//! replacement).
//!
//! Each benchmark is calibrated so one sample takes roughly
//! [`Bench::target_sample_ns`], warmed up untimed, then measured
//! [`Bench::samples`] times; the per-iteration median is the headline
//! number (medians are robust to scheduler noise, which dominates on
//! shared machines). Results render as an aligned table and as JSON
//! lines for machine consumption.
//!
//! ```
//! use tfsim_check::bench::{black_box, Bench};
//!
//! let mut b = Bench::new();
//! b.samples = 5;
//! b.target_sample_ns = 100_000; // keep the doctest fast
//! b.bench("sum-1k", || (0..1_000u64).map(black_box).sum::<u64>());
//! assert!(b.results()[0].median_ns() > 0.0);
//! println!("{}", b.render_table());
//! ```

use std::time::Instant;

pub use std::hint::black_box;

/// Measurements for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed sample (set by calibration).
    pub iters_per_sample: u64,
    /// Per-iteration nanoseconds, one entry per sample.
    pub samples_ns: Vec<f64>,
}

impl BenchResult {
    /// Median per-iteration nanoseconds.
    pub fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(f64::total_cmp);
        match s.len() {
            0 => 0.0,
            n if n % 2 == 1 => s[n / 2],
            n => (s[n / 2 - 1] + s[n / 2]) / 2.0,
        }
    }

    /// Fastest per-iteration sample.
    pub fn min_ns(&self) -> f64 {
        self.samples_ns.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Slowest per-iteration sample.
    pub fn max_ns(&self) -> f64 {
        self.samples_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Mean per-iteration nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// One JSON object describing this result.
    pub fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"mean_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            escape_json(&self.name),
            self.median_ns(),
            self.min_ns(),
            self.mean_ns(),
            self.max_ns(),
            self.samples_ns.len(),
            self.iters_per_sample,
        )
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The benchmark runner: collects [`BenchResult`]s with a shared
/// configuration.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Timed samples per benchmark (`TFSIM_BENCH_SAMPLES`, default 15).
    pub samples: u32,
    /// Calibration target per sample in nanoseconds
    /// (`TFSIM_BENCH_SAMPLE_MS` in milliseconds, default 20ms).
    pub target_sample_ns: u64,
    /// Only run benchmarks whose name contains this substring.
    pub filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Bench {
    fn default() -> Bench {
        Bench::new()
    }
}

impl Bench {
    /// A runner configured from the environment.
    pub fn new() -> Bench {
        let samples = std::env::var("TFSIM_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(15);
        let sample_ms: u64 = std::env::var("TFSIM_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(20);
        Bench {
            samples,
            target_sample_ns: sample_ms * 1_000_000,
            filter: None,
            results: Vec::new(),
        }
    }

    fn skipped(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => !name.contains(f.as_str()),
            None => false,
        }
    }

    /// Benchmarks `f` as a closed loop: calibrates the iteration count,
    /// warms up with one untimed sample, then records the timed samples.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if self.skipped(name) {
            return;
        }
        // Calibrate: double the batch until it costs >= 1/8 of the target,
        // then scale to the target.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as u64;
            if ns >= self.target_sample_ns / 8 || iters >= 1 << 40 {
                break (ns.max(1) as f64 / iters as f64).max(0.25);
            }
            iters *= 2;
        };
        let iters = ((self.target_sample_ns as f64 / per_iter_ns) as u64).max(1);

        // Warm-up: one untimed sample.
        for _ in 0..iters {
            black_box(f());
        }

        let mut samples_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.results.push(BenchResult {
            name: name.to_string(),
            iters_per_sample: iters,
            samples_ns,
        });
    }

    /// Benchmarks `f` with a fresh, untimed `setup()` value per call
    /// (criterion's `iter_batched`): each iteration is timed individually
    /// so setup cost never leaks into the measurement. Intended for
    /// bodies that are expensive relative to clock reads (≥ microseconds).
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        if self.skipped(name) {
            return;
        }
        // Calibrate against the timed body only.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let mut ns = 0u64;
            for _ in 0..iters {
                let s = setup();
                let t = Instant::now();
                black_box(f(s));
                ns += t.elapsed().as_nanos() as u64;
            }
            if ns >= self.target_sample_ns / 8 || iters >= 1 << 30 {
                break (ns.max(1) as f64 / iters as f64).max(0.25);
            }
            iters *= 2;
        };
        let iters = ((self.target_sample_ns as f64 / per_iter_ns) as u64).max(1);

        {
            let s = setup();
            black_box(f(s)); // warm-up
        }

        let mut samples_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let mut ns = 0u64;
            for _ in 0..iters {
                let s = setup();
                let t = Instant::now();
                black_box(f(s));
                ns += t.elapsed().as_nanos() as u64;
            }
            samples_ns.push(ns as f64 / iters as f64);
        }
        self.results.push(BenchResult {
            name: name.to_string(),
            iters_per_sample: iters,
            samples_ns,
        });
    }

    /// All collected results, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders results as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<36} {:>14} {:>14} {:>14} {:>8}\n",
            "benchmark", "median", "min", "mean", "samples"
        ));
        for r in &self.results {
            out.push_str(&format!(
                "{:<36} {:>14} {:>14} {:>14} {:>8}\n",
                r.name,
                fmt_ns(r.median_ns()),
                fmt_ns(r.min_ns()),
                fmt_ns(r.mean_ns()),
                r.samples_ns.len(),
            ));
        }
        out
    }

    /// Renders results as JSON lines (one object per benchmark).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.json());
            out.push('\n');
        }
        out
    }
}

/// Human formatting for a nanosecond quantity.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Bench {
        Bench { samples: 5, target_sample_ns: 50_000, filter: None, results: Vec::new() }
    }

    #[test]
    fn bench_produces_positive_stats() {
        let mut b = tiny();
        b.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i) * 3);
            }
            acc
        });
        let r = &b.results()[0];
        assert_eq!(r.samples_ns.len(), 5);
        assert!(r.iters_per_sample >= 1);
        assert!(r.median_ns() > 0.0);
        assert!(r.min_ns() <= r.median_ns());
        assert!(r.median_ns() <= r.max_ns());
        let mean = r.mean_ns();
        assert!(mean >= r.min_ns() && mean <= r.max_ns());
    }

    #[test]
    fn bench_with_setup_excludes_setup_cost() {
        let mut b = tiny();
        b.bench_with_setup(
            "consume-vec",
            || vec![1u64; 64],
            |v| v.iter().sum::<u64>(),
        );
        assert_eq!(b.results().len(), 1);
        assert!(b.results()[0].median_ns() > 0.0);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut b = tiny();
        b.filter = Some("keep".to_string());
        b.bench("keep-me", || 1u64);
        b.bench("drop-me", || 2u64);
        assert_eq!(b.results().len(), 1);
        assert_eq!(b.results()[0].name, "keep-me");
    }

    #[test]
    fn json_and_table_render_every_result() {
        let mut b = tiny();
        b.bench("fast-op", || black_box(21u64) * 2);
        let json = b.render_json();
        assert!(json.contains("\"name\":\"fast-op\""), "{json}");
        assert!(json.contains("\"median_ns\":"), "{json}");
        let table = b.render_table();
        assert!(table.contains("fast-op"));
        assert!(table.contains("median"));
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn median_of_even_sample_count() {
        let r = BenchResult {
            name: "m".into(),
            iters_per_sample: 1,
            samples_ns: vec![1.0, 3.0, 2.0, 10.0],
        };
        assert!((r.median_ns() - 2.5).abs() < 1e-9);
        assert_eq!(r.min_ns(), 1.0);
        assert_eq!(r.max_ns(), 10.0);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(2.5e9).ends_with(" s"));
    }
}
