#![warn(missing_docs)]

//! # tfsim-workloads — synthetic SPECint-2000-like benchmarks
//!
//! The paper drives its injection campaigns with the SPEC2000 integer
//! suite. SPEC sources are not redistributable and require an OS layer, so
//! this crate provides ten self-contained kernels — one per SPECint program
//! the paper uses — written in the Alpha subset via [`tfsim_isa::Asm`].
//! Each kernel mimics the qualitative microarchitectural character of its
//! namesake (see each constructor's documentation): together they span
//! high/low IPC, predictable/unpredictable branches, and cache-friendly/
//! cache-hostile access patterns, which are exactly the properties the
//! paper identifies as driving per-benchmark masking differences.
//!
//! Every program ends by writing an 8-byte checksum through the `write`
//! syscall and exiting with code 0, so both the architectural outcome
//! classifier (`Output OK`/`Output Bad`) and the golden-trace checker can
//! observe its result.
//!
//! ```
//! use tfsim_workloads::{all, by_name};
//!
//! assert_eq!(all().len(), 10);
//! let w = by_name("gzip-like").unwrap();
//! let program = w.build(1);
//! assert!(!program.sections.is_empty());
//! ```

use tfsim_isa::{syscall, Asm, Program, Reg};

mod kernels;

pub use kernels::*;

/// Base address of workload code.
pub const CODE_BASE: u64 = 0x1_0000;
/// Base address of workload data.
pub const DATA_BASE: u64 = 0x10_0000;
/// Address of the 8-byte output checksum buffer.
pub const OUT_BASE: u64 = 0xF_0000;

/// A named workload generator.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Stable name (e.g. `"gzip-like"`), used in figures and CLIs.
    pub name: &'static str,
    /// The program generator backing [`Workload::build`].
    pub builder: fn(u32) -> Program,
    /// One-line description of the microarchitectural character.
    pub character: &'static str,
}

impl Workload {
    /// Builds the program at a given scale factor (≥ 1). Larger scales run
    /// longer; scale 1 targets tens of thousands of dynamic instructions.
    pub fn build(&self, scale: u32) -> Program {
        (self.builder)(scale)
    }
}

/// The ten SPECint-2000 stand-ins, in the paper's Figure 3 order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "bzip2-like",
            builder: bzip2_like,
            character: "block sort: high IPC, high dcache hit rate, predictable branches",
        },
        Workload {
            name: "crafty-like",
            builder: crafty_like,
            character: "bitboard arithmetic: ALU-bound, very high ILP, multiplies",
        },
        Workload {
            name: "gcc-like",
            builder: gcc_like,
            character: "pointer chasing over a linked structure: serial loads, low IPC",
        },
        Workload {
            name: "gzip-like",
            builder: gzip_like,
            character: "run-length compression: tight loops, highest IPC",
        },
        Workload {
            name: "mcf-like",
            builder: mcf_like,
            character: "sparse random updates over a large array: cache-miss bound",
        },
        Workload {
            name: "parser-like",
            builder: parser_like,
            character: "byte classification: data-dependent, mispredict-heavy branches",
        },
        Workload {
            name: "perlbmk-like",
            builder: perlbmk_like,
            character: "hashing into a table: multiplies plus scattered loads/stores",
        },
        Workload {
            name: "twolf-like",
            builder: twolf_like,
            character: "annealing-style conditional swaps: ~50% taken branches",
        },
        Workload {
            name: "vortex-like",
            builder: vortex_like,
            character: "object store: record copies, store-heavy",
        },
        Workload {
            name: "vpr-like",
            builder: vpr_like,
            character: "grid breadth-first wavefront: memory queue, mixed branches",
        },
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Emits the standard epilogue: stores the checksum register to
/// [`OUT_BASE`], writes those 8 bytes, and exits with code 0.
pub(crate) fn epilogue(a: &mut Asm, checksum: Reg) {
    a.li(Reg::R22, OUT_BASE);
    a.stq(checksum, Reg::R22, 0);
    a.li(Reg::V0, syscall::WRITE);
    a.li(Reg::A0, 1);
    a.li(Reg::A1, OUT_BASE);
    a.li(Reg::A2, 8);
    a.callsys();
    a.li(Reg::V0, syscall::EXIT);
    a.li(Reg::A0, 0);
    a.callsys();
}

/// Emits one LCG step: `state = state * MUL + INC` where the constants
/// live in `mul_reg`/`inc_reg` (loaded once by [`lcg_init`]).
pub(crate) fn lcg_step(a: &mut Asm, state: Reg, mul_reg: Reg, inc_reg: Reg) {
    a.mulq(state, mul_reg, state);
    a.addq(state, inc_reg, state);
}

/// Loads the Knuth MMIX LCG constants into two registers.
pub(crate) fn lcg_init(a: &mut Asm, mul_reg: Reg, inc_reg: Reg) {
    a.li(mul_reg, 6364136223846793005);
    a.li(inc_reg, 1442695040888963407);
}

/// Folds `value` into the running checksum register: `ck = ck * 31 + value`.
pub(crate) fn fold_checksum(a: &mut Asm, ck: Reg, value: Reg) {
    a.mulq_i(ck, 31, ck);
    a.addq(ck, value, ck);
}

/// Emits a block of realistic-but-ineffectual computation, mimicking the
/// dead and transitively dead values of compiled SPECint code (dead
/// register writes from spills and partially dead code, silent compares
/// whose upper bits never matter, and never-taken convergent checks —
/// cf. the dead/ineffectual-instruction studies the paper cites). The
/// paper attributes roughly half of all software-level masking to such
/// values, so the kernels carry a comparable dynamic fraction.
///
/// Uses only the conventional scratch registers `R27`/`R28`, both
/// overwritten on every execution of the block so corrupted values
/// reconverge within one loop iteration.
pub(crate) fn ineffectual(a: &mut Asm, live: Reg) {
    // A derived temporary that is immediately dead.
    a.srl_i(live, 9, Reg::R28);
    // An address-like computation whose result is never consumed.
    a.s4addq(Reg::R28, live, Reg::R27);
    // A silent comparison: always 1, only the low bit is ever live.
    a.cmpeq(Reg::R27, Reg::R27, Reg::R28);
    // A never-taken check whose taken path converges immediately (the
    // "y-branch" structure of real error checks).
    let lbl = a.label();
    a.beq(Reg::R28, lbl);
    a.bind(lbl);
    // A register move that the next block overwrites (spill-like).
    a.bis(live, Reg::R31, Reg::R28);
    // A short dead dependence chain (partially dead code after inlining).
    a.srl_i(Reg::R27, 3, Reg::R27);
    a.subq(Reg::R28, Reg::R27, Reg::R27);
    a.addq_i(Reg::R28, 5, Reg::R28);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_arch::FuncSim;

    /// Runs a program to completion and returns (checksum bytes, retired).
    fn run(program: &Program) -> (Vec<u8>, u64) {
        let mut sim = FuncSim::new(program);
        let result = sim.run(5_000_000);
        assert_eq!(
            result.exit_code,
            Some(0),
            "{} did not exit cleanly: {result:?}",
            program.name
        );
        assert_eq!(sim.output().len(), 8, "{} wrote wrong output size", program.name);
        (sim.output().to_vec(), sim.instret())
    }

    #[test]
    fn every_workload_terminates_and_outputs() {
        for w in all() {
            let p = w.build(1);
            let (out, retired) = run(&p);
            assert!(
                retired > 5_000,
                "{} too short at scale 1: {retired} instructions",
                w.name
            );
            assert!(
                retired < 2_000_000,
                "{} too long at scale 1: {retired} instructions",
                w.name
            );
            assert_ne!(out, vec![0u8; 8], "{} produced a zero checksum", w.name);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in all() {
            let (a, _) = run(&w.build(1));
            let (b, _) = run(&w.build(1));
            assert_eq!(a, b, "{} not deterministic", w.name);
        }
    }

    #[test]
    fn scale_changes_length_and_output() {
        for w in all() {
            let (out1, n1) = run(&w.build(1));
            let (out2, n2) = run(&w.build(2));
            assert!(n2 > n1, "{}: scale 2 not longer ({n1} vs {n2})", w.name);
            assert_ne!(out1, out2, "{}: scale must affect the checksum", w.name);
        }
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let ws = all();
        for w in &ws {
            assert_eq!(by_name(w.name).unwrap().name, w.name);
        }
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn workloads_differ_from_each_other() {
        let mut outputs = Vec::new();
        for w in all() {
            let (out, _) = run(&w.build(1));
            outputs.push((w.name, out));
        }
        for i in 0..outputs.len() {
            for j in (i + 1)..outputs.len() {
                assert_ne!(
                    outputs[i].1, outputs[j].1,
                    "{} and {} produced identical checksums",
                    outputs[i].0, outputs[j].0
                );
            }
        }
    }
}
