//! The ten kernel generators. Each mimics the microarchitectural character
//! of one SPECint-2000 program (see the crate docs and DESIGN.md for the
//! substitution rationale).
//!
//! Register conventions shared by the kernels:
//! `R9` checksum accumulator, `R10` LCG state, `R24`/`R25` LCG constants,
//! `R20`–`R23` loop-invariant constants, `R1`–`R8`/`R11`–`R15` locals.

use tfsim_isa::{Asm, Program, Reg};

use crate::{epilogue, fold_checksum, ineffectual, lcg_init, lcg_step, CODE_BASE, DATA_BASE};

use Reg::*;

/// `gzip`-like: run-length compression of a buffer with 16-byte runs.
/// Tight loops of byte loads with highly predictable branches — the
/// highest-IPC workload, matching the paper's description of gzip.
pub fn gzip_like(scale: u32) -> Program {
    let n = 2048u64 * scale as u64;
    let mut a = Asm::new(CODE_BASE);
    // Generate input: byte i holds (i >> 4) & 0xff, giving 16-byte runs.
    a.li(R1, DATA_BASE);
    a.li(R2, n);
    a.li(R3, 0);
    let init = a.here_label();
    a.srl_i(R3, 4, R4);
    a.and_i(R4, 0xff, R4);
    a.addq(R1, R3, R5);
    a.stb(R4, R5, 0);
    a.addq_i(R3, 1, R3);
    a.cmplt(R3, R2, R6);
    a.bne(R6, init);
    // Compress: for each run, fold (length, byte) into the checksum.
    a.li(R3, 0);
    a.li(R9, 1);
    let outer = a.here_label();
    let done = a.label();
    a.cmplt(R3, R2, R6);
    a.beq(R6, done);
    a.addq(R1, R3, R5);
    a.ldbu(R4, R5, 0);
    a.li(R7, 1);
    let inner = a.here_label();
    let inner_done = a.label();
    a.addq(R3, R7, R5);
    a.cmplt(R5, R2, R6);
    a.beq(R6, inner_done);
    a.addq(R1, R5, R6);
    a.ldbu(R8, R6, 0);
    ineffectual(&mut a, R8);
    a.cmpeq(R8, R4, R6);
    a.beq(R6, inner_done);
    a.addq_i(R7, 1, R7);
    a.br(inner);
    a.bind(inner_done);
    fold_checksum(&mut a, R9, R7);
    fold_checksum(&mut a, R9, R4);
    a.addq(R3, R7, R3);
    a.br(outer);
    a.bind(done);
    epilogue(&mut a, R9);
    Program::new("gzip-like", a)
}

/// `bzip2`-like: insertion sort of an LCG-generated block, then a checksum
/// pass. High IPC, the highest data-cache hit rate (the block fits in L1),
/// and predictable branch behaviour — the properties the paper attributes
/// to bzip2.
pub fn bzip2_like(scale: u32) -> Program {
    let n = 64 + 32 * scale as u64;
    let mut a = Asm::new(CODE_BASE);
    a.li(R1, DATA_BASE);
    a.li(R2, n);
    lcg_init(&mut a, R24, R25);
    a.li(R10, 0x3030);
    a.li(R3, 0);
    let gen = a.here_label();
    lcg_step(&mut a, R10, R24, R25);
    a.s8addq(R3, R1, R5);
    a.stq(R10, R5, 0);
    a.addq_i(R3, 1, R3);
    a.cmplt(R3, R2, R6);
    a.bne(R6, gen);
    // Insertion sort (unsigned ascending).
    a.li(R3, 1);
    let outer = a.here_label();
    let sorted = a.label();
    a.cmplt(R3, R2, R6);
    a.beq(R6, sorted);
    a.s8addq(R3, R1, R5);
    a.ldq(R4, R5, 0); // key
    ineffectual(&mut a, R4);
    a.mov(R3, R7); // j
    let inner = a.here_label();
    let insert = a.label();
    a.beq(R7, insert);
    a.subq_i(R7, 1, R8);
    a.s8addq(R8, R1, R5);
    a.ldq(R11, R5, 0);
    a.cmpult(R4, R11, R6);
    a.beq(R6, insert);
    a.s8addq(R7, R1, R12);
    a.stq(R11, R12, 0);
    a.mov(R8, R7);
    a.br(inner);
    a.bind(insert);
    a.s8addq(R7, R1, R5);
    a.stq(R4, R5, 0);
    a.addq_i(R3, 1, R3);
    a.br(outer);
    a.bind(sorted);
    // Checksum of the sorted block, position-salted.
    a.li(R3, 0);
    a.li(R9, 1);
    let ck = a.here_label();
    a.s8addq(R3, R1, R5);
    a.ldq(R4, R5, 0);
    a.xor(R4, R3, R4);
    fold_checksum(&mut a, R9, R4);
    a.addq_i(R3, 1, R3);
    a.cmplt(R3, R2, R6);
    a.bne(R6, ck);
    epilogue(&mut a, R9);
    Program::new("bzip2-like", a)
}

/// `gcc`-like: pointer chasing across a 1024-node linked structure whose
/// next pointers follow a co-prime stride permutation. Serial dependent
/// loads keep IPC low, as in gcc's IR walks.
pub fn gcc_like(scale: u32) -> Program {
    let n = 1024u64; // nodes, 16 bytes each
    let hops = 4096u64 * scale as u64;
    let mut a = Asm::new(CODE_BASE);
    a.li(R1, DATA_BASE);
    a.li(R2, n);
    a.li(R20, 521); // stride, co-prime with 1024 -> a single cycle
    a.li(R21, n - 1);
    a.li(R3, 0);
    let init = a.here_label();
    a.addq(R3, R20, R4);
    a.and(R4, R21, R4);
    a.sll_i(R4, 4, R4);
    a.addq(R1, R4, R4); // address of successor node
    a.sll_i(R3, 4, R5);
    a.addq(R1, R5, R5); // address of this node
    a.stq(R4, R5, 0); // node.next
    a.stq(R3, R5, 8); // node.value = i
    a.addq_i(R3, 1, R3);
    a.cmplt(R3, R2, R6);
    a.bne(R6, init);
    // Chase.
    a.li(R7, hops);
    a.mov(R1, R5);
    a.li(R9, 1);
    let chase = a.here_label();
    a.ldq(R4, R5, 8);
    fold_checksum(&mut a, R9, R4);
    a.ldq(R5, R5, 0);
    a.subq_i(R7, 1, R7);
    a.bne(R7, chase);
    epilogue(&mut a, R9);
    Program::new("gcc-like", a)
}

/// `mcf`-like: read-modify-write updates at LCG-random positions of a
/// 256 KB array — far larger than the 32 KB data cache, so most accesses
/// miss. Cache-miss bound, low IPC, like mcf's network-simplex arcs.
pub fn mcf_like(scale: u32) -> Program {
    let n: u64 = 32 * 1024; // u64 elements = 256 KB
    let updates = 4000u64 * scale as u64;
    let mut a = Asm::new(CODE_BASE);
    a.li(R1, DATA_BASE);
    a.li(R23, n - 1);
    lcg_init(&mut a, R24, R25);
    a.li(R10, 0xfeed);
    a.li(R7, updates);
    a.li(R9, 1);
    let top = a.here_label();
    lcg_step(&mut a, R10, R24, R25);
    a.srl_i(R10, 17, R4);
    a.and(R4, R23, R4);
    a.s8addq(R4, R1, R5);
    a.ldq(R6, R5, 0);
    ineffectual(&mut a, R6);
    a.addq(R6, R7, R6);
    a.stq(R6, R5, 0);
    fold_checksum(&mut a, R9, R6);
    a.subq_i(R7, 1, R7);
    a.bne(R7, top);
    epilogue(&mut a, R9);
    Program::new("mcf-like", a)
}

/// `crafty`-like: SWAR population counts and board mixing over LCG values.
/// Almost purely ALU work (shifts, masks, multiplies) with no memory in the
/// hot loop — high ILP, like crafty's bitboard move generation.
pub fn crafty_like(scale: u32) -> Program {
    let iters = 2000u64 * scale as u64;
    let mut a = Asm::new(CODE_BASE);
    lcg_init(&mut a, R24, R25);
    a.li(R10, 0xb0a2d);
    a.li(R20, 0x5555_5555_5555_5555);
    a.li(R21, 0x3333_3333_3333_3333);
    a.li(R22, 0x0f0f_0f0f_0f0f_0f0f);
    a.li(R23, 0x0101_0101_0101_0101);
    a.li(R7, iters);
    a.li(R9, 1);
    let top = a.here_label();
    lcg_step(&mut a, R10, R24, R25);
    // SWAR popcount of r10 into r4.
    a.srl_i(R10, 1, R5);
    a.and(R5, R20, R5);
    a.subq(R10, R5, R4);
    a.and(R4, R21, R5);
    a.srl_i(R4, 2, R4);
    a.and(R4, R21, R4);
    a.addq(R4, R5, R4);
    a.srl_i(R4, 4, R5);
    a.addq(R4, R5, R4);
    a.and(R4, R22, R4);
    a.mulq(R4, R23, R4);
    a.srl_i(R4, 56, R4);
    ineffectual(&mut a, R4);
    // Mix a rotated copy of the board into the running checksum.
    a.sll_i(R10, 13, R5);
    a.srl_i(R10, 51, R6);
    a.bis(R5, R6, R5);
    a.xor(R5, R4, R5);
    fold_checksum(&mut a, R9, R5);
    a.subq_i(R7, 1, R7);
    a.bne(R7, top);
    epilogue(&mut a, R9);
    Program::new("crafty-like", a)
}

/// `parser`-like: classifies LCG-random bytes through a chain of compares
/// whose outcomes are data-dependent — heavy branch misprediction, like
/// parser's grammar dispatch.
pub fn parser_like(scale: u32) -> Program {
    let n = 3072u64 * scale as u64;
    let mut a = Asm::new(CODE_BASE);
    a.li(R1, DATA_BASE);
    a.li(R2, n);
    lcg_init(&mut a, R24, R25);
    a.li(R10, 0x9e3779);
    a.li(R3, 0);
    let gen = a.here_label();
    lcg_step(&mut a, R10, R24, R25);
    a.srl_i(R10, 32, R4);
    a.addq(R1, R3, R5);
    a.stb(R4, R5, 0);
    a.addq_i(R3, 1, R3);
    a.cmplt(R3, R2, R6);
    a.bne(R6, gen);
    // Classify.
    a.li(R3, 0);
    a.li(R9, 1);
    let top = a.here_label();
    let done = a.label();
    let cls0 = a.label();
    let cls1 = a.label();
    let cls2 = a.label();
    let next = a.label();
    a.cmplt(R3, R2, R6);
    a.beq(R6, done);
    a.addq(R1, R3, R5);
    a.ldbu(R4, R5, 0);
    ineffectual(&mut a, R4);
    a.cmplt_i(R4, 32, R6);
    a.bne(R6, cls0);
    a.cmplt_i(R4, 64, R6);
    a.bne(R6, cls1);
    a.cmplt_i(R4, 128, R6);
    a.bne(R6, cls2);
    // class 3: punctuation-like — multiply-fold.
    fold_checksum(&mut a, R9, R4);
    a.br(next);
    a.bind(cls0); // control characters: xor-mix
    a.xor(R9, R4, R9);
    a.addq_i(R9, 3, R9);
    a.br(next);
    a.bind(cls1); // digits-like: shifted add
    a.sll_i(R4, 2, R7);
    a.addq(R9, R7, R9);
    a.br(next);
    a.bind(cls2); // letters-like: rotate-ish mix
    a.sll_i(R9, 1, R7);
    a.srl_i(R9, 63, R8);
    a.bis(R7, R8, R9);
    a.addq(R9, R4, R9);
    a.bind(next);
    a.addq_i(R3, 1, R3);
    a.br(top);
    a.bind(done);
    epilogue(&mut a, R9);
    Program::new("parser-like", a)
}

/// `perlbmk`-like: hashes LCG keys (multiply + shift avalanche) into a
/// 1024-bucket table with scattered read-modify-writes, then folds the
/// table — multiplies plus irregular memory traffic, like perl's hash-heavy
/// interpreter loops.
pub fn perlbmk_like(scale: u32) -> Program {
    let buckets = 1024u64;
    let keys = 3000u64 * scale as u64;
    let mut a = Asm::new(CODE_BASE);
    a.li(R1, DATA_BASE);
    a.li(R23, buckets - 1);
    lcg_init(&mut a, R24, R25);
    a.li(R10, 0xcafe);
    a.li(R20, 0x100_0000_01b3); // FNV prime
    a.li(R7, keys);
    a.li(R9, 1);
    let top = a.here_label();
    lcg_step(&mut a, R10, R24, R25);
    a.mov(R10, R4);
    a.srl_i(R4, 33, R5);
    a.xor(R4, R5, R4);
    a.mulq(R4, R20, R4);
    a.srl_i(R4, 29, R5);
    a.xor(R4, R5, R4);
    ineffectual(&mut a, R4);
    a.and(R4, R23, R5); // bucket index
    a.s8addq(R5, R1, R5);
    a.ldq(R6, R5, 0);
    a.addq(R6, R4, R6);
    a.bis_i(R6, 1, R6);
    a.stq(R6, R5, 0);
    a.subq_i(R7, 1, R7);
    a.bne(R7, top);
    // Fold the table.
    a.li(R3, 0);
    a.li(R2, buckets);
    let ck = a.here_label();
    a.s8addq(R3, R1, R5);
    a.ldq(R4, R5, 0);
    fold_checksum(&mut a, R9, R4);
    a.addq_i(R3, 1, R3);
    a.cmplt(R3, R2, R6);
    a.bne(R6, ck);
    epilogue(&mut a, R9);
    Program::new("perlbmk-like", a)
}

/// `twolf`-like: annealing-style conditional swaps. Two LCG draws pick
/// cells, a multiply computes the cost delta, and a ~50% data-dependent
/// branch decides whether to swap — the mispredict-plus-store mix of
/// place-and-route inner loops.
pub fn twolf_like(scale: u32) -> Program {
    let n = 1024u64;
    let iters = 1500u64 * scale as u64;
    let mut a = Asm::new(CODE_BASE);
    a.li(R1, DATA_BASE);
    a.li(R2, n);
    a.li(R23, n - 1);
    lcg_init(&mut a, R24, R25);
    a.li(R10, 0x7a01f);
    // Initialize cells with LCG values.
    a.li(R3, 0);
    let init = a.here_label();
    lcg_step(&mut a, R10, R24, R25);
    a.s8addq(R3, R1, R5);
    a.stq(R10, R5, 0);
    a.addq_i(R3, 1, R3);
    a.cmplt(R3, R2, R6);
    a.bne(R6, init);
    // Anneal.
    a.li(R7, iters);
    a.li(R9, 1);
    let top = a.here_label();
    let no_swap = a.label();
    lcg_step(&mut a, R10, R24, R25);
    a.srl_i(R10, 13, R3);
    a.and(R3, R23, R3); // i
    lcg_step(&mut a, R10, R24, R25);
    a.srl_i(R10, 13, R4);
    a.and(R4, R23, R4); // j
    a.s8addq(R3, R1, R11);
    a.s8addq(R4, R1, R12);
    a.ldq(R5, R11, 0); // a[i]
    a.ldq(R6, R12, 0); // a[j]
    ineffectual(&mut a, R5);
    a.subq(R5, R6, R13);
    a.subq(R3, R4, R14);
    a.mulq(R13, R14, R13); // cost delta
    a.ble(R13, no_swap);
    a.stq(R6, R11, 0);
    a.stq(R5, R12, 0);
    fold_checksum(&mut a, R9, R13);
    a.bind(no_swap);
    a.addq(R9, R13, R9);
    a.subq_i(R7, 1, R7);
    a.bne(R7, top);
    epilogue(&mut a, R9);
    Program::new("twolf-like", a)
}

/// `vortex`-like: an object store of 32-byte records; each transaction
/// copies a record to a new slot while updating its fields. Store-heavy
/// with regular addressing, like vortex's in-memory database.
pub fn vortex_like(scale: u32) -> Program {
    let records = 512u64; // 32 bytes each = 16 KB
    let ops = 2000u64 * scale as u64;
    let mut a = Asm::new(CODE_BASE);
    a.li(R1, DATA_BASE);
    a.li(R23, records - 1);
    lcg_init(&mut a, R24, R25);
    a.li(R10, 0x5eed);
    a.li(R7, ops);
    a.li(R9, 1);
    let top = a.here_label();
    lcg_step(&mut a, R10, R24, R25);
    a.srl_i(R10, 21, R3);
    a.and(R3, R23, R3); // src record
    a.addq_i(R3, 7, R4);
    a.and(R4, R23, R4); // dst record
    a.sll_i(R3, 5, R5);
    a.addq(R1, R5, R5); // src addr
    a.sll_i(R4, 5, R6);
    a.addq(R1, R6, R6); // dst addr
    a.ldq(R11, R5, 0);
    a.ldq(R12, R5, 8);
    ineffectual(&mut a, R11);
    a.ldq(R13, R5, 16);
    a.addq_i(R11, 1, R11); // bump generation field
    a.stq(R11, R6, 0);
    a.stq(R12, R6, 8);
    a.stq(R13, R6, 16);
    a.xor(R11, R12, R14);
    a.stq(R14, R6, 24);
    fold_checksum(&mut a, R9, R14);
    a.subq_i(R7, 1, R7);
    a.bne(R7, top);
    epilogue(&mut a, R9);
    Program::new("vortex-like", a)
}

/// `vpr`-like: breadth-first wavefront expansion over a 32×32 grid with an
/// explicit in-memory work queue — queue pointer management, byte-map
/// updates, and bounds-check branches, like vpr's maze router.
pub fn vpr_like(scale: u32) -> Program {
    let w = 32u64; // grid width (power of two)
    let cells = w * w;
    let visited = DATA_BASE;
    let queue = DATA_BASE + 0x1_0000;
    let mut a = Asm::new(CODE_BASE);
    a.li(R1, visited);
    a.li(R2, queue);
    a.li(R20, w - 1); // x mask
    a.li(R21, 1); // constant one for marking
    a.li(R22, cells);
    a.li(R9, 1);
    a.li(R15, scale as u64); // BFS passes
    let pass_top = a.here_label();
    // Clear the visited map.
    a.li(R3, 0);
    let clear = a.here_label();
    a.addq(R1, R3, R5);
    a.stb(R31, R5, 0);
    a.addq_i(R3, 1, R3);
    a.cmplt(R3, R22, R6);
    a.bne(R6, clear);
    // Seed the queue with a pass-dependent start cell.
    a.mulq_i(R15, 97, R4);
    a.addq_i(R4, 33, R4);
    a.and(R4, R20, R4); // x0
    a.sll_i(R15, 5, R5);
    a.addq(R4, R5, R4);
    a.li(R5, cells - 1);
    a.and(R4, R5, R4); // start index
    a.li(R7, 0); // head
    a.li(R8, 0); // tail
    a.s4addq(R8, R2, R5);
    a.stl(R4, R5, 0);
    a.addq_i(R8, 1, R8);
    a.addq(R1, R4, R5);
    a.stb(R21, R5, 0);
    // BFS loop.
    let bfs = a.here_label();
    let pass_done = a.label();
    a.cmplt(R7, R8, R6);
    a.beq(R6, pass_done);
    a.s4addq(R7, R2, R5);
    a.ldl(R4, R5, 0); // current index
    a.addq_i(R7, 1, R7);
    fold_checksum(&mut a, R9, R4);
    ineffectual(&mut a, R4);
    // Neighbor: left (x > 0).
    let skip_l = a.label();
    a.and(R4, R20, R5);
    a.beq(R5, skip_l);
    a.subq_i(R4, 1, R11);
    visit_neighbor(&mut a, R11, skip_l);
    a.bind(skip_l);
    // Neighbor: right (x < w-1).
    let skip_r = a.label();
    a.and(R4, R20, R5);
    a.cmpeq(R5, R20, R6);
    a.bne(R6, skip_r);
    a.addq_i(R4, 1, R11);
    visit_neighbor(&mut a, R11, skip_r);
    a.bind(skip_r);
    // Neighbor: up (index >= w).
    let skip_u = a.label();
    a.cmplt_i(R4, 32, R6);
    a.bne(R6, skip_u);
    a.subq_i(R4, 32, R11);
    visit_neighbor(&mut a, R11, skip_u);
    a.bind(skip_u);
    // Neighbor: down (index < cells - w).
    let skip_d = a.label();
    a.li(R5, cells - w);
    a.cmplt(R4, R5, R6);
    a.beq(R6, skip_d);
    a.addq_i(R4, 32, R11);
    visit_neighbor(&mut a, R11, skip_d);
    a.bind(skip_d);
    a.br(bfs);
    a.bind(pass_done);
    a.subq_i(R15, 1, R15);
    a.bne(R15, pass_top);
    epilogue(&mut a, R9);
    Program::new("vpr-like", a)
}

/// Emits the visit-or-skip body for a BFS neighbor whose index is in
/// `nidx`: if unvisited, mark it and enqueue it; otherwise jump to `skip`.
/// Relies on the register conventions of [`vpr_like`] (`R1` visited base,
/// `R2` queue base, `R8` tail, `R21` the constant 1).
fn visit_neighbor(a: &mut Asm, nidx: Reg, skip: tfsim_isa::Label) {
    a.addq(R1, nidx, R12);
    a.ldbu(R13, R12, 0);
    a.bne(R13, skip);
    a.stb(R21, R12, 0);
    a.s4addq(R8, R2, R13);
    a.stl(nidx, R13, 0);
    a.addq_i(R8, 1, R8);
}
