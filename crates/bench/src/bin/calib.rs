use tfsim_inject::*;
fn main() {
    let t0 = std::time::Instant::now();
    let mut config = CampaignConfig::quick(42);
    if std::env::args().any(|a| a == "--protected") {
        config.pipeline = tfsim_uarch::PipelineConfig::protected();
    }
    let result = run_campaign(&config);
    let t = result.totals();
    println!("trials {} | uarch-match {:.1}% gray {:.1}% sdc {:.1}% term {:.1}%  [{:?}]",
        t.total(), 100.0*t.masked_fraction(), 100.0*t.gray as f64/t.total() as f64,
        100.0*t.sdc() as f64/t.total() as f64, 100.0*t.terminated() as f64/t.total() as f64, t0.elapsed());
    for m in FailureMode::ALL { print!("{}={} ", m.label(), t.failure(m)); }
    println!();
    for b in &result.benchmarks {
        println!("{:<14} masked {:>5.1}% fail {:>4.1}%", b.name, 100.0*b.counts.masked_fraction(), 100.0*b.counts.failure_fraction());
    }
    println!("-- by category:");
    for (c, o) in &result.by_category {
        print!("{:<14} n={:<5} masked {:>5.1}% fail {:>5.1}% |", c.label(), o.total(), 100.0*o.masked_fraction(), 100.0*o.failure_fraction());
        for m in FailureMode::ALL { if o.failure(m) > 0 { print!(" {}={}", m.label(), o.failure(m)); } }
        println!();
    }
}
