//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--fig <id>] [--scale quick|default|paper] [--seed N]
//!
//!   ids: config table1 fig3 fig4 fig5 fig6 fig7 fig8 overhead fig9 fig10
//!        reduction fig11 summary all (default: all)
//! ```

use tfsim_bench::{
    render_config, render_fig10, render_fig11, render_fig3, render_fig4, render_fig5, render_fig6,
    render_fig7, render_fig8, render_fig9, render_overhead, render_reduction, render_summary,
    render_table1, run_campaigns, run_sw_experiments, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig = "all".to_string();
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                fig = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--scale" => {
                let s = args.get(i + 1).map(String::as_str).unwrap_or("");
                scale = Scale::parse(s).unwrap_or_else(|| {
                    eprintln!("unknown scale {s:?}; use quick|default|paper");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(42);
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let needs_campaigns = matches!(
        fig.as_str(),
        "all" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "fig8" | "fig9" | "fig10" | "reduction" | "summary"
    );
    let needs_sw = matches!(fig.as_str(), "all" | "fig11" | "summary");

    let campaigns = if needs_campaigns {
        eprintln!("[figures] running injection campaigns at {scale:?} scale...");
        Some(run_campaigns(scale, seed))
    } else {
        None
    };
    let sw = if needs_sw {
        eprintln!("[figures] running software-level fault models...");
        Some(run_sw_experiments(scale, seed))
    } else {
        None
    };

    let c = campaigns.as_ref();
    let s = sw.as_deref();
    let mut any = false;
    let mut emit = |id: &str, text: String| {
        println!("{text}");
        any = true;
        let _ = id;
    };
    let all = fig == "all";
    if all || fig == "config" {
        emit("config", render_config());
    }
    if all || fig == "table1" {
        emit("table1", render_table1());
    }
    if all || fig == "fig3" {
        emit("fig3", render_fig3(c.expect("campaigns")));
    }
    if all || fig == "fig4" {
        emit("fig4", render_fig4(c.expect("campaigns")));
    }
    if all || fig == "fig5" {
        emit("fig5", render_fig5(c.expect("campaigns")));
    }
    if all || fig == "fig6" {
        emit("fig6", render_fig6(c.expect("campaigns")));
    }
    if all || fig == "fig7" {
        emit("fig7", render_fig7(c.expect("campaigns")));
    }
    if all || fig == "fig8" {
        emit("fig8", render_fig8(c.expect("campaigns")));
    }
    if all || fig == "overhead" {
        emit("overhead", render_overhead());
    }
    if all || fig == "fig9" {
        emit("fig9", render_fig9(c.expect("campaigns")));
    }
    if all || fig == "fig10" {
        emit("fig10", render_fig10(c.expect("campaigns")));
    }
    if all || fig == "reduction" {
        emit("reduction", render_reduction(c.expect("campaigns")));
    }
    if all || fig == "fig11" {
        emit("fig11", render_fig11(s.expect("software experiments")));
    }
    if all || fig == "summary" {
        emit("summary", render_summary(c.expect("campaigns"), s.expect("sw")));
    }
    if !any {
        eprintln!("unknown figure id {fig:?}");
        std::process::exit(2);
    }
}
