//! Prints the microarchitectural character of every workload: IPC, branch
//! prediction rate, data-cache hit rate — the properties the paper uses to
//! explain per-benchmark masking differences (Section 3.1).
//!
//! ```text
//! cargo run --release -p tfsim-bench --bin workload_traits [-- <scale>]
//! ```

use tfsim_arch::FuncSim;
use tfsim_stats::Table;
use tfsim_uarch::{Pipeline, PipelineConfig};

fn main() {
    let scale: u32 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let mut t = Table::new(&[
        "benchmark",
        "insns",
        "cycles",
        "IPC",
        "bpred %",
        "dcache hit %",
        "icache misses",
        "replays",
        "violations",
    ]);
    for w in tfsim_workloads::all() {
        let p = w.build(scale);
        let mut probe = FuncSim::new(&p);
        probe.run(100_000_000);
        let mut cpu = Pipeline::new(&p, PipelineConfig::baseline());
        cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
        cpu.run(100_000_000);
        assert_eq!(cpu.halted(), probe.exit_code(), "{} diverged", w.name);
        let s = cpu.stats();
        t.row_owned(vec![
            w.name.to_string(),
            cpu.instret().to_string(),
            cpu.cycles().to_string(),
            format!("{:.2}", cpu.instret() as f64 / cpu.cycles() as f64),
            format!("{:.1}", 100.0 * s.branch_prediction_rate()),
            format!("{:.1}", 100.0 * s.dcache_hit_rate()),
            s.icache_misses.to_string(),
            s.replays.to_string(),
            s.violations.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(paper §3.1: gzip has the highest IPC; bzip2 pairs high IPC with the best\n\
         branch prediction and dcache hit rates — both factors that RAISE failure\n\
         rates by keeping more meaningful work in flight)"
    );
}
