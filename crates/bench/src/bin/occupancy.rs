//! Utilization-based vulnerability analysis: measures per-benchmark
//! structure occupancies and correlates them with measured failure rates —
//! the across-benchmark counterpart of the paper's Figure 6, corroborating
//! Mukherjee et al.'s architectural-vulnerability-factor methodology as the
//! paper's related-work section claims.
//!
//! ```text
//! cargo run --release -p tfsim-bench --bin occupancy [-- <trials-per-sp>]
//! ```

use tfsim_arch::FuncSim;
use tfsim_bitstate::InjectionMask;
use tfsim_inject::{run_campaign_on, CampaignConfig};
use tfsim_stats::{linear_fit, Table};
use tfsim_uarch::{Occupancy, Pipeline, PipelineConfig};

fn mean_occupancy(workload: &tfsim_workloads::Workload, scale: u32) -> Occupancy {
    let p = workload.build(scale);
    let mut probe = FuncSim::new(&p);
    probe.run(100_000_000);
    let mut cpu = Pipeline::new(&p, PipelineConfig::baseline());
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    // Skip warm-up, then sample every cycle.
    for _ in 0..1_000 {
        cpu.step();
    }
    let mut acc = Occupancy::default();
    let mut n = 0u64;
    while cpu.running() && n < 20_000 {
        cpu.step();
        let o = cpu.occupancy();
        acc.rob += o.rob;
        acc.scheduler += o.scheduler;
        acc.fetch_queue += o.fetch_queue;
        acc.load_queue += o.load_queue;
        acc.store_queue += o.store_queue;
        acc.mhrs += o.mhrs;
        acc.frontend += o.frontend;
        n += 1;
    }
    let n = n.max(1) as f64;
    Occupancy {
        rob: acc.rob / n,
        scheduler: acc.scheduler / n,
        fetch_queue: acc.fetch_queue / n,
        load_queue: acc.load_queue / n,
        store_queue: acc.store_queue / n,
        mhrs: acc.mhrs / n,
        frontend: acc.frontend / n,
    }
}

fn main() {
    let trials: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(80);
    let workloads = tfsim_workloads::all();

    // 1. Occupancy profile per benchmark.
    let mut t = Table::new(&[
        "benchmark", "ROB %", "sched %", "FQ %", "LQ %", "SQ %", "MHR %", "front %", "overall %",
    ]);
    let mut occupancies = Vec::new();
    for w in &workloads {
        let o = mean_occupancy(w, 2);
        t.row_owned(vec![
            w.name.to_string(),
            format!("{:.0}", 100.0 * o.rob),
            format!("{:.0}", 100.0 * o.scheduler),
            format!("{:.0}", 100.0 * o.fetch_queue),
            format!("{:.0}", 100.0 * o.load_queue),
            format!("{:.0}", 100.0 * o.store_queue),
            format!("{:.0}", 100.0 * o.mhrs),
            format!("{:.0}", 100.0 * o.frontend),
            format!("{:.0}", 100.0 * o.overall()),
        ]);
        occupancies.push(o.overall());
    }
    println!("{}", t.render());

    // 2. Failure rate per benchmark from a campaign with the same seed
    //    discipline as the figures harness.
    eprintln!("running the correlation campaign ({} trials/benchmark)...", 2 * trials);
    let mut config = CampaignConfig::quick(2026);
    config.mask = InjectionMask::LatchesAndRams;
    config.start_points = 2;
    config.trials_per_start_point = trials;
    let result = run_campaign_on(&config, &workloads);

    let mut t = Table::new(&["benchmark", "overall occupancy %", "failure %"]);
    let mut points = Vec::new();
    for (b, occ) in result.benchmarks.iter().zip(&occupancies) {
        let fail = 100.0 * b.counts.failure_fraction();
        t.row_owned(vec![
            b.name.clone(),
            format!("{:.0}", 100.0 * occ),
            format!("{:.1}", fail),
        ]);
        points.push((100.0 * occ, fail));
    }
    println!("{}", t.render());

    match linear_fit(&points) {
        Some(fit) => println!(
            "failure% = {:.3} * occupancy% + {:.1}   (r = {:.2}, n = {})\n\
             A positive slope corroborates the utilization-based (AVF-style)\n\
             vulnerability model the paper relates its measurements to.",
            fit.slope, fit.intercept, fit.r, fit.n
        ),
        None => println!("not enough distinct occupancies for a fit"),
    }
}
