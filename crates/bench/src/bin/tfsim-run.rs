//! Run an assembly file (or a named built-in workload) on the simulators,
//! drive an injection campaign, or render a report from a campaign trace.
//!
//! ```text
//! tfsim-run <file.s | workload-name> [--config baseline|protected]
//!           [--max-cycles N] [--disasm] [--trace N] [--dump N] [--arch-only]
//! tfsim-run campaign [--quick|--default-scale|--paper] [--seed N]
//!           [--threads N] [--scale N] [--start-points N] [--trials N]
//!           [--monitor N] [--workloads a,b,...] [--sliced] [--pruned]
//!           [--trace PATH [--deep-trace]] [--profile PATH]
//!           [--journal PATH [--resume]]
//! tfsim-run report PATH [--top N] [--propagation]
//! ```
//!
//! `--disasm` prints the program listing; `--trace N` prints a per-cycle
//! pipeline trace for the first N cycles; otherwise the program runs to
//! completion and a summary (exit code, output, IPC, stats) is printed.
//!
//! `campaign` runs a fault-injection campaign and prints the outcome
//! census. `--sliced` runs the trials on the word-parallel (bit-sliced)
//! engine — an execution strategy, not an experiment parameter: the
//! census, trace, and journal are byte-identical to the default
//! snapshot-ladder engine, just faster. `--pruned` adds the analytic
//! masking pruner on top of the sliced engine: dead-window proofs and
//! site equivalence classes discharge most sites without simulating,
//! the telemetry footer reports the per-site disposition tally, and the
//! census stays byte-identical to both other engines. With `--trace PATH` it streams the per-trial JSONL event
//! stream to `PATH` (plus metrics and a live progress meter on stderr);
//! without it the campaign takes the untraced zero-overhead path. The
//! census is rendered through the same `tfsim_stats::census_rows` builder
//! either way, so traced and untraced runs of the same seed print
//! byte-identical censuses.
//!
//! With `--journal PATH` every completed (benchmark, start-point) task is
//! durably appended to a crash-safe JSONL journal as it finishes;
//! `--journal PATH --resume` reopens an interrupted journal (recovering a
//! torn tail), skips the completed tasks, and prints the byte-identical
//! census of an uninterrupted run. Trials the harness had to quarantine
//! (contained panics) are listed after the census, never inside it.
//!
//! `--trace PATH --deep-trace` additionally records each trial's full
//! divergence timeline (which units disagreed with the golden run, cycle
//! by cycle) as `propagation` events in the trace — the census and
//! journal stay byte-identical to the shallower runs. `--profile PATH`
//! turns on the hierarchical span profiler, prints a wall-time footer
//! (campaign → benchmark → start point → phases), and writes a
//! collapsed-stack file flamegraph tooling reads directly.
//!
//! `report` parses a JSONL trace back and renders the full
//! fault-propagation report (census, per-category/per-unit vulnerability,
//! propagation pairs, latency histograms, phase timings, span profile).
//! `report PATH --propagation` renders the deep-trace aggregation
//! instead: propagation chains, a per-unit residency heatmap over cycle
//! offsets, per-unit detection latencies, and a machine-readable JSON
//! line of the same aggregates.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tfsim_arch::FuncSim;
use tfsim_inject::{
    run_campaign_journaled, CampaignConfig, CampaignJournal, CampaignMetrics, CampaignObs,
    CampaignResult, FailureMode, JournalMeta, OutcomeCounts,
};
use tfsim_isa::{text, Program};
use tfsim_obs::{parse_trace, EventSink, JsonlSink, NoopSink, Progress, SpanProfiler};
use tfsim_stats::{census_rows, render_census, TelemetryReport};
use tfsim_uarch::{Pipeline, PipelineConfig};

/// Renders campaign outcome totals through the canonical census builder.
fn census(counts: &OutcomeCounts) -> String {
    let rows = census_rows(
        counts.matched,
        counts.gray,
        FailureMode::ALL.iter().map(|m| (m.label(), counts.failure(*m))),
    );
    render_census(&rows)
}

fn parse_num<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a numeric argument");
        std::process::exit(2);
    })
}

fn cmd_campaign(args: &[String]) {
    let mut preset: fn(u64) -> CampaignConfig = CampaignConfig::quick;
    let mut seed = 2004u64;
    let mut threads = None::<usize>;
    let mut scale = None::<u32>;
    let mut start_points = None::<u32>;
    let mut trials = None::<u32>;
    let mut monitor = None::<u64>;
    let mut trace = None::<PathBuf>;
    let mut deep_trace = false;
    let mut profile = None::<PathBuf>;
    let mut workload_list = None::<String>;
    let mut journal_path = None::<PathBuf>;
    let mut resume = false;
    let mut sliced = false;
    let mut pruned = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                preset = CampaignConfig::quick;
                i += 1;
            }
            "--default-scale" => {
                preset = CampaignConfig::default_scale;
                i += 1;
            }
            "--paper" => {
                preset = CampaignConfig::paper_scale;
                i += 1;
            }
            "--seed" => {
                seed = parse_num(args, i, "--seed");
                i += 2;
            }
            "--threads" => {
                threads = Some(parse_num(args, i, "--threads"));
                i += 2;
            }
            "--scale" => {
                scale = Some(parse_num(args, i, "--scale"));
                i += 2;
            }
            "--start-points" => {
                start_points = Some(parse_num(args, i, "--start-points"));
                i += 2;
            }
            "--trials" => {
                trials = Some(parse_num(args, i, "--trials"));
                i += 2;
            }
            "--monitor" => {
                monitor = Some(parse_num(args, i, "--monitor"));
                i += 2;
            }
            "--trace" => {
                trace = Some(PathBuf::from(args.get(i + 1).map(String::as_str).unwrap_or_else(
                    || {
                        eprintln!("--trace needs a file path");
                        std::process::exit(2);
                    },
                )));
                i += 2;
            }
            "--deep-trace" => {
                deep_trace = true;
                i += 1;
            }
            "--profile" => {
                profile = Some(PathBuf::from(
                    args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                        eprintln!("--profile needs a file path");
                        std::process::exit(2);
                    }),
                ));
                i += 2;
            }
            "--journal" => {
                journal_path = Some(PathBuf::from(
                    args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                        eprintln!("--journal needs a file path");
                        std::process::exit(2);
                    }),
                ));
                i += 2;
            }
            "--resume" => {
                resume = true;
                i += 1;
            }
            "--sliced" => {
                sliced = true;
                i += 1;
            }
            "--pruned" => {
                pruned = true;
                i += 1;
            }
            "--workloads" => {
                workload_list = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| {
                            eprintln!("--workloads needs a comma-separated list");
                            std::process::exit(2);
                        }),
                );
                i += 2;
            }
            other => {
                eprintln!("campaign: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let mut config = preset(seed);
    if let Some(n) = threads {
        config.threads = n;
    }
    if let Some(n) = scale {
        config.scale = n;
    }
    if let Some(n) = start_points {
        config.start_points = n;
    }
    if let Some(n) = trials {
        config.trials_per_start_point = n;
    }
    if let Some(n) = monitor {
        config.monitor_cycles = n;
    }
    config.sliced = sliced;
    config.pruned = pruned;
    config.deep_trace = deep_trace;
    if deep_trace && trace.is_none() {
        eprintln!("--deep-trace needs --trace PATH (timelines stream into the trace)");
        std::process::exit(2);
    }
    let workloads = match &workload_list {
        None => tfsim_workloads::all(),
        Some(csv) => csv
            .split(',')
            .map(|name| {
                tfsim_workloads::by_name(name.trim()).unwrap_or_else(|| {
                    eprintln!("unknown workload {name:?}");
                    std::process::exit(2);
                })
            })
            .collect(),
    };

    if resume && journal_path.is_none() {
        eprintln!("--resume needs --journal PATH");
        std::process::exit(2);
    }
    // The journal header pins the telemetry decision too: a traced run's
    // journal carries traces an untraced resume must not mix with.
    let journal = journal_path.as_ref().map(|path| {
        let meta = JournalMeta::new(&config, &workloads);
        let opened = if resume {
            CampaignJournal::resume(path, &meta)
        } else {
            CampaignJournal::create(path, &meta)
        };
        opened.unwrap_or_else(|e| {
            // InvalidData errors already name the journal path.
            if e.kind() == std::io::ErrorKind::InvalidData {
                eprintln!("{e}");
            } else {
                eprintln!("journal {}: {e}", path.display());
            }
            std::process::exit(2);
        })
    });
    let journal = journal.as_ref();

    // The span profiler rides along whenever someone will read it: the
    // `--profile` dump, or the trace (span events land in the JSONL
    // stream). The plain untraced path keeps `spans: None` and stays on
    // the zero-overhead machine code.
    let profiler = (profile.is_some() || trace.is_some()).then(SpanProfiler::new);
    let result = match &trace {
        Some(path) => {
            let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {}: {e}", path.display());
                std::process::exit(2);
            });
            let metrics = CampaignMetrics::new();
            let progress = Progress::new();
            let finished = AtomicBool::new(false);
            let result = std::thread::scope(|scope| {
                let meter = scope.spawn(|| {
                    while !finished.load(Ordering::Relaxed) {
                        eprint!("\r{}", progress.render());
                        std::thread::sleep(Duration::from_millis(200));
                    }
                    eprintln!("\r{}", progress.render());
                });
                let obs = CampaignObs {
                    sink: &sink,
                    metrics: Some(&metrics),
                    progress: Some(&progress),
                    spans: profiler.as_ref(),
                };
                let result = run_campaign_journaled(&config, &workloads, &obs, journal);
                finished.store(true, Ordering::Relaxed);
                let _ = meter.join();
                result
            });
            sink.flush();
            eprintln!("trace written to {}", path.display());
            print!("{}", metrics.render());
            println!();
            result
        }
        None => {
            let noop = NoopSink;
            let obs = CampaignObs {
                sink: &noop,
                metrics: None,
                progress: None,
                spans: profiler.as_ref(),
            };
            run_campaign_journaled(&config, &workloads, &obs, journal)
        }
    };
    print!("{}", census(&result.totals()));
    println!("eligible bits: {}", result.eligible_bits);
    print_quarantine_footer(&result);
    if let Some(p) = &profiler {
        let tree = p.snapshot();
        println!("\nspan profile (wall time, summed across workers)");
        print!("{}", tree.render());
        // Depth 2 is the start-point layer; its children are the
        // {warmup, golden, trials, journal} phases. The engine's own
        // counters must explain (nearly) all of the time the harness
        // measured around them.
        if let Some(cov) = tree.coverage_at_depth(2) {
            println!(
                "phase coverage: {:.1}% of start-point wall time attributed to phases",
                100.0 * cov
            );
        }
        if let Some(path) = &profile {
            std::fs::write(path, tree.collapsed()).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            });
            eprintln!("collapsed-stack profile written to {}", path.display());
        }
    }
}

/// Prints the quarantine footer *after* the census and eligible-bits
/// lines, so the census block stays byte-identical whether or not the
/// harness had to contain anything (and silent when it did not).
fn print_quarantine_footer(result: &CampaignResult) {
    if result.quarantined.is_empty() {
        return;
    }
    println!(
        "quarantined trials: {} (harness escapes, excluded from the census above)",
        result.quarantined.len()
    );
    for q in &result.quarantined {
        println!(
            "  bench {} sp {} trial {} target {} cycle {}: {}",
            q.benchmark, q.start_point, q.trial, q.spec.target, q.spec.inject_cycle, q.panic_msg
        );
    }
}

fn cmd_report(args: &[String]) {
    let Some(path) = args.first() else {
        eprintln!("usage: tfsim-run report PATH [--top N] [--propagation]");
        std::process::exit(2);
    };
    let mut top = 10usize;
    let mut propagation = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top = parse_num(args, i, "--top");
                i += 2;
            }
            "--propagation" => {
                propagation = true;
                i += 1;
            }
            other => {
                eprintln!("report: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let text = std::fs::read_to_string(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let events = parse_trace(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let report = TelemetryReport::from_events(&events).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    if propagation {
        print!("{}", report.render_propagation(top));
        if report.deep_trials() > 0 {
            println!("\nmachine-readable aggregates (one JSON object):");
            println!("{}", report.propagation_json().render());
        }
    } else {
        print!("{}", report.render(top));
    }
}

fn load_program(spec: &str) -> Program {
    if let Some(w) = tfsim_workloads::by_name(spec) {
        return w.build(1);
    }
    let source = std::fs::read_to_string(spec).unwrap_or_else(|e| {
        eprintln!("cannot read {spec}: {e} (and {spec:?} is not a built-in workload)");
        std::process::exit(2);
    });
    match text::parse_program(spec, &source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{spec}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: tfsim-run <file.s | workload> [--config baseline|protected] [--max-cycles N] [--disasm] [--trace N] [--arch-only]");
        std::process::exit(2);
    }
    let spec = &args[0];
    if spec == "campaign" {
        cmd_campaign(&args[1..]);
        return;
    }
    if spec == "report" {
        cmd_report(&args[1..]);
        return;
    }
    let mut config = PipelineConfig::baseline();
    let mut max_cycles = 10_000_000u64;
    let mut disasm = false;
    let mut trace = 0u64;
    let mut dump_at = None::<u64>;
    let mut arch_only = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                config = match args.get(i + 1).map(String::as_str) {
                    Some("baseline") => PipelineConfig::baseline(),
                    Some("protected") => PipelineConfig::protected(),
                    other => {
                        eprintln!("unknown config {other:?}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--max-cycles" => {
                max_cycles = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(max_cycles);
                i += 2;
            }
            "--disasm" => {
                disasm = true;
                i += 1;
            }
            "--trace" => {
                trace = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(50);
                i += 2;
            }
            "--dump" => {
                dump_at = Some(args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(100));
                i += 2;
            }
            "--arch-only" => {
                arch_only = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let program = load_program(spec);

    if disasm {
        for s in &program.sections {
            if s.addr == program.entry {
                let words: Vec<u32> = s
                    .bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("chunk")))
                    .collect();
                print!("{}", text::disassemble(&words, s.addr));
            } else {
                println!(".data {:#x}  ({} bytes)", s.addr, s.bytes.len());
            }
        }
        return;
    }

    // Architectural run (also supplies the pipeline's TLB preload).
    let mut func = FuncSim::new(&program);
    let ar = func.run(max_cycles * 8);
    println!(
        "architectural: {} instructions, exit {:?}, exception {:?}, {} output bytes",
        func.instret(),
        ar.exit_code,
        ar.exception,
        func.output().len()
    );
    if !func.output().is_empty() {
        println!("output: {:02x?}", &func.output()[..func.output().len().min(64)]);
    }
    if arch_only {
        return;
    }

    let mut cpu = Pipeline::new(&program, config);
    cpu.set_tlbs(func.code_pages().clone(), func.data_pages().clone());
    if let Some(cycle) = dump_at {
        for _ in 0..cycle {
            if !cpu.running() {
                break;
            }
            cpu.step();
        }
        print!("
{}", cpu.render_state());
        return;
    }
    if trace > 0 {
        println!("\n{:>7}  {:>5} {:>5} {:>4}  events", "cycle", "infl", "ret", "IPC");
        for _ in 0..trace {
            if !cpu.running() {
                break;
            }
            let report = cpu.step();
            let events: Vec<String> = report
                .events
                .iter()
                .map(|e| match e {
                    tfsim_uarch::RetireEvent::Retired(r) => format!("{:#x}", r.pc),
                    tfsim_uarch::RetireEvent::Halted { code } => format!("HALT({code})"),
                    tfsim_uarch::RetireEvent::Exception(x) => format!("EXC({x:?})"),
                })
                .collect();
            println!(
                "{:>7}  {:>5} {:>5} {:>4.2}  {}",
                cpu.cycles(),
                cpu.in_flight(),
                report.retired,
                cpu.instret() as f64 / cpu.cycles() as f64,
                events.join(" ")
            );
        }
        return;
    }

    cpu.run(max_cycles);
    let s = cpu.stats();
    println!(
        "pipeline:      {} instructions in {} cycles (IPC {:.2}), exit {:?}, exception {:?}",
        cpu.instret(),
        cpu.cycles(),
        cpu.instret() as f64 / cpu.cycles().max(1) as f64,
        cpu.halted(),
        cpu.exception()
    );
    println!(
        "stats:         bpred {:.1}%  dcache hit {:.1}%  icache misses {}  replays {}  violations {}  flushes {}",
        100.0 * s.branch_prediction_rate(),
        100.0 * s.dcache_hit_rate(),
        s.icache_misses,
        s.replays,
        s.violations,
        s.full_flushes
    );
    match (func.exit_code(), cpu.halted()) {
        (a, b) if a == b && func.output() == cpu.output() => {
            println!("models agree: identical exit code and output")
        }
        _ => println!("WARNING: the two models disagree!"),
    }
}
