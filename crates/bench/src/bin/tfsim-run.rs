//! Run an assembly file (or a named built-in workload) on the simulators.
//!
//! ```text
//! tfsim-run <file.s | workload-name> [--config baseline|protected]
//!           [--max-cycles N] [--disasm] [--trace N] [--dump N] [--arch-only]
//! ```
//!
//! `--disasm` prints the program listing; `--trace N` prints a per-cycle
//! pipeline trace for the first N cycles; otherwise the program runs to
//! completion and a summary (exit code, output, IPC, stats) is printed.

use tfsim_arch::FuncSim;
use tfsim_isa::{text, Program};
use tfsim_uarch::{Pipeline, PipelineConfig};

fn load_program(spec: &str) -> Program {
    if let Some(w) = tfsim_workloads::by_name(spec) {
        return w.build(1);
    }
    let source = std::fs::read_to_string(spec).unwrap_or_else(|e| {
        eprintln!("cannot read {spec}: {e} (and {spec:?} is not a built-in workload)");
        std::process::exit(2);
    });
    match text::parse_program(spec, &source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{spec}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: tfsim-run <file.s | workload> [--config baseline|protected] [--max-cycles N] [--disasm] [--trace N] [--arch-only]");
        std::process::exit(2);
    }
    let spec = &args[0];
    let mut config = PipelineConfig::baseline();
    let mut max_cycles = 10_000_000u64;
    let mut disasm = false;
    let mut trace = 0u64;
    let mut dump_at = None::<u64>;
    let mut arch_only = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                config = match args.get(i + 1).map(String::as_str) {
                    Some("baseline") => PipelineConfig::baseline(),
                    Some("protected") => PipelineConfig::protected(),
                    other => {
                        eprintln!("unknown config {other:?}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--max-cycles" => {
                max_cycles = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(max_cycles);
                i += 2;
            }
            "--disasm" => {
                disasm = true;
                i += 1;
            }
            "--trace" => {
                trace = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(50);
                i += 2;
            }
            "--dump" => {
                dump_at = Some(args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(100));
                i += 2;
            }
            "--arch-only" => {
                arch_only = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let program = load_program(spec);

    if disasm {
        for s in &program.sections {
            if s.addr == program.entry {
                let words: Vec<u32> = s
                    .bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("chunk")))
                    .collect();
                print!("{}", text::disassemble(&words, s.addr));
            } else {
                println!(".data {:#x}  ({} bytes)", s.addr, s.bytes.len());
            }
        }
        return;
    }

    // Architectural run (also supplies the pipeline's TLB preload).
    let mut func = FuncSim::new(&program);
    let ar = func.run(max_cycles * 8);
    println!(
        "architectural: {} instructions, exit {:?}, exception {:?}, {} output bytes",
        func.instret(),
        ar.exit_code,
        ar.exception,
        func.output().len()
    );
    if !func.output().is_empty() {
        println!("output: {:02x?}", &func.output()[..func.output().len().min(64)]);
    }
    if arch_only {
        return;
    }

    let mut cpu = Pipeline::new(&program, config);
    cpu.set_tlbs(func.code_pages().clone(), func.data_pages().clone());
    if let Some(cycle) = dump_at {
        for _ in 0..cycle {
            if !cpu.running() {
                break;
            }
            cpu.step();
        }
        print!("
{}", cpu.render_state());
        return;
    }
    if trace > 0 {
        println!("\n{:>7}  {:>5} {:>5} {:>4}  events", "cycle", "infl", "ret", "IPC");
        for _ in 0..trace {
            if !cpu.running() {
                break;
            }
            let report = cpu.step();
            let events: Vec<String> = report
                .events
                .iter()
                .map(|e| match e {
                    tfsim_uarch::RetireEvent::Retired(r) => format!("{:#x}", r.pc),
                    tfsim_uarch::RetireEvent::Halted { code } => format!("HALT({code})"),
                    tfsim_uarch::RetireEvent::Exception(x) => format!("EXC({x:?})"),
                })
                .collect();
            println!(
                "{:>7}  {:>5} {:>5} {:>4.2}  {}",
                cpu.cycles(),
                cpu.in_flight(),
                report.retired,
                cpu.instret() as f64 / cpu.cycles() as f64,
                events.join(" ")
            );
        }
        return;
    }

    cpu.run(max_cycles);
    let s = cpu.stats();
    println!(
        "pipeline:      {} instructions in {} cycles (IPC {:.2}), exit {:?}, exception {:?}",
        cpu.instret(),
        cpu.cycles(),
        cpu.instret() as f64 / cpu.cycles().max(1) as f64,
        cpu.halted(),
        cpu.exception()
    );
    println!(
        "stats:         bpred {:.1}%  dcache hit {:.1}%  icache misses {}  replays {}  violations {}  flushes {}",
        100.0 * s.branch_prediction_rate(),
        100.0 * s.dcache_hit_rate(),
        s.icache_misses,
        s.replays,
        s.violations,
        s.full_flushes
    );
    match (func.exit_code(), cpu.halted()) {
        (a, b) if a == b && func.output() == cpu.output() => {
            println!("models agree: identical exit code and output")
        }
        _ => println!("WARNING: the two models disagree!"),
    }
}
