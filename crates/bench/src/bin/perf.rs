//! Performance benchmarks for the simulation substrate: these measure the
//! *harness* (how fast the reproduction runs), complementing the `figures`
//! binary (which regenerates the paper's exhibits).
//!
//! Runs as a plain binary on the in-tree `tfsim-check` bench runner:
//!
//! ```text
//! cargo run --release -p tfsim-bench --bin perf [-- [FILTER] [--json]]
//! ```
//!
//! `FILTER` keeps only benchmarks whose name contains the substring;
//! `--json` appends one JSON object per benchmark after the table.
//! `TFSIM_BENCH_SAMPLES` / `TFSIM_BENCH_SAMPLE_MS` tune the measurement.

use tfsim_arch::FuncSim;
use tfsim_bitstate::{fingerprint_of, InjectionMask};
use tfsim_check::Bench;
use tfsim_inject::{StartPoint, TrialSpec};
use tfsim_isa::decode;
use tfsim_protect::{regfile_code, Decoded};
use tfsim_uarch::{Pipeline, PipelineConfig};

/// Whether `name` survives the bench filter. `Bench` itself skips filtered
/// benchmarks, but expensive setup (warm-up + golden precomputation) should
/// be skipped too when nothing downstream will run.
fn wants(b: &Bench, name: &str) -> bool {
    b.filter.as_ref().is_none_or(|f| name.contains(f))
}

fn warmed_pipeline(name: &str, cycles: u64) -> Pipeline {
    let w = tfsim_workloads::by_name(name).expect("workload");
    let p = w.build(4);
    let mut probe = FuncSim::new(&p);
    probe.run(50_000_000);
    let mut cpu = Pipeline::new(&p, PipelineConfig::baseline());
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    for _ in 0..cycles {
        cpu.step();
    }
    cpu
}

fn bench_pipeline_step(b: &mut Bench) {
    for name in ["gzip-like", "mcf-like", "twolf-like"] {
        let cpu = warmed_pipeline(name, 500);
        b.bench_with_setup(
            &format!("pipeline/step-1k/{name}"),
            || cpu.clone(),
            |mut cpu| {
                for _ in 0..1_000 {
                    cpu.step();
                }
                cpu.cycles()
            },
        );
    }
}

fn bench_funcsim(b: &mut Bench) {
    let w = tfsim_workloads::by_name("gzip-like").expect("workload");
    let p = w.build(4);
    b.bench_with_setup("funcsim/step-10k", || FuncSim::new(&p), |mut sim| sim.run(10_000));
}

fn bench_fingerprint(b: &mut Bench) {
    let mut cpu = warmed_pipeline("gzip-like", 500);
    b.bench("fingerprint/full-machine", || fingerprint_of(&mut cpu));
}

fn bench_trial(b: &mut Bench) {
    let cpu = warmed_pipeline("gzip-like", 1_000);
    let sp = StartPoint::prepare(&cpu, 2_000, InjectionMask::LatchesAndRams);
    let mut target = 0u64;
    b.bench("inject/one-trial-2k-window", || {
        target = (target + 7_919) % sp.bit_count();
        sp.run_trial(InjectionMask::LatchesAndRams, target, 50, 1_500)
    });
}

/// A deterministic trial plan shaped like one `default_scale` start point:
/// targets strided across the eligible-bit space, injection cycles strided
/// (unsorted, with repeats) across the injection window.
fn campaign_plan(sp: &StartPoint, trials: u64, window: u64) -> Vec<TrialSpec> {
    (0..trials)
        .map(|i| TrialSpec {
            target: i.wrapping_mul(7_919) % sp.bit_count(),
            inject_cycle: i.wrapping_mul(97) % window,
        })
        .collect()
}

/// Campaign-throughput benches at the `default_scale` shape (warm-up 2,000
/// cycles, injection window 250, monitor 10,000):
///
/// * `inject/trials-per-sec` — one full start-point batch (100 trials)
///   through the fast path; trials/sec = 100e9 / median_ns.
/// * `inject/trials-per-sec-traced` — the identical batch through the
///   traced path (per-trial spans + phase timing). The median ratio to
///   the untraced bench is the telemetry overhead; the untraced bench
///   itself must not move, which is the zero-overhead-when-disabled
///   contract pinned by `BENCH_campaign.json`.
/// * `inject/trials-per-sec-deep-traced` — the identical batch through
///   the deep-traced path: on top of tracing, µArch-divergent checks
///   sample the per-unit diverged set into the trial's divergence
///   timeline (dense just after injection, every eighth check once
///   sparse, via a dedicated incremental fingerprint engine). The
///   deep/traced median ratio is the timeline cost; it is bounded even
///   for faults that stay diverged across the whole monitor window.
/// * `inject/trials-per-sec-sliced` — the identical 100-trial batch
///   through the word-parallel (bit-sliced) engine: lanes whose flipped
///   word is overwritten or never read ride the shared golden evaluation,
///   only genuinely diverging lanes peel off to the scalar ladder. The
///   sliced/untraced median ratio is the word-parallel speedup; the
///   footprint build is amortized by priming it before measurement (a
///   campaign start point pays it once across all its trials).
/// * `inject/trials-per-sec-pruned` — the identical 100-trial batch
///   through the analytic masking pruner: dead-window proofs and site
///   equivalence classes discharge most sites without a trial, the rest
///   delegate to the sliced engine. The sliced/pruned median ratio is the
///   pruner's gain on top of the word-parallel engine.
/// * `inject/pruner-overhead` — a 100-site batch the pruner proves dead
///   in its entirety (sites screened one by one beforehand): no lane ever
///   dispatches, so the median is the pure cost of the pruning analysis
///   (footprint lookups, prefix walks, analytic classification) per batch.
/// * `inject/snapshot-ladder-vs-naive/{naive,ladder}` — the same 25-trial
///   plan through per-trial `run_trial` (replay + flat fingerprints) and
///   batched `run_trials` (snapshot ladder + cached fingerprints). The
///   naive/ladder median ratio is the fast-path speedup.
fn bench_campaign(b: &mut Bench) {
    const WINDOW: u64 = 250;
    const MONITOR: u64 = 10_000;
    const MASK: InjectionMask = InjectionMask::LatchesAndRams;
    if !wants(b, "inject/trials-per-sec")
        && !wants(b, "inject/trials-per-sec-traced")
        && !wants(b, "inject/trials-per-sec-deep-traced")
        && !wants(b, "inject/trials-per-sec-sliced")
        && !wants(b, "inject/trials-per-sec-pruned")
        && !wants(b, "inject/pruner-overhead")
        && !wants(b, "inject/snapshot-ladder-vs-naive")
    {
        return;
    }
    let cpu = warmed_pipeline("gzip-like", 2_000);
    let sp = StartPoint::prepare(&cpu, WINDOW + MONITOR, MASK);

    let plan = campaign_plan(&sp, 100, WINDOW);
    b.bench("inject/trials-per-sec", || sp.run_trials(MASK, &plan, MONITOR));
    b.bench("inject/trials-per-sec-traced", || sp.run_trials_traced(MASK, &plan, MONITOR));
    b.bench("inject/trials-per-sec-deep-traced", || {
        sp.run_trials_deep_traced(MASK, &plan, MONITOR)
    });
    // Prime the lazily built golden footprints so the benches measure the
    // steady-state per-batch cost, like every batch after the first.
    sp.run_trials_sliced(MASK, &plan[..1], MONITOR);
    b.bench("inject/trials-per-sec-sliced", || sp.run_trials_sliced(MASK, &plan, MONITOR));
    sp.run_trials_pruned(MASK, &plan[..1], MONITOR);
    b.bench("inject/trials-per-sec-pruned", || sp.run_trials_pruned(MASK, &plan, MONITOR));
    if wants(b, "inject/pruner-overhead") {
        // Screen sites one at a time: a single-spec batch's disposition
        // tally names that site's fate, so this keeps exactly the sites
        // the pruner proves dead. The bench batch then runs through the
        // full pruned path without ever simulating.
        let dead: Vec<TrialSpec> = (0..4_000u64)
            .map(|i| TrialSpec {
                target: i.wrapping_mul(6_733) % sp.bit_count(),
                inject_cycle: i.wrapping_mul(53) % WINDOW,
            })
            .filter(|s| {
                sp.run_trials_pruned(MASK, std::slice::from_ref(s), MONITOR).1.proved_dead == 1
            })
            .take(100)
            .collect();
        b.bench("inject/pruner-overhead", || sp.run_trials_pruned(MASK, &dead, MONITOR));
    }

    let duel = campaign_plan(&sp, 25, WINDOW);
    b.bench("inject/snapshot-ladder-vs-naive/naive", || {
        duel.iter()
            .map(|s| sp.run_trial(MASK, s.target, s.inject_cycle, MONITOR))
            .collect::<Vec<_>>()
    });
    b.bench("inject/snapshot-ladder-vs-naive/ladder", || sp.run_trials(MASK, &duel, MONITOR));
}

fn bench_codecs(b: &mut Bench) {
    let code = regfile_code();
    let mut v = 0x0123_4567_89ab_cdefu128;
    b.bench("protect/secded65/encode", || {
        v = v.rotate_left(7) & ((1 << 65) - 1);
        code.encode(v)
    });
    let data = 0xdead_beef_cafe_f00du128;
    let check = code.encode(data);
    let mut bit = 0;
    b.bench("protect/secded65/decode-corrupted", || {
        bit = (bit + 1) % 65;
        match code.decode(data ^ (1u128 << bit), check) {
            Decoded::CorrectedData(d) => d,
            _ => 0,
        }
    });
}

fn bench_decoder(b: &mut Bench) {
    b.bench("isa/decode-1k", || {
        let mut acc = 0u64;
        for i in 0..1_000u32 {
            let w = i.wrapping_mul(0x9e37_79b9);
            acc = acc.wrapping_add(decode(w).exec_latency() as u64);
        }
        acc
    });
}

fn main() {
    let mut json = false;
    let mut bench = Bench::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: perf [FILTER] [--json]");
                return;
            }
            f => bench.filter = Some(f.to_string()),
        }
    }

    bench_pipeline_step(&mut bench);
    bench_funcsim(&mut bench);
    bench_fingerprint(&mut bench);
    bench_trial(&mut bench);
    bench_campaign(&mut bench);
    bench_codecs(&mut bench);
    bench_decoder(&mut bench);

    if bench.results().is_empty() {
        if let Some(f) = &bench.filter {
            eprintln!("perf: no benchmark name contains `{f}`");
            std::process::exit(2);
        }
    }
    print!("{}", bench.render_table());
    if json {
        print!("{}", bench.render_json());
    }
}
