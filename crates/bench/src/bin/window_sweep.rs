//! Ablation: sensitivity of the outcome classification to the monitoring
//! window. The paper monitors each trial for up to 10,000 cycles; shorter
//! windows inflate the Gray Area (latent faults have less time to either
//! converge or strike), longer windows converge toward the asymptotic
//! masking rate. This sweep quantifies that design choice.
//!
//! ```text
//! cargo run --release -p tfsim-bench --bin window_sweep [-- <trials-per-sp>]
//! ```

use tfsim_bitstate::InjectionMask;
use tfsim_inject::{run_campaign_on, CampaignConfig};
use tfsim_stats::{pct, Table};

fn main() {
    let trials: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(60);
    let selected: Vec<_> = tfsim_workloads::all()
        .into_iter()
        .filter(|w| matches!(w.name, "gzip-like" | "mcf-like" | "twolf-like"))
        .collect();

    let mut t = Table::new(&["window (cycles)", "trials", "uarch-match %", "gray %", "fail %"]);
    for window in [500u64, 1_000, 2_500, 5_000, 10_000, 20_000] {
        let mut config = CampaignConfig::quick(1234);
        config.mask = InjectionMask::LatchesAndRams;
        config.start_points = 2;
        config.trials_per_start_point = trials;
        config.monitor_cycles = window;
        config.scale = 4; // long-running workloads so the window binds
        eprintln!("window {window}...");
        let result = run_campaign_on(&config, &selected);
        let o = result.totals();
        t.row_owned(vec![
            window.to_string(),
            o.total().to_string(),
            pct(o.matched, o.total()),
            pct(o.gray, o.total()),
            pct(o.failed(), o.total()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Identical faults and injection points at every window (same seed): the\n\
         µArch-match and failure fractions grow monotonically with the window while\n\
         the Gray Area shrinks — the residual gray at 10k+ cycles is the paper's\n\
         \"latent or timing-shifted\" population."
    );
}
