#![warn(missing_docs)]

//! # tfsim-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation. Each
//! `render_*` function produces the textual equivalent of one exhibit;
//! the `figures` binary drives them from the command line, and
//! `EXPERIMENTS.md` records a full run.
//!
//! | Exhibit | Function |
//! |---|---|
//! | Figure 2 (configuration) | [`render_config`] |
//! | Table 1 (state census) | [`render_table1`] |
//! | Figure 3 (outcomes by benchmark, l+r and l) | [`render_fig3`] |
//! | Figure 4 (outcomes by category, latches+RAMs) | [`render_fig4`] |
//! | Figure 5 (outcomes by category, latches) | [`render_fig5`] |
//! | Figure 6 (benign rate vs. valid instructions) | [`render_fig6`] |
//! | Table 2 / Figure 7 (failure modes by category) | [`render_fig7`] |
//! | Figure 8 (failure contributions) | [`render_fig8`] |
//! | §4.3 (protection overhead) | [`render_overhead`] |
//! | Figure 9 (outcomes by category, protected) | [`render_fig9`] |
//! | Figure 10 (failure contributions, protected) | [`render_fig10`] |
//! | §4.4 (≈75% failure reduction) | [`render_reduction`] |
//! | Figure 11 (software-level fault models) | [`render_fig11`] |

use tfsim_arch::swinject::{self, FaultModel, SwTally};
use tfsim_bitstate::{Category, Census, InjectionMask, StorageKind, VisitState};
use tfsim_inject::{CampaignConfig, CampaignResult, OutcomeCounts};
use tfsim_stats::{binomial_ci, linear_fit, pct, Confidence, Table};
use tfsim_uarch::{sizes, Pipeline, PipelineConfig};

/// Experiment scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (minutes of CPU).
    Quick,
    /// The default documented in EXPERIMENTS.md.
    Default,
    /// The paper's trial counts (hours of CPU).
    Paper,
}

impl Scale {
    /// The campaign configuration for this scale.
    pub fn campaign(self, seed: u64) -> CampaignConfig {
        match self {
            Scale::Quick => CampaignConfig::quick(seed),
            Scale::Default => CampaignConfig::default_scale(seed),
            Scale::Paper => CampaignConfig::paper_scale(seed),
        }
    }

    /// Trials per (workload, fault model) for the Figure 11 experiments.
    pub fn sw_trials(self) -> u64 {
        match self {
            Scale::Quick => 40,
            Scale::Default => 150,
            Scale::Paper => 1_200,
        }
    }

    /// Parses `quick`/`default`/`paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// The three microarchitectural campaigns behind Figures 3–10.
pub struct Campaigns {
    /// Baseline pipeline, latches + RAMs eligible.
    pub baseline_lr: CampaignResult,
    /// Baseline pipeline, latches only.
    pub baseline_l: CampaignResult,
    /// Fully protected pipeline, latches + RAMs.
    pub protected_lr: CampaignResult,
}

/// Runs the three campaigns (this is the expensive part; results feed all
/// of Figures 3–10).
pub fn run_campaigns(scale: Scale, seed: u64) -> Campaigns {
    let mut base = scale.campaign(seed);
    base.mask = InjectionMask::LatchesAndRams;
    base.pipeline = PipelineConfig::baseline();
    let baseline_lr = tfsim_inject::run_campaign(&base);

    let mut latches = scale.campaign(seed ^ 0x10);
    latches.mask = InjectionMask::LatchesOnly;
    latches.pipeline = PipelineConfig::baseline();
    let baseline_l = tfsim_inject::run_campaign(&latches);

    let mut prot = scale.campaign(seed ^ 0x20);
    prot.mask = InjectionMask::LatchesAndRams;
    prot.pipeline = PipelineConfig::protected();
    let protected_lr = tfsim_inject::run_campaign(&prot);

    Campaigns { baseline_lr, baseline_l, protected_lr }
}

/// Figure 2: the modeled processor configuration.
pub fn render_config() -> String {
    let mut out = String::from("== Figure 2: processor model details ==\n");
    out.push_str(&format!(
        "fetch        {}-wide split-line, {} KB 2-way I-cache, 32-entry fetch queue\n",
        sizes::FETCH_WIDTH,
        sizes::ICACHE_BYTES / 1024
    ));
    out.push_str("             hybrid bimodal/local/global predictor, 1024-entry 4-way BTB\n");
    out.push_str(&format!("             {}-entry return address stack with pointer recovery\n", sizes::RAS));
    out.push_str(&format!("decode       {}-wide\n", sizes::DECODE_WIDTH));
    out.push_str(&format!(
        "rename       {}-wide from {} physical registers, spec+arch RATs and free lists\n",
        sizes::DECODE_WIDTH,
        sizes::PHYS_REGS
    ));
    out.push_str(&format!(
        "issue        {}-entry scheduler, speculative wakeup and replay\n",
        sizes::SCHEDULER
    ));
    out.push_str("execute      2 simple ALUs, 1 complex ALU (2-5 cycles), 1 branch ALU, 2 AGUs\n");
    out.push_str(&format!(
        "memory       {}-entry load / {}-entry store queues, store sets, {} KB 2-way dcache\n",
        sizes::LOAD_QUEUE,
        sizes::STORE_QUEUE,
        sizes::DCACHE_BYTES / 1024
    ));
    out.push_str(&format!(
        "             {} banks, {} MHRs, constant {}-cycle miss\n",
        sizes::DCACHE_BANKS,
        sizes::MHRS,
        sizes::MISS_LATENCY
    ));
    out.push_str(&format!(
        "retire       {}-entry ROB, {}-wide retire\n",
        sizes::ROB,
        sizes::RETIRE_WIDTH
    ));
    out.push_str(&format!("in flight    up to {} instructions\n", sizes::MAX_IN_FLIGHT));
    out
}

fn census_of(config: PipelineConfig) -> Census {
    let w = tfsim_workloads::by_name("gzip-like").expect("workload");
    let mut cpu = Pipeline::new(&w.build(1), config);
    let mut census = Census::new();
    cpu.visit_state(&mut census);
    census
}

/// Table 1: bits of latches and RAM cells per state category.
pub fn render_table1() -> String {
    let census = census_of(PipelineConfig::baseline());
    let mut out = String::from("== Table 1: bits of state per category (baseline pipeline) ==\n");
    out.push_str(&census.to_table());
    out.push_str(&format!(
        "(paper: ~14,000 latch bits and ~31,000 RAM bits; shadow (non-injectable) bits here: {})\n",
        census.shadow_total()
    ));
    out
}

fn outcome_row(name: &str, o: &OutcomeCounts) -> Vec<String> {
    vec![
        name.to_string(),
        o.total().to_string(),
        pct(o.matched, o.total()),
        pct(o.gray, o.total()),
        pct(o.sdc(), o.total()),
        pct(o.terminated(), o.total()),
    ]
}

fn outcome_table(title: &str, rows: Vec<(String, OutcomeCounts)>) -> String {
    let mut t = Table::new(&["", "trials", "uarch-match %", "gray %", "SDC %", "terminated %"]);
    let mut agg = OutcomeCounts::default();
    for (name, o) in &rows {
        agg.merge(o);
        t.row_owned(outcome_row(name, o));
    }
    t.row_owned(outcome_row("aggregate", &agg));
    format!("== {title} ==\n{}", t.render())
}

/// Figure 3: outcome distribution per benchmark, for the latch+RAM and
/// latch-only campaigns.
pub fn render_fig3(c: &Campaigns) -> String {
    let mut out = outcome_table(
        "Figure 3a: fault injection into latches+RAMs, by benchmark",
        c.baseline_lr.benchmarks.iter().map(|b| (format!("{}.l+r", b.name), b.counts)).collect(),
    );
    out.push('\n');
    out.push_str(&outcome_table(
        "Figure 3b: fault injection into latches only, by benchmark",
        c.baseline_l.benchmarks.iter().map(|b| (format!("{}.l", b.name), b.counts)).collect(),
    ));
    let t = c.baseline_lr.totals();
    let ci = binomial_ci(t.matched + t.gray, t.total(), Confidence::P95);
    out.push_str(&format!(
        "\nbenign (masked+gray) fraction l+r: {:.1}% ± {:.1}% (95% CI)\n",
        100.0 * ci.estimate,
        100.0 * ci.half_width
    ));
    out
}

fn category_table(title: &str, result: &CampaignResult) -> String {
    let rows: Vec<(String, OutcomeCounts)> = result
        .by_category
        .iter()
        .map(|(cat, o)| (cat.label().to_string(), *o))
        .collect();
    outcome_table(title, rows)
}

/// Figure 4: outcomes by state category, latches+RAMs, baseline pipeline.
pub fn render_fig4(c: &Campaigns) -> String {
    category_table("Figure 4: injections into latches+RAMs by category (baseline)", &c.baseline_lr)
}

/// Figure 5: outcomes by state category, latches only, baseline pipeline.
pub fn render_fig5(c: &Campaigns) -> String {
    category_table("Figure 5: injections into latches by category (baseline)", &c.baseline_l)
}

/// Figure 6: benign-fault rate versus valid instructions in flight, with
/// the least-mean-squares trendline.
pub fn render_fig6(c: &Campaigns) -> String {
    let mut out = String::from(
        "== Figure 6: benign fault rate vs. valid instructions in the pipeline ==\n",
    );
    let mut t = Table::new(&["benchmark", "valid insns (mean)", "benign %", "trials"]);
    let points: Vec<(f64, f64)> = c
        .baseline_lr
        .scatter
        .iter()
        .map(|p| (p.valid_instructions, 100.0 * p.benign_fraction))
        .collect();
    for p in &c.baseline_lr.scatter {
        t.row_owned(vec![
            c.baseline_lr.benchmarks[p.benchmark].name.clone(),
            format!("{:.1}", p.valid_instructions),
            format!("{:.1}", 100.0 * p.benign_fraction),
            p.trials.to_string(),
        ]);
    }
    out.push_str(&t.render());
    match linear_fit(&points) {
        Some(fit) => {
            out.push_str(&format!(
                "trendline: benign% = {:.3} * valid + {:.1}   (r = {:.2}, n = {})\n",
                fit.slope, fit.intercept, fit.r, fit.n
            ));
            out.push_str(&format!(
                "at {} in flight (theoretical max): {:.1}% benign — the paper reports ~70%\n",
                sizes::MAX_IN_FLIGHT,
                fit.predict(sizes::MAX_IN_FLIGHT as f64)
            ));
        }
        None => out.push_str("trendline: not enough distinct points\n"),
    }
    out
}

/// Table 2 + Figure 7: failure-mode breakdown per state category.
pub fn render_fig7(c: &Campaigns) -> String {
    let mut out =
        String::from("== Figure 7: failure modes by category (latches+RAMs, baseline) ==\n");
    let mut t = Table::new(&["category", "ctrl", "dtlb", "except", "itlb", "locked", "mem", "regfile"]);
    for (cat, modes) in c.baseline_lr.failure_modes_by_category() {
        if modes.iter().sum::<u64>() == 0 {
            continue;
        }
        let mut row = vec![cat.label().to_string()];
        row.extend(modes.iter().map(|m| m.to_string()));
        t.row_owned(row);
    }
    out.push_str(&t.render());
    out.push_str("(modes: ctrl/dtlb/itlb/mem/regfile are SDC; except/locked are Terminated)\n");
    out
}

fn contributions(result: &CampaignResult, title: &str) -> String {
    let total_failures: u64 = result.by_category.values().map(|o| o.failed()).sum();
    let mut out = format!("== {title} ==\n");
    let mut t = Table::new(&["category", "failures", "share %"]);
    for (cat, o) in &result.by_category {
        if o.failed() == 0 {
            continue;
        }
        t.row_owned(vec![
            cat.label().to_string(),
            o.failed().to_string(),
            pct(o.failed(), total_failures),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!("total failures: {total_failures}\n"));
    out
}

/// Figure 8: relative contribution of each state category to failures.
pub fn render_fig8(c: &Campaigns) -> String {
    contributions(
        &c.baseline_lr,
        "Figure 8: contribution of each state type to SDC and Terminated (baseline)",
    )
}

/// §4.3: state-storage overhead of the protection mechanisms.
pub fn render_overhead() -> String {
    let base = census_of(PipelineConfig::baseline());
    let prot = census_of(PipelineConfig::protected());
    let added = prot.total() - base.total();
    let added_ram: i64 = Category::ALL
        .iter()
        .map(|c| {
            prot.bits(*c, StorageKind::Ram) as i64 - base.bits(*c, StorageKind::Ram) as i64
        })
        .sum();
    let mut out = String::from("== Section 4.3: protection overheads ==\n");
    out.push_str(&format!(
        "baseline bits: {}   protected bits: {}   added: {} ({:.1}% more state)\n",
        base.total(),
        prot.total(),
        added,
        100.0 * added as f64 / base.total() as f64
    ));
    out.push_str(&format!(
        "added RAM bits: {added_ram} ({:.0}% of the overhead; paper: ~2/3 of 3,061 bits)\n",
        100.0 * added_ram as f64 / added as f64
    ));
    out.push_str(&format!(
        "ecc bits: latch {} ram {}   parity bits: latch {} ram {}\n",
        prot.bits(Category::Ecc, StorageKind::Latch),
        prot.bits(Category::Ecc, StorageKind::Ram),
        prot.bits(Category::Parity, StorageKind::Latch),
        prot.bits(Category::Parity, StorageKind::Ram),
    ));
    out
}

/// Figure 9: outcomes by category with all four protections enabled.
pub fn render_fig9(c: &Campaigns) -> String {
    category_table(
        "Figure 9: injections into latches+RAMs by category (protected pipeline)",
        &c.protected_lr,
    )
}

/// Figure 10: failure contributions by category, protected pipeline.
pub fn render_fig10(c: &Campaigns) -> String {
    contributions(
        &c.protected_lr,
        "Figure 10: contribution of each state type to SDC and Terminated (protected)",
    )
}

/// §4.4: the failure-rate reduction achieved by the protection suite,
/// normalized for the extra vulnerable state it introduces.
pub fn render_reduction(c: &Campaigns) -> String {
    let base = c.baseline_lr.totals();
    let prot = c.protected_lr.totals();
    let base_bits = c.baseline_lr.eligible_bits as f64;
    let prot_bits = c.protected_lr.eligible_bits as f64;
    // Failures per unit fault rate ∝ failure fraction × amount of state.
    let base_rate = base.failure_fraction() * base_bits;
    let prot_rate = prot.failure_fraction() * prot_bits;
    let reduction = 100.0 * (1.0 - prot_rate / base_rate);
    let mut out = String::from("== Section 4.4: failure reduction from the protection suite ==\n");
    out.push_str(&format!(
        "baseline : {:.1}% of {} trials failed over {} eligible bits\n",
        100.0 * base.failure_fraction(),
        base.total(),
        base_bits as u64
    ));
    out.push_str(&format!(
        "protected: {:.1}% of {} trials failed over {} eligible bits ({:.1}% more state)\n",
        100.0 * prot.failure_fraction(),
        prot.total(),
        prot_bits as u64,
        100.0 * (prot_bits / base_bits - 1.0)
    ));
    out.push_str(&format!(
        "state-normalized failure-rate reduction: {reduction:.0}%  (paper: ~75%)\n"
    ));
    out
}

/// Runs the Figure 11 software-level experiments: six fault models across
/// the ten workloads.
pub fn run_sw_experiments(scale: Scale, seed: u64) -> Vec<(FaultModel, SwTally)> {
    let trials = scale.sw_trials();
    let workloads = tfsim_workloads::all();
    let goldens: Vec<_> = workloads
        .iter()
        .map(|w| {
            let p = w.build(1);
            let g = swinject::golden_ref(&p, 10_000_000);
            (p, g)
        })
        .collect();
    FaultModel::ALL
        .iter()
        .map(|model| {
            let mut tally = SwTally::default();
            for (i, (p, g)) in goldens.iter().enumerate() {
                let t = swinject::run_campaign(p, g, *model, trials, seed ^ ((i as u64) << 8));
                tally.merge(&t);
            }
            (*model, tally)
        })
        .collect()
}

/// Figure 11: outcome distribution of the six architectural fault models.
pub fn render_fig11(results: &[(FaultModel, SwTally)]) -> String {
    let mut out = String::from(
        "== Figure 11: architectural fault models on software (10 workloads) ==\n",
    );
    let mut t = Table::new(&[
        "fault model",
        "trials",
        "exception %",
        "state-ok %",
        "output-ok %",
        "output-bad %",
        "ctrl-diverged %",
    ]);
    for (model, tally) in results {
        let n = tally.total();
        t.row_owned(vec![
            model.label().to_string(),
            n.to_string(),
            pct(tally.exception, n),
            pct(tally.state_ok, n),
            pct(tally.output_ok, n),
            pct(tally.output_bad, n),
            pct(tally.state_ok_diverged, tally.state_ok.max(1)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(paper: roughly half of all trials reconverge completely (State OK); 10-20% of\n State OK trials show temporary control-flow divergence)\n",
    );
    out
}

/// Combined microarchitectural masking summary (the paper's conclusion:
/// hardware and software together mask >9 of 10 faults).
pub fn render_summary(c: &Campaigns, sw: &[(FaultModel, SwTally)]) -> String {
    let t = c.baseline_lr.totals();
    let hw_visible = t.failure_fraction();
    // Software masking of hardware-escaped faults, from the register-write
    // models (the closest analogue of escaped corruptions).
    let reg_models: Vec<&SwTally> = sw
        .iter()
        .filter(|(m, _)| {
            matches!(m, FaultModel::ResultBit32 | FaultModel::ResultBit64 | FaultModel::ResultRandom)
        })
        .map(|(_, t)| t)
        .collect();
    let sw_masked: u64 = reg_models.iter().map(|t| t.state_ok).sum();
    let sw_total: u64 = reg_models.iter().map(|t| t.total()).sum();
    let sw_mask_frac = sw_masked as f64 / sw_total.max(1) as f64;
    let combined_visible = hw_visible * (1.0 - sw_mask_frac);
    format!(
        "== Summary ==\n\
         hardware-visible failure rate: {:.1}% (paper: <15%)\n\
         software masking of escaped register corruptions: {:.1}% (paper: ~50%)\n\
         combined masking: {:.1}% of latched faults never affect program output (paper: >90%)\n",
        100.0 * hw_visible,
        100.0 * sw_mask_frac,
        100.0 * (1.0 - combined_visible)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_and_table1_render() {
        let cfg = render_config();
        assert!(cfg.contains("132"));
        let t1 = render_table1();
        assert!(t1.contains("regfile"));
        assert!(t1.contains("5200"), "regfile RAM bits: {t1}");
        assert!(t1.contains("224"), "RAT bits");
    }

    #[test]
    fn overhead_renders_paper_scale_numbers() {
        let o = render_overhead();
        assert!(o.contains("added"), "{o}");
        // Extract the added-bits number loosely: it must be in the
        // 2,000-4,500 range established by the census test.
        assert!(o.contains("ecc bits"));
    }

    #[test]
    fn figure_pipeline_end_to_end_quick() {
        // A very small end-to-end sweep of every renderer.
        let mut cfg = Scale::Quick.campaign(5);
        cfg.start_points = 1;
        cfg.trials_per_start_point = 10;
        cfg.monitor_cycles = 600;
        cfg.scale = 1;
        let one: Vec<_> = tfsim_workloads::all().into_iter().take(2).collect();
        let r = tfsim_inject::run_campaign_on(&cfg, &one);
        let c = Campaigns { baseline_lr: r.clone(), baseline_l: r.clone(), protected_lr: r };
        for s in [
            render_fig3(&c),
            render_fig4(&c),
            render_fig5(&c),
            render_fig6(&c),
            render_fig7(&c),
            render_fig8(&c),
            render_fig9(&c),
            render_fig10(&c),
            render_reduction(&c),
        ] {
            assert!(s.contains("=="), "{s}");
        }
    }

    #[test]
    fn fig11_renders() {
        // One workload, tiny trial count, two models.
        let w = tfsim_workloads::by_name("gzip-like").unwrap();
        let p = w.build(1);
        let g = swinject::golden_ref(&p, 10_000_000);
        let results: Vec<_> = [FaultModel::ResultBit64, FaultModel::Nop]
            .iter()
            .map(|m| (*m, swinject::run_campaign(&p, &g, *m, 10, 3)))
            .collect();
        let s = render_fig11(&results);
        assert!(s.contains("reg-bit-64"));
        assert!(s.contains("insn-nop"));
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
    }
}
