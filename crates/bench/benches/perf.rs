//! Criterion performance benchmarks for the simulation substrate: these
//! measure the *harness* (how fast the reproduction runs), complementing
//! the `figures` binary (which regenerates the paper's exhibits).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use tfsim_arch::FuncSim;
use tfsim_bitstate::{fingerprint_of, InjectionMask, VisitState};
use tfsim_inject::StartPoint;
use tfsim_isa::decode;
use tfsim_protect::{regfile_code, Decoded};
use tfsim_uarch::{Pipeline, PipelineConfig};

fn warmed_pipeline(name: &str, cycles: u64) -> Pipeline {
    let w = tfsim_workloads::by_name(name).expect("workload");
    let p = w.build(4);
    let mut probe = FuncSim::new(&p);
    probe.run(50_000_000);
    let mut cpu = Pipeline::new(&p, PipelineConfig::baseline());
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    for _ in 0..cycles {
        cpu.step();
    }
    cpu
}

fn bench_pipeline_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(1_000));
    for name in ["gzip-like", "mcf-like", "twolf-like"] {
        let cpu = warmed_pipeline(name, 500);
        g.bench_function(format!("step-1k/{name}"), |b| {
            b.iter_batched(
                || cpu.clone(),
                |mut cpu| {
                    for _ in 0..1_000 {
                        cpu.step();
                    }
                    cpu.cycles()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_funcsim(c: &mut Criterion) {
    let w = tfsim_workloads::by_name("gzip-like").expect("workload");
    let p = w.build(4);
    let mut g = c.benchmark_group("funcsim");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("step-10k", |b| {
        b.iter_batched(
            || FuncSim::new(&p),
            |mut sim| sim.run(10_000),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    let mut cpu = warmed_pipeline("gzip-like", 500);
    c.bench_function("fingerprint/full-machine", |b| b.iter(|| fingerprint_of(&mut cpu)));
}

fn bench_trial(c: &mut Criterion) {
    let cpu = warmed_pipeline("gzip-like", 1_000);
    let sp = StartPoint::prepare(&cpu, 2_000, InjectionMask::LatchesAndRams);
    let mut target = 0u64;
    c.bench_function("inject/one-trial-2k-window", |b| {
        b.iter(|| {
            target = (target + 7_919) % sp.bit_count();
            sp.run_trial(InjectionMask::LatchesAndRams, target, 50, 1_500)
        })
    });
}

fn bench_codecs(c: &mut Criterion) {
    let code = regfile_code();
    let mut g = c.benchmark_group("protect");
    g.bench_function("secded65/encode", |b| {
        let mut v = 0x0123_4567_89ab_cdefu128;
        b.iter(|| {
            v = v.rotate_left(7) & ((1 << 65) - 1);
            code.encode(v)
        })
    });
    g.bench_function("secded65/decode-corrupted", |b| {
        let data = 0xdead_beef_cafe_f00du128;
        let check = code.encode(data);
        let mut bit = 0;
        b.iter(|| {
            bit = (bit + 1) % 65;
            match code.decode(data ^ (1u128 << bit), check) {
                Decoded::CorrectedData(d) => d,
                _ => 0,
            }
        })
    });
    g.finish();
}

fn bench_decoder(c: &mut Criterion) {
    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("decode-1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000u32 {
                let w = i.wrapping_mul(0x9e37_79b9);
                acc = acc.wrapping_add(decode(w).exec_latency() as u64);
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline_step, bench_funcsim, bench_fingerprint, bench_trial, bench_codecs, bench_decoder
}
criterion_main!(benches);
