//! Register alias tables and register free lists.
//!
//! The pipeline maintains *speculative* and *architectural* copies of both
//! the RAT and the free list (Figure 2: "Speculative and architectural
//! rename maps maintained"):
//!
//! * Rename reads/writes the speculative copies.
//! * Retirement updates the architectural copies.
//! * Branch mispredictions roll the speculative copies back by walking the
//!   ROB (done by the pipeline); full flushes copy the architectural state
//!   over the speculative state.
//!
//! With the pointer-ECC protection enabled, every 7-bit pointer stored here
//! carries 4 SEC check bits (`ecc` category state) that repair single-bit
//! flips when the pointer is read.

use tfsim_bitstate::{Category, FieldMeta, StateVisitor, StorageKind};
use tfsim_protect::{pointer_code, Decoded};

use crate::access::AccessLog;
use crate::config::sizes;

/// Applies pointer-ECC correction to a stored (pointer, check) pair,
/// repairing the stored pointer in place when a single-bit error is found.
/// Returns the (possibly corrected) pointer value.
fn checked_read(slot: &mut u64, ecc: &mut u64, ecc_enabled: bool) -> u64 {
    if !ecc_enabled {
        return *slot;
    }
    match pointer_code().decode(*slot as u128, *ecc as u32) {
        Decoded::Clean => *slot,
        Decoded::CorrectedData(fixed) => {
            *slot = fixed as u64;
            *slot
        }
        Decoded::CorrectedCheck | Decoded::Uncorrectable => {
            // Repair the check bits to match the data (best effort; an
            // uncorrectable pattern cannot happen from a single flip with
            // SEC, but corrupted state must never wedge the logic).
            *ecc = pointer_code().encode(*slot as u128) as u64;
            *slot
        }
    }
}

fn encode_ptr(value: u64) -> u64 {
    pointer_code().encode((value & 0x7f) as u128) as u64
}

/// A register alias table: 32 architectural registers → 7-bit physical
/// register pointers (224 bits of RAM, matching the paper's Table 1).
#[derive(Debug, Clone)]
pub struct Rat {
    map: Vec<u64>,
    ecc: Vec<u64>,
    category: Category,
    ecc_enabled: bool,
    /// Word-granular access log: `map[i]` is ordinal `i`, `ecc[i]` is
    /// ordinal `32 + i` (ECC ordinals only appear when ECC is enabled).
    pub log: AccessLog,
}

impl Rat {
    /// Creates a RAT with the identity mapping `areg i -> preg i`.
    ///
    /// `category` must be [`Category::SpecRat`] or [`Category::ArchRat`].
    pub fn new(category: Category, ecc_enabled: bool) -> Rat {
        let map: Vec<u64> = (0..sizes::ARCH_REGS as u64).collect();
        let ecc = map.iter().map(|&p| encode_ptr(p)).collect();
        Rat { map, ecc, category, ecc_enabled, log: AccessLog::default() }
    }

    /// Ordinal of the ECC word shadowing `map[i]`.
    pub const ECC_BASE: u32 = sizes::ARCH_REGS as u32;

    /// Reads the mapping for `areg`, applying pointer-ECC repair if
    /// enabled. Out-of-range architectural indices (impossible from decode,
    /// but reachable through corrupted state) read as pointer 0.
    pub fn read(&mut self, areg: u64) -> u64 {
        let i = areg as usize;
        if i >= self.map.len() {
            return 0;
        }
        self.log.read(i as u32);
        if self.ecc_enabled {
            self.log.read(Self::ECC_BASE + i as u32);
        }
        checked_read(&mut self.map[i], &mut self.ecc[i], self.ecc_enabled) & 0x7f
    }

    /// Writes a new mapping (the check bits travel with the pointer).
    pub fn write(&mut self, areg: u64, preg: u64) {
        let i = areg as usize;
        if i >= self.map.len() {
            return;
        }
        self.log.write(i as u32);
        if self.ecc_enabled {
            self.log.write(Self::ECC_BASE + i as u32);
        }
        self.map[i] = preg & 0x7f;
        self.ecc[i] = encode_ptr(preg);
    }

    /// Copies another RAT's contents (full-flush recovery): a logged read
    /// of every source word and a logged overwrite of every destination
    /// word.
    pub fn copy_from(&mut self, other: &mut Rat) {
        if other.log.enabled() || self.log.enabled() {
            for i in 0..self.map.len() as u32 {
                other.log.read(i);
                self.log.write(i);
                if self.ecc_enabled {
                    other.log.read(Self::ECC_BASE + i);
                    self.log.write(Self::ECC_BASE + i);
                }
            }
        }
        self.map.copy_from_slice(&other.map);
        self.ecc.copy_from_slice(&other.ecc);
    }

    /// Walks every mapping through the ECC decoder (a background scrub used
    /// by tests; real repair happens on read).
    pub fn scrub(&mut self) {
        if !self.ecc_enabled {
            return;
        }
        for i in 0..self.map.len() {
            checked_read(&mut self.map[i], &mut self.ecc[i], true);
        }
    }

    /// Visits the RAT state (and its check bits when ECC is enabled).
    pub fn visit(&mut self, v: &mut dyn StateVisitor) {
        v.array(FieldMeta::new(self.category, StorageKind::Ram), sizes::PREG_BITS, &mut self.map);
        if self.ecc_enabled {
            v.array(FieldMeta::new(Category::Ecc, StorageKind::Ram), 4, &mut self.ecc);
        }
    }
}

/// A circular register free list of 48 entries (the paper's 336 RAM bits:
/// 48 × 7), with 6-bit head/tail/count queue-control latches.
#[derive(Debug, Clone)]
pub struct FreeList {
    slots: Vec<u64>,
    ecc: Vec<u64>,
    head: u64,
    tail: u64,
    count: u64,
    category: Category,
    ecc_enabled: bool,
    /// Word-granular access log: `slots[i]` is ordinal `i`, `ecc[i]` is
    /// ordinal `48 + i`. The queue-control latches are not logged.
    pub log: AccessLog,
}

impl FreeList {
    /// Creates a full free list holding pregs `32..80` (the registers not
    /// claimed by the initial identity RAT).
    ///
    /// `category` must be [`Category::SpecFreelist`] or
    /// [`Category::ArchFreelist`].
    pub fn new(category: Category, ecc_enabled: bool) -> FreeList {
        let slots: Vec<u64> = (sizes::ARCH_REGS as u64..sizes::PHYS_REGS as u64).collect();
        let ecc = slots.iter().map(|&p| encode_ptr(p)).collect();
        FreeList {
            slots,
            ecc,
            head: 0,
            tail: 0,
            count: sizes::FREELIST as u64,
            category,
            ecc_enabled,
            log: AccessLog::default(),
        }
    }

    const CAP: u64 = sizes::FREELIST as u64;

    /// Ordinal of the ECC word shadowing `slots[i]`.
    pub const ECC_BASE: u32 = sizes::FREELIST as u32;

    /// Free registers currently available.
    pub fn len(&self) -> u64 {
        self.count.min(Self::CAP)
    }

    /// Whether no registers are available.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops the next free physical register, if any.
    pub fn pop(&mut self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let i = (self.head % Self::CAP) as usize;
        self.log.read(i as u32);
        if self.ecc_enabled {
            self.log.read(Self::ECC_BASE + i as u32);
        }
        let preg = checked_read(&mut self.slots[i], &mut self.ecc[i], self.ecc_enabled) & 0x7f;
        self.head = (self.head + 1) % Self::CAP;
        self.count = (self.count - 1) & 0x3f;
        Some(preg)
    }

    /// Reverses the most recent [`FreeList::pop`], restoring `preg` to the
    /// head of the list (used by the ROB-walk misprediction rollback).
    pub fn unpop(&mut self, preg: u64) {
        self.head = (self.head + Self::CAP - 1) % Self::CAP;
        let i = (self.head % Self::CAP) as usize;
        self.log.write(i as u32);
        if self.ecc_enabled {
            self.log.write(Self::ECC_BASE + i as u32);
        }
        self.slots[i] = preg & 0x7f;
        self.ecc[i] = encode_ptr(preg);
        self.count = (self.count + 1) & 0x3f;
    }

    /// Appends a freed register at the tail (retirement).
    pub fn push(&mut self, preg: u64) {
        let i = (self.tail % Self::CAP) as usize;
        self.log.write(i as u32);
        if self.ecc_enabled {
            self.log.write(Self::ECC_BASE + i as u32);
        }
        self.slots[i] = preg & 0x7f;
        self.ecc[i] = encode_ptr(preg);
        self.tail = (self.tail + 1) % Self::CAP;
        self.count = (self.count + 1) & 0x3f;
    }

    /// The raw `(head, tail, count)` queue-control latches, for invariant
    /// checks and tests (reads do not apply ECC repair).
    pub fn ring(&self) -> (u64, u64, u64) {
        (self.head, self.tail, self.count)
    }

    /// Copies another free list's full state (full-flush recovery): a
    /// logged read of every source slot and a logged overwrite of every
    /// destination slot (ring latches are not logged).
    pub fn copy_from(&mut self, other: &mut FreeList) {
        if other.log.enabled() || self.log.enabled() {
            for i in 0..self.slots.len() as u32 {
                other.log.read(i);
                self.log.write(i);
                if self.ecc_enabled {
                    other.log.read(Self::ECC_BASE + i);
                    self.log.write(Self::ECC_BASE + i);
                }
            }
        }
        self.slots.copy_from_slice(&other.slots);
        self.ecc.copy_from_slice(&other.ecc);
        self.head = other.head;
        self.tail = other.tail;
        self.count = other.count;
    }

    /// Visits the free list's RAM slots, check bits, and queue-control
    /// pointers.
    pub fn visit(&mut self, v: &mut dyn StateVisitor) {
        v.array(FieldMeta::new(self.category, StorageKind::Ram), sizes::PREG_BITS, &mut self.slots);
        if self.ecc_enabled {
            v.array(FieldMeta::new(Category::Ecc, StorageKind::Ram), 4, &mut self.ecc);
        }
        let q = FieldMeta::new(Category::Qctrl, StorageKind::Latch);
        v.field(q, 6, &mut self.head);
        v.field(q, 6, &mut self.tail);
        v.field(q, 6, &mut self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_bitstate::{BitCount, Census, InjectionMask, StorageKind};

    #[test]
    fn rat_identity_initialization() {
        let mut rat = Rat::new(Category::SpecRat, false);
        for a in 0..32 {
            assert_eq!(rat.read(a), a);
        }
        assert_eq!(rat.read(99), 0, "out-of-range reads are harmless");
    }

    #[test]
    fn rat_write_read_round_trip() {
        let mut rat = Rat::new(Category::SpecRat, false);
        rat.write(5, 77);
        assert_eq!(rat.read(5), 77);
        rat.write(99, 1); // out of range: dropped
    }

    #[test]
    fn rat_bit_census_matches_paper() {
        // Table 1: specrat/archrat are 224 RAM bits each (32 x 7).
        let mut rat = Rat::new(Category::ArchRat, false);
        let mut census = Census::new();
        rat.visit(&mut census);
        assert_eq!(census.bits(Category::ArchRat, StorageKind::Ram), 224);
    }

    #[test]
    fn rat_pointer_ecc_repairs_flips() {
        let mut rat = Rat::new(Category::SpecRat, true);
        rat.write(3, 0b1010101);
        // Corrupt one stored pointer bit directly.
        rat.map[3] ^= 1 << 4;
        assert_eq!(rat.read(3), 0b1010101, "ECC must repair the flip");
        assert_eq!(rat.map[3], 0b1010101, "repair is written back");
    }

    #[test]
    fn rat_ecc_census() {
        let mut rat = Rat::new(Category::SpecRat, true);
        let mut census = Census::new();
        rat.visit(&mut census);
        assert_eq!(census.bits(Category::Ecc, StorageKind::Ram), 32 * 4);
    }

    #[test]
    fn freelist_starts_full_with_upper_pregs() {
        let mut fl = FreeList::new(Category::SpecFreelist, false);
        assert_eq!(fl.len(), 48);
        let mut seen = Vec::new();
        while let Some(p) = fl.pop() {
            seen.push(p);
        }
        assert_eq!(seen.len(), 48);
        assert_eq!(seen[0], 32);
        assert_eq!(seen[47], 79);
        assert!(fl.is_empty());
        assert_eq!(fl.pop(), None);
    }

    #[test]
    fn freelist_pop_push_cycle_conserves_registers() {
        let mut fl = FreeList::new(Category::SpecFreelist, false);
        for round in 0..200 {
            let a = fl.pop().unwrap();
            let b = fl.pop().unwrap();
            fl.push(a);
            fl.push(b);
            assert_eq!(fl.len(), 48, "round {round}");
        }
        // All 48 registers are still distinct.
        let mut seen = std::collections::BTreeSet::new();
        while let Some(p) = fl.pop() {
            seen.insert(p);
        }
        assert_eq!(seen.len(), 48);
    }

    #[test]
    fn freelist_unpop_reverses_pop_order() {
        let mut fl = FreeList::new(Category::SpecFreelist, false);
        let a = fl.pop().unwrap();
        let b = fl.pop().unwrap();
        // Rollback walks youngest-first.
        fl.unpop(b);
        fl.unpop(a);
        assert_eq!(fl.pop(), Some(a));
        assert_eq!(fl.pop(), Some(b));
        assert_eq!(fl.len(), 46);
    }

    #[test]
    fn freelist_census_matches_paper() {
        // Table 1: specfreelist is 336 RAM bits (48 x 7).
        let mut fl = FreeList::new(Category::SpecFreelist, false);
        let mut census = Census::new();
        fl.visit(&mut census);
        assert_eq!(census.bits(Category::SpecFreelist, StorageKind::Ram), 336);
        assert_eq!(census.bits(Category::Qctrl, StorageKind::Latch), 18);
    }

    #[test]
    fn freelist_ecc_repairs_slot_flips() {
        let mut fl = FreeList::new(Category::SpecFreelist, true);
        fl.slots[0] ^= 1 << 6; // corrupt the first free preg (32 -> 96)
        let p = fl.pop().unwrap();
        assert_eq!(p, 32, "ECC must repair the pointer before use");
    }

    #[test]
    fn freelist_copy_from_restores_exact_state() {
        let mut arch = FreeList::new(Category::ArchFreelist, false);
        let mut spec = FreeList::new(Category::SpecFreelist, false);
        spec.pop();
        spec.pop();
        spec.push(70);
        // Arch side performs its own sequence.
        arch.pop();
        arch.push(50);
        spec.copy_from(&mut arch);
        assert_eq!(spec.len(), arch.len());
        let (a, b) = (spec.pop(), arch.pop());
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_pointers_never_panic() {
        let mut fl = FreeList::new(Category::SpecFreelist, false);
        fl.head = 63; // out of the 0..47 ring
        fl.tail = 55;
        fl.count = 63;
        for _ in 0..100 {
            let _ = fl.pop();
            fl.push(5);
        }
        let mut rat = Rat::new(Category::SpecRat, false);
        rat.map[0] = 0x7f; // nonexistent preg 127: read must just return it
        assert_eq!(rat.read(0), 0x7f);
    }

    #[test]
    fn injectable_bit_totals() {
        let mut fl = FreeList::new(Category::SpecFreelist, false);
        let mut count = BitCount::new(InjectionMask::LatchesAndRams);
        fl.visit(&mut count);
        assert_eq!(count.count, 48 * 7 + 18);
        let mut latches = BitCount::new(InjectionMask::LatchesOnly);
        fl.visit(&mut latches);
        assert_eq!(latches.count, 18, "only the queue pointers are latches");
    }
}
