//! Pipeline configuration: the paper's Figure 2 parameters plus the
//! Section 4 protection switches.

/// Structural sizes of the modeled pipeline (Figure 2 of the paper).
/// These are compile-time constants; the protection switches live in
/// [`PipelineConfig`].
pub mod sizes {
    /// Fetch width (instructions fetched per cycle, split-line).
    pub const FETCH_WIDTH: usize = 8;
    /// Fetch queue capacity.
    pub const FETCH_QUEUE: usize = 32;
    /// Decode/rename width.
    pub const DECODE_WIDTH: usize = 4;
    /// Scheduler (issue window) entries.
    pub const SCHEDULER: usize = 32;
    /// Maximum instructions selected for execution per cycle
    /// (2 simple ALUs + 1 complex ALU + 1 branch ALU + 2 AGUs).
    pub const ISSUE_WIDTH: usize = 6;
    /// Physical registers.
    pub const PHYS_REGS: usize = 80;
    /// Bits in a physical register pointer.
    pub const PREG_BITS: u32 = 7;
    /// Architectural registers.
    pub const ARCH_REGS: usize = 32;
    /// Free-list capacity (80 physical minus 32 architectural mappings).
    pub const FREELIST: usize = PHYS_REGS - ARCH_REGS;
    /// Reorder buffer entries.
    pub const ROB: usize = 64;
    /// Bits in a ROB tag.
    pub const ROB_BITS: u32 = 6;
    /// Retire width.
    pub const RETIRE_WIDTH: usize = 8;
    /// Load queue entries.
    pub const LOAD_QUEUE: usize = 16;
    /// Store queue entries.
    pub const STORE_QUEUE: usize = 16;
    /// Miss handling registers (lockup-free cache accesses).
    pub const MHRS: usize = 16;
    /// L1 miss service latency in cycles (constant, per the paper: no L2
    /// model, removing long idle periods and *underestimating* masking).
    pub const MISS_LATENCY: u32 = 8;
    /// Data cache: 32 KB, 2-way, dual-ported via 8 interleaved banks.
    pub const DCACHE_BYTES: u64 = 32 * 1024;
    /// Instruction cache: 8 KB, 2-way.
    pub const ICACHE_BYTES: u64 = 8 * 1024;
    /// Cache line size in bytes (both caches).
    pub const LINE_BYTES: u64 = 64;
    /// Cache associativity (both caches).
    pub const CACHE_WAYS: usize = 2;
    /// Data cache banks.
    pub const DCACHE_BANKS: u64 = 8;
    /// BTB entries (1024, 4-way set-associative).
    pub const BTB_ENTRIES: usize = 1024;
    /// BTB associativity.
    pub const BTB_WAYS: usize = 4;
    /// Return address stack entries.
    pub const RAS: usize = 8;
    /// Dcache load-to-use latency on a hit, in cycles.
    pub const DCACHE_LATENCY: u32 = 2;
    /// Maximum in-flight instructions (fetch queue + decode/rename pipe
    /// + reorder buffer + fetch stage buffer), the paper's "132".
    pub const MAX_IN_FLIGHT: usize = FETCH_QUEUE + 3 * DECODE_WIDTH + ROB + 3 * FETCH_WIDTH;
}

/// Tunable pipeline options: the four protection mechanisms of Section 4.
///
/// The unprotected baseline is [`PipelineConfig::baseline`]; the fully
/// hardened configuration evaluated in Figures 9/10 is
/// [`PipelineConfig::protected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Timeout counter: flush the pipeline after `timeout_threshold`
    /// cycles without retirement instead of deadlocking.
    pub timeout_counter: bool,
    /// Watchdog threshold in cycles (the paper uses 100).
    pub timeout_threshold: u32,
    /// SECDED ECC on the 80 × 65-bit register file entries. Generation is
    /// delayed one cycle after the write (the paper's cycle-time
    /// compromise), leaving a one-cycle vulnerability window.
    pub regfile_ecc: bool,
    /// SEC ECC on every 7-bit physical register pointer (RATs, free lists,
    /// and pointer fields throughout the pipeline).
    pub pointer_ecc: bool,
    /// Even parity on 32-bit instruction words, generated at fetch and
    /// checked before the instruction can write architectural state.
    pub insn_parity: bool,
}

impl PipelineConfig {
    /// The unprotected baseline pipeline (Section 3 campaigns).
    pub fn baseline() -> PipelineConfig {
        PipelineConfig {
            timeout_counter: false,
            timeout_threshold: 100,
            regfile_ecc: false,
            pointer_ecc: false,
            insn_parity: false,
        }
    }

    /// All four protection mechanisms enabled (Section 4.4 campaign).
    pub fn protected() -> PipelineConfig {
        PipelineConfig {
            timeout_counter: true,
            timeout_threshold: 100,
            regfile_ecc: true,
            pointer_ecc: true,
            insn_parity: true,
        }
    }

    /// Whether any protection mechanism is enabled.
    pub fn any_protection(&self) -> bool {
        self.timeout_counter || self.regfile_ecc || self.pointer_ecc || self.insn_parity
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_capacity_is_132() {
        // 32 (fetch queue) + 12 (decode/rename pipe) + 64 (ROB) + 24
        // (fetch-stage buffers) = 132, the paper's in-flight maximum.
        assert_eq!(sizes::MAX_IN_FLIGHT, 132);
    }

    #[test]
    fn config_presets() {
        assert!(!PipelineConfig::baseline().any_protection());
        let p = PipelineConfig::protected();
        assert!(p.timeout_counter && p.regfile_ecc && p.pointer_ecc && p.insn_parity);
        assert_eq!(p.timeout_threshold, 100);
        assert_eq!(PipelineConfig::default(), PipelineConfig::baseline());
    }

    #[test]
    fn pointer_widths_cover_structures() {
        assert!(sizes::PHYS_REGS <= 1 << sizes::PREG_BITS);
        assert!(sizes::ROB <= 1 << sizes::ROB_BITS);
        assert_eq!(sizes::FREELIST, 48);
    }
}
