//! The physical register file: 80 × 65-bit entries, the ready-bit
//! scoreboard, and the optional SECDED ECC protection.
//!
//! Matching the paper's Table 1, each entry is 65 bits (64 data bits plus
//! one implementation bit, modeled as always-written-zero but injectable)
//! and the scoreboard contributes 80 latch bits. With the register-file
//! ECC protection enabled, each entry gains 8 SECDED check bits; check-bit
//! generation happens **one cycle after the write** (the paper's cycle-time
//! compromise), leaving a one-cycle vulnerability window that the
//! protected-pipeline campaign can still hit.

use tfsim_bitstate::{Category, FieldMeta, StateVisitor, StorageKind};
use tfsim_protect::{regfile_code, Decoded};

use crate::access::AccessLog;
use crate::config::sizes;

/// Access-log word ordinal of the 65th ("extra") bit of preg `i` is
/// `EXTRA_BASE + i`; values sit at `i` directly.
pub const EXTRA_BASE: u32 = sizes::PHYS_REGS as u32;
/// Access-log word ordinal of the scoreboard ready bit of preg `i` is
/// `READY_BASE + i`.
pub const READY_BASE: u32 = 2 * sizes::PHYS_REGS as u32;

/// The physical register file with scoreboard and optional ECC.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    vals: Vec<u64>,
    extra: Vec<u64>, // the 65th bit of each entry
    ready: Vec<bool>,
    ecc: Vec<u64>,
    // Pregs written last cycle whose check bits are still stale (up to the
    // 7 write ports). Width-7 pointer latches plus a 3-bit count.
    ecc_stale: Vec<u64>,
    ecc_stale_count: u64,
    ecc_enabled: bool,
    /// Word-granular access log for the sliced trial engine. Covers the
    /// values, extra bits, and scoreboard; the ECC side state is untracked
    /// (flips there take the scalar path).
    pub log: AccessLog,
}

const WRITE_PORTS: usize = 7;

impl PhysRegFile {
    /// Creates a register file with all entries zero. Registers `0..32`
    /// (the initial architectural mappings) start ready; the free pool
    /// starts not-ready.
    pub fn new(ecc_enabled: bool) -> PhysRegFile {
        let n = sizes::PHYS_REGS;
        let code = regfile_code();
        PhysRegFile {
            vals: vec![0; n],
            extra: vec![0; n],
            ready: (0..n).map(|i| i < sizes::ARCH_REGS).collect(),
            ecc: vec![code.encode(0) as u64; n],
            ecc_stale: vec![0; WRITE_PORTS],
            ecc_stale_count: 0,
            ecc_enabled,
            log: AccessLog::default(),
        }
    }

    /// Reads a register value. Nonexistent registers (a corrupted 7-bit
    /// pointer can name pregs 80–127) read as zero. With ECC enabled, a
    /// single-bit error in the entry is repaired in place before the value
    /// is returned.
    pub fn read(&mut self, preg: u64) -> u64 {
        let i = preg as usize;
        if i >= self.vals.len() {
            return 0;
        }
        self.log.read(i as u32);
        if self.ecc_enabled && !self.is_stale(preg) {
            self.log.read(EXTRA_BASE + i as u32);
            let data = (self.vals[i] as u128) | ((self.extra[i] as u128 & 1) << 64);
            match regfile_code().decode(data, self.ecc[i] as u32) {
                Decoded::Clean => {}
                Decoded::CorrectedData(fixed) => {
                    self.vals[i] = fixed as u64;
                    self.extra[i] = (fixed >> 64) as u64 & 1;
                    // Repair is content-dependent, but the reads above
                    // shadow these writes in the engine's dedup — the
                    // repair itself always forces a peel.
                    self.log.write(i as u32);
                    self.log.write(EXTRA_BASE + i as u32);
                }
                Decoded::CorrectedCheck | Decoded::Uncorrectable => {
                    // Repair the check bits; an uncorrectable pattern from
                    // a single flip is impossible, but corrupted check
                    // state must not wedge future reads.
                    let data = (self.vals[i] as u128) | ((self.extra[i] as u128 & 1) << 64);
                    self.ecc[i] = regfile_code().encode(data) as u64;
                }
            }
        }
        self.vals[i]
    }

    /// Reads without ECC side effects (used by state dumps and tests).
    pub fn peek(&self, preg: u64) -> u64 {
        self.vals.get(preg as usize).copied().unwrap_or(0)
    }

    /// Writes a register value. Writes to nonexistent registers are
    /// dropped. With ECC enabled the check bits become stale until the
    /// next [`PhysRegFile::tick_ecc`].
    pub fn write(&mut self, preg: u64, value: u64) {
        let i = preg as usize;
        if i >= self.vals.len() {
            return;
        }
        self.log.write(i as u32);
        self.log.write(EXTRA_BASE + i as u32);
        self.vals[i] = value;
        self.extra[i] = 0;
        if self.ecc_enabled && !self.is_stale(preg) && (self.ecc_stale_count as usize) < WRITE_PORTS
        {
            self.ecc_stale[self.ecc_stale_count as usize] = preg & 0x7f;
            self.ecc_stale_count += 1;
        }
    }

    fn is_stale(&self, preg: u64) -> bool {
        (0..(self.ecc_stale_count as usize).min(WRITE_PORTS))
            .any(|k| self.ecc_stale[k] == (preg & 0x7f))
    }

    /// Generates check bits for last cycle's writes (call once per cycle).
    pub fn tick_ecc(&mut self) {
        if !self.ecc_enabled {
            return;
        }
        for k in 0..(self.ecc_stale_count as usize).min(WRITE_PORTS) {
            let i = self.ecc_stale[k] as usize;
            if i < self.vals.len() {
                self.log.read(i as u32);
                self.log.read(EXTRA_BASE + i as u32);
                let data = (self.vals[i] as u128) | ((self.extra[i] as u128 & 1) << 64);
                self.ecc[i] = regfile_code().encode(data) as u64;
            }
        }
        self.ecc_stale_count = 0;
    }

    /// Scoreboard: whether `preg` has produced its value.
    pub fn is_ready(&mut self, preg: u64) -> bool {
        if (preg as usize) < self.ready.len() {
            self.log.read(READY_BASE + preg as u32);
        }
        self.ready.get(preg as usize).copied().unwrap_or(true)
    }

    /// Scoreboard read without logging (observers and tests only).
    pub fn peek_ready(&self, preg: u64) -> bool {
        self.ready.get(preg as usize).copied().unwrap_or(true)
    }

    /// Sets the scoreboard ready bit.
    pub fn set_ready(&mut self, preg: u64, ready: bool) {
        if (preg as usize) < self.ready.len() {
            self.log.write(READY_BASE + preg as u32);
        }
        if let Some(r) = self.ready.get_mut(preg as usize) {
            *r = ready;
        }
    }

    /// Marks every register ready (full-flush recovery: after a flush all
    /// live values are architectural and therefore complete).
    pub fn all_ready(&mut self) {
        for i in 0..self.ready.len() {
            self.log.write(READY_BASE + i as u32);
            self.ready[i] = true;
        }
    }

    /// Visits values, the 65th bits, the scoreboard, and (when enabled)
    /// the ECC bits.
    pub fn visit(&mut self, v: &mut dyn StateVisitor) {
        v.array(FieldMeta::new(Category::Regfile, StorageKind::Ram), 64, &mut self.vals);
        v.array(FieldMeta::new(Category::Regfile, StorageKind::Ram), 1, &mut self.extra);
        for r in self.ready.iter_mut() {
            tfsim_bitstate::visit_bool(
                v,
                FieldMeta::new(Category::Regfile, StorageKind::Latch),
                r,
            );
        }
        if self.ecc_enabled {
            v.array(FieldMeta::new(Category::Ecc, StorageKind::Ram), 8, &mut self.ecc);
            v.array(FieldMeta::new(Category::Regptr, StorageKind::Latch), 7, &mut self.ecc_stale);
            v.field(FieldMeta::new(Category::Ctrl, StorageKind::Latch), 3, &mut self.ecc_stale_count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_bitstate::{Census, StorageKind};

    #[test]
    fn read_write_round_trip() {
        let mut rf = PhysRegFile::new(false);
        rf.write(42, 0xdead_beef);
        assert_eq!(rf.read(42), 0xdead_beef);
        assert_eq!(rf.peek(42), 0xdead_beef);
    }

    #[test]
    fn nonexistent_registers_read_zero_and_drop_writes() {
        let mut rf = PhysRegFile::new(false);
        rf.write(100, 7);
        assert_eq!(rf.read(100), 0);
        assert_eq!(rf.read(127), 0);
        assert!(rf.is_ready(127), "nonexistent pregs never block issue");
    }

    #[test]
    fn scoreboard_tracking() {
        let mut rf = PhysRegFile::new(false);
        assert!(rf.is_ready(5), "initial mappings start ready");
        assert!(!rf.is_ready(50), "free pool starts not-ready");
        rf.set_ready(50, true);
        assert!(rf.is_ready(50));
        rf.set_ready(50, false);
        assert!(!rf.is_ready(50));
        rf.all_ready();
        assert!(rf.is_ready(50));
    }

    #[test]
    fn census_matches_paper_table1() {
        // 80 x 65 = 5200 RAM bits + 80 scoreboard latches.
        let mut rf = PhysRegFile::new(false);
        let mut census = Census::new();
        rf.visit(&mut census);
        assert_eq!(census.bits(Category::Regfile, StorageKind::Ram), 5200);
        assert_eq!(census.bits(Category::Regfile, StorageKind::Latch), 80);
        assert_eq!(census.bits(Category::Ecc, StorageKind::Ram), 0);
    }

    #[test]
    fn ecc_census_adds_640_bits() {
        let mut rf = PhysRegFile::new(true);
        let mut census = Census::new();
        rf.visit(&mut census);
        assert_eq!(census.bits(Category::Ecc, StorageKind::Ram), 640);
    }

    #[test]
    fn ecc_corrects_value_flips_after_generation() {
        let mut rf = PhysRegFile::new(true);
        rf.write(10, 0x1234_5678_9abc_def0);
        rf.tick_ecc(); // check bits generated one cycle later
        rf.vals[10] ^= 1 << 37; // fault
        assert_eq!(rf.read(10), 0x1234_5678_9abc_def0);
        assert_eq!(rf.peek(10), 0x1234_5678_9abc_def0, "repair written back");
    }

    #[test]
    fn ecc_corrects_the_65th_bit() {
        let mut rf = PhysRegFile::new(true);
        rf.write(11, 99);
        rf.tick_ecc();
        rf.extra[11] ^= 1;
        let _ = rf.read(11);
        assert_eq!(rf.extra[11], 0);
    }

    #[test]
    fn one_cycle_vulnerability_window() {
        // A flip landing between the write and tick_ecc is NOT corrected —
        // the paper's deliberate coverage gap.
        let mut rf = PhysRegFile::new(true);
        rf.write(12, 0xff);
        rf.vals[12] ^= 1; // fault in the window
        rf.tick_ecc(); // ECC now protects the *corrupted* value
        assert_eq!(rf.read(12), 0xfe, "window flip must survive");
    }

    #[test]
    fn stale_tracking_handles_duplicate_writes() {
        let mut rf = PhysRegFile::new(true);
        rf.write(20, 1);
        rf.write(20, 2); // same preg twice in a cycle
        rf.tick_ecc();
        rf.vals[20] ^= 1 << 63;
        assert_eq!(rf.read(20), 2);
    }

    #[test]
    fn corrupted_check_bits_do_not_corrupt_data() {
        let mut rf = PhysRegFile::new(true);
        rf.write(30, 777);
        rf.tick_ecc();
        rf.ecc[30] ^= 0b11; // double flip in check bits: "uncorrectable"
        assert_eq!(rf.read(30), 777, "data stays intact");
        // And the check bits were rebuilt, so the next read is clean.
        assert_eq!(rf.ecc[30], regfile_code().encode(777) as u64);
    }
}
