#![warn(missing_docs)]

//! # tfsim-uarch — the pipeline model
//!
//! A cycle-accurate, *bit-accurate* model of the processor the paper
//! studies: a 12-stage, 4-wide (8-wide fetch, 8-wide retire), dynamically
//! scheduled superscalar pipeline comparable to the Alpha 21264/AMD
//! Athlon, with up to 132 instructions in flight:
//!
//! * 8-wide split-line fetch from an 8 KB 2-way I-cache, hybrid
//!   bimodal/local/global branch prediction, 1024-entry 4-way BTB, 8-entry
//!   RAS with pointer recovery, 32-entry fetch queue;
//! * 4-wide decode and rename against 80 physical registers with
//!   speculative and architectural RATs and free lists;
//! * a 32-entry scheduler with speculative wakeup and replay;
//! * 2 simple ALUs, 1 complex (2–5 cycle) ALU, 1 branch ALU, 2 AGUs;
//! * 16-entry load and store queues with store-set memory dependence
//!   prediction and store-to-load forwarding, a 32 KB 2-way 8-banked
//!   D-cache with 16 miss handling registers and constant 8-cycle misses;
//! * a 64-entry ROB with 8-wide retire.
//!
//! Every latch bit and RAM cell is registered with the
//! [`tfsim_bitstate`] visitors, making the model *latch-accurate* in the
//! paper's sense: the fault injector can enumerate, categorize, and flip
//! any bit, and fingerprint the entire machine for µArch Match detection.
//!
//! The four Section-4 protection mechanisms (timeout counter, register
//! file ECC, register pointer ECC, instruction word parity) are selected
//! through [`PipelineConfig`].
//!
//! ```
//! use tfsim_isa::{Asm, Program, Reg};
//! use tfsim_uarch::{Pipeline, PipelineConfig};
//!
//! let mut a = Asm::new(0x1_0000);
//! a.li(Reg::R0, 1); // exit syscall
//! a.li(Reg::R16, 9);
//! a.callsys();
//! let mut cpu = Pipeline::new(&Program::new("exit9", a), PipelineConfig::baseline());
//! cpu.run(10_000);
//! assert_eq!(cpu.halted(), Some(9));
//! ```

pub mod access;
pub mod bpred;
pub mod caches;
pub mod config;
pub mod exec;
mod pipeline;
pub mod queues;
pub mod regfile;
pub mod rename;
pub mod storesets;

pub use config::{sizes, PipelineConfig};
pub use pipeline::{CycleReport, FlowEvent, Occupancy, Pipeline, PipeStats, RetireEvent};
pub use queues::ExcCode;
