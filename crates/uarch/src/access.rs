//! Per-structure access logging for the word-parallel trial engine.
//!
//! The sliced trial engine (`tfsim-inject`) rides fault lanes on a single
//! golden evaluation for as long as the flipped word is provably unread: a
//! lane peels off to the scalar path the first time the machine *reads*
//! the corrupted cell, and heals (rejoins golden exactly) when the machine
//! *overwrites* it with freshly computed data. Both decisions require a
//! per-cycle record of which state words the pipeline touched, which this
//! module provides.
//!
//! Each RAM-like structure owns an [`AccessLog`] and reports accesses as
//! structure-local word ordinals. Logging is disabled by default (one
//! predictable branch per access on the scalar path); the footprint walk
//! enables it on a private clone only.
//!
//! # Soundness contract
//!
//! *Reads may be over-logged* (a spurious read only forces a conservative
//! peel, never a wrong outcome). *Writes must be logged exactly*, and only
//! for full-word overwrites whose value cannot depend on the word's prior
//! content — the engine treats a logged write as proof the lane's
//! difference was erased. Sites that read-modify-write a word log the read
//! first, which shadows the write (first access per cycle wins).
//! Observer paths (state walks, fingerprints, invariant checks, test
//! peeks) must not log at all.

/// Marks an event in the packed log as a write.
pub const WRITE_BIT: u32 = 1 << 31;

/// A per-structure log of word-granular state accesses.
#[derive(Debug, Clone, Default)]
pub struct AccessLog {
    enabled: bool,
    events: Vec<u32>,
}

impl AccessLog {
    /// Turns logging on or off, clearing any buffered events.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.events.clear();
    }

    /// Whether logging is currently enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records a read of structure-local word `ord`.
    #[inline(always)]
    pub fn read(&mut self, ord: u32) {
        if self.enabled {
            self.events.push(ord);
        }
    }

    /// Records a full-word overwrite of structure-local word `ord` whose
    /// new value does not depend on the word's prior content.
    #[inline(always)]
    pub fn write(&mut self, ord: u32) {
        if self.enabled {
            self.events.push(ord | WRITE_BIT);
        }
    }

    /// Drains buffered events in program order as `(ord, is_write)`.
    pub fn drain(&mut self, f: &mut dyn FnMut(u32, bool)) {
        for &e in &self.events {
            f(e & !WRITE_BIT, e & WRITE_BIT != 0);
        }
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = AccessLog::default();
        log.read(3);
        log.write(4);
        let mut seen = Vec::new();
        log.drain(&mut |ord, w| seen.push((ord, w)));
        assert!(seen.is_empty());
    }

    #[test]
    fn events_drain_in_program_order() {
        let mut log = AccessLog::default();
        log.set_enabled(true);
        log.read(7);
        log.write(7);
        log.read(2);
        let mut seen = Vec::new();
        log.drain(&mut |ord, w| seen.push((ord, w)));
        assert_eq!(seen, vec![(7, false), (7, true), (2, false)]);
        let mut again = Vec::new();
        log.drain(&mut |ord, w| again.push((ord, w)));
        assert!(again.is_empty(), "drain clears the buffer");
    }

    #[test]
    fn set_enabled_clears_stale_events() {
        let mut log = AccessLog::default();
        log.set_enabled(true);
        log.read(1);
        log.set_enabled(true);
        let mut seen = Vec::new();
        log.drain(&mut |ord, w| seen.push((ord, w)));
        assert!(seen.is_empty());
    }
}
