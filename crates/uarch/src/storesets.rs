//! Memory dependence prediction using store sets (Chrysos & Emer), as
//! named in the paper's Figure 2.
//!
//! A load that once conflicted with a store is placed in that store's
//! *store set*; on later encounters the load waits until the most recent
//! store of its set has computed its address (after which store-to-load
//! forwarding provides the value or proves independence).
//!
//! Like the branch predictors, this state only affects timing — every
//! prediction is backed by the LSQ's violation detection — so it is
//! shadow (fingerprinted, not injectable) per the paper's exclusion of
//! prediction structures.

use tfsim_bitstate::{Category, FieldMeta, StateVisitor, StorageKind, VisitState};

const SSIT_ENTRIES: usize = 1024;
const LFST_ENTRIES: usize = 64;

fn ssit_index(pc: u64) -> usize {
    ((pc >> 2) as usize) & (SSIT_ENTRIES - 1)
}

/// The store-set predictor: a store-set ID table (SSIT) indexed by PC and
/// a last-fetched-store table (LFST) indexed by set ID.
#[derive(Debug, Clone)]
pub struct StoreSets {
    ssit_valid: Vec<u64>,
    ssit_id: Vec<u64>, // 6-bit set ids
    lfst_valid: Vec<u64>,
    lfst_sq: Vec<u64>, // store queue slot of the last fetched store
    gen: u64, // generation stamp: advances on every content change
}

impl StoreSets {
    /// Creates an empty predictor.
    pub fn new() -> StoreSets {
        StoreSets {
            ssit_valid: vec![0; SSIT_ENTRIES],
            ssit_id: vec![0; SSIT_ENTRIES],
            lfst_valid: vec![0; LFST_ENTRIES],
            lfst_sq: vec![0; LFST_ENTRIES],
            gen: 0,
        }
    }

    /// Generation stamp for cached fingerprinting: unchanged stamp ⇒
    /// unchanged SSIT/LFST content. Writes that restate the stored value
    /// (retraining an existing association, clearing an empty LFST) do not
    /// advance it.
    pub fn state_gen(&self) -> u64 {
        self.gen
    }

    fn set_of(&self, pc: u64) -> Option<u64> {
        let i = ssit_index(pc);
        (self.ssit_valid[i] == 1).then(|| self.ssit_id[i] & 0x3f)
    }

    /// Called when a store dispatches into SQ slot `sq`. Returns the SQ
    /// slot of the previous store in the same set, which this store should
    /// (in a full implementation) order behind; we only track the table.
    pub fn store_dispatched(&mut self, pc: u64, sq: u64) -> Option<u64> {
        let set = self.set_of(pc)?;
        let prev = (self.lfst_valid[set as usize] == 1).then(|| self.lfst_sq[set as usize]);
        if self.lfst_valid[set as usize] != 1 || self.lfst_sq[set as usize] != sq & 0xf {
            self.lfst_valid[set as usize] = 1;
            self.lfst_sq[set as usize] = sq & 0xf;
            self.gen += 1;
        }
        prev
    }

    /// Called when a load dispatches. Returns the SQ slot the load must
    /// wait on (until that store's address is known), if its set predicts
    /// a dependence.
    pub fn load_dispatched(&self, pc: u64) -> Option<u64> {
        let set = self.set_of(pc)?;
        (self.lfst_valid[set as usize] == 1).then(|| self.lfst_sq[set as usize])
    }

    /// Called when the store in SQ slot `sq` computes its address (the
    /// dependence is now resolvable through forwarding): clears matching
    /// LFST entries.
    pub fn store_resolved(&mut self, sq: u64) {
        let mut changed = false;
        for i in 0..LFST_ENTRIES {
            if self.lfst_valid[i] == 1 && self.lfst_sq[i] == (sq & 0xf) {
                self.lfst_valid[i] = 0;
                changed = true;
            }
        }
        self.gen += changed as u64;
    }

    /// Trains the predictor after a memory-order violation between the
    /// load at `load_pc` and the store at `store_pc`: both are merged into
    /// one store set.
    pub fn violation(&mut self, load_pc: u64, store_pc: u64) {
        let li = ssit_index(load_pc);
        let si = ssit_index(store_pc);
        let set = if self.ssit_valid[si] == 1 {
            self.ssit_id[si]
        } else if self.ssit_valid[li] == 1 {
            self.ssit_id[li]
        } else {
            // Allocate: hash the store PC into a set id.
            (store_pc >> 2) & 0x3f
        };
        let mut changed = false;
        for i in [li, si] {
            if self.ssit_valid[i] != 1 || self.ssit_id[i] != set & 0x3f {
                self.ssit_valid[i] = 1;
                self.ssit_id[i] = set & 0x3f;
                changed = true;
            }
        }
        self.gen += changed as u64;
    }

    /// Clears the LFST (every squash invalidates its SQ slot references).
    pub fn clear_lfst(&mut self) {
        let mut changed = false;
        for v in self.lfst_valid.iter_mut() {
            changed |= *v != 0;
            *v = 0;
        }
        self.gen += changed as u64;
    }
}

impl Default for StoreSets {
    fn default() -> Self {
        StoreSets::new()
    }
}

impl VisitState for StoreSets {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        let m = FieldMeta::shadow(Category::Ctrl, StorageKind::Ram);
        v.array(m, 1, &mut self.ssit_valid);
        v.array(m, 6, &mut self.ssit_id);
        v.array(m, 1, &mut self.lfst_valid);
        v.array(m, 4, &mut self.lfst_sq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_predictor_predicts_independence() {
        let mut ss = StoreSets::new();
        assert_eq!(ss.load_dispatched(0x1000), None);
        assert_eq!(ss.store_dispatched(0x2000, 3), None);
    }

    #[test]
    fn violation_trains_dependence() {
        let mut ss = StoreSets::new();
        ss.violation(0x1000, 0x2000);
        // The store now updates the LFST; the load sees it.
        ss.store_dispatched(0x2000, 5);
        assert_eq!(ss.load_dispatched(0x1000), Some(5));
        // Once the store's address resolves, the load no longer waits.
        ss.store_resolved(5);
        assert_eq!(ss.load_dispatched(0x1000), None);
    }

    #[test]
    fn two_stores_same_set_track_the_latest() {
        let mut ss = StoreSets::new();
        ss.violation(0x1000, 0x2000);
        ss.violation(0x1000, 0x3000); // merges 0x3000 into the same set
        ss.store_dispatched(0x2000, 1);
        let prev = ss.store_dispatched(0x3000, 2);
        assert_eq!(prev, Some(1), "second store sees the first in its set");
        assert_eq!(ss.load_dispatched(0x1000), Some(2));
    }

    #[test]
    fn clear_lfst_forgets_slots_but_not_sets() {
        let mut ss = StoreSets::new();
        ss.violation(0x1000, 0x2000);
        ss.store_dispatched(0x2000, 7);
        ss.clear_lfst();
        assert_eq!(ss.load_dispatched(0x1000), None);
        // The SSIT association persists.
        ss.store_dispatched(0x2000, 2);
        assert_eq!(ss.load_dispatched(0x1000), Some(2));
    }

    #[test]
    fn predictor_state_is_shadow() {
        use tfsim_bitstate::{BitCount, InjectionMask};
        let mut ss = StoreSets::new();
        let mut count = BitCount::new(InjectionMask::LatchesAndRams);
        ss.visit_state(&mut count);
        assert_eq!(count.count, 0);
    }
}
