//! The pipeline top level: a cycle-accurate, bit-accurate model of the
//! 12-stage dynamically scheduled superscalar processor of Figure 1/2.
//!
//! One [`Pipeline::step`] call advances one clock edge. Stages are
//! evaluated in reverse order (retire first, fetch last) so that values
//! latched this cycle become visible next cycle, modeling edge-triggered
//! pipeline registers.
//!
//! ## State coverage
//!
//! Every microarchitectural storage element is reachable through the
//! [`VisitState`] implementation: injectable pipeline state (Table 1
//! categories), protection state (`ecc`/`parity`), and shadow state
//! (caches and predictors, fingerprinted but excluded from injection).
//! Main memory and the output stream are *not* part of the walk: their
//! equivalence with a golden run is implied by matching retirement streams
//! (every store and syscall is checked at retirement by the injection
//! harness), which keeps the µArch Match comparison cheap.

mod front;
mod render;
mod memphase;
mod retire;
mod squash;
mod visit;
mod wb;

#[cfg(test)]
mod tests;

use tfsim_arch::RetireRecord;
use tfsim_isa::Program;
use tfsim_mem::{PageSet, SparseMemory};
use tfsim_protect::{TimeoutAction, TimeoutCounter};

use crate::access::AccessLog;
use crate::bpred::{BranchPredictor, Btb, Ras};
use crate::caches::{MhrFile, TagCache};
use crate::config::{sizes, PipelineConfig};
use crate::exec::{fuw, schedw, FuBank, Scheduler};
use crate::queues::{flw, lqw, sqw, ExcCode, FetchQueue, Lsq, Rob, SlotPayload, SQ_BASE};
use crate::regfile::PhysRegFile;
use crate::rename::{FreeList, Rat};
use crate::storesets::StoreSets;
use tfsim_bitstate::{Category, UnitId};

/// An architecturally visible event produced by the retire stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetireEvent {
    /// An instruction committed.
    Retired(RetireRecord),
    /// The program halted (PAL halt or `exit` syscall).
    Halted {
        /// Exit code.
        code: u64,
    },
    /// An exception reached the head of the ROB; the machine stops.
    Exception(ExcCode),
}

/// What happened during one cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleReport {
    /// Retirement-stage events, oldest first.
    pub events: Vec<RetireEvent>,
    /// Number of instructions retired this cycle.
    pub retired: u32,
    /// A protection mechanism forced a pipeline flush this cycle.
    pub protective_flush: bool,
}

/// Instrumentation events for the Figure 6 valid-instruction analysis
/// (recorded only when [`Pipeline::enable_flow_log`] was called).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowEvent {
    /// Instruction `seq` entered the machine at `cycle`.
    Fetch {
        /// Fetch sequence number.
        seq: u64,
        /// Cycle of entry.
        cycle: u64,
    },
    /// Instruction `seq` retired at `cycle`.
    Commit {
        /// Fetch sequence number.
        seq: u64,
        /// Cycle of commit.
        cycle: u64,
    },
    /// Instruction `seq` was squashed at `cycle`.
    Squash {
        /// Fetch sequence number.
        seq: u64,
        /// Cycle of squash.
        cycle: u64,
    },
}

/// Instrumentation counters (not machine state; never visited).
///
/// These are the per-benchmark characteristics the paper uses to explain
/// masking differences: IPC, branch prediction rate, and cache hit rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeStats {
    /// Conditional/indirect branches resolved by the branch unit.
    pub branches_resolved: u64,
    /// Branches whose prediction was wrong (squash + redirect).
    pub branch_mispredicts: u64,
    /// Data-cache accesses attempted by loads.
    pub dcache_accesses: u64,
    /// Data-cache misses (MHR allocations or joins).
    pub dcache_misses: u64,
    /// Instruction-cache miss stalls.
    pub icache_misses: u64,
    /// Scheduler replays caused by load-hit misspeculation.
    pub replays: u64,
    /// Memory-order violations detected (store-set training events).
    pub violations: u64,
    /// Full pipeline flushes (exceptions and protection mechanisms).
    pub full_flushes: u64,
}

impl PipeStats {
    /// Fraction of resolved branches predicted correctly.
    pub fn branch_prediction_rate(&self) -> f64 {
        if self.branches_resolved == 0 {
            return 1.0;
        }
        1.0 - self.branch_mispredicts as f64 / self.branches_resolved as f64
    }

    /// Fraction of data-cache accesses that hit.
    pub fn dcache_hit_rate(&self) -> f64 {
        if self.dcache_accesses == 0 {
            return 1.0;
        }
        1.0 - self.dcache_misses as f64 / self.dcache_accesses as f64
    }
}

/// Point-in-time structure occupancies (fractions of capacity), the raw
/// material of utilization-based vulnerability analysis (cf. Mukherjee et
/// al.'s architectural vulnerability factors, which the paper's results
/// corroborate).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Occupancy {
    /// Reorder buffer occupancy.
    pub rob: f64,
    /// Scheduler occupancy.
    pub scheduler: f64,
    /// Fetch queue occupancy.
    pub fetch_queue: f64,
    /// Load queue occupancy.
    pub load_queue: f64,
    /// Store queue occupancy.
    pub store_queue: f64,
    /// Miss handling register occupancy.
    pub mhrs: f64,
    /// Fetch/decode pipe-latch occupancy.
    pub frontend: f64,
}

impl Occupancy {
    /// Capacity-weighted mean occupancy across the tracked structures.
    pub fn overall(&self) -> f64 {
        let weighted = self.rob * sizes::ROB as f64
            + self.scheduler * sizes::SCHEDULER as f64
            + self.fetch_queue * sizes::FETCH_QUEUE as f64
            + self.load_queue * sizes::LOAD_QUEUE as f64
            + self.store_queue * sizes::STORE_QUEUE as f64
            + self.mhrs * sizes::MHRS as f64
            + self.frontend * (3.0 * sizes::FETCH_WIDTH as f64 + 3.0 * sizes::DECODE_WIDTH as f64);
        let capacity = (sizes::ROB
            + sizes::SCHEDULER
            + sizes::FETCH_QUEUE
            + sizes::LOAD_QUEUE
            + sizes::STORE_QUEUE
            + sizes::MHRS
            + 3 * sizes::FETCH_WIDTH
            + 3 * sizes::DECODE_WIDTH) as f64;
        weighted / capacity
    }
}

/// The pipeline model. Clone a warmed-up pipeline to create a trial
/// checkpoint.
#[derive(Debug, Clone)]
pub struct Pipeline {
    pub(crate) config: PipelineConfig,

    // Memory system (not visited; see module docs).
    pub(crate) mem: SparseMemory,
    pub(crate) itlb: PageSet,
    pub(crate) dtlb: PageSet,
    pub(crate) output: Vec<u8>,

    // Front end.
    pub(crate) fetch_pc: u64,
    pub(crate) redirect_valid: bool,
    pub(crate) redirect_pc: u64,
    pub(crate) fstages: Vec<Vec<SlotPayload>>, // 3 stages x 8 slots
    pub(crate) fq: FetchQueue,
    pub(crate) dec1: Vec<SlotPayload>, // 4-wide
    pub(crate) dec2: Vec<SlotPayload>,
    pub(crate) ren: Vec<SlotPayload>,
    /// Word-granular access log for the front-end latches (fetch buffers
    /// and decode/rename pipe); ordinals per [`crate::queues::flw`].
    pub(crate) flatch_log: AccessLog,
    pub(crate) bpred: BranchPredictor,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) icache: TagCache,
    pub(crate) ifill_valid: bool,
    pub(crate) ifill_addr: u64,
    pub(crate) ifill_timer: u64,

    // Rename.
    pub(crate) spec_rat: Rat,
    pub(crate) arch_rat: Rat,
    pub(crate) spec_fl: FreeList,
    pub(crate) arch_fl: FreeList,

    // Out-of-order window.
    pub(crate) sched: Scheduler,
    pub(crate) rob: Rob,
    pub(crate) lsq: Lsq,
    pub(crate) fus: FuBank,
    pub(crate) regfile: PhysRegFile,
    pub(crate) spec_ready: Vec<bool>, // 80 speculative-wakeup bits
    pub(crate) dcache: TagCache,
    pub(crate) mhrs: MhrFile,
    pub(crate) storesets: StoreSets,

    // Architectural bookkeeping.
    pub(crate) arch_pc: u64, // PC of the next instruction to retire
    pub(crate) watchdog: TimeoutCounter,

    // Terminal conditions and instrumentation (not machine state).
    pub(crate) halted: Option<u64>,
    pub(crate) excepted: Option<ExcCode>,
    pub(crate) cycles: u64,
    pub(crate) instret: u64,
    pub(crate) fetch_seq: u64,
    pub(crate) flow_log: Option<Vec<FlowEvent>>,
    pub(crate) stats: PipeStats,
}

impl Pipeline {
    /// Creates a pipeline loaded with `program`, TLBs preloaded with the
    /// program's own sections. For injection campaigns, widen the TLBs to
    /// the pages of a fault-free run with [`Pipeline::set_tlbs`].
    pub fn new(program: &Program, config: PipelineConfig) -> Pipeline {
        let mut pages = PageSet::new();
        for s in &program.sections {
            pages.insert_range(s.addr, s.bytes.len() as u64);
        }
        let ecc = config.pointer_ecc;
        Pipeline {
            config,
            mem: SparseMemory::from_program(program),
            itlb: pages.clone(),
            dtlb: pages,
            output: Vec::new(),
            fetch_pc: program.entry,
            redirect_valid: false,
            redirect_pc: 0,
            fstages: (0..3)
                .map(|_| (0..sizes::FETCH_WIDTH).map(|_| SlotPayload::default()).collect())
                .collect(),
            fq: FetchQueue::new(),
            dec1: (0..sizes::DECODE_WIDTH).map(|_| SlotPayload::default()).collect(),
            dec2: (0..sizes::DECODE_WIDTH).map(|_| SlotPayload::default()).collect(),
            ren: (0..sizes::DECODE_WIDTH).map(|_| SlotPayload::default()).collect(),
            flatch_log: AccessLog::default(),
            bpred: BranchPredictor::new(),
            btb: Btb::new(),
            ras: Ras::new(),
            icache: TagCache::new(sizes::ICACHE_BYTES),
            ifill_valid: false,
            ifill_addr: 0,
            ifill_timer: 0,
            spec_rat: Rat::new(Category::SpecRat, ecc),
            arch_rat: Rat::new(Category::ArchRat, ecc),
            spec_fl: FreeList::new(Category::SpecFreelist, ecc),
            arch_fl: FreeList::new(Category::ArchFreelist, ecc),
            sched: Scheduler::new(),
            rob: Rob::new(),
            lsq: Lsq::new(),
            fus: FuBank::new(),
            regfile: PhysRegFile::new(config.regfile_ecc),
            spec_ready: vec![false; sizes::PHYS_REGS],
            dcache: TagCache::new(sizes::DCACHE_BYTES),
            mhrs: MhrFile::new(),
            storesets: StoreSets::new(),
            arch_pc: program.entry,
            watchdog: TimeoutCounter::with_threshold(config.timeout_threshold),
            halted: None,
            excepted: None,
            cycles: 0,
            instret: 0,
            fetch_seq: 0,
            flow_log: None,
            stats: PipeStats::default(),
        }
    }

    /// Replaces the TLB page sets (preloaded from a fault-free functional
    /// run, as the paper does).
    pub fn set_tlbs(&mut self, itlb: PageSet, dtlb: PageSet) {
        self.itlb = itlb;
        self.dtlb = dtlb;
    }

    /// Turns on [`FlowEvent`] recording (golden runs only; it is
    /// instrumentation, not machine state).
    pub fn enable_flow_log(&mut self) {
        self.flow_log = Some(Vec::new());
    }

    /// Takes the recorded flow events.
    pub fn take_flow_events(&mut self) -> Vec<FlowEvent> {
        self.flow_log.take().unwrap_or_default()
    }

    /// Instrumentation counters accumulated since reset.
    pub fn stats(&self) -> PipeStats {
        self.stats
    }

    /// Cycles executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Program output so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Deterministic checksum over the memory image, comparable against
    /// [`tfsim_mem::SparseMemory::checksum`] of a functional run.
    pub fn mem_checksum(&self) -> u64 {
        self.mem.checksum()
    }

    /// Exit code if halted.
    pub fn halted(&self) -> Option<u64> {
        self.halted
    }

    /// Exception that terminated the machine, if any.
    pub fn exception(&self) -> Option<ExcCode> {
        self.excepted
    }

    /// Whether the machine can still advance.
    pub fn running(&self) -> bool {
        self.halted.is_none() && self.excepted.is_none()
    }

    /// Number of instructions currently in flight (fetch buffers, fetch
    /// queue, decode/rename pipe, and ROB).
    pub fn in_flight(&self) -> u64 {
        let stages: u64 = self
            .fstages
            .iter()
            .flatten()
            .chain(self.dec1.iter())
            .chain(self.dec2.iter())
            .chain(self.ren.iter())
            .filter(|s| s.valid)
            .count() as u64;
        stages + self.fq.len() + self.rob.len()
    }

    /// Check bits for a 7-bit pointer (zero when the protection is off).
    pub(crate) fn ptr_check(&self, v: u64) -> u64 {
        if self.config.pointer_ecc {
            tfsim_protect::ptr7_check(v)
        } else {
            0
        }
    }

    /// Repairs a pointer against its check bits (identity when off).
    pub(crate) fn ptr_repair(&self, v: u64, ecc: u64) -> u64 {
        if self.config.pointer_ecc {
            tfsim_protect::ptr7_fix(v, ecc)
        } else {
            v
        }
    }

    /// Samples the current structure occupancies.
    pub fn occupancy(&self) -> Occupancy {
        let frontend_slots = self
            .fstages
            .iter()
            .flatten()
            .chain(self.dec1.iter())
            .chain(self.dec2.iter())
            .chain(self.ren.iter())
            .filter(|s| s.valid)
            .count() as f64;
        Occupancy {
            rob: self.rob.len() as f64 / sizes::ROB as f64,
            scheduler: (sizes::SCHEDULER - self.sched.free_count()) as f64
                / sizes::SCHEDULER as f64,
            fetch_queue: self.fq.len() as f64 / sizes::FETCH_QUEUE as f64,
            load_queue: self.lsq.lq_count.min(sizes::LOAD_QUEUE as u64) as f64
                / sizes::LOAD_QUEUE as f64,
            store_queue: self.lsq.sq_count.min(sizes::STORE_QUEUE as u64) as f64
                / sizes::STORE_QUEUE as f64,
            mhrs: self.mhrs.occupancy() as f64 / sizes::MHRS as f64,
            frontend: frontend_slots
                / (3.0 * sizes::FETCH_WIDTH as f64 + 3.0 * sizes::DECODE_WIDTH as f64),
        }
    }

    pub(crate) fn log_flow(&mut self, ev: FlowEvent) {
        if let Some(log) = self.flow_log.as_mut() {
            log.push(ev);
        }
    }

    /// Advances one cycle.
    pub fn step(&mut self) -> CycleReport {
        let mut report = CycleReport::default();
        if !self.running() {
            return report;
        }
        self.cycles += 1;

        self.retire_phase(&mut report);
        if !self.running() {
            return report;
        }
        self.memory_deliver_phase();
        self.writeback_phase();
        self.memory_phase();
        self.execute_phase();
        self.issue_phase();
        self.rename_phase();
        self.decode_phase();
        self.fetch_phase();
        self.regfile.tick_ecc();

        if self.config.timeout_counter
            && self.watchdog.tick(report.retired > 0) == TimeoutAction::Flush
        {
            let target = self.arch_pc;
            self.full_flush(target);
            report.protective_flush = true;
        }
        report
    }

    /// Runs until halt, exception, or `max_cycles`, collecting all events.
    pub fn run(&mut self, max_cycles: u64) -> Vec<RetireEvent> {
        let mut events = Vec::new();
        for _ in 0..max_cycles {
            if !self.running() {
                break;
            }
            events.append(&mut self.step().events);
        }
        events
    }
}

impl Pipeline {
    /// Drops any flow-event instrumentation (used when cloning a logged
    /// golden checkpoint into injection trials).
    pub fn disable_flow_log(&mut self) {
        self.flow_log = None;
    }

    /// Enables (or disables) word-granular access logging in the tracked
    /// RAM-like structures (LSQ, physical register file, MHRs). Logging is
    /// instrumentation, not machine state: it never changes execution and
    /// is not part of the visit walk. The word-parallel trial engine turns
    /// it on for a private golden clone only.
    pub fn set_access_tracking(&mut self, on: bool) {
        self.lsq.log.set_enabled(on);
        self.regfile.log.set_enabled(on);
        self.mhrs.log.set_enabled(on);
    }

    /// Enables (or disables) the *extended* access-tracking tier: the core
    /// structures plus every remaining loggable structure — fetch queue,
    /// fetch-buffer and decode-pipe latches, rename maps and free lists,
    /// scheduler, ROB, and functional units (the units declaring
    /// [`tfsim_bitstate::Loggability::Extended`]). The analytic masking
    /// pruner builds its footprint from this wider tier; the sliced trial
    /// engine keeps the narrower core tier so its audited ride/heal kernel
    /// is unchanged.
    pub fn set_access_tracking_extended(&mut self, on: bool) {
        self.set_access_tracking(on);
        self.fq.log.set_enabled(on);
        self.flatch_log.set_enabled(on);
        self.spec_rat.log.set_enabled(on);
        self.arch_rat.log.set_enabled(on);
        self.spec_fl.log.set_enabled(on);
        self.arch_fl.log.set_enabled(on);
        self.sched.log.set_enabled(on);
        self.rob.log.set_enabled(on);
        self.fus.log.set_enabled(on);
    }

    /// Drains every logged access since the previous drain, in program
    /// order per structure (LSQ first, then register file, then MHRs),
    /// mapping each structure-local fixed ordinal to the *visit-order*
    /// field index inside the enclosing fingerprint unit for the active
    /// configuration. `f(unit, field_ordinal, is_write)`.
    pub fn drain_accesses(&mut self, f: &mut dyn FnMut(UnitId, u32, bool)) {
        let ptr_ecc = self.config.pointer_ecc;
        // Without pointer ECC the per-entry `dst_ecc` field is absent from
        // the visit walk: drop its events and close the gap.
        let lq_words = if ptr_ecc { lqw::WORDS } else { lqw::WORDS - 1 };
        let sq_visit_base = sizes::LOAD_QUEUE as u32 * lq_words;
        self.lsq.log.drain(&mut |ord, w| {
            if ord < SQ_BASE {
                let entry = ord / lqw::WORDS;
                let k = ord % lqw::WORDS;
                if !ptr_ecc && k == lqw::DST_ECC {
                    return;
                }
                let k = if !ptr_ecc && k > lqw::DST_ECC { k - 1 } else { k };
                f(UnitId::Lsq, entry * lq_words + k, w);
            } else {
                f(UnitId::Lsq, sq_visit_base + (ord - SQ_BASE), w);
            }
        });
        // Regfile local ordinals coincide with the unit's visit order for
        // every configuration (the ECC fields come after and are never
        // logged).
        self.regfile.log.drain(&mut |ord, w| f(UnitId::Regfile, ord, w));
        // ArchCtrl visit order: 80 spec_ready bools, then the MHR fields.
        let mhr_base = sizes::PHYS_REGS as u32;
        self.mhrs.log.drain(&mut |ord, w| f(UnitId::ArchCtrl, mhr_base + ord, w));
    }

    /// Drains every logged access of the *extended* tier (fetch queue,
    /// rename structures, scheduler, ROB, then the core structures), with
    /// the same `(unit, visit-order field ordinal, is_write)` contract as
    /// [`Pipeline::drain_accesses`]. Entry-granular logs (fetch queue,
    /// ROB) are expanded to every visit word of the touched entry.
    pub fn drain_accesses_extended(&mut self, f: &mut dyn FnMut(UnitId, u32, bool)) {
        let parity = self.config.insn_parity;
        let ptr_ecc = self.config.pointer_ecc;
        // Front: fetch-queue slots sit after the 6 scalar fetch-control
        // latches and the 3x8 fetch-buffer slots in the unit's walk.
        let sw = 8 + parity as u32;
        let fq_base = 6 + 3 * sizes::FETCH_WIDTH as u32 * sw;
        self.fq.log.drain(&mut |entry, w| {
            let base = fq_base + entry * sw;
            for k in 0..sw {
                f(UnitId::Front, base + k, w);
            }
        });
        // Front-end latches: fixed 9-word slots (the parity word drops out
        // when instruction parity is off). Fetch-buffer slots sit right
        // after the 6 fetch-control scalars; the decode/rename pipe sits
        // after the fetch queue and its 3 ring-pointer latches.
        let dec_base = fq_base + sizes::FETCH_QUEUE as u32 * sw + 3;
        self.flatch_log.drain(&mut |ord, w| {
            let (slot, k) = (ord / flw::WORDS, ord % flw::WORDS);
            if k == flw::PARITY && !parity {
                return;
            }
            let k = if k > flw::PARITY && !parity { k - 1 } else { k };
            let base =
                if slot < flw::DEC1 { 6 + slot * sw } else { dec_base + (slot - flw::DEC1) * sw };
            f(UnitId::Front, base + k, w);
        });
        // Rename: four blocks in visit order. RAT and free-list local
        // ordinals coincide with their block's internal visit order (the
        // queue-control latches at the end of each free-list block are
        // never logged).
        let rat_words: u32 = if ptr_ecc { 64 } else { 32 };
        let fl_words: u32 = if ptr_ecc { 96 + 3 } else { 48 + 3 };
        self.spec_rat.log.drain(&mut |ord, w| f(UnitId::Rename, ord, w));
        self.arch_rat.log.drain(&mut |ord, w| f(UnitId::Rename, rat_words + ord, w));
        self.spec_fl.log.drain(&mut |ord, w| f(UnitId::Rename, 2 * rat_words + ord, w));
        self.arch_fl
            .log
            .drain(&mut |ord, w| f(UnitId::Rename, 2 * rat_words + fl_words + ord, w));
        // Sched: fixed 23-word numbering; without pointer ECC the last
        // four (ECC) words are absent from the walk — drop their events
        // (they sit at the end of the entry, so no gap closes).
        let sched_vw = if ptr_ecc { schedw::WORDS } else { schedw::WORDS - 4 };
        self.sched.log.drain(&mut |ord, w| {
            let (entry, k) = (ord / schedw::WORDS, ord % schedw::WORDS);
            if k < sched_vw {
                f(UnitId::Sched, entry * sched_vw + k, w);
            }
        });
        // Rob: entry-granular, expanded to the entry's visit words.
        let rob_vw = 16 + parity as u32 + if ptr_ecc { 2 } else { 0 };
        self.rob.log.drain(&mut |entry, w| {
            let base = entry * rob_vw;
            for k in 0..rob_vw {
                f(UnitId::Rob, base + k, w);
            }
        });
        // Functional units: fixed 28-word slots; the four pointer-ECC
        // words at the end drop out when the protection is off.
        let fu_vw = if ptr_ecc { fuw::WORDS } else { fuw::WORDS - 4 };
        self.fus.log.drain(&mut |ord, w| {
            let (slot, k) = (ord / fuw::WORDS, ord % fuw::WORDS);
            if k < fu_vw {
                f(UnitId::Fus, slot * fu_vw + k, w);
            }
        });
        self.drain_accesses(f);
    }

    /// Whether a `(unit, visit-order field ordinal)` pair lies inside the
    /// range covered by the access log (the word set `drain_accesses` can
    /// report). Faults in untracked words cannot be reasoned about from a
    /// golden access footprint and must take a scalar trial path.
    pub fn access_tracked(&self, unit: UnitId, ord: u32) -> bool {
        let lq_words =
            if self.config.pointer_ecc { lqw::WORDS } else { lqw::WORDS - 1 };
        match unit {
            UnitId::Lsq => {
                ord < sizes::LOAD_QUEUE as u32 * lq_words
                    + sizes::STORE_QUEUE as u32 * sqw::WORDS
            }
            UnitId::Regfile => ord < 3 * sizes::PHYS_REGS as u32,
            UnitId::ArchCtrl => {
                let mhr_base = sizes::PHYS_REGS as u32;
                (mhr_base..mhr_base + sizes::MHRS as u32 * 3).contains(&ord)
            }
            _ => false,
        }
    }

    /// Like [`Pipeline::access_tracked`], but for the word set
    /// [`Pipeline::drain_accesses_extended`] covers. Queue-control
    /// latches (the fetch queue's ring pointers) and the fetch-control
    /// scalars remain untracked in every tier.
    pub fn access_tracked_extended(&self, unit: UnitId, ord: u32) -> bool {
        let parity = self.config.insn_parity;
        let ptr_ecc = self.config.pointer_ecc;
        match unit {
            UnitId::Front => {
                let sw = 8 + parity as u32;
                let fq_end = 6 + (3 * sizes::FETCH_WIDTH + sizes::FETCH_QUEUE) as u32 * sw;
                let dec_base = fq_end + 3;
                let dec_end = dec_base + 3 * sizes::DECODE_WIDTH as u32 * sw;
                (6..fq_end).contains(&ord) || (dec_base..dec_end).contains(&ord)
            }
            UnitId::Fus => {
                let vw = if ptr_ecc { fuw::WORDS } else { fuw::WORDS - 4 };
                ord < FuBank::SLOTS as u32 * vw
            }
            UnitId::Rename => {
                let rat_words: u32 = if ptr_ecc { 64 } else { 32 };
                let fl_slots: u32 = if ptr_ecc { 96 } else { 48 };
                let fl_words = fl_slots + 3;
                if ord < 2 * rat_words {
                    true
                } else {
                    let off = (ord - 2 * rat_words) % fl_words;
                    ord < 2 * rat_words + 2 * fl_words && off < fl_slots
                }
            }
            UnitId::Sched => {
                let vw = if ptr_ecc { schedw::WORDS } else { schedw::WORDS - 4 };
                ord < sizes::SCHEDULER as u32 * vw
            }
            UnitId::Rob => {
                let vw = 16 + parity as u32 + if ptr_ecc { 2 } else { 0 };
                ord < sizes::ROB as u32 * vw
            }
            _ => self.access_tracked(unit, ord),
        }
    }

    /// Checks the rename-state partition invariant for an *idle* machine
    /// (empty ROB): every physical register appears exactly once across
    /// the architectural RAT image and the architectural free list, and
    /// the speculative copies agree with the architectural ones.
    ///
    /// Holds for every fault-free execution; fault injection may break it
    /// (that is the point of the experiments), so this is a test and
    /// debugging aid, not a runtime assertion.
    pub fn rename_state_consistent(&mut self) -> bool {
        if !self.rob.is_empty() {
            return true; // only meaningful when idle
        }
        let mut seen = [0u32; sizes::PHYS_REGS];
        for areg in 0..sizes::ARCH_REGS as u64 {
            let spec = self.spec_rat.read(areg);
            let arch = self.arch_rat.read(areg);
            if spec != arch {
                return false;
            }
            match seen.get_mut(arch as usize) {
                Some(slot) => *slot += 1,
                None => return false,
            }
        }
        // Drain a clone of the arch free list.
        let mut fl = self.arch_fl.clone();
        if fl.len() != sizes::FREELIST as u64 {
            return false;
        }
        while let Some(p) = fl.pop() {
            match seen.get_mut(p as usize) {
                Some(slot) => *slot += 1,
                None => return false,
            }
        }
        seen.iter().all(|&c| c == 1)
    }

    /// Enumerates violated structural invariants: ring-pointer/occupancy
    /// consistency for every circular queue and pointer-range checks for
    /// ROB and scheduler entries. Returns one description per violation
    /// (empty means the machine state is structurally sound).
    ///
    /// Every invariant here holds across fault-free execution; fault
    /// injection legitimately breaks them (that is the experiment), and the
    /// model gives each violation a defined behaviour rather than a panic —
    /// so, like [`Pipeline::rename_state_consistent`], this is a test and
    /// debugging aid that lets tests enumerate which corruptions a trial
    /// reached, not a runtime assertion.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut ring = |name: &str, head: u64, tail: u64, count: u64, cap: u64| {
            if head >= cap {
                out.push(format!("{name}: head {head} out of range (cap {cap})"));
            }
            if tail >= cap {
                out.push(format!("{name}: tail {tail} out of range (cap {cap})"));
            }
            if count > cap {
                out.push(format!("{name}: count {count} exceeds capacity {cap}"));
            } else if count < cap && head < cap && tail < cap {
                let implied = (tail + cap - head) % cap;
                if count != implied {
                    out.push(format!(
                        "{name}: count {count} disagrees with head/tail distance {implied}"
                    ));
                }
            } else if count == cap && head < cap && tail < cap && head != tail {
                out.push(format!("{name}: full queue with head {head} != tail {tail}"));
            }
        };
        ring("fetch-queue", self.fq.head, self.fq.tail, self.fq.count, sizes::FETCH_QUEUE as u64);
        ring("rob", self.rob.head, self.rob.tail, self.rob.count, sizes::ROB as u64);
        ring(
            "load-queue",
            self.lsq.lq_head,
            self.lsq.lq_tail,
            self.lsq.lq_count,
            sizes::LOAD_QUEUE as u64,
        );
        ring(
            "store-queue",
            self.lsq.sq_head,
            self.lsq.sq_tail,
            self.lsq.sq_count,
            sizes::STORE_QUEUE as u64,
        );
        let (h, t, c) = self.spec_fl.ring();
        ring("spec-freelist", h, t, c, sizes::FREELIST as u64);
        let (h, t, c) = self.arch_fl.ring();
        ring("arch-freelist", h, t, c, sizes::FREELIST as u64);

        let pregs = sizes::PHYS_REGS as u64;
        for i in 0..sizes::ROB as u64 {
            let e = self.rob.peek(i);
            if e.has_dst {
                if e.dst_preg >= pregs {
                    out.push(format!("rob[{i}]: dst preg {} out of range", e.dst_preg));
                }
                if e.old_preg >= pregs {
                    out.push(format!("rob[{i}]: old preg {} out of range", e.old_preg));
                }
            }
        }
        for i in 0..sizes::SCHEDULER {
            let e = self.sched.peek(i);
            if !e.valid {
                continue;
            }
            if e.rob >= sizes::ROB as u64 {
                out.push(format!("sched[{i}]: rob tag {} out of range", e.rob));
            }
            if e.has_dst && e.dst_preg >= pregs {
                out.push(format!("sched[{i}]: dst preg {} out of range", e.dst_preg));
            }
            for (s, &p) in e.srcs.iter().enumerate() {
                if e.src_needed[s] && p >= pregs {
                    out.push(format!("sched[{i}]: src{s} preg {p} out of range"));
                }
            }
        }
        out
    }
}
