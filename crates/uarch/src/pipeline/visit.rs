//! The full-machine state walk: every latch bit and RAM cell of the
//! pipeline, in a fixed deterministic order, categorized per Table 1.
//!
//! The walk is bracketed into [`UnitId`] fingerprint units so cached
//! fingerprint engines can skip unchanged subtrees, and so injection
//! telemetry can attribute a flipped bit to the pipeline unit owning it
//! (`FlipBit` notes the innermost open bracket when its target bit goes
//! by). The brackets never affect bit numbering: census and injection
//! visitors see the identical field order whether or not they observe
//! `enter_unit`, so a trial's target index means the same thing with
//! tracing on or off. Latch-dense units that
//! plausibly change every cycle (`Front` … `ArchCtrl`) are stamped with the
//! cycle counter — safe because all pipeline mutation happens inside
//! `step()`, which advances it. The big shadow arrays (predictors, cache
//! tags) are stamped with per-structure generation counters that only
//! advance on a real content change; in steady state those units are clean
//! for long stretches and dominate the fingerprint savings.

use tfsim_bitstate::{
    visit_bool, visit_pc, Category, FieldMeta, StateVisitor, StorageKind, UnitId, VisitState,
};

use super::Pipeline;

impl VisitState for Pipeline {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        let latch = StorageKind::Latch;
        let ctrl = FieldMeta::new(Category::Ctrl, latch);
        let parity_on = self.config.insn_parity;
        let ptr_ecc = self.config.pointer_ecc;
        let cyc = self.cycles;

        if v.enter_unit(UnitId::Front, cyc) {
            // Fetch control.
            visit_pc(v, latch, &mut self.fetch_pc);
            visit_bool(v, FieldMeta::new(Category::Valid, latch), &mut self.redirect_valid);
            visit_pc(v, latch, &mut self.redirect_pc);
            visit_bool(v, FieldMeta::new(Category::Valid, latch), &mut self.ifill_valid);
            {
                // The fill address is line-aligned: 58 meaningful bits.
                let mut line = self.ifill_addr >> 6;
                v.field(FieldMeta::new(Category::Addr, latch), 58, &mut line);
                self.ifill_addr = line << 6;
            }
            v.field(ctrl, 4, &mut self.ifill_timer);

            // Fetch buffers (3 stages x 8 slots of pipeline latches).
            for stage in self.fstages.iter_mut() {
                for slot in stage.iter_mut() {
                    slot.visit(v, latch, parity_on);
                }
            }
            self.fq.visit(v, parity_on);

            // Decode/rename pipe latches.
            for slot in self.dec1.iter_mut() {
                slot.visit(v, latch, parity_on);
            }
            for slot in self.dec2.iter_mut() {
                slot.visit(v, latch, parity_on);
            }
            for slot in self.ren.iter_mut() {
                slot.visit(v, latch, parity_on);
            }
            v.exit_unit(UnitId::Front);
        }

        if v.enter_unit(UnitId::Rename, cyc) {
            self.spec_rat.visit(v);
            self.arch_rat.visit(v);
            self.spec_fl.visit(v);
            self.arch_fl.visit(v);
            v.exit_unit(UnitId::Rename);
        }

        if v.enter_unit(UnitId::Sched, cyc) {
            self.sched.visit(v, ptr_ecc);
            v.exit_unit(UnitId::Sched);
        }
        if v.enter_unit(UnitId::Rob, cyc) {
            self.rob.visit(v, parity_on, ptr_ecc);
            v.exit_unit(UnitId::Rob);
        }
        if v.enter_unit(UnitId::Lsq, cyc) {
            self.lsq.visit(v, ptr_ecc);
            v.exit_unit(UnitId::Lsq);
        }
        if v.enter_unit(UnitId::Fus, cyc) {
            self.fus.visit(v, ptr_ecc);
            v.exit_unit(UnitId::Fus);
        }

        if v.enter_unit(UnitId::Regfile, cyc) {
            self.regfile.visit(v);
            v.exit_unit(UnitId::Regfile);
        }

        // Each unit may appear at most once per walk, and the regfile sits
        // between the out-of-order-window units and these fields in the
        // (frozen) field order, so the speculative-ready bits and MHRs ride
        // in the ArchCtrl bracket.
        if v.enter_unit(UnitId::ArchCtrl, cyc) {
            for b in self.spec_ready.iter_mut() {
                visit_bool(v, ctrl, b);
            }
            self.mhrs.visit_state(v);

            // Architectural bookkeeping latches.
            visit_pc(v, latch, &mut self.arch_pc);
            if self.config.timeout_counter {
                v.field(ctrl, 10, &mut self.watchdog.count);
            }
            v.exit_unit(UnitId::ArchCtrl);
        }

        // Shadow state: prediction and cache tag arrays (fingerprinted for
        // the µArch Match comparison, excluded from injection), each with
        // its own content-change generation stamp.
        if v.enter_unit(UnitId::Bpred, self.bpred.state_gen()) {
            self.bpred.visit_state(v);
            v.exit_unit(UnitId::Bpred);
        }
        if v.enter_unit(UnitId::Btb, self.btb.state_gen()) {
            self.btb.visit_state(v);
            v.exit_unit(UnitId::Btb);
        }
        if v.enter_unit(UnitId::Ras, self.ras.state_gen()) {
            self.ras.visit_state(v);
            v.exit_unit(UnitId::Ras);
        }
        if v.enter_unit(UnitId::Icache, self.icache.state_gen()) {
            self.icache.visit_state(v);
            v.exit_unit(UnitId::Icache);
        }
        if v.enter_unit(UnitId::Dcache, self.dcache.state_gen()) {
            self.dcache.visit_state(v);
            v.exit_unit(UnitId::Dcache);
        }
        if v.enter_unit(UnitId::StoreSets, self.storesets.state_gen()) {
            self.storesets.visit_state(v);
            v.exit_unit(UnitId::StoreSets);
        }
    }
}
