//! The full-machine state walk: every latch bit and RAM cell of the
//! pipeline, in a fixed deterministic order, categorized per Table 1.

use tfsim_bitstate::{
    visit_bool, visit_pc, Category, FieldMeta, StateVisitor, StorageKind, VisitState,
};

use super::Pipeline;

impl VisitState for Pipeline {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        let latch = StorageKind::Latch;
        let ctrl = FieldMeta::new(Category::Ctrl, latch);
        let parity_on = self.config.insn_parity;
        let ptr_ecc = self.config.pointer_ecc;

        // Fetch control.
        visit_pc(v, latch, &mut self.fetch_pc);
        visit_bool(v, FieldMeta::new(Category::Valid, latch), &mut self.redirect_valid);
        visit_pc(v, latch, &mut self.redirect_pc);
        visit_bool(v, FieldMeta::new(Category::Valid, latch), &mut self.ifill_valid);
        {
            // The fill address is line-aligned: 58 meaningful bits.
            let mut line = self.ifill_addr >> 6;
            v.field(FieldMeta::new(Category::Addr, latch), 58, &mut line);
            self.ifill_addr = line << 6;
        }
        v.field(ctrl, 4, &mut self.ifill_timer);

        // Fetch buffers (3 stages x 8 slots of pipeline latches).
        for stage in self.fstages.iter_mut() {
            for slot in stage.iter_mut() {
                slot.visit(v, latch, parity_on);
            }
        }
        self.fq.visit(v, parity_on);

        // Decode/rename pipe latches.
        for slot in self.dec1.iter_mut() {
            slot.visit(v, latch, parity_on);
        }
        for slot in self.dec2.iter_mut() {
            slot.visit(v, latch, parity_on);
        }
        for slot in self.ren.iter_mut() {
            slot.visit(v, latch, parity_on);
        }

        // Rename state.
        self.spec_rat.visit(v);
        self.arch_rat.visit(v);
        self.spec_fl.visit(v);
        self.arch_fl.visit(v);

        // Window.
        self.sched.visit(v, ptr_ecc);
        self.rob.visit(v, parity_on, ptr_ecc);
        self.lsq.visit(v, ptr_ecc);
        self.fus.visit(v, ptr_ecc);
        self.regfile.visit(v);
        for b in self.spec_ready.iter_mut() {
            visit_bool(v, ctrl, b);
        }
        self.mhrs.visit_state(v);

        // Architectural bookkeeping latches.
        visit_pc(v, latch, &mut self.arch_pc);
        if self.config.timeout_counter {
            v.field(ctrl, 10, &mut self.watchdog.count);
        }

        // Shadow state: prediction and cache tag arrays (fingerprinted for
        // the µArch Match comparison, excluded from injection).
        self.bpred.visit_state(v);
        self.btb.visit_state(v);
        self.ras.visit_state(v);
        self.icache.visit_state(v);
        self.dcache.visit_state(v);
        self.storesets.visit_state(v);
    }
}
