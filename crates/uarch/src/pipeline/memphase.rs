//! The memory phase: senior-store drain, MHR fills, instruction-cache
//! fills, address generation, store-to-load forwarding, bank-arbitrated
//! data-cache access, memory-order violation detection, and load data
//! delivery.

use tfsim_isa::{alu, decode};
use tfsim_mem::is_aligned;

use crate::config::sizes;
use crate::exec::{FuClass, FuOp};
use crate::queues::{range_contains, ranges_overlap, ExcCode, LoadState};

use super::Pipeline;

impl Pipeline {
    /// Load data delivery. Runs *before* writeback each cycle so a
    /// consumer completing this cycle sees the data (bypass); hit/miss is
    /// determined here, at the end of the cache-access shadow, which is
    /// what gives speculatively woken consumers something to replay on.
    pub(crate) fn memory_deliver_phase(&mut self) {
        for i in 0..sizes::LOAD_QUEUE {
            let e = &mut self.lsq.lq[i];
            if !(e.valid && e.inflight) {
                continue;
            }
            if e.data_timer > 1 {
                e.data_timer -= 1;
                continue;
            }
            e.inflight = false;
            e.data_timer = 0;
            if e.forwarded {
                self.deliver_load(i);
                continue;
            }
            // End of the access shadow: resolve hit or miss now.
            let (addr, dst) = (e.addr, e.dst_preg);
            if self.mhrs.pending(addr) {
                let e = &mut self.lsq.lq[i];
                e.fill_wait = true;
                if let Some(b) = self.spec_ready.get_mut(dst as usize) {
                    *b = false;
                }
            } else if self.dcache.access(addr) {
                self.deliver_load(i);
            } else {
                self.stats.dcache_misses += 1;
                if self.mhrs.allocate(addr) {
                    let e = &mut self.lsq.lq[i];
                    e.fill_wait = true;
                    // The hit speculation failed: consumers must replay.
                    if let Some(b) = self.spec_ready.get_mut(dst as usize) {
                        *b = false;
                    }
                }
            }
            // MHRs exhausted: the entry returns to Access state and the
            // retry pass re-initiates the probe next cycle.
        }
    }

    pub(crate) fn memory_phase(&mut self) {
        self.drain_senior_store();

        // Completed line fills install tags and release waiting loads.
        for line in self.mhrs.tick() {
            self.dcache.fill(line);
            for i in 0..sizes::LOAD_QUEUE {
                let e = &mut self.lsq.lq[i];
                if e.valid
                    && e.fill_wait
                    && (e.addr & !(sizes::LINE_BYTES - 1)) == line
                {
                    e.fill_wait = false;
                    e.inflight = true;
                    e.data_timer = 1;
                }
            }
        }

        // Instruction-cache fill in progress.
        if self.ifill_valid {
            if self.ifill_timer <= 1 {
                let addr = self.ifill_addr;
                self.icache.fill(addr);
                self.ifill_valid = false;
                self.ifill_addr = 0;
                self.ifill_timer = 0;
            } else {
                self.ifill_timer -= 1;
            }
        }

        // Address generation, oldest first.
        for r in self.completing_ops(&[3]) {
            if !self.fu(r).valid {
                continue; // squashed by a violation handled this phase
            }
            if self.replay_if_stale(r) {
                continue;
            }
            let op = std::mem::take(self.fu(r));
            match FuClass::from_bits(op.class) {
                FuClass::Store => self.agu_store(op),
                _ => self.agu_load(op),
            }
            if !self.running() {
                return;
            }
        }

        // Per-cycle cache port budget: dual-ported via 8 banks.
        let mut bank_used = [false; sizes::DCACHE_BANKS as usize];
        let mut ports = 2u32;

        // Loads with known addresses retry until they get data.
        for i in 0..sizes::LOAD_QUEUE {
            let e = &self.lsq.lq[i];
            if e.valid && e.state == LoadState::Access && !e.inflight && !e.fill_wait {
                self.try_load_access(i, &mut bank_used, &mut ports);
            }
        }

    }

    /// Writes the oldest senior store through to memory (one per cycle).
    fn drain_senior_store(&mut self) {
        if self.lsq.sq_count.min(sizes::STORE_QUEUE as u64) == 0 {
            return;
        }
        let head = (self.lsq.sq_head % sizes::STORE_QUEUE as u64) as usize;
        let e = &self.lsq.sq[head];
        if !e.valid || !e.senior {
            return;
        }
        let (addr, data, size) = (e.addr, e.data, e.size());
        self.mem.write_sized(addr, data, size);
        // Write-through: cache data always equals memory, so only the tag
        // state could change — stores do not allocate.
        self.lsq.sq[head] = Default::default();
        self.lsq.sq_head = (self.lsq.sq_head + 1) % sizes::STORE_QUEUE as u64;
        self.lsq.sq_count = (self.lsq.sq_count - 1) & 0x1f;
    }

    /// Address generation for a load.
    fn agu_load(&mut self, op: FuOp) {
        let insn = decode(op.raw as u32);
        let addr = op.a.wrapping_add(insn.imm as u64);
        let li = (op.lsq as usize) % sizes::LOAD_QUEUE;
        let size = self.lsq.lq[li].size();

        if !is_aligned(addr, size) {
            self.finish_load_with_exception(li, op, ExcCode::Alignment);
            return;
        }
        if !self.dtlb.covers(addr, size) {
            self.finish_load_with_exception(li, op, ExcCode::Dtlb);
            return;
        }
        {
            let e = &mut self.lsq.lq[li];
            e.addr = addr;
            e.state = LoadState::Access;
            e.sched = op.sched;
        }
        // Speculative wakeup: from here consumers may issue assuming a
        // hit; the delivery phase replays them if the access misses.
        if op.has_dst {
            if let Some(b) = self.spec_ready.get_mut(op.dst_preg as usize) {
                *b = true;
            }
        }
        let mut bank_used = [false; sizes::DCACHE_BANKS as usize];
        let mut ports = 1u32;
        self.try_load_access(li, &mut bank_used, &mut ports);
    }

    fn finish_load_with_exception(&mut self, li: usize, op: FuOp, exc: ExcCode) {
        let e = &mut self.lsq.lq[li];
        e.state = LoadState::Done;
        let rob = self.rob.entry_mut(op.rob);
        rob.exc = exc as u64;
        rob.completed = true;
        if op.has_dst {
            // The destination never produces; end the wakeup window so
            // consumers wait (they can only retire after the exception
            // flushes anyway).
            if let Some(b) = self.spec_ready.get_mut(op.dst_preg as usize) {
                *b = false;
            }
        }
        self.free_sched(op.sched, op.rob);
    }

    /// Address generation for a store: capture address and data, complete
    /// the store, and check younger loads for memory-order violations.
    fn agu_store(&mut self, op: FuOp) {
        let insn = decode(op.raw as u32);
        let addr = op.b.wrapping_add(insn.imm as u64);
        let si = (op.lsq as usize) % sizes::STORE_QUEUE;
        let size = self.lsq.sq[si].size();

        if !is_aligned(addr, size) || !self.dtlb.covers(addr, size) {
            let exc = if !is_aligned(addr, size) { ExcCode::Alignment } else { ExcCode::Dtlb };
            let rob = self.rob.entry_mut(op.rob);
            rob.exc = exc as u64;
            rob.completed = true;
            self.free_sched(op.sched, op.rob);
            return;
        }

        {
            let e = &mut self.lsq.sq[si];
            e.addr = addr;
            e.addr_valid = true;
            e.data = op.a;
            e.data_valid = true;
        }
        self.rob.entry_mut(op.rob).completed = true;
        self.free_sched(op.sched, op.rob);
        self.storesets.store_resolved(si as u64);

        // Memory-order violation: a younger load already obtained data
        // overlapping this store's range from somewhere else.
        let store_rob = op.rob;
        let store_pc = op.pc;
        let mut victim: Option<(u64, u64, u64)> = None; // (rob, load pc, age)
        for e in self.lsq.lq.iter() {
            if !e.valid || e.state == LoadState::WaitAddr {
                continue;
            }
            let got_data = e.state == LoadState::Done || e.inflight;
            if !got_data {
                continue;
            }
            if !self.rob.younger(e.rob, store_rob) {
                continue;
            }
            if !ranges_overlap(e.addr, e.size(), addr, size) {
                continue;
            }
            if e.forwarded && e.fwd_sq == si as u64 {
                continue; // it already got THIS store's data
            }
            let age = self.rob.age(e.rob);
            if victim.is_none_or(|(_, _, a)| age < a) {
                victim = Some((e.rob, e.pc, age));
            }
        }
        if let Some((rob, load_pc, _)) = victim {
            self.stats.violations += 1;
            self.storesets.violation(load_pc, store_pc);
            self.squash_after(rob, true);
            // squash_after(inclusive) redirects to the load's PC itself.
        }
    }

    /// One attempt to obtain data for the load in LQ slot `li`:
    /// store-to-load forwarding, then a bank-arbitrated cache access.
    fn try_load_access(&mut self, li: usize, bank_used: &mut [bool], ports: &mut u32) {
        let (addr, size, load_rob, dst) = {
            let e = &self.lsq.lq[li];
            (e.addr, e.size(), e.rob, e.dst_preg)
        };

        // Scan the store queue youngest-to-oldest (ring order equals
        // program order) for the nearest older store overlapping us.
        let cap = sizes::STORE_QUEUE as u64;
        let count = self.lsq.sq_count.min(cap);
        let mut hit_store: Option<usize> = None;
        for k in 0..count {
            let idx = ((self.lsq.sq_tail + cap - 1 - k) % cap) as usize;
            let s = &self.lsq.sq[idx];
            if !s.valid || !s.addr_valid {
                continue;
            }
            let older = s.senior || self.rob.younger(load_rob, s.rob);
            if !older {
                continue;
            }
            if ranges_overlap(s.addr, s.size(), addr, size) {
                hit_store = Some(idx);
                break;
            }
        }

        if let Some(si) = hit_store {
            let s = &self.lsq.sq[si];
            if s.data_valid && range_contains(s.addr, s.size(), addr, size) {
                // Forward: extract the loaded bytes from the store data.
                let shift = (addr - s.addr) * 8;
                let mask = if size >= 8 { u64::MAX } else { (1u64 << (size * 8)) - 1 };
                let value = (s.data >> shift) & mask;
                let e = &mut self.lsq.lq[li];
                e.forwarded = true;
                e.fwd_sq = si as u64;
                e.fwd_value = value;
                e.inflight = true;
                e.data_timer = 1;
            }
            // Partial overlap or data not ready: retry next cycle (the
            // store will drain or complete).
            return;
        }

        // No forwarding: start a cache access, subject to bank and port
        // arbitration. Hit/miss resolves at the end of the shadow (in the
        // delivery phase), which is what makes the speculative wakeup of
        // consumers genuinely speculative.
        if self.mhrs.pending(addr) {
            let e = &mut self.lsq.lq[li];
            e.fill_wait = true;
            if let Some(b) = self.spec_ready.get_mut(dst as usize) {
                *b = false;
            }
            return;
        }
        let bank = ((addr / 8) % sizes::DCACHE_BANKS) as usize;
        if *ports == 0 || bank_used[bank] {
            return; // structural conflict: retry next cycle
        }
        *ports -= 1;
        bank_used[bank] = true;

        self.stats.dcache_accesses += 1;
        let e = &mut self.lsq.lq[li];
        e.inflight = true;
        e.data_timer = sizes::DCACHE_LATENCY as u64;
    }

    /// Load data arrives: extend, write back, wake consumers, complete.
    fn deliver_load(&mut self, li: usize) {
        let (addr, size, forwarded, fwd_value, raw, rob, dst, sched) = {
            let e = &self.lsq.lq[li];
            let dst = self.ptr_repair(e.dst_preg, e.dst_ecc);
            (e.addr, e.size(), e.forwarded, e.fwd_value, e.raw, e.rob, dst, e.sched)
        };
        let raw_val = if forwarded { fwd_value } else { self.mem.read_sized(addr, size) };
        let insn = decode(raw as u32);
        let value = if insn.is_load() { alu::extend_load(insn.mnemonic, raw_val) } else { raw_val };
        self.write_preg(dst, value);
        self.rob.entry_mut(rob).completed = true;
        self.lsq.lq[li].state = LoadState::Done;
        self.free_sched(sched, rob);
    }
}
