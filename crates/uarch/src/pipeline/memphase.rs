//! The memory phase: senior-store drain, MHR fills, instruction-cache
//! fills, address generation, store-to-load forwarding, bank-arbitrated
//! data-cache access, memory-order violation detection, and load data
//! delivery.
//!
//! LSQ state is consumed exclusively through the logged accessors so the
//! word-parallel trial engine can see exactly which queue words each cycle
//! touched. Boolean short-circuits are kept bitwise-identical to the
//! pre-accessor code so the *set* of logged reads is the set of words the
//! cycle's outcome actually depended on.

use tfsim_isa::{alu, decode};
use tfsim_mem::is_aligned;

use crate::config::sizes;
use crate::exec::{FuBank, FuClass, FuOp};
use crate::queues::{range_contains, ranges_overlap, ExcCode, LoadState};

use super::Pipeline;

impl Pipeline {
    /// Load data delivery. Runs *before* writeback each cycle so a
    /// consumer completing this cycle sees the data (bypass); hit/miss is
    /// determined here, at the end of the cache-access shadow, which is
    /// what gives speculatively woken consumers something to replay on.
    pub(crate) fn memory_deliver_phase(&mut self) {
        for i in 0..sizes::LOAD_QUEUE {
            if !(self.lsq.lq_valid(i) && self.lsq.lq_inflight(i)) {
                continue;
            }
            let timer = self.lsq.lq_data_timer(i);
            if timer > 1 {
                self.lsq.set_lq_data_timer(i, timer - 1);
                continue;
            }
            self.lsq.set_lq_inflight(i, false);
            self.lsq.set_lq_data_timer(i, 0);
            if self.lsq.lq_forwarded(i) {
                self.deliver_load(i);
                continue;
            }
            // End of the access shadow: resolve hit or miss now.
            let addr = self.lsq.lq_addr(i);
            let dst = self.lsq.lq_dst_preg(i);
            if self.mhrs.pending(addr) {
                self.lsq.set_lq_fill_wait(i, true);
                if let Some(b) = self.spec_ready.get_mut(dst as usize) {
                    *b = false;
                }
            } else if self.dcache.access(addr) {
                self.deliver_load(i);
            } else {
                self.stats.dcache_misses += 1;
                if self.mhrs.allocate(addr) {
                    self.lsq.set_lq_fill_wait(i, true);
                    // The hit speculation failed: consumers must replay.
                    if let Some(b) = self.spec_ready.get_mut(dst as usize) {
                        *b = false;
                    }
                }
            }
            // MHRs exhausted: the entry returns to Access state and the
            // retry pass re-initiates the probe next cycle.
        }
    }

    pub(crate) fn memory_phase(&mut self) {
        self.drain_senior_store();

        // Completed line fills install tags and release waiting loads.
        for line in self.mhrs.tick() {
            self.dcache.fill(line);
            for i in 0..sizes::LOAD_QUEUE {
                if self.lsq.lq_valid(i)
                    && self.lsq.lq_fill_wait(i)
                    && (self.lsq.lq_addr(i) & !(sizes::LINE_BYTES - 1)) == line
                {
                    self.lsq.set_lq_fill_wait(i, false);
                    self.lsq.set_lq_inflight(i, true);
                    self.lsq.set_lq_data_timer(i, 1);
                }
            }
        }

        // Instruction-cache fill in progress.
        if self.ifill_valid {
            if self.ifill_timer <= 1 {
                let addr = self.ifill_addr;
                self.icache.fill(addr);
                self.ifill_valid = false;
                self.ifill_addr = 0;
                self.ifill_timer = 0;
            } else {
                self.ifill_timer -= 1;
            }
        }

        // Address generation, oldest first.
        for r in self.completing_ops(&[3]) {
            let slot = FuBank::flat(r.0, r.1);
            if !self.fus.valid(slot) {
                continue; // squashed by a violation handled this phase
            }
            if self.replay_if_stale(r) {
                continue;
            }
            let op = self.fus.take_op(slot);
            match FuClass::from_bits(op.class) {
                FuClass::Store => self.agu_store(op),
                _ => self.agu_load(op),
            }
            if !self.running() {
                return;
            }
        }

        // Per-cycle cache port budget: dual-ported via 8 banks.
        let mut bank_used = [false; sizes::DCACHE_BANKS as usize];
        let mut ports = 2u32;

        // Loads with known addresses retry until they get data.
        for i in 0..sizes::LOAD_QUEUE {
            if self.lsq.lq_valid(i)
                && self.lsq.lq_state(i) == LoadState::Access
                && !self.lsq.lq_inflight(i)
                && !self.lsq.lq_fill_wait(i)
            {
                self.try_load_access(i, &mut bank_used, &mut ports);
            }
        }
    }

    /// Writes the oldest senior store through to memory (one per cycle).
    fn drain_senior_store(&mut self) {
        if self.lsq.sq_count.min(sizes::STORE_QUEUE as u64) == 0 {
            return;
        }
        let head = (self.lsq.sq_head % sizes::STORE_QUEUE as u64) as usize;
        if !self.lsq.sq_valid(head) || !self.lsq.sq_senior(head) {
            return;
        }
        let addr = self.lsq.sq_addr(head);
        let data = self.lsq.sq_data(head);
        let size = self.lsq.sq_size(head);
        self.mem.write_sized(addr, data, size);
        // Write-through: cache data always equals memory, so only the tag
        // state could change — stores do not allocate.
        self.lsq.clear_sq(head);
        self.lsq.sq_head = (self.lsq.sq_head + 1) % sizes::STORE_QUEUE as u64;
        self.lsq.sq_count = (self.lsq.sq_count - 1) & 0x1f;
    }

    /// Address generation for a load.
    fn agu_load(&mut self, op: FuOp) {
        let insn = decode(op.raw as u32);
        let addr = op.a.wrapping_add(insn.imm as u64);
        let li = (op.lsq as usize) % sizes::LOAD_QUEUE;
        let size = self.lsq.lq_size(li);

        if !is_aligned(addr, size) {
            self.finish_load_with_exception(li, op, ExcCode::Alignment);
            return;
        }
        if !self.dtlb.covers(addr, size) {
            self.finish_load_with_exception(li, op, ExcCode::Dtlb);
            return;
        }
        self.lsq.set_lq_addr(li, addr);
        self.lsq.set_lq_state(li, LoadState::Access);
        self.lsq.set_lq_sched(li, op.sched);
        // Speculative wakeup: from here consumers may issue assuming a
        // hit; the delivery phase replays them if the access misses.
        if op.has_dst {
            if let Some(b) = self.spec_ready.get_mut(op.dst_preg as usize) {
                *b = true;
            }
        }
        let mut bank_used = [false; sizes::DCACHE_BANKS as usize];
        let mut ports = 1u32;
        self.try_load_access(li, &mut bank_used, &mut ports);
    }

    fn finish_load_with_exception(&mut self, li: usize, op: FuOp, exc: ExcCode) {
        self.lsq.set_lq_state(li, LoadState::Done);
        let rob = self.rob.entry_mut(op.rob);
        rob.exc = exc as u64;
        rob.completed = true;
        if op.has_dst {
            // The destination never produces; end the wakeup window so
            // consumers wait (they can only retire after the exception
            // flushes anyway).
            if let Some(b) = self.spec_ready.get_mut(op.dst_preg as usize) {
                *b = false;
            }
        }
        self.free_sched(op.sched, op.rob);
    }

    /// Address generation for a store: capture address and data, complete
    /// the store, and check younger loads for memory-order violations.
    fn agu_store(&mut self, op: FuOp) {
        let insn = decode(op.raw as u32);
        let addr = op.b.wrapping_add(insn.imm as u64);
        let si = (op.lsq as usize) % sizes::STORE_QUEUE;
        let size = self.lsq.sq_size(si);

        if !is_aligned(addr, size) || !self.dtlb.covers(addr, size) {
            let exc = if !is_aligned(addr, size) { ExcCode::Alignment } else { ExcCode::Dtlb };
            let rob = self.rob.entry_mut(op.rob);
            rob.exc = exc as u64;
            rob.completed = true;
            self.free_sched(op.sched, op.rob);
            return;
        }

        self.lsq.set_sq_addr(si, addr);
        self.lsq.set_sq_addr_valid(si, true);
        self.lsq.set_sq_data(si, op.a);
        self.lsq.set_sq_data_valid(si, true);
        self.rob.entry_mut(op.rob).completed = true;
        self.free_sched(op.sched, op.rob);
        self.storesets.store_resolved(si as u64);

        // Memory-order violation: a younger load already obtained data
        // overlapping this store's range from somewhere else.
        let store_rob = op.rob;
        let store_pc = op.pc;
        let mut victim: Option<(u64, u64, u64)> = None; // (rob, load pc, age)
        for li in 0..sizes::LOAD_QUEUE {
            if !self.lsq.lq_valid(li) {
                continue;
            }
            let state = self.lsq.lq_state(li);
            if state == LoadState::WaitAddr {
                continue;
            }
            let got_data = state == LoadState::Done || self.lsq.lq_inflight(li);
            if !got_data {
                continue;
            }
            let load_rob = self.lsq.lq_rob(li);
            if !self.rob.younger(load_rob, store_rob) {
                continue;
            }
            let load_addr = self.lsq.lq_addr(li);
            let load_size = self.lsq.lq_size(li);
            if !ranges_overlap(load_addr, load_size, addr, size) {
                continue;
            }
            if self.lsq.lq_forwarded(li) && self.lsq.lq_fwd_sq(li) == si as u64 {
                continue; // it already got THIS store's data
            }
            let age = self.rob.age(load_rob);
            if victim.is_none_or(|(_, _, a)| age < a) {
                victim = Some((load_rob, self.lsq.lq_pc(li), age));
            }
        }
        if let Some((rob, load_pc, _)) = victim {
            self.stats.violations += 1;
            self.storesets.violation(load_pc, store_pc);
            self.squash_after(rob, true);
            // squash_after(inclusive) redirects to the load's PC itself.
        }
    }

    /// One attempt to obtain data for the load in LQ slot `li`:
    /// store-to-load forwarding, then a bank-arbitrated cache access.
    fn try_load_access(&mut self, li: usize, bank_used: &mut [bool], ports: &mut u32) {
        let addr = self.lsq.lq_addr(li);
        let size = self.lsq.lq_size(li);
        let load_rob = self.lsq.lq_rob(li);
        let dst = self.lsq.lq_dst_preg(li);

        // Scan the store queue youngest-to-oldest (ring order equals
        // program order) for the nearest older store overlapping us.
        let cap = sizes::STORE_QUEUE as u64;
        let count = self.lsq.sq_count.min(cap);
        let mut hit_store: Option<usize> = None;
        for k in 0..count {
            let idx = ((self.lsq.sq_tail + cap - 1 - k) % cap) as usize;
            if !self.lsq.sq_valid(idx) || !self.lsq.sq_addr_valid(idx) {
                continue;
            }
            let older = {
                let senior = self.lsq.sq_senior(idx);
                senior || self.rob.younger(load_rob, self.lsq.sq_rob(idx))
            };
            if !older {
                continue;
            }
            let s_addr = self.lsq.sq_addr(idx);
            let s_size = self.lsq.sq_size(idx);
            if ranges_overlap(s_addr, s_size, addr, size) {
                hit_store = Some(idx);
                break;
            }
        }

        if let Some(si) = hit_store {
            let s_data_valid = self.lsq.sq_data_valid(si);
            let s_addr = self.lsq.sq_addr(si);
            let s_size = self.lsq.sq_size(si);
            if s_data_valid && range_contains(s_addr, s_size, addr, size) {
                // Forward: extract the loaded bytes from the store data.
                let shift = (addr - s_addr) * 8;
                let mask = if size >= 8 { u64::MAX } else { (1u64 << (size * 8)) - 1 };
                let value = (self.lsq.sq_data(si) >> shift) & mask;
                self.lsq.set_lq_forwarded(li, true);
                self.lsq.set_lq_fwd_sq(li, si as u64);
                self.lsq.set_lq_fwd_value(li, value);
                self.lsq.set_lq_inflight(li, true);
                self.lsq.set_lq_data_timer(li, 1);
            }
            // Partial overlap or data not ready: retry next cycle (the
            // store will drain or complete).
            return;
        }

        // No forwarding: start a cache access, subject to bank and port
        // arbitration. Hit/miss resolves at the end of the shadow (in the
        // delivery phase), which is what makes the speculative wakeup of
        // consumers genuinely speculative.
        if self.mhrs.pending(addr) {
            self.lsq.set_lq_fill_wait(li, true);
            if let Some(b) = self.spec_ready.get_mut(dst as usize) {
                *b = false;
            }
            return;
        }
        let bank = ((addr / 8) % sizes::DCACHE_BANKS) as usize;
        if *ports == 0 || bank_used[bank] {
            return; // structural conflict: retry next cycle
        }
        *ports -= 1;
        bank_used[bank] = true;

        self.stats.dcache_accesses += 1;
        self.lsq.set_lq_inflight(li, true);
        self.lsq.set_lq_data_timer(li, sizes::DCACHE_LATENCY as u64);
    }

    /// Load data arrives: extend, write back, wake consumers, complete.
    fn deliver_load(&mut self, li: usize) {
        let addr = self.lsq.lq_addr(li);
        let size = self.lsq.lq_size(li);
        let forwarded = self.lsq.lq_forwarded(li);
        let fwd_value = self.lsq.lq_fwd_value(li);
        let raw = self.lsq.lq_raw(li);
        let rob = self.lsq.lq_rob(li);
        let dst = {
            let preg = self.lsq.lq_dst_preg(li);
            let ecc = self.lsq.lq_dst_ecc(li);
            self.ptr_repair(preg, ecc)
        };
        let sched = self.lsq.lq_sched(li);
        let raw_val = if forwarded { fwd_value } else { self.mem.read_sized(addr, size) };
        let insn = decode(raw as u32);
        let value = if insn.is_load() { alu::extend_load(insn.mnemonic, raw_val) } else { raw_val };
        self.write_preg(dst, value);
        self.rob.entry_mut(rob).completed = true;
        self.lsq.set_lq_state(li, LoadState::Done);
        self.free_sched(sched, rob);
    }
}
