//! The retire stage: in-order commit of up to 8 instructions per cycle,
//! architectural rename-map/free-list updates, store seniorization,
//! syscall execution, exception delivery, and the instruction-word parity
//! check of the protection suite.

use tfsim_arch::{RetireRecord, StoreRecord};
use tfsim_isa::{decode, syscall, Mnemonic, PalFunc, Reg};
use tfsim_protect::parity32;

use crate::config::sizes;
use crate::queues::{areg, ExcCode};

use super::{CycleReport, FlowEvent, Pipeline, RetireEvent};

impl Pipeline {
    pub(crate) fn retire_phase(&mut self, report: &mut CycleReport) {
        for _ in 0..sizes::RETIRE_WIDTH {
            if self.rob.is_empty() {
                break;
            }
            let head_tag = self.rob.head_tag();
            if !self.rob.entry(head_tag).completed {
                break;
            }

            // Instruction-word parity: a mismatch means the word was
            // corrupted in flight; flush before it can write architectural
            // state, then refetch from this instruction.
            if self.config.insn_parity {
                let e = self.rob.entry(head_tag);
                if parity32(e.raw as u32) != e.parity {
                    let target = e.pc;
                    self.full_flush(target);
                    report.protective_flush = true;
                    break;
                }
            }

            let exc = ExcCode::from_bits(self.rob.entry(head_tag).exc);
            if exc != ExcCode::None {
                self.excepted = Some(exc);
                report.events.push(RetireEvent::Exception(exc));
                break;
            }

            let insn = decode(self.rob.entry(head_tag).raw as u32);
            if insn.mnemonic == Mnemonic::CallPal {
                // Syscalls must observe all prior stores: wait for the
                // senior store buffer to drain first.
                let senior_pending = (0..sizes::STORE_QUEUE)
                    .any(|i| self.lsq.sq_valid(i) && self.lsq.sq_senior(i));
                if senior_pending {
                    break;
                }
                match insn.pal {
                    PalFunc::Halt => {
                        self.halted = Some(0);
                        report.events.push(RetireEvent::Halted { code: 0 });
                        return;
                    }
                    PalFunc::CallSys => {
                        if !self.retire_syscall(report) {
                            return;
                        }
                    }
                    PalFunc::Other(_) => {
                        self.excepted = Some(ExcCode::BadPal);
                        report.events.push(RetireEvent::Exception(ExcCode::BadPal));
                        return;
                    }
                }
            }

            let mut e = self.rob.entry(head_tag).clone();
            // Pointer-ECC repair point: the commit-side pointers.
            if self.config.pointer_ecc {
                e.dst_preg = self.ptr_repair(e.dst_preg, e.dst_ecc);
                e.old_preg = self.ptr_repair(e.old_preg, e.old_ecc);
            }

            // Store commit: hand the entry to the senior store buffer
            // (which survives pipeline flushes and drains to the cache).
            let mut store_rec = None;
            if e.is_store {
                let idx = (e.lsq as usize) % sizes::STORE_QUEUE;
                store_rec = Some(StoreRecord {
                    addr: self.lsq.sq_addr(idx),
                    value: self.lsq.sq_data(idx),
                    size: self.lsq.sq_size(idx),
                });
                self.lsq.set_sq_senior(idx, true);
            }

            // Commit the rename: the architectural map adopts the new
            // mapping; the displaced physical register becomes free in
            // both free lists. The architectural list's pop mirrors the
            // speculative pop rename performed for this instruction.
            let mut dst_rec = None;
            if e.has_dst {
                let _allocated = self.arch_fl.pop();
                self.arch_rat.write(e.dst_areg, e.dst_preg);
                self.arch_fl.push(e.old_preg);
                self.spec_fl.push(e.old_preg);
                dst_rec = Some((areg(e.dst_areg), self.regfile.read(e.dst_preg)));
            }

            if e.is_load {
                self.lsq.free_load_head();
            }

            // The committed flow: non-branch instructions advance by 4 by
            // wiring; only control transfers consume the stored target
            // (the stored next_pc bits of other entries are dead state).
            let next_pc = if e.is_branch { e.next_pc } else { e.pc.wrapping_add(4) };
            self.arch_pc = next_pc;
            self.rob.retire_head();
            let record = RetireRecord {
                seq: self.instret,
                pc: e.pc,
                next_pc,
                raw: e.raw as u32,
                dst: dst_rec.filter(|(r, _)| !r.is_zero()),
                store: store_rec,
            };
            self.instret += 1;
            report.retired += 1;
            let cycle = self.cycles;
            self.log_flow(FlowEvent::Commit { seq: e.seq, cycle });
            report.events.push(RetireEvent::Retired(record));
        }
    }

    /// Executes a `callsys` at the head of the ROB (reading architectural
    /// register values through the architectural RAT). Returns `false`
    /// when the machine stopped.
    fn retire_syscall(&mut self, report: &mut CycleReport) -> bool {
        let v0 = self.arch_reg(Reg::V0);
        match v0 {
            syscall::EXIT => {
                let code = self.arch_reg(Reg::A0);
                self.halted = Some(code);
                report.events.push(RetireEvent::Halted { code });
                false
            }
            syscall::WRITE => {
                let buf = self.arch_reg(Reg::A1);
                let len = self.arch_reg(Reg::A2).min(1 << 20);
                for i in 0..len {
                    let b = self.mem.read_u8(buf.wrapping_add(i));
                    self.output.push(b);
                }
                true
            }
            _ => {
                self.excepted = Some(ExcCode::BadPal);
                report.events.push(RetireEvent::Exception(ExcCode::BadPal));
                false
            }
        }
    }

    /// Reads an architectural register through the architectural RAT.
    ///
    /// Meaningful between instructions (e.g. after a halt); mid-flight the
    /// value reflects the most recently *retired* writer.
    pub fn arch_reg(&mut self, r: Reg) -> u64 {
        if r.is_zero() {
            return 0;
        }
        let preg = self.arch_rat.read(r.number() as u64);
        self.regfile.read(preg)
    }

    /// Dumps all 32 architectural registers (committed state).
    pub fn arch_regs(&mut self) -> [u64; 32] {
        let mut out = [0u64; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.arch_reg(Reg::from_number(i as u8));
        }
        out
    }
}
