//! Human-readable pipeline state dumps for debugging and teaching: a
//! per-cycle view of what each structure holds, in the style of classic
//! simulator "pipetrace" output.

use tfsim_isa::decode;

use crate::config::sizes;
use crate::queues::LoadState;

use super::Pipeline;

impl Pipeline {
    /// Renders a compact snapshot of the machine: front-end contents, the
    /// reorder buffer window, scheduler entries, load/store queues, and
    /// functional units.
    ///
    /// Intended for debugging and demonstration (`tfsim-run --dump`); the
    /// output format is human-oriented and not stable API.
    pub fn render_state(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cycle {}  retired {}  arch_pc {:#x}  fetch_pc {:#x}{}\n",
            self.cycles,
            self.instret,
            self.arch_pc,
            self.fetch_pc,
            if self.redirect_valid {
                format!("  redirect->{:#x}", self.redirect_pc)
            } else {
                String::new()
            }
        ));

        // Front end.
        let fq: Vec<String> = (0..self.fq.len())
            .map(|k| {
                let i = ((self.fq.head + k) % sizes::FETCH_QUEUE as u64) as usize;
                format!("{:#x}", self.fq.peek(i).pc)
            })
            .collect();
        out.push_str(&format!("fetch queue [{}]: {}\n", self.fq.len(), fq.join(" ")));

        // ROB window, oldest first.
        out.push_str(&format!("rob [{}/{}]:\n", self.rob.len(), sizes::ROB));
        for k in 0..self.rob.len().min(sizes::ROB as u64) {
            let tag = (self.rob.head + k) % sizes::ROB as u64;
            let e = self.rob.peek(tag);
            let insn = decode(e.raw as u32);
            out.push_str(&format!(
                "  [{tag:2}] {:#8x} {:<24} {}{}{}\n",
                e.pc,
                insn.to_string(),
                if e.completed { "done" } else { "    " },
                if e.is_branch { " br" } else { "" },
                if e.exc != 0 { " EXC" } else { "" },
            ));
        }

        // Scheduler.
        let waiting: Vec<String> = (0..sizes::SCHEDULER)
            .map(|i| self.sched.peek(i))
            .filter(|e| e.valid)
            .map(|e| {
                format!(
                    "{}@rob{}{}",
                    decode(e.raw as u32).mnemonic_label(),
                    e.rob,
                    if e.issued { "*" } else { "" }
                )
            })
            .collect();
        out.push_str(&format!(
            "scheduler [{}/{}]: {}\n",
            waiting.len(),
            sizes::SCHEDULER,
            waiting.join(" ")
        ));

        // LSQ.
        let loads: Vec<String> = (0..sizes::LOAD_QUEUE)
            .map(|i| self.lsq.peek_lq(i))
            .filter(|e| e.valid)
            .map(|e| {
                let st = match e.state {
                    LoadState::WaitAddr => "wait",
                    LoadState::Access => {
                        if e.fill_wait {
                            "fill"
                        } else if e.inflight {
                            "mem"
                        } else {
                            "retry"
                        }
                    }
                    LoadState::Done => "done",
                };
                format!("{:#x}:{st}", e.addr)
            })
            .collect();
        let stores: Vec<String> = (0..sizes::STORE_QUEUE)
            .map(|i| self.lsq.peek_sq(i))
            .filter(|e| e.valid)
            .map(|e| {
                format!(
                    "{:#x}{}",
                    e.addr,
                    if e.senior {
                        ":snr"
                    } else if e.addr_valid {
                        ":rdy"
                    } else {
                        ":agu"
                    }
                )
            })
            .collect();
        out.push_str(&format!("loads: {}   stores: {}\n", loads.join(" "), stores.join(" ")));

        // Functional units.
        let mut fus = Vec::new();
        for (name, ops) in [
            ("alu", &self.fus.simple),
            ("cpx", &self.fus.complex),
            ("br", &self.fus.branch),
            ("agu", &self.fus.agu),
        ] {
            for op in ops.iter() {
                if op.valid {
                    fus.push(format!(
                        "{name}:{}(-{})",
                        decode(op.raw as u32).mnemonic_label(),
                        op.remaining
                    ));
                }
            }
        }
        out.push_str(&format!("units: {}\n", fus.join(" ")));
        out
    }
}

/// Lowercase mnemonic label helper used by the renderer.
trait MnemonicLabel {
    fn mnemonic_label(&self) -> String;
}

impl MnemonicLabel for tfsim_isa::Insn {
    fn mnemonic_label(&self) -> String {
        format!("{:?}", self.mnemonic).to_lowercase()
    }
}

#[cfg(test)]
mod tests {
    use tfsim_isa::{Asm, Program, Reg};

    use crate::config::PipelineConfig;
    use crate::pipeline::Pipeline;

    #[test]
    fn render_shows_live_structures() {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 0x10_0000);
        a.li(Reg::R2, 200);
        let top = a.here_label();
        a.stq(Reg::R2, Reg::R1, 0);
        a.ldq(Reg::R3, Reg::R1, 0);
        a.subq_i(Reg::R2, 1, Reg::R2);
        a.bne(Reg::R2, top);
        a.halt();
        let p = Program::new("render", a).with_data(0x10_0000, vec![0u8; 64]);
        let mut cpu = Pipeline::new(&p, PipelineConfig::baseline());
        for _ in 0..30 {
            cpu.step();
        }
        let s = cpu.render_state();
        assert!(s.contains("cycle 30"), "{s}");
        assert!(s.contains("rob ["), "{s}");
        assert!(s.contains("scheduler ["), "{s}");
        assert!(s.contains("fetch queue ["), "{s}");
        // Live instructions appear by mnemonic.
        assert!(s.contains("subq") || s.contains("stq") || s.contains("ldq"), "{s}");
    }

    #[test]
    fn render_is_safe_on_fresh_and_halted_machines() {
        let mut a = Asm::new(0x1_0000);
        a.halt();
        let p = Program::new("empty", a);
        let mut cpu = Pipeline::new(&p, PipelineConfig::baseline());
        let _ = cpu.render_state(); // fresh
        cpu.run(1_000);
        assert_eq!(cpu.halted(), Some(0));
        let s = cpu.render_state(); // halted
        assert!(s.contains("cycle"));
    }
}
