//! Squash and recovery machinery: branch-misprediction ROB walks,
//! memory-order violation squashes, and the full pipeline flush used by
//! exceptions and the protection mechanisms.

use crate::config::sizes;
use crate::exec::FuBank;
use crate::queues::{flw, SlotPayload};

use super::{FlowEvent, Pipeline};

impl Pipeline {
    /// Requests a fetch redirect (consumed by the next fetch phase).
    pub(crate) fn redirect(&mut self, pc: u64) {
        self.redirect_valid = true;
        self.redirect_pc = pc & !3;
    }

    fn squash_slot(&mut self, slot: &mut SlotPayload) {
        if slot.valid {
            let (seq, cycle) = (slot.seq, self.cycles);
            self.log_flow(FlowEvent::Squash { seq, cycle });
        }
        *slot = SlotPayload::default();
    }

    /// Clears every instruction in the fetch buffers, fetch queue, and
    /// decode/rename pipe. The valid probe inside `squash_slot` feeds only
    /// the flow log (instrumentation), so each latch slot is logged as a
    /// pure whole-slot overwrite — the `fq.squash_all` precedent.
    pub(crate) fn clear_frontend(&mut self) {
        let mut stages = std::mem::take(&mut self.fstages);
        for (st, stage) in stages.iter_mut().enumerate() {
            for (i, slot) in stage.iter_mut().enumerate() {
                self.flatch_write_all(flw::fstage(st, i));
                self.squash_slot(slot);
            }
        }
        self.fstages = stages;
        let cycle = self.cycles;
        for seq in self.fq.squash_all() {
            self.log_flow(FlowEvent::Squash { seq, cycle });
        }
        for (stage, base) in [("dec1", flw::DEC1), ("dec2", flw::DEC2), ("ren", flw::REN)] {
            let mut slots = match stage {
                "dec1" => std::mem::take(&mut self.dec1),
                "dec2" => std::mem::take(&mut self.dec2),
                _ => std::mem::take(&mut self.ren),
            };
            for (i, slot) in slots.iter_mut().enumerate() {
                self.flatch_write_all(base + i as u32);
                self.squash_slot(slot);
            }
            match stage {
                "dec1" => self.dec1 = slots,
                "dec2" => self.dec2 = slots,
                _ => self.ren = slots,
            }
        }
    }

    /// Squashes everything younger than `tag` (and `tag` itself when
    /// `inclusive`): clears the front end, walks the ROB tail back while
    /// rolling the speculative RAT and free list back, trims the LSQ, and
    /// clears matching scheduler entries and functional units.
    ///
    /// With `inclusive`, fetch is redirected at the squashed instruction's
    /// own PC (memory-order violation replay).
    pub(crate) fn squash_after(&mut self, tag: u64, inclusive: bool) {
        let cap = sizes::ROB as u64;
        let refetch_pc = inclusive.then(|| self.rob.entry(tag).pc);

        self.clear_frontend();

        // Walk the ROB from the tail toward `tag`.
        loop {
            if self.rob.is_empty() {
                break;
            }
            let youngest = (self.rob.tail + cap - 1) % cap;
            if !inclusive && youngest == tag % cap {
                break;
            }
            let stop_after = inclusive && youngest == tag % cap;
            let e = self.rob.pop_tail();
            let (seq, cycle) = (e.seq, self.cycles);
            self.log_flow(FlowEvent::Squash { seq, cycle });
            if e.has_dst {
                // Return the allocated register to the head of the free
                // list (the RAT itself is rebuilt below).
                self.spec_fl.unpop(e.dst_preg);
            }
            if e.is_load {
                self.lsq.pop_load_tail();
            }
            if e.is_store {
                self.lsq.pop_store_tail();
            }
            if stop_after {
                break;
            }
        }

        // Clear scheduler entries and FU ops belonging to squashed
        // instructions (anything younger than the new tail).
        let cutoff = self.rob.age(tag);
        let keep = |age: u64| if inclusive { age < cutoff } else { age <= cutoff };
        for i in 0..sizes::SCHEDULER {
            if self.sched.valid(i) {
                let age = self.rob.age(self.sched.rob(i));
                if !keep(age) {
                    self.sched.clear_slot(i);
                }
            }
        }
        for slot in 0..FuBank::SLOTS {
            if self.fus.valid(slot) {
                let rob_tag = self.fus.rob(slot);
                if !keep(self.rob.age(rob_tag)) {
                    self.fus.clear_slot(slot);
                }
            }
        }

        // Rebuild the speculative RAT: copy the architectural map and
        // re-apply the mappings of the surviving in-flight instructions
        // (Alpha-21264-style recovery — this is what makes the
        // architectural RAT live, frequently read state, and hence one of
        // the paper's most vulnerable structures).
        self.spec_rat.copy_from(&mut self.arch_rat);
        let survivors = self.rob.len();
        for k in 0..survivors {
            let tag = (self.rob.head + k) % sizes::ROB as u64;
            let e = self.rob.entry(tag);
            if e.has_dst {
                let (areg, preg) = (e.dst_areg, e.dst_preg);
                self.spec_rat.write(areg, preg);
            }
        }

        // LFST references squashed SQ slots; speculative wakeup windows of
        // squashed loads are no longer trustworthy.
        self.storesets.clear_lfst();
        for b in self.spec_ready.iter_mut() {
            *b = false;
        }

        if let Some(pc) = refetch_pc {
            self.redirect(pc);
        }
    }

    /// Full pipeline flush: discard every unretired instruction and
    /// restore speculative rename state from the architectural copies.
    /// Senior stores keep draining. Fetch restarts at `refetch_pc`.
    pub(crate) fn full_flush(&mut self, refetch_pc: u64) {
        self.stats.full_flushes += 1;
        self.clear_frontend();
        while !self.rob.is_empty() {
            let e = self.rob.pop_tail();
            let (seq, cycle) = (e.seq, self.cycles);
            self.log_flow(FlowEvent::Squash { seq, cycle });
        }
        self.rob.clear();
        self.sched.clear();
        self.fus.clear();
        self.lsq.flush_keep_senior();
        self.spec_rat.copy_from(&mut self.arch_rat);
        self.spec_fl.copy_from(&mut self.arch_fl);
        self.regfile.all_ready();
        for b in self.spec_ready.iter_mut() {
            *b = false;
        }
        self.mhrs.clear();
        self.storesets.clear_lfst();
        self.redirect(refetch_pc);
    }
}
