//! Pipeline-level tests: architectural equivalence against the functional
//! simulator, recovery machinery, determinism, and state-walk integrity.

use tfsim_arch::{FuncSim, StepEvent};
use tfsim_bitstate::{fingerprint_of, BitCount, Category, Census, InjectionMask, StorageKind, VisitState};
use tfsim_isa::{syscall, Asm, Program, Reg};

use super::*;
use crate::config::PipelineConfig;

/// Builds a pipeline whose TLBs are preloaded with every page the
/// fault-free run touches (the paper's TLB model).
fn pipeline_with_tlbs(program: &Program, config: PipelineConfig) -> Pipeline {
    let mut probe = FuncSim::new(program);
    probe.run(10_000_000);
    let mut cpu = Pipeline::new(program, config);
    cpu.set_tlbs(probe.code_pages().clone(), probe.data_pages().clone());
    cpu
}

/// Runs `program` on the pipeline until completion and checks every
/// retirement record against the functional simulator.
fn check_equivalence(program: &Program, config: PipelineConfig, max_cycles: u64) -> (u64, u64) {
    let mut golden = FuncSim::new(program);
    let mut cpu = pipeline_with_tlbs(program, config);
    let mut retired = 0u64;
    for _ in 0..max_cycles {
        if !cpu.running() {
            break;
        }
        let report = cpu.step();
        for ev in report.events {
            match ev {
                RetireEvent::Retired(rec) => {
                    match golden.step() {
                        StepEvent::Retired(g) => {
                            assert_eq!(rec.pc, g.pc, "pc mismatch at retire #{retired}");
                            assert_eq!(
                                rec.next_pc, g.next_pc,
                                "next_pc mismatch at retire #{retired} (pc {:#x})",
                                rec.pc
                            );
                            assert_eq!(rec.raw, g.raw, "raw mismatch at {:#x}", rec.pc);
                            assert_eq!(rec.dst, g.dst, "dst mismatch at {:#x}", rec.pc);
                            assert_eq!(rec.store, g.store, "store mismatch at {:#x}", rec.pc);
                        }
                        other => panic!("golden ended early: {other:?}"),
                    }
                    retired += 1;
                }
                RetireEvent::Halted { code } => {
                    match golden.step() {
                        StepEvent::Halted { code: gcode } => assert_eq!(code, gcode),
                        other => panic!("golden did not halt: {other:?}"),
                    }
                    assert_eq!(cpu.output(), golden.output(), "output mismatch");
                    return (retired, cpu.cycles());
                }
                RetireEvent::Exception(e) => panic!("unexpected exception {e:?}"),
            }
        }
    }
    panic!(
        "pipeline did not finish within {max_cycles} cycles (retired {retired}, cycle {})",
        max_cycles
    );
}

fn exit_program(code: u64) -> Program {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::V0, syscall::EXIT);
    a.li(Reg::A0, code);
    a.callsys();
    Program::new("exit", a)
}

#[test]
fn trivial_exit() {
    let mut cpu = Pipeline::new(&exit_program(5), PipelineConfig::baseline());
    cpu.run(10_000);
    assert_eq!(cpu.halted(), Some(5));
}

#[test]
fn arithmetic_loop_equivalence() {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, 50);
    a.li(Reg::R3, 0);
    let top = a.here_label();
    a.addq(Reg::R3, Reg::R1, Reg::R3);
    a.mulq_i(Reg::R3, 3, Reg::R4);
    a.xor(Reg::R4, Reg::R3, Reg::R3);
    a.subq_i(Reg::R1, 1, Reg::R1);
    a.bne(Reg::R1, top);
    a.li(Reg::V0, syscall::EXIT);
    a.mov(Reg::R3, Reg::A0);
    a.callsys();
    let (retired, cycles) = check_equivalence(&Program::new("loop", a), PipelineConfig::baseline(), 50_000);
    assert!(retired > 200);
    assert!(cycles < 10_000);
}

#[test]
fn memory_traffic_equivalence() {
    // Stores, loads, forwarding potential, byte/word/long/quad sizes.
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R2, 40);
    let top = a.here_label();
    a.s8addq(Reg::R2, Reg::R1, Reg::R5);
    a.stq(Reg::R2, Reg::R5, 0);
    a.ldq(Reg::R6, Reg::R5, 0); // immediate reload: exercises forwarding
    a.addq(Reg::R7, Reg::R6, Reg::R7);
    a.stl(Reg::R7, Reg::R1, 800);
    a.ldl(Reg::R8, Reg::R1, 800);
    a.stb(Reg::R8, Reg::R1, 900);
    a.ldbu(Reg::R9, Reg::R1, 900);
    a.addq(Reg::R7, Reg::R9, Reg::R7);
    a.subq_i(Reg::R2, 1, Reg::R2);
    a.bne(Reg::R2, top);
    a.li(Reg::V0, syscall::EXIT);
    a.mov(Reg::R7, Reg::A0);
    a.callsys();
    check_equivalence(&Program::new("mem", a), PipelineConfig::baseline(), 100_000);
}

#[test]
fn call_return_equivalence() {
    let mut a = Asm::new(0x1_0000);
    let func = a.label();
    a.li(Reg::R9, 0);
    a.li(Reg::R10, 20);
    let top = a.here_label();
    a.bsr(Reg::RA, func);
    a.subq_i(Reg::R10, 1, Reg::R10);
    a.bne(Reg::R10, top);
    a.li(Reg::V0, syscall::EXIT);
    a.mov(Reg::R9, Reg::A0);
    a.callsys();
    a.bind(func);
    a.addq_i(Reg::R9, 3, Reg::R9);
    a.ret(Reg::RA);
    check_equivalence(&Program::new("call", a), PipelineConfig::baseline(), 50_000);
}

#[test]
fn data_dependent_branches_equivalence() {
    // Unpredictable branches force mispredict recovery paths.
    let mut a = Asm::new(0x1_0000);
    crate::pipeline::tests::lcg_kernel(&mut a);
    check_equivalence(&Program::new("lcg-branches", a), PipelineConfig::baseline(), 200_000);
}

/// Shared kernel: LCG-driven data-dependent branches and memory traffic.
pub(crate) fn lcg_kernel(a: &mut Asm) {
    a.li(Reg::R10, 0x12345);
    a.li(Reg::R24, 6364136223846793005);
    a.li(Reg::R25, 1442695040888963407);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R7, 300);
    a.li(Reg::R9, 0);
    let top = a.here_label();
    let skip = a.label();
    a.mulq(Reg::R10, Reg::R24, Reg::R10);
    a.addq(Reg::R10, Reg::R25, Reg::R10);
    a.srl_i(Reg::R10, 33, Reg::R4);
    a.blbc(Reg::R4, skip);
    a.and_i(Reg::R4, 0xf8, Reg::R5);
    a.addq(Reg::R1, Reg::R5, Reg::R5);
    a.stq(Reg::R4, Reg::R5, 0);
    a.ldq(Reg::R6, Reg::R5, 0);
    a.addq(Reg::R9, Reg::R6, Reg::R9);
    a.bind(skip);
    a.addq(Reg::R9, Reg::R4, Reg::R9);
    a.subq_i(Reg::R7, 1, Reg::R7);
    a.bne(Reg::R7, top);
    a.li(Reg::V0, syscall::EXIT);
    a.mov(Reg::R9, Reg::A0);
    a.callsys();
}

#[test]
fn cmov_equivalence() {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, 10);
    a.li(Reg::R2, 111);
    a.li(Reg::R3, 222);
    let top = a.here_label();
    a.and_i(Reg::R1, 1, Reg::R4);
    a.cmoveq(Reg::R4, Reg::R2, Reg::R5); // r5 = r2 if r4==0 else old r5
    a.cmovne(Reg::R4, Reg::R3, Reg::R5);
    a.addq(Reg::R6, Reg::R5, Reg::R6);
    a.subq_i(Reg::R1, 1, Reg::R1);
    a.bne(Reg::R1, top);
    a.li(Reg::V0, syscall::EXIT);
    a.mov(Reg::R6, Reg::A0);
    a.callsys();
    check_equivalence(&Program::new("cmov", a), PipelineConfig::baseline(), 50_000);
}

#[test]
fn write_syscall_output() {
    let mut a = Asm::new(0x1_0000);
    let data = 0x2_0000u64;
    a.li(Reg::V0, syscall::WRITE);
    a.li(Reg::A0, 1);
    a.li(Reg::A1, data);
    a.li(Reg::A2, 3);
    a.callsys();
    a.li(Reg::V0, syscall::EXIT);
    a.li(Reg::A0, 0);
    a.callsys();
    let p = Program::new("hello", a).with_data(data, b"abc".to_vec());
    check_equivalence(&p, PipelineConfig::baseline(), 20_000);
}

#[test]
fn exceptions_reach_retire() {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, 0x2_0001);
    a.ldq(Reg::R2, Reg::R1, 0); // misaligned
    let mut cpu = Pipeline::new(&Program::new("misalign", a), PipelineConfig::baseline());
    cpu.run(10_000);
    assert_eq!(cpu.exception(), Some(ExcCode::Alignment));
}

#[test]
fn overflow_exception() {
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, i64::MAX as u64);
    a.addqv(Reg::R1, Reg::R1, Reg::R2);
    a.halt();
    let mut cpu = Pipeline::new(&Program::new("ovf", a), PipelineConfig::baseline());
    cpu.run(10_000);
    assert_eq!(cpu.exception(), Some(ExcCode::Overflow));
}

#[test]
fn protected_config_equivalence() {
    // All four protections on: fault-free behaviour must be identical.
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    check_equivalence(&Program::new("protected", a), PipelineConfig::protected(), 200_000);
}

#[test]
fn deterministic_and_clonable() {
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    let p = Program::new("det", a);
    let mut cpu1 = Pipeline::new(&p, PipelineConfig::baseline());
    for _ in 0..500 {
        cpu1.step();
    }
    let mut cpu2 = cpu1.clone();
    assert_eq!(fingerprint_of(&mut cpu1), fingerprint_of(&mut cpu2));
    for _ in 0..500 {
        cpu1.step();
        cpu2.step();
    }
    assert_eq!(fingerprint_of(&mut cpu1), fingerprint_of(&mut cpu2));
    assert_eq!(cpu1.instret(), cpu2.instret());
}

#[test]
fn cached_fingerprint_tracks_a_live_pipeline() {
    use tfsim_bitstate::{CachedFingerprint, Fingerprint, UnitId};
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    let mut cpu = pipeline_with_tlbs(&Program::new("cachefp", a), PipelineConfig::baseline());
    let mut engine = CachedFingerprint::new();
    for _ in 0..40 {
        for _ in 0..25 {
            cpu.step();
        }
        // The cached root must equal the flat hash at every check, and the
        // per-unit subhashes must agree with a flat hierarchical walk.
        assert_eq!(engine.fingerprint(&mut cpu), fingerprint_of(&mut cpu));
        let mut flat = Fingerprint::new();
        cpu.visit_state(&mut flat);
        assert_eq!(engine.unit_hashes(), flat.unit_hashes());
        for u in UnitId::ALL {
            assert_ne!(flat.unit(u), 0, "unit {u} never visited");
        }
    }
    // In steady state the big shadow arrays are mostly clean: the cache
    // must actually be earning its keep.
    assert!(engine.hits() > 0, "no unit was ever served from cache");
}

#[test]
fn state_walk_is_stable_and_sized() {
    let mut cpu = Pipeline::new(&exit_program(0), PipelineConfig::baseline());
    let mut census = Census::new();
    cpu.visit_state(&mut census);
    let latches = census.latch_total();
    let rams = census.ram_total();
    // The paper's machine: ~14,000 latch bits and ~31,000 RAM bits.
    assert!(
        (8_000..22_000).contains(&latches),
        "latch bits far from the paper's scale: {latches}"
    );
    assert!(
        (24_000..42_000).contains(&rams),
        "RAM bits far from the paper's scale: {rams}"
    );
    // Walk must visit the same bit count every time.
    let mut c1 = BitCount::new(InjectionMask::LatchesAndRams);
    cpu.visit_state(&mut c1);
    let mut c2 = BitCount::new(InjectionMask::LatchesAndRams);
    cpu.visit_state(&mut c2);
    assert_eq!(c1.count, c2.count);
    assert_eq!(c1.count, latches + rams);
}

#[test]
fn protection_state_overhead_is_about_3k_bits() {
    let base = {
        let mut cpu = Pipeline::new(&exit_program(0), PipelineConfig::baseline());
        let mut c = Census::new();
        cpu.visit_state(&mut c);
        c.total()
    };
    let prot = {
        let mut cpu = Pipeline::new(&exit_program(0), PipelineConfig::protected());
        let mut c = Census::new();
        cpu.visit_state(&mut c);
        c
    };
    let overhead = prot.total() - base;
    // The paper reports 3,061 extra bits, roughly two-thirds RAM.
    assert!(
        (2_000..4_500).contains(&overhead),
        "protection overhead {overhead} bits is far from the paper's 3,061"
    );
    let ecc_ram = prot.bits(Category::Ecc, StorageKind::Ram);
    assert!(ecc_ram >= 640 + 4 * (64 + 96 + 32 + 32), "pointer+regfile ECC present: {ecc_ram}");
    assert!(prot.bits(Category::Parity, StorageKind::Ram) > 0);
}

#[test]
fn in_flight_never_exceeds_capacity() {
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    let mut cpu = Pipeline::new(&Program::new("cap", a), PipelineConfig::baseline());
    let mut peak = 0;
    for _ in 0..2_000 {
        if !cpu.running() {
            break;
        }
        cpu.step();
        peak = peak.max(cpu.in_flight());
    }
    assert!(peak <= crate::config::sizes::MAX_IN_FLIGHT as u64, "peak {peak}");
    assert!(peak > 16, "pipeline should actually fill: peak {peak}");
}

#[test]
fn flow_log_conservation() {
    // Every fetched instruction is eventually committed or squashed (or
    // still in flight at the end).
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    let mut cpu = pipeline_with_tlbs(&Program::new("flow", a), PipelineConfig::baseline());
    cpu.enable_flow_log();
    cpu.run(100_000);
    assert_eq!(cpu.halted().is_some(), true);
    let events = cpu.take_flow_events();
    use std::collections::BTreeMap;
    let mut state: BTreeMap<u64, u8> = BTreeMap::new();
    for ev in &events {
        match ev {
            FlowEvent::Fetch { seq, .. } => {
                assert!(state.insert(*seq, 0).is_none(), "double fetch of {seq}");
            }
            FlowEvent::Commit { seq, .. } => {
                assert_eq!(state.insert(*seq, 1), Some(0), "commit without fetch: {seq}");
            }
            FlowEvent::Squash { seq, .. } => {
                assert_eq!(state.insert(*seq, 2), Some(0), "squash without fetch: {seq}");
            }
        }
    }
    let committed = state.values().filter(|&&s| s == 1).count() as u64;
    assert_eq!(committed, cpu.instret());
}

#[test]
fn timeout_counter_recovers_artificial_deadlock() {
    // Corrupt the ROB count so retire sees a ghost entry: without the
    // watchdog the machine wedges; with it, a flush recovers.
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    let p = Program::new("wedge", a);
    let mut config = PipelineConfig::baseline();
    config.timeout_counter = true;
    let mut cpu = pipeline_with_tlbs(&p, config);
    for _ in 0..200 {
        cpu.step();
    }
    // Force a wedge: mark the scheduler entries invalid while the ROB
    // still waits on them (completion signals lost).
    for i in 0..sizes::SCHEDULER {
        *cpu.sched.poke(i) = Default::default();
    }
    for op in cpu.fus.all_mut() {
        *op = Default::default();
    }
    let mut flushed = false;
    for _ in 0..400 {
        let r = cpu.step();
        if r.protective_flush {
            flushed = true;
            break;
        }
    }
    assert!(flushed, "watchdog must fire within its threshold");
    // And the program still completes correctly afterwards.
    cpu.run(200_000);
    assert!(cpu.halted().is_some(), "machine must recover and finish");
}

#[test]
fn icache_and_dcache_misses_happen() {
    // A large-stride memory walk must generate dcache misses (MHR use).
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R2, 100);
    let top = a.here_label();
    a.ldq(Reg::R3, Reg::R1, 0);
    a.addq(Reg::R1, Reg::R3, Reg::R1); // serialize: address depends on data
    a.lda(Reg::R1, Reg::R1, 4096); // new page-ish stride: always a miss
    a.subq_i(Reg::R2, 1, Reg::R2);
    a.bne(Reg::R2, top);
    a.li(Reg::V0, syscall::EXIT);
    a.li(Reg::A0, 0);
    a.callsys();
    // Widen the DTLB to cover the strided region.
    let p = Program::new("strider", a).with_data(0x10_0000, vec![0; 4096 * 101]);
    let (_, cycles) = check_equivalence(&p, PipelineConfig::baseline(), 100_000);
    // 100 misses x 8 cycles dominates: well over the hit-only time.
    assert!(cycles > 600, "expected miss latency to show: {cycles}");
}

#[test]
fn store_to_load_forwarding_bypasses_the_cache() {
    // Store then immediately reload the same address: the load must be
    // served by the store queue, not the data cache.
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R2, 400);
    let top = a.here_label();
    a.stq(Reg::R2, Reg::R1, 0);
    a.ldq(Reg::R3, Reg::R1, 0);
    a.addq(Reg::R4, Reg::R3, Reg::R4);
    a.subq_i(Reg::R2, 1, Reg::R2);
    a.bne(Reg::R2, top);
    a.li(Reg::V0, syscall::EXIT);
    a.and_i(Reg::R4, 0xff, Reg::A0);
    a.callsys();
    let p = Program::new("fwd", a).with_data(0x10_0000, vec![0u8; 64]);
    let mut golden = FuncSim::new(&p);
    golden.run(1_000_000);
    let mut cpu = pipeline_with_tlbs(&p, PipelineConfig::baseline());
    cpu.run(1_000_000);
    assert_eq!(cpu.halted(), golden.exit_code());
    let s = cpu.stats();
    // 400 loads; the vast majority must forward (no dcache access).
    assert!(
        s.dcache_accesses < 100,
        "forwarding should bypass the cache: {} accesses",
        s.dcache_accesses
    );
}

#[test]
fn speculative_wakeup_causes_replays_on_misses() {
    // Loads that miss with an immediately dependent consumer: the consumer
    // issues in the hit-speculation shadow and must replay.
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R2, 60);
    let top = a.here_label();
    a.ldq(Reg::R3, Reg::R1, 0);
    a.addq(Reg::R4, Reg::R3, Reg::R4); // dependent: issued speculatively
    a.lda(Reg::R1, Reg::R1, 4096); // stride guarantees misses
    a.subq_i(Reg::R2, 1, Reg::R2);
    a.bne(Reg::R2, top);
    a.li(Reg::V0, syscall::EXIT);
    a.li(Reg::A0, 0);
    a.callsys();
    let p = Program::new("replay", a).with_data(0x10_0000, vec![0u8; 4096 * 61]);
    let mut cpu = pipeline_with_tlbs(&p, PipelineConfig::baseline());
    cpu.run(1_000_000);
    assert_eq!(cpu.halted(), Some(0));
    let s = cpu.stats();
    assert!(s.dcache_misses >= 50, "strided loads must miss: {}", s.dcache_misses);
    assert!(s.replays > 0, "miss shadows must replay consumers: {}", s.replays);
}

#[test]
fn memory_order_violations_are_detected_and_trained_away() {
    // A store whose address resolves late (long multiply chain) aliases a
    // load that issues early: the first encounters violate; store-set
    // training then serializes them.
    let mut a = Asm::new(0x1_0000);
    a.li(Reg::R1, 0x10_0000);
    a.li(Reg::R2, 200);
    a.li(Reg::R8, 1);
    let top = a.here_label();
    // Slowly compute r5 = r1 (three dependent multiplies by 1).
    a.mulq(Reg::R1, Reg::R8, Reg::R5);
    a.mulq(Reg::R5, Reg::R8, Reg::R5);
    a.mulq(Reg::R5, Reg::R8, Reg::R5);
    a.stq(Reg::R2, Reg::R5, 0); // address known late
    a.ldq(Reg::R3, Reg::R1, 0); // same address, known immediately
    a.addq(Reg::R4, Reg::R3, Reg::R4);
    a.subq_i(Reg::R2, 1, Reg::R2);
    a.bne(Reg::R2, top);
    a.li(Reg::V0, syscall::EXIT);
    a.and_i(Reg::R4, 0xff, Reg::A0);
    a.callsys();
    let p = Program::new("violate", a).with_data(0x10_0000, vec![0u8; 64]);
    let mut golden = FuncSim::new(&p);
    golden.run(1_000_000);
    let mut cpu = pipeline_with_tlbs(&p, PipelineConfig::baseline());
    cpu.run(1_000_000);
    assert_eq!(cpu.halted(), golden.exit_code(), "recovery must preserve correctness");
    let s = cpu.stats();
    assert!(s.violations > 0, "the aliasing pattern must trip at least one violation");
    assert!(
        s.violations < 100,
        "store sets must learn the dependence: {} violations in 200 iterations",
        s.violations
    );
}

#[test]
fn stats_accessors_are_consistent() {
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    let mut cpu = pipeline_with_tlbs(&Program::new("stats", a), PipelineConfig::baseline());
    cpu.run(200_000);
    let s = cpu.stats();
    assert!(s.branches_resolved > 100);
    assert!(s.branch_mispredicts <= s.branches_resolved);
    assert!(s.dcache_misses <= s.dcache_accesses);
    assert!((0.0..=1.0).contains(&s.branch_prediction_rate()));
    assert!((0.0..=1.0).contains(&s.dcache_hit_rate()));
    assert_eq!(s.full_flushes, 0, "fault-free baseline runs never flush");
}

#[test]
fn indirect_jump_table_equivalence() {
    // A computed dispatch through JMP exercises the BTB-predicted
    // indirect path (cold mispredicts, then learned targets).
    let mut a = Asm::new(0x1_0000);
    let table = 0x10_0000u64;
    a.li(Reg::R20, table);
    a.li(Reg::R10, 0x1234_5678);
    a.li(Reg::R7, 60);
    a.li(Reg::R9, 0);
    let top = a.here_label();
    let case0 = a.label();
    let case1 = a.label();
    let case2 = a.label();
    let join = a.label();
    // idx = lcg & 3 (case 3 aliases case 0 in the table)
    a.mulq_i(Reg::R10, 13, Reg::R10);
    a.addq_i(Reg::R10, 5, Reg::R10);
    a.srl_i(Reg::R10, 9, Reg::R4);
    a.and_i(Reg::R4, 3, Reg::R4);
    a.s8addq(Reg::R4, Reg::R20, Reg::R5);
    a.ldq(Reg::R6, Reg::R5, 0);
    a.jmp(Reg::R31, Reg::R6);
    a.bind(case0);
    a.addq_i(Reg::R9, 1, Reg::R9);
    a.br(join);
    a.bind(case1);
    a.addq_i(Reg::R9, 10, Reg::R9);
    a.br(join);
    a.bind(case2);
    a.mulq_i(Reg::R9, 3, Reg::R9);
    a.bind(join);
    a.subq_i(Reg::R7, 1, Reg::R7);
    a.bne(Reg::R7, top);
    a.li(Reg::V0, syscall::EXIT);
    a.mov(Reg::R9, Reg::A0);
    a.callsys();
    // Resolve the case label addresses into the jump table. Labels are
    // private to Asm, so rebuild: assemble once to learn addresses via a
    // disassembly-free trick — instead, lay out the table by convention:
    // the three cases start at fixed offsets we can compute from the
    // instruction count. Simpler: encode the table after finishing using
    // the known layout (cases are in order after the jmp).
    let p = Program::new("jumptable", a);
    // Find the jmp word, then case0 = jmp_pc + 4, case1 = case0 + 8,
    // case2 = case1 + 8 (each case: op + br, except case2: op only).
    let code = &p.sections[0];
    let words: Vec<u32> = code
        .bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let jmp_idx = words
        .iter()
        .position(|&w| tfsim_isa::decode(w).mnemonic == tfsim_isa::Mnemonic::Jmp)
        .expect("jmp present");
    let case0_pc = code.addr + 4 * (jmp_idx as u64 + 1);
    let targets = [case0_pc, case0_pc + 8, case0_pc + 16, case0_pc];
    let p = p.with_data_words(0x10_0000, &targets);
    check_equivalence(&p, PipelineConfig::baseline(), 200_000);
}

#[test]
fn deep_call_recursion_overflows_the_ras_gracefully() {
    // 12 levels of recursion overflow the 8-entry RAS: predictions go
    // wrong (wrapped stack) but execution must stay correct.
    let mut a = Asm::new(0x1_0000);
    let func = a.label();
    a.li(Reg::R16, 12); // depth
    a.li(Reg::R9, 0);
    a.li(Reg::R30, 0x20_0000); // stack
    a.bsr(Reg::RA, func);
    a.li(Reg::V0, syscall::EXIT);
    a.mov(Reg::R9, Reg::A0);
    a.callsys();
    a.bind(func);
    let base = a.label();
    a.stq(Reg::RA, Reg::R30, 0);
    a.lda(Reg::R30, Reg::R30, -16);
    a.addq(Reg::R9, Reg::R16, Reg::R9);
    a.beq(Reg::R16, base);
    a.subq_i(Reg::R16, 1, Reg::R16);
    a.bsr(Reg::RA, func);
    a.bind(base);
    a.lda(Reg::R30, Reg::R30, 16);
    a.ldq(Reg::RA, Reg::R30, 0);
    a.ret(Reg::RA);
    let p = Program::new("recurse", a).with_data(0x1F_0000, vec![0u8; 0x1_0400]);
    check_equivalence(&p, PipelineConfig::baseline(), 100_000);
}

#[test]
fn architectural_register_dump_matches_functional_simulator() {
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    let p = Program::new("archdump", a);
    let mut golden = FuncSim::new(&p);
    golden.run(10_000_000);
    let mut cpu = pipeline_with_tlbs(&p, PipelineConfig::baseline());
    cpu.run(10_000_000);
    assert_eq!(cpu.halted(), golden.exit_code());
    let regs = cpu.arch_regs();
    for (i, (&mine, &theirs)) in regs.iter().zip(golden.state.regs().iter()).enumerate() {
        assert_eq!(mine, theirs, "architectural register r{i} diverged at halt");
    }
}

#[test]
fn rename_state_partition_invariant_after_halt() {
    // After running a mispredict/flush-heavy program to completion, the 80
    // physical registers must partition exactly between the architectural
    // map (32) and the free list (48), with spec == arch.
    for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
        let mut a = Asm::new(0x1_0000);
        lcg_kernel(&mut a);
        let mut cpu = pipeline_with_tlbs(&Program::new("inv", a), config);
        cpu.run(10_000_000);
        assert!(cpu.halted().is_some());
        assert!(
            cpu.rename_state_consistent(),
            "rename partition violated after fault-free run ({config:?})"
        );
    }
}

#[test]
fn invariants_hold_throughout_a_fault_free_run() {
    // check_invariants() must never fire on an uncorrupted machine: it is
    // the oracle the corruption tests below use, so a false positive here
    // would make them meaningless.
    for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
        let mut a = Asm::new(0x1_0000);
        lcg_kernel(&mut a);
        let mut cpu = pipeline_with_tlbs(&Program::new("inv-clean", a), config);
        let mut cycles = 0u64;
        while cpu.running() && cycles < 200_000 {
            cpu.step();
            cycles += 1;
            if cycles % 64 == 0 {
                let v = cpu.check_invariants();
                assert!(v.is_empty(), "fault-free violation at cycle {cycles}: {v:?}");
            }
        }
        assert!(cpu.halted().is_some());
        assert!(cpu.check_invariants().is_empty());
    }
}

#[test]
fn corrupted_pipelines_step_without_panicking() {
    // The corrupted-state hardening contract: *any* single-bit flip of
    // eligible state, injected at any of the sampled points, must leave a
    // machine that keeps stepping (mask the index, stall the stage, or
    // raise an exception) — never one that unwinds. Violations are
    // enumerable through check_invariants(), not through panics.
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    let p = Program::new("inv-corrupt", a);
    let warm = {
        let mut cpu = pipeline_with_tlbs(&p, PipelineConfig::baseline());
        for _ in 0..400 {
            cpu.step();
        }
        cpu
    };
    let mut bits = BitCount::new(InjectionMask::LatchesAndRams);
    warm.clone().visit_state(&mut bits);
    assert!(bits.count > 0);

    // Deterministic in-test LCG (the uarch crate has no PRNG dependency).
    let mut x = 0x0020_04D5_2004_u64;
    let mut rand = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 16
    };
    for trial in 0..200 {
        let mut victim = warm.clone();
        let target = rand() % bits.count;
        let mut flip = tfsim_bitstate::FlipBit::new(InjectionMask::LatchesAndRams, target);
        victim.visit_state(&mut flip);
        assert!(flip.flipped.is_some(), "trial {trial}: target {target} out of range");
        // Violations a flip causes are enumerable, never fatal (the
        // planted-corruption test below validates the oracle itself).
        let _ = victim.check_invariants();
        // A second flip sometimes lands in state the first corrupted,
        // reaching double-fault interactions a lone upset cannot.
        if trial % 3 == 0 {
            let mut flip2 =
                tfsim_bitstate::FlipBit::new(InjectionMask::LatchesAndRams, rand() % bits.count);
            victim.visit_state(&mut flip2);
        }
        for _ in 0..300 {
            if !victim.running() {
                break;
            }
            victim.step();
        }
        let _ = victim.check_invariants();
    }
}

#[test]
fn check_invariants_flags_planted_corruptions() {
    let mut a = Asm::new(0x1_0000);
    lcg_kernel(&mut a);
    let p = Program::new("inv-plant", a);
    let mut cpu = pipeline_with_tlbs(&p, PipelineConfig::baseline());
    for _ in 0..200 {
        cpu.step();
    }
    assert!(cpu.check_invariants().is_empty());

    // Ring corruption: push the fetch-queue head out of range.
    let mut broken = cpu.clone();
    broken.fq.head = sizes::FETCH_QUEUE as u64 + 3;
    let v = broken.check_invariants();
    assert!(
        v.iter().any(|m| m.contains("fetch-queue")),
        "fetch-queue corruption not flagged: {v:?}"
    );

    // Pointer corruption: an out-of-range destination preg in the ROB.
    let mut broken = cpu.clone();
    let slot = (0..sizes::ROB).find(|&i| broken.rob.peek(i as u64).has_dst);
    if let Some(i) = slot {
        broken.rob.poke(i as u64).dst_preg = 0x7f;
        let v = broken.check_invariants();
        assert!(v.iter().any(|m| m.contains("rob")), "rob preg corruption not flagged: {v:?}");
    }

    // Occupancy corruption: count disagreeing with head/tail.
    let mut broken = cpu.clone();
    broken.rob.count = (broken.rob.count + 1) % (sizes::ROB as u64 + 1);
    assert!(!broken.check_invariants().is_empty(), "rob count corruption not flagged");
}

// --- Access-log ordinal pinning -----------------------------------------
//
// The sliced trial engine trusts `drain_accesses` to name, in *visit
// order*, exactly the unit-local field each structure access touched. These
// tests pin that mapping against the real state walk: perform an operation
// twice — once untracked (diffing full field dumps to find which fields
// actually changed) and once tracked (collecting drained events) — and
// require every changed field to be covered by a logged write.

mod access_ordinals {
    use super::*;
    use std::collections::BTreeSet;
    use tfsim_bitstate::{FieldMeta, StateVisitor, UnitId};
    use crate::exec::schedw;
    use crate::queues::{lqw, sqw, LqEntry, RobEntry, SlotPayload, SqEntry};

    /// Records `(unit, within-unit field ordinal, value)` for every field.
    struct FieldDump {
        fields: Vec<(Option<UnitId>, u32, u64)>,
        unit: Option<UnitId>,
        ord: u32,
    }

    impl StateVisitor for FieldDump {
        fn field(&mut self, _meta: FieldMeta, _width: u32, bits: &mut u64) {
            self.fields.push((self.unit, self.ord, *bits));
            self.ord += 1;
        }
        fn enter_unit(&mut self, unit: UnitId, _gen: u64) -> bool {
            self.unit = Some(unit);
            self.ord = 0;
            true
        }
        fn exit_unit(&mut self, _unit: UnitId) {
            self.unit = None;
        }
    }

    fn dump(cpu: &mut Pipeline) -> Vec<(Option<UnitId>, u32, u64)> {
        let mut d = FieldDump { fields: Vec::new(), unit: None, ord: 0 };
        cpu.visit_state(&mut d);
        d.fields
    }

    fn tiny_pipeline(config: PipelineConfig) -> Pipeline {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R0, 1);
        a.li(Reg::R16, 0);
        a.callsys();
        Pipeline::new(&Program::new("tiny", a), config)
    }

    /// Runs `op` untracked and diffs the state walk; runs it again tracked
    /// and drains. Asserts every changed field is covered by a logged
    /// write, and returns the (reads, writes) event sets.
    /// Whether a (unit, within-unit visit ordinal) pair is in the tracked
    /// range of the access log. Untracked words (LSQ ring pointers, regfile
    /// ECC syndromes, ArchCtrl spec-ready/arch-pc/watchdog latches) are
    /// never logged by design; coverage assertions must exempt them.
    fn is_tracked(config: PipelineConfig, u: UnitId, o: u32) -> bool {
        match u {
            UnitId::Lsq => {
                let tracked_words = sizes::LOAD_QUEUE as u32 * lq_words(config)
                    + sizes::STORE_QUEUE as u32 * sqw::WORDS;
                o < tracked_words
            }
            UnitId::Regfile => o < 3 * sizes::PHYS_REGS as u32,
            UnitId::ArchCtrl => {
                let mhr_base = sizes::PHYS_REGS as u32;
                (mhr_base..mhr_base + sizes::MHRS as u32 * 3).contains(&o)
            }
            _ => false,
        }
    }

    fn check_writes_cover_changes(
        config: PipelineConfig,
        op: &dyn Fn(&mut Pipeline),
    ) -> (BTreeSet<(UnitId, u32)>, BTreeSet<(UnitId, u32)>) {
        let mut plain = tiny_pipeline(config);
        let before = dump(&mut plain);
        op(&mut plain);
        let after = dump(&mut plain);
        assert_eq!(before.len(), after.len(), "visit shape changed");
        let changed: BTreeSet<(UnitId, u32)> = before
            .iter()
            .zip(after.iter())
            .filter(|(b, a)| b.2 != a.2)
            .map(|(_, a)| (a.0.expect("changed field outside any unit"), a.1))
            .collect();

        let mut tracked = tiny_pipeline(config);
        tracked.set_access_tracking(true);
        op(&mut tracked);
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        tracked.drain_accesses(&mut |u, o, w| {
            if w {
                writes.insert((u, o));
            } else {
                reads.insert((u, o));
            }
        });
        for c in &changed {
            if !is_tracked(config, c.0, c.1) {
                continue;
            }
            assert!(
                writes.contains(c),
                "changed field {c:?} not covered by a logged write\nchanged: {changed:?}\nwrites: {writes:?}"
            );
        }
        (reads, writes)
    }

    fn lq_words(config: PipelineConfig) -> u32 {
        if config.pointer_ecc {
            lqw::WORDS
        } else {
            lqw::WORDS - 1
        }
    }

    #[test]
    fn lq_field_writes_pin_to_visit_ordinals() {
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let lw = lq_words(config);
            let (_, writes) =
                check_writes_cover_changes(config, &|cpu| cpu.lsq.set_lq_addr(3, 0xbeef_0008));
            assert_eq!(
                writes.into_iter().collect::<Vec<_>>(),
                vec![(UnitId::Lsq, 3 * lw + lqw::ADDR)]
            );
            let (_, writes) =
                check_writes_cover_changes(config, &|cpu| cpu.lsq.set_lq_fwd_value(7, 99));
            assert_eq!(
                writes.into_iter().collect::<Vec<_>>(),
                vec![(UnitId::Lsq, 7 * lw + lqw::FWD_VALUE)]
            );
        }
    }

    #[test]
    fn sq_field_writes_pin_to_visit_ordinals() {
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let sq_base = sizes::LOAD_QUEUE as u32 * lq_words(config);
            let (_, writes) =
                check_writes_cover_changes(config, &|cpu| cpu.lsq.set_sq_data(5, 0x1234));
            assert_eq!(
                writes.into_iter().collect::<Vec<_>>(),
                vec![(UnitId::Lsq, sq_base + 5 * sqw::WORDS + sqw::DATA)]
            );
            let (_, writes) =
                check_writes_cover_changes(config, &|cpu| cpu.lsq.set_sq_senior(15, true));
            assert_eq!(
                writes.into_iter().collect::<Vec<_>>(),
                vec![(UnitId::Lsq, sq_base + 15 * sqw::WORDS + sqw::SENIOR)]
            );
        }
    }

    #[test]
    fn dst_ecc_events_exist_only_under_pointer_ecc() {
        let mut cpu = tiny_pipeline(PipelineConfig::baseline());
        cpu.set_access_tracking(true);
        let _ = cpu.lsq.lq_dst_ecc(3);
        let mut events = Vec::new();
        cpu.drain_accesses(&mut |u, o, w| events.push((u, o, w)));
        assert!(events.is_empty(), "dst_ecc is absent from the baseline walk: {events:?}");

        let mut cpu = tiny_pipeline(PipelineConfig::protected());
        cpu.set_access_tracking(true);
        let _ = cpu.lsq.lq_dst_ecc(3);
        let mut events = Vec::new();
        cpu.drain_accesses(&mut |u, o, w| events.push((u, o, w)));
        assert_eq!(events, vec![(UnitId::Lsq, 3 * lqw::WORDS + lqw::DST_ECC, false)]);
    }

    #[test]
    fn regfile_writes_pin_to_visit_ordinals() {
        // Baseline: a register write touches the value and the extra bit.
        let (_, writes) =
            check_writes_cover_changes(PipelineConfig::baseline(), &|cpu| {
                cpu.regfile.write(42, 0x5555)
            });
        assert_eq!(
            writes.into_iter().collect::<Vec<_>>(),
            vec![(UnitId::Regfile, 42), (UnitId::Regfile, 80 + 42)]
        );
        // Scoreboard bits sit after the 2x80 entry fields.
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let (_, writes) =
                check_writes_cover_changes(config, &|cpu| cpu.regfile.set_ready(60, true));
            assert_eq!(
                writes.into_iter().collect::<Vec<_>>(),
                vec![(UnitId::Regfile, 160 + 60)]
            );
        }
    }

    #[test]
    fn regfile_ecc_write_changes_stay_within_logged_or_untracked_words() {
        // With register-file ECC the write also dirties the (untracked)
        // stale-tracking latches; those visit ordinals must all be >= 240
        // so the engine can prove a flip there never rides.
        let config = PipelineConfig {
            regfile_ecc: true,
            ..PipelineConfig::baseline()
        };
        let mut plain = tiny_pipeline(config);
        let before = dump(&mut plain);
        plain.regfile.write(42, 0x5555);
        let after = dump(&mut plain);
        for ((bu, bo, bv), (_, _, av)) in before.iter().zip(after.iter()) {
            if bv != av && *bu == Some(UnitId::Regfile) && *bo < 240 {
                assert!(
                    *bo == 42 || *bo == 80 + 42,
                    "unexpected tracked-regfile change at ordinal {bo}"
                );
            }
        }
    }

    #[test]
    fn mhr_ops_pin_to_archctrl_ordinals() {
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let (reads, writes) =
                check_writes_cover_changes(config, &|cpu| {
                    assert!(cpu.mhrs.allocate(0x4_0040));
                });
            // Entry 0 allocates: valid/addr/timer at ArchCtrl 80..83.
            for w in [80u32, 81, 82] {
                assert!(writes.contains(&(UnitId::ArchCtrl, w)), "missing write {w}: {writes:?}");
            }
            // The duplicate-line scan read every entry's valid and addr.
            assert!(reads.contains(&(UnitId::ArchCtrl, 80)));
            assert!(reads.contains(&(UnitId::ArchCtrl, 80 + 15 * 3 + 1)));
        }
    }

    #[test]
    fn queue_bulk_ops_cover_all_changed_words() {
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            check_writes_cover_changes(config, &|cpu| {
                cpu.lsq.alloc_load(LqEntry {
                    addr: 0x8000,
                    rob: 7,
                    dst_preg: 33,
                    pc: 0x1_0000,
                    raw: 0xa000_0000,
                    ..Default::default()
                });
            });
            check_writes_cover_changes(config, &|cpu| {
                cpu.lsq.alloc_store(SqEntry {
                    addr: 0x8100,
                    data: 5,
                    rob: 9,
                    pc: 0x1_0004,
                    ..Default::default()
                });
            });
            check_writes_cover_changes(config, &|cpu| {
                cpu.lsq.alloc_load(LqEntry { addr: 0x40, rob: 1, ..Default::default() });
                cpu.lsq.alloc_store(SqEntry {
                    addr: 0x80,
                    senior: false,
                    rob: 2,
                    ..Default::default()
                });
                cpu.lsq.flush_keep_senior();
            });
            check_writes_cover_changes(config, &|cpu| {
                cpu.regfile.all_ready();
                cpu.mhrs.clear();
            });
        }
    }

    // --- Extended tier ---------------------------------------------------
    //
    // The analytic masking pruner builds its footprint from the *extended*
    // tracking tier (fetch queue, rename structures, scheduler, ROB on top
    // of the core set). Its soundness contract is weaker on the write side
    // than the core tier's: structures may under-claim writes by logging a
    // read instead (a spurious read only demotes a lane from heal to peel,
    // which is always simulated). What must never happen is a tracked word
    // changing with *no* event at all — that would let the pruner prove a
    // "ride" for a word the machine actually touched.

    /// Runs `op` untracked and diffs the state walk; runs it again with
    /// extended tracking and drains. Asserts every changed
    /// extended-tracked field is covered by *some* logged event, and
    /// returns the (reads, writes) event sets.
    fn check_extended_events(
        config: PipelineConfig,
        op: &dyn Fn(&mut Pipeline),
    ) -> (BTreeSet<(UnitId, u32)>, BTreeSet<(UnitId, u32)>) {
        let mut plain = tiny_pipeline(config);
        let before = dump(&mut plain);
        op(&mut plain);
        let after = dump(&mut plain);
        assert_eq!(before.len(), after.len(), "visit shape changed");

        let mut tracked = tiny_pipeline(config);
        tracked.set_access_tracking_extended(true);
        op(&mut tracked);
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        tracked.drain_accesses_extended(&mut |u, o, w| {
            if w {
                writes.insert((u, o));
            } else {
                reads.insert((u, o));
            }
        });
        for ((bu, bo, bv), (_, _, av)) in before.iter().zip(after.iter()) {
            if bv != av {
                let u = bu.expect("changed field outside any unit");
                if tracked.access_tracked_extended(u, *bo) {
                    assert!(
                        writes.contains(&(u, *bo)) || reads.contains(&(u, *bo)),
                        "changed extended-tracked {u:?} ordinal {bo} with no logged event\nreads: {reads:?}\nwrites: {writes:?}"
                    );
                }
            }
        }
        (reads, writes)
    }

    #[test]
    fn sched_word_ops_pin_to_visit_ordinals() {
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let vw = if config.pointer_ecc { schedw::WORDS } else { schedw::WORDS - 4 };
            let (_, writes) =
                check_extended_events(config, &|cpu| cpu.sched.set_issued(2, true));
            assert_eq!(
                writes.into_iter().collect::<Vec<_>>(),
                vec![(UnitId::Sched, 2 * vw + schedw::ISSUED)]
            );
            let (reads, _) = check_extended_events(config, &|cpu| {
                let _ = cpu.sched.src(2, 1);
            });
            assert_eq!(
                reads.into_iter().collect::<Vec<_>>(),
                vec![(UnitId::Sched, 2 * vw + schedw::src(1))]
            );
        }
    }

    #[test]
    fn rat_writes_pin_to_rename_visit_ordinals() {
        // The speculative RAT is the first block of the Rename unit; its
        // map words sit at the architectural register index, the ECC
        // syndromes (protected config only) directly after the map.
        let (_, writes) = check_extended_events(PipelineConfig::baseline(), &|cpu| {
            cpu.spec_rat.write(5, 33);
        });
        assert_eq!(writes.into_iter().collect::<Vec<_>>(), vec![(UnitId::Rename, 5)]);
        let (_, writes) = check_extended_events(PipelineConfig::protected(), &|cpu| {
            cpu.spec_rat.write(5, 33);
        });
        assert_eq!(
            writes.into_iter().collect::<Vec<_>>(),
            vec![(UnitId::Rename, 5), (UnitId::Rename, crate::rename::Rat::ECC_BASE + 5)]
        );
    }

    #[test]
    fn fq_push_expands_to_slot_words() {
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let sw = 8 + config.insn_parity as u32;
            let fq_base = 6 + 3 * sizes::FETCH_WIDTH as u32 * sw;
            let (_, writes) = check_extended_events(config, &|cpu| {
                cpu.fq.push(SlotPayload { valid: true, pc: 0x40, ..Default::default() });
            });
            // A fresh queue pushes into slot 0: the write expands to every
            // visit word of that slot.
            let expect: BTreeSet<_> =
                (0..sw).map(|k| (UnitId::Front, fq_base + k)).collect();
            assert_eq!(writes, expect);
        }
    }

    #[test]
    fn rob_alloc_expands_to_entry_words() {
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let vw = 16 + config.insn_parity as u32
                + if config.pointer_ecc { 2 } else { 0 };
            let (_, writes) = check_extended_events(config, &|cpu| {
                cpu.rob.alloc(RobEntry { pc: 0x1_0040, completed: true, ..Default::default() });
            });
            // A fresh ROB allocates tag 0.
            let expect: BTreeSet<_> = (0..vw).map(|k| (UnitId::Rob, k)).collect();
            assert_eq!(writes, expect);
        }
    }

    #[test]
    fn extended_stepping_covers_all_tracked_changes() {
        // Integration for the pruner's footprint: run real cycles (store,
        // load, a loop branch) with extended tracking on; every change the
        // step made to an extended-tracked word must come with some logged
        // event that cycle.
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let build = || {
                let mut a = Asm::new(0x1_0000);
                a.li(Reg::R1, 0x10_0000);
                a.li(Reg::R2, 6);
                let top = a.here_label();
                a.stq(Reg::R2, Reg::R1, 0);
                a.ldq(Reg::R3, Reg::R1, 0);
                a.subq_i(Reg::R2, 1, Reg::R2);
                a.bne(Reg::R2, top);
                a.halt();
                let p = Program::new("loopy", a).with_data(0x10_0000, vec![0u8; 64]);
                Pipeline::new(&p, config)
            };
            let mut plain = build();
            let mut tracked = build();
            tracked.set_access_tracking_extended(true);
            for _ in 0..80 {
                let before = dump(&mut plain);
                plain.step();
                let after = dump(&mut plain);
                tracked.step();
                let mut events = BTreeSet::new();
                tracked.drain_accesses_extended(&mut |u, o, _| {
                    events.insert((u, o));
                });
                for ((bu, bo, bv), (_, _, av)) in before.iter().zip(after.iter()) {
                    if bv != av {
                        if let Some(u) = bu {
                            if tracked.access_tracked_extended(*u, *bo) {
                                assert!(
                                    events.contains(&(*u, *bo)),
                                    "cycle changed extended-tracked {u:?} ordinal {bo} without logging"
                                );
                            }
                        }
                    }
                }
                if !plain.running() {
                    break;
                }
            }
            assert!(!plain.running(), "workload did not finish");
        }
    }

    #[test]
    fn loggability_tiers_match_tracking_coverage() {
        // The per-unit `Loggability` declaration must agree with what the
        // two drain tiers actually cover: Core units have tracked words in
        // both tiers, Extended units only in the extended tier, and
        // Unlogged/Shadow units in neither.
        use tfsim_bitstate::Loggability;
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let cpu = tiny_pipeline(config);
            for unit in UnitId::ALL {
                let core = (0..4096).any(|o| cpu.access_tracked(unit, o));
                let extended = (0..4096).any(|o| cpu.access_tracked_extended(unit, o));
                // The extended tier is a superset of the core tier.
                for o in 0..4096 {
                    assert!(
                        !cpu.access_tracked(unit, o) || cpu.access_tracked_extended(unit, o),
                        "{unit:?} ordinal {o} tracked in core but not extended"
                    );
                }
                match unit.loggability() {
                    Loggability::Core => {
                        assert!(core, "{unit:?} declares Core but has no core-tracked words");
                    }
                    Loggability::Extended => {
                        assert!(!core, "{unit:?} declares Extended but is core-tracked");
                        assert!(
                            extended,
                            "{unit:?} declares Extended but has no extended-tracked words"
                        );
                    }
                    Loggability::Unlogged | Loggability::Shadow => {
                        assert!(
                            !extended,
                            "{unit:?} declares {:?} but has tracked words",
                            unit.loggability()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stepping_with_tracking_covers_all_tracked_changes() {
        // Integration: run real cycles with tracking on; every change the
        // step made to a tracked word must be covered by a logged write or
        // preceded by nothing at all (un-logged structures are exempt).
        for config in [PipelineConfig::baseline(), PipelineConfig::protected()] {
            let mut plain = tiny_pipeline(config);
            let mut tracked = tiny_pipeline(config);
            tracked.set_access_tracking(true);
            for _ in 0..40 {
                let before = dump(&mut plain);
                plain.step();
                let after = dump(&mut plain);
                tracked.step();
                let mut writes = BTreeSet::new();
                tracked.drain_accesses(&mut |u, o, w| {
                    if w {
                        writes.insert((u, o));
                    }
                });
                let tracked_change_covered =
                    |u: UnitId, o: u32| -> bool { !is_tracked(config, u, o) || writes.contains(&(u, o)) };
                for ((bu, bo, bv), (_, _, av)) in before.iter().zip(after.iter()) {
                    if bv != av {
                        if let Some(u) = bu {
                            assert!(
                                tracked_change_covered(*u, *bo),
                                "cycle changed tracked {u:?} ordinal {bo} without logging a write"
                            );
                        }
                    }
                }
                if !plain.running() {
                    break;
                }
            }
        }
    }
}
