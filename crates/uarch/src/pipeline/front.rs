//! Front-end phases: rename/dispatch, the decode pipe, and fetch with
//! branch prediction and the instruction cache.

use tfsim_isa::{decode, ExecClass, Mnemonic};
use tfsim_protect::parity32;

use crate::access::AccessLog;
use crate::config::sizes;
use crate::exec::{FuClass, SchedEntry};
use crate::queues::{flw, size_to_log2, ExcCode, LqEntry, RobEntry, SlotPayload, SqEntry};

use super::{FlowEvent, Pipeline};

/// Advances one front-end latch group toward the next: when every
/// destination slot is free, each valid source slot is copied into the
/// same-numbered destination slot and the source's valid bit is cleared.
///
/// The latches have per-slot write enables: a destination slot whose
/// source is empty keeps its own stale payload (dead-but-vulnerable state,
/// exactly the population the paper's fault model studies) instead of
/// inheriting the neighbour stage's. This is what makes the logging sound:
/// the destination overwrite is computed entirely from the *source* slot
/// (a write), and the source is consumed whole (a read) — whereas logging
/// a `mem::swap` as two writes would falsely claim a fault riding in the
/// source had been erased when it had merely migrated.
fn advance_stage(
    src: &mut [SlotPayload],
    dst: &mut [SlotPayload],
    log: &mut AccessLog,
    src_base: u32,
    dst_base: u32,
) {
    for (i, d) in dst.iter().enumerate() {
        log.read((dst_base + i as u32) * flw::WORDS + flw::VALID);
        if d.valid {
            return;
        }
    }
    for i in 0..src.len() {
        log.read((src_base + i as u32) * flw::WORDS + flw::VALID);
        if !src[i].valid {
            continue;
        }
        if log.enabled() {
            for w in 0..flw::WORDS {
                log.read((src_base + i as u32) * flw::WORDS + w);
                log.write((dst_base + i as u32) * flw::WORDS + w);
            }
        }
        dst[i] = src[i].clone();
        log.write((src_base + i as u32) * flw::WORDS + flw::VALID);
        src[i].valid = false;
    }
}

impl Pipeline {
    /// Logged read of a front-end latch slot's `valid` word.
    pub(crate) fn flatch_read_valid(&mut self, slot: u32) {
        self.flatch_log.read(slot * flw::WORDS + flw::VALID);
    }

    /// Logged whole-slot read of a front-end latch slot.
    pub(crate) fn flatch_read_all(&mut self, slot: u32) {
        if self.flatch_log.enabled() {
            for w in 0..flw::WORDS {
                self.flatch_log.read(slot * flw::WORDS + w);
            }
        }
    }

    /// Logged whole-slot overwrite of a front-end latch slot. Only valid
    /// for stores whose value cannot depend on the slot's prior content.
    pub(crate) fn flatch_write_all(&mut self, slot: u32) {
        if self.flatch_log.enabled() {
            for w in 0..flw::WORDS {
                self.flatch_log.write(slot * flw::WORDS + w);
            }
        }
    }

    /// Rename/dispatch: up to 4 instructions from the rename latch get
    /// physical registers, ROB entries, scheduler slots, and LSQ slots.
    /// Stalls in order at the first resource shortage.
    pub(crate) fn rename_phase(&mut self) {
        for i in 0..sizes::DECODE_WIDTH {
            self.flatch_read_valid(flw::REN + i as u32);
            if !self.ren[i].valid {
                continue;
            }
            // The rename stage latches out the whole payload (even when a
            // resource stall leaves the slot valid for a retry).
            self.flatch_read_all(flw::REN + i as u32);
            let p = self.ren[i].clone();
            let insn = decode(p.raw as u32);
            let class = insn.exec_class();
            let effectful = !p.fetch_fault;
            let needs_sched = effectful && class != ExecClass::Pal;
            let dst = if effectful { insn.dst() } else { None };

            // Resource checks (in-order stall).
            if self.rob.is_full() {
                break;
            }
            // Reserve the scheduler slot here, at the resource check. A
            // flipped valid bit can make a later re-scan of the slot array
            // disagree with this check (the classic occupancy TOCTOU), so
            // dispatch must reuse the slot found now instead of asking
            // again; when no slot exists the stage simply stalls.
            let sched_slot = if needs_sched {
                match self.sched.free_slot() {
                    Some(s) => s,
                    None => break,
                }
            } else {
                0
            };
            if effectful && insn.is_load() && self.lsq.lq_free() == 0 {
                break;
            }
            if effectful && insn.is_store() && self.lsq.sq_free() == 0 {
                break;
            }
            if dst.is_some() && self.spec_fl.is_empty() {
                break;
            }

            // Source renaming (CMOV's third source is its old destination,
            // already expressed by Insn::srcs).
            let mut src_pregs = [0u64; 3];
            let mut src_needed = [false; 3];
            if effectful {
                for (s, src) in insn.srcs().iter().enumerate() {
                    if let Some(r) = src {
                        src_pregs[s] = self.spec_rat.read(r.number() as u64);
                        src_needed[s] = true;
                    }
                }
            }

            // Destination renaming.
            let (has_dst, dst_areg, dst_preg, old_preg) = match dst {
                Some(r) => {
                    let newp = self.spec_fl.pop().unwrap_or(0x7f);
                    let old = self.spec_rat.read(r.number() as u64);
                    self.spec_rat.write(r.number() as u64, newp);
                    self.regfile.set_ready(newp, false);
                    if let Some(b) = self.spec_ready.get_mut(newp as usize) {
                        *b = false;
                    }
                    (true, r.number() as u64, newp, old)
                }
                None => (false, 0, 0, 0),
            };

            // The instruction completes at dispatch when it never executes
            // in a functional unit: PAL calls (handled at retire), illegal
            // words (trap at retire), and fetch faults (ITLB trap).
            let exc = if p.fetch_fault {
                ExcCode::Itlb
            } else if insn.mnemonic == Mnemonic::Illegal {
                ExcCode::Illegal
            } else {
                ExcCode::None
            };
            let completed = !needs_sched || exc != ExcCode::None;

            let src_ecc = [
                self.ptr_check(src_pregs[0]),
                self.ptr_check(src_pregs[1]),
                self.ptr_check(src_pregs[2]),
            ];
            let dst_ecc = self.ptr_check(dst_preg);
            let old_ecc = self.ptr_check(old_preg);

            let rob_tag = self.rob.alloc(RobEntry {
                pc: p.pc,
                next_pc: p.pc.wrapping_add(4),
                raw: p.raw,
                dst_areg,
                has_dst,
                dst_preg,
                old_preg,
                completed,
                exc: exc as u64,
                is_store: effectful && exc == ExcCode::None && insn.is_store(),
                is_load: effectful && exc == ExcCode::None && insn.is_load(),
                lsq: 0,
                is_branch: effectful && insn.is_control(),
                parity: p.parity,
                pred_taken: p.pred_taken,
                ghr_snapshot: p.ghr_snapshot,
                ras_snapshot: p.ras_snapshot,
                dst_ecc,
                old_ecc,
                seq: p.seq,
            });

            // LSQ allocation.
            let mut lsq_idx = 0u64;
            let mut wait_sq = (0u64, false);
            if self.rob.entry(rob_tag).is_load {
                let lq_dst = if has_dst { dst_preg } else { 0x7f };
                lsq_idx = self.lsq.alloc_load(LqEntry {
                    rob: rob_tag,
                    dst_preg: lq_dst,
                    dst_ecc: self.ptr_check(lq_dst),
                    pc: p.pc,
                    raw: p.raw,
                    size_log2: size_to_log2(insn.access_size()),
                    ..Default::default()
                });
                if let Some(sq) = self.storesets.load_dispatched(p.pc) {
                    wait_sq = (sq, true);
                }
            } else if self.rob.entry(rob_tag).is_store {
                lsq_idx = self.lsq.alloc_store(SqEntry {
                    rob: rob_tag,
                    pc: p.pc,
                    size_log2: size_to_log2(insn.access_size()),
                    ..Default::default()
                });
                self.storesets.store_dispatched(p.pc, lsq_idx);
            }
            self.rob.entry_mut(rob_tag).lsq = lsq_idx;

            // Scheduler dispatch.
            if !completed {
                let fu_class = match class {
                    ExecClass::SimpleAlu => FuClass::Simple,
                    ExecClass::ComplexAlu => FuClass::Complex,
                    ExecClass::Branch => FuClass::Branch,
                    ExecClass::Load => FuClass::Load,
                    ExecClass::Store => FuClass::Store,
                    ExecClass::Pal => FuClass::Simple,
                };
                self.sched.install(sched_slot, SchedEntry {
                    valid: true,
                    issued: false,
                    raw: p.raw,
                    pc: p.pc,
                    srcs: src_pregs,
                    src_needed,
                    dst_preg,
                    has_dst,
                    rob: rob_tag,
                    lsq: lsq_idx,
                    class: fu_class as u64,
                    pred_taken: p.pred_taken,
                    pred_target: p.pred_target,
                    wait_sq: wait_sq.0,
                    wait_sq_valid: wait_sq.1,
                    src_ecc,
                    dst_ecc,
                });
            }

            // Consuming the instruction clears only the valid bit (a
            // constant store, logged as a write); the payload goes stale
            // in place.
            self.flatch_log.write((flw::REN + i as u32) * flw::WORDS + flw::VALID);
            self.ren[i].valid = false;
        }
    }

    /// Advances the decode pipe: FQ → dec1 → dec2 → ren, each 4-wide,
    /// moving a group only when the next latch is empty (per-slot write
    /// enables — see [`advance_stage`]).
    pub(crate) fn decode_phase(&mut self) {
        advance_stage(&mut self.dec2, &mut self.ren, &mut self.flatch_log, flw::DEC2, flw::REN);
        advance_stage(&mut self.dec1, &mut self.dec2, &mut self.flatch_log, flw::DEC1, flw::DEC2);
        let mut dec1_free = true;
        for i in 0..sizes::DECODE_WIDTH {
            self.flatch_read_valid(flw::DEC1 + i as u32);
            if self.dec1[i].valid {
                dec1_free = false;
                break;
            }
        }
        if dec1_free {
            for i in 0..sizes::DECODE_WIDTH {
                match self.fq.pop() {
                    Some(p) => {
                        self.flatch_write_all(flw::DEC1 + i as u32);
                        self.dec1[i] = p;
                    }
                    None => break,
                }
            }
        }
    }

    /// Fetch: redirect handling, fetch-buffer shifting, instruction-cache
    /// access, branch prediction, and split-line group formation.
    pub(crate) fn fetch_phase(&mut self) {
        if self.redirect_valid {
            self.fetch_pc = self.redirect_pc & !3;
            self.redirect_valid = false;
        }

        // Oldest fetch buffer drains into the fetch queue when it fits.
        // Every slot's valid bit decides the drain, so all eight reads are
        // logged up front (they shadow the clearing writes below).
        let mut oldest_count = 0u64;
        for i in 0..sizes::FETCH_WIDTH {
            self.flatch_read_valid(flw::fstage(2, i));
            if self.fstages[2][i].valid {
                oldest_count += 1;
            }
        }
        if oldest_count > 0 && self.fq.free() >= oldest_count {
            let mut stage = std::mem::take(&mut self.fstages[2]);
            for (i, slot) in stage.iter_mut().enumerate() {
                if slot.valid {
                    // The push consumes the slot whole.
                    self.flatch_read_all(flw::fstage(2, i));
                    self.fq.push(std::mem::take(slot));
                } else {
                    // Idle slots are cleared with the group: a
                    // content-independent overwrite.
                    self.flatch_write_all(flw::fstage(2, i));
                }
                *slot = SlotPayload::default();
            }
            self.fstages[2] = stage;
        }
        // Stages shift forward when the next stage is free.
        {
            let (head, tail) = self.fstages.split_at_mut(2);
            advance_stage(
                &mut head[1],
                &mut tail[0],
                &mut self.flatch_log,
                flw::fstage(1, 0),
                flw::fstage(2, 0),
            );
        }
        {
            let (head, tail) = self.fstages.split_at_mut(1);
            advance_stage(
                &mut head[0],
                &mut tail[0],
                &mut self.flatch_log,
                flw::fstage(0, 0),
                flw::fstage(1, 0),
            );
        }
        for i in 0..sizes::FETCH_WIDTH {
            self.flatch_read_valid(flw::fstage(0, i));
            if self.fstages[0][i].valid {
                return; // back-pressure: no room for a new group
            }
        }
        if self.ifill_valid {
            return; // waiting on an instruction-cache fill
        }

        let mut pc = self.fetch_pc & !3;
        let line0 = pc & !(sizes::LINE_BYTES - 1);
        if !self.icache.access(pc) {
            self.stats.icache_misses += 1;
            self.ifill_valid = true;
            self.ifill_addr = line0;
            self.ifill_timer = sizes::MISS_LATENCY as u64;
            return;
        }

        let mut group: Vec<SlotPayload> = Vec::with_capacity(sizes::FETCH_WIDTH);
        let mut second_line_checked = false;
        for _ in 0..sizes::FETCH_WIDTH {
            let line = pc & !(sizes::LINE_BYTES - 1);
            if line != line0 {
                // Split-line fetch may cross into exactly one more line.
                if line != line0 + sizes::LINE_BYTES {
                    break;
                }
                if !second_line_checked {
                    second_line_checked = true;
                    if !self.icache.access(pc) {
                        self.ifill_valid = true;
                        self.ifill_addr = line;
                        self.ifill_timer = sizes::MISS_LATENCY as u64;
                        break;
                    }
                }
            }

            let fault = !self.itlb.covers(pc, 4);
            let raw = if fault { 0 } else { self.mem.read_u32(pc) };
            let insn = decode(raw);
            let ghr_snapshot = self.bpred.ghr();

            let mut taken = false;
            let mut target = 0u64;
            if !fault && insn.is_control() {
                match insn.mnemonic {
                    Mnemonic::Br | Mnemonic::Bsr => {
                        taken = true;
                        target = insn.branch_target(pc);
                    }
                    Mnemonic::Jmp | Mnemonic::Jsr => {
                        if let Some(t) = self.btb.lookup(pc) {
                            taken = true;
                            target = t;
                        }
                    }
                    Mnemonic::Ret => {
                        taken = true;
                        target = self.ras.pop();
                    }
                    _ => {
                        taken = self.bpred.predict(pc);
                        target = insn.branch_target(pc);
                        self.bpred.speculate(taken);
                    }
                }
                if insn.is_call() {
                    self.ras.push(pc.wrapping_add(4));
                }
            }

            let seq = self.fetch_seq;
            self.fetch_seq += 1;
            let cycle = self.cycles;
            self.log_flow(FlowEvent::Fetch { seq, cycle });
            group.push(SlotPayload {
                valid: true,
                raw: raw as u64,
                pc,
                pred_taken: taken,
                pred_target: target & !3,
                fetch_fault: fault,
                parity: self.config.insn_parity && parity32(raw),
                ghr_snapshot,
                ras_snapshot: self.ras.pointer(),
                seq,
            });

            if taken {
                pc = target & !3;
                break;
            }
            pc = pc.wrapping_add(4);
        }

        for (i, slot) in group.into_iter().enumerate() {
            // A fresh fetch group overwrites the filled slots whole;
            // unfilled lanes keep their stale payloads.
            self.flatch_write_all(flw::fstage(0, i));
            self.fstages[0][i] = slot;
        }
        self.fetch_pc = pc;
    }
}
