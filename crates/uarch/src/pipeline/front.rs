//! Front-end phases: rename/dispatch, the decode pipe, and fetch with
//! branch prediction and the instruction cache.

use tfsim_isa::{decode, ExecClass, Mnemonic};
use tfsim_protect::parity32;

use crate::config::sizes;
use crate::exec::{FuClass, SchedEntry};
use crate::queues::{size_to_log2, ExcCode, LqEntry, RobEntry, SlotPayload, SqEntry};

use super::{FlowEvent, Pipeline};

impl Pipeline {
    /// Rename/dispatch: up to 4 instructions from the rename latch get
    /// physical registers, ROB entries, scheduler slots, and LSQ slots.
    /// Stalls in order at the first resource shortage.
    pub(crate) fn rename_phase(&mut self) {
        for i in 0..sizes::DECODE_WIDTH {
            if !self.ren[i].valid {
                continue;
            }
            let p = self.ren[i].clone();
            let insn = decode(p.raw as u32);
            let class = insn.exec_class();
            let effectful = !p.fetch_fault;
            let needs_sched = effectful && class != ExecClass::Pal;
            let dst = if effectful { insn.dst() } else { None };

            // Resource checks (in-order stall).
            if self.rob.is_full() {
                break;
            }
            // Reserve the scheduler slot here, at the resource check. A
            // flipped valid bit can make a later re-scan of the slot array
            // disagree with this check (the classic occupancy TOCTOU), so
            // dispatch must reuse the slot found now instead of asking
            // again; when no slot exists the stage simply stalls.
            let sched_slot = if needs_sched {
                match self.sched.free_slot() {
                    Some(s) => s,
                    None => break,
                }
            } else {
                0
            };
            if effectful && insn.is_load() && self.lsq.lq_free() == 0 {
                break;
            }
            if effectful && insn.is_store() && self.lsq.sq_free() == 0 {
                break;
            }
            if dst.is_some() && self.spec_fl.is_empty() {
                break;
            }

            // Source renaming (CMOV's third source is its old destination,
            // already expressed by Insn::srcs).
            let mut src_pregs = [0u64; 3];
            let mut src_needed = [false; 3];
            if effectful {
                for (s, src) in insn.srcs().iter().enumerate() {
                    if let Some(r) = src {
                        src_pregs[s] = self.spec_rat.read(r.number() as u64);
                        src_needed[s] = true;
                    }
                }
            }

            // Destination renaming.
            let (has_dst, dst_areg, dst_preg, old_preg) = match dst {
                Some(r) => {
                    let newp = self.spec_fl.pop().unwrap_or(0x7f);
                    let old = self.spec_rat.read(r.number() as u64);
                    self.spec_rat.write(r.number() as u64, newp);
                    self.regfile.set_ready(newp, false);
                    if let Some(b) = self.spec_ready.get_mut(newp as usize) {
                        *b = false;
                    }
                    (true, r.number() as u64, newp, old)
                }
                None => (false, 0, 0, 0),
            };

            // The instruction completes at dispatch when it never executes
            // in a functional unit: PAL calls (handled at retire), illegal
            // words (trap at retire), and fetch faults (ITLB trap).
            let exc = if p.fetch_fault {
                ExcCode::Itlb
            } else if insn.mnemonic == Mnemonic::Illegal {
                ExcCode::Illegal
            } else {
                ExcCode::None
            };
            let completed = !needs_sched || exc != ExcCode::None;

            let src_ecc = [
                self.ptr_check(src_pregs[0]),
                self.ptr_check(src_pregs[1]),
                self.ptr_check(src_pregs[2]),
            ];
            let dst_ecc = self.ptr_check(dst_preg);
            let old_ecc = self.ptr_check(old_preg);

            let rob_tag = self.rob.alloc(RobEntry {
                pc: p.pc,
                next_pc: p.pc.wrapping_add(4),
                raw: p.raw,
                dst_areg,
                has_dst,
                dst_preg,
                old_preg,
                completed,
                exc: exc as u64,
                is_store: effectful && exc == ExcCode::None && insn.is_store(),
                is_load: effectful && exc == ExcCode::None && insn.is_load(),
                lsq: 0,
                is_branch: effectful && insn.is_control(),
                parity: p.parity,
                pred_taken: p.pred_taken,
                ghr_snapshot: p.ghr_snapshot,
                ras_snapshot: p.ras_snapshot,
                dst_ecc,
                old_ecc,
                seq: p.seq,
            });

            // LSQ allocation.
            let mut lsq_idx = 0u64;
            let mut wait_sq = (0u64, false);
            if self.rob.entry(rob_tag).is_load {
                let lq_dst = if has_dst { dst_preg } else { 0x7f };
                lsq_idx = self.lsq.alloc_load(LqEntry {
                    rob: rob_tag,
                    dst_preg: lq_dst,
                    dst_ecc: self.ptr_check(lq_dst),
                    pc: p.pc,
                    raw: p.raw,
                    size_log2: size_to_log2(insn.access_size()),
                    ..Default::default()
                });
                if let Some(sq) = self.storesets.load_dispatched(p.pc) {
                    wait_sq = (sq, true);
                }
            } else if self.rob.entry(rob_tag).is_store {
                lsq_idx = self.lsq.alloc_store(SqEntry {
                    rob: rob_tag,
                    pc: p.pc,
                    size_log2: size_to_log2(insn.access_size()),
                    ..Default::default()
                });
                self.storesets.store_dispatched(p.pc, lsq_idx);
            }
            self.rob.entry_mut(rob_tag).lsq = lsq_idx;

            // Scheduler dispatch.
            if !completed {
                let fu_class = match class {
                    ExecClass::SimpleAlu => FuClass::Simple,
                    ExecClass::ComplexAlu => FuClass::Complex,
                    ExecClass::Branch => FuClass::Branch,
                    ExecClass::Load => FuClass::Load,
                    ExecClass::Store => FuClass::Store,
                    ExecClass::Pal => FuClass::Simple,
                };
                self.sched.slots[sched_slot] = SchedEntry {
                    valid: true,
                    issued: false,
                    raw: p.raw,
                    pc: p.pc,
                    srcs: src_pregs,
                    src_needed,
                    dst_preg,
                    has_dst,
                    rob: rob_tag,
                    lsq: lsq_idx,
                    class: fu_class as u64,
                    pred_taken: p.pred_taken,
                    pred_target: p.pred_target,
                    wait_sq: wait_sq.0,
                    wait_sq_valid: wait_sq.1,
                    src_ecc,
                    dst_ecc,
                };
            }

            self.ren[i].valid = false;
        }
    }

    /// Advances the decode pipe: FQ → dec1 → dec2 → ren, each 4-wide,
    /// moving a group only when the next latch is empty.
    pub(crate) fn decode_phase(&mut self) {
        if self.ren.iter().all(|s| !s.valid) {
            std::mem::swap(&mut self.ren, &mut self.dec2);
        }
        if self.dec2.iter().all(|s| !s.valid) {
            std::mem::swap(&mut self.dec2, &mut self.dec1);
        }
        if self.dec1.iter().all(|s| !s.valid) {
            for i in 0..sizes::DECODE_WIDTH {
                match self.fq.pop() {
                    Some(p) => self.dec1[i] = p,
                    None => break,
                }
            }
        }
    }

    /// Fetch: redirect handling, fetch-buffer shifting, instruction-cache
    /// access, branch prediction, and split-line group formation.
    pub(crate) fn fetch_phase(&mut self) {
        if self.redirect_valid {
            self.fetch_pc = self.redirect_pc & !3;
            self.redirect_valid = false;
        }

        // Oldest fetch buffer drains into the fetch queue when it fits.
        let oldest_count = self.fstages[2].iter().filter(|s| s.valid).count() as u64;
        if oldest_count > 0 && self.fq.free() >= oldest_count {
            let mut stage = std::mem::take(&mut self.fstages[2]);
            for slot in stage.iter_mut() {
                if slot.valid {
                    self.fq.push(std::mem::take(slot));
                }
                *slot = SlotPayload::default();
            }
            self.fstages[2] = stage;
        }
        if self.fstages[2].iter().all(|s| !s.valid) {
            self.fstages.swap(1, 2);
        }
        if self.fstages[1].iter().all(|s| !s.valid) {
            self.fstages.swap(0, 1);
        }
        if self.fstages[0].iter().any(|s| s.valid) {
            return; // back-pressure: no room for a new group
        }
        if self.ifill_valid {
            return; // waiting on an instruction-cache fill
        }

        let mut pc = self.fetch_pc & !3;
        let line0 = pc & !(sizes::LINE_BYTES - 1);
        if !self.icache.access(pc) {
            self.stats.icache_misses += 1;
            self.ifill_valid = true;
            self.ifill_addr = line0;
            self.ifill_timer = sizes::MISS_LATENCY as u64;
            return;
        }

        let mut group: Vec<SlotPayload> = Vec::with_capacity(sizes::FETCH_WIDTH);
        let mut second_line_checked = false;
        for _ in 0..sizes::FETCH_WIDTH {
            let line = pc & !(sizes::LINE_BYTES - 1);
            if line != line0 {
                // Split-line fetch may cross into exactly one more line.
                if line != line0 + sizes::LINE_BYTES {
                    break;
                }
                if !second_line_checked {
                    second_line_checked = true;
                    if !self.icache.access(pc) {
                        self.ifill_valid = true;
                        self.ifill_addr = line;
                        self.ifill_timer = sizes::MISS_LATENCY as u64;
                        break;
                    }
                }
            }

            let fault = !self.itlb.covers(pc, 4);
            let raw = if fault { 0 } else { self.mem.read_u32(pc) };
            let insn = decode(raw);
            let ghr_snapshot = self.bpred.ghr();

            let mut taken = false;
            let mut target = 0u64;
            if !fault && insn.is_control() {
                match insn.mnemonic {
                    Mnemonic::Br | Mnemonic::Bsr => {
                        taken = true;
                        target = insn.branch_target(pc);
                    }
                    Mnemonic::Jmp | Mnemonic::Jsr => {
                        if let Some(t) = self.btb.lookup(pc) {
                            taken = true;
                            target = t;
                        }
                    }
                    Mnemonic::Ret => {
                        taken = true;
                        target = self.ras.pop();
                    }
                    _ => {
                        taken = self.bpred.predict(pc);
                        target = insn.branch_target(pc);
                        self.bpred.speculate(taken);
                    }
                }
                if insn.is_call() {
                    self.ras.push(pc.wrapping_add(4));
                }
            }

            let seq = self.fetch_seq;
            self.fetch_seq += 1;
            let cycle = self.cycles;
            self.log_flow(FlowEvent::Fetch { seq, cycle });
            group.push(SlotPayload {
                valid: true,
                raw: raw as u64,
                pc,
                pred_taken: taken,
                pred_target: target & !3,
                fetch_fault: fault,
                parity: self.config.insn_parity && parity32(raw),
                ghr_snapshot,
                ras_snapshot: self.ras.pointer(),
                seq,
            });

            if taken {
                pc = target & !3;
                break;
            }
            pc = pc.wrapping_add(4);
        }

        for (i, slot) in group.into_iter().enumerate() {
            self.fstages[0][i] = slot;
        }
        self.fetch_pc = pc;
    }
}
