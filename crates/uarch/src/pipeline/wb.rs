//! Writeback, execute, and issue phases: ALU/branch completion with
//! speculative-wakeup replay, branch resolution with ROB-walk recovery,
//! latency counting, and oldest-first select.

use tfsim_isa::{alu, decode, Mnemonic};

use crate::config::sizes;
use crate::exec::{FuBank, FuClass, FuOp};
use crate::queues::ExcCode;

use super::Pipeline;

/// Identifies one FU slot: (bank, index). Banks: 0 simple, 1 complex,
/// 2 branch, 3 agu.
pub(crate) type FuRef = (u8, usize);

impl Pipeline {
    pub(crate) fn completing_ops(&mut self, banks: &[u8]) -> Vec<FuRef> {
        let mut refs: Vec<(FuRef, u64)> = Vec::new();
        for &bank in banks {
            let n = match bank {
                0 => self.fus.simple.len(),
                1 => self.fus.complex.len(),
                2 => self.fus.branch.len(),
                _ => self.fus.agu.len(),
            };
            for i in 0..n {
                let slot = FuBank::flat(bank, i);
                if self.fus.valid(slot) && self.fus.remaining(slot) <= 1 {
                    let rob_tag = self.fus.rob(slot);
                    refs.push(((bank, i), self.rob.age(rob_tag)));
                }
            }
        }
        refs.sort_by_key(|&(_, age)| age);
        refs.into_iter().map(|(r, _)| r).collect()
    }

    pub(crate) fn writeback_phase(&mut self) {
        for r in self.completing_ops(&[0, 1, 2]) {
            let slot = FuBank::flat(r.0, r.1);
            if !self.fus.valid(slot) {
                continue; // squashed by an older branch earlier this phase
            }
            if self.replay_if_stale(r) {
                continue;
            }
            let op = self.fus.take_op(slot);
            if r.0 == 2 {
                self.complete_branch(op);
            } else {
                self.complete_alu(op);
            }
        }
    }

    /// If the op consumed speculatively woken operands that are still not
    /// ready, replay it (return its scheduler entry to waiting, free the
    /// FU slot) and return true. Operands that became ready in the
    /// meantime are refreshed in the operand latches (modeling the bypass
    /// network delivering the value at execute).
    pub(crate) fn replay_if_stale(&mut self, r: FuRef) -> bool {
        let slot = FuBank::flat(r.0, r.1);
        // The op completes (or replays) this cycle: the execute stage
        // latches out every field, a whole-slot read.
        let op = self.fus.read_op(slot);
        let (srcs, needed, spec, sched_idx, rob_tag) =
            (op.srcs, op.src_needed, op.src_spec, op.sched as usize, op.rob);
        let mut refreshed = [None; 3];
        for s in 0..3 {
            if needed[s] && spec[s] {
                if self.regfile.is_ready(srcs[s]) {
                    refreshed[s] = Some(self.regfile.read(srcs[s]));
                } else {
                    let i = sched_idx % sizes::SCHEDULER;
                    if self.sched.valid(i) && self.sched.rob(i) == rob_tag {
                        self.sched.set_issued(i, false);
                        self.stats.replays += 1;
                    }
                    self.fus.clear_slot(slot);
                    return true;
                }
            }
        }
        // Bypass refresh: deliberately unlogged. It always follows the
        // whole-slot read above in the same cycle, which shadows it in the
        // footprint's first-event-per-cycle dedup (the `set_repaired_ptrs`
        // precedent), and the refreshed value does not depend on the
        // latch's prior content only when the source was speculative —
        // the read keeps the conservative disposition either way.
        let op = self.fus.poke(slot);
        if let Some(v) = refreshed[0] {
            op.a = v;
        }
        if let Some(v) = refreshed[1] {
            op.b = v;
        }
        if let Some(v) = refreshed[2] {
            op.c = v;
        }
        false
    }

    /// Frees the scheduler entry an op came from (guarded against stale or
    /// corrupted links).
    pub(crate) fn free_sched(&mut self, sched_idx: u64, rob_tag: u64) {
        let i = (sched_idx as usize) % sizes::SCHEDULER;
        if self.sched.valid(i) && self.sched.rob(i) == rob_tag {
            self.sched.clear_slot(i);
        }
    }

    /// Writes `value` to `preg`, marking it ready and ending any
    /// speculative-wakeup window.
    pub(crate) fn write_preg(&mut self, preg: u64, value: u64) {
        self.regfile.write(preg, value);
        self.regfile.set_ready(preg, true);
        if let Some(b) = self.spec_ready.get_mut(preg as usize) {
            *b = false;
        }
    }

    fn complete_alu(&mut self, op: FuOp) {
        let insn = decode(op.raw as u32);
        let result = match insn.mnemonic {
            Mnemonic::Lda | Mnemonic::Ldah => Ok(alu::lda_value(insn.mnemonic, op.a, insn.imm)),
            m if is_operate(m) => alu::operate(m, op.a, op.b, op.c),
            // A corrupted word routed to an ALU: the decoded control no
            // longer names an executable operation. Raise OPCDEC at
            // retirement, as hardware decode checks would.
            _ => {
                self.rob.entry_mut(op.rob).exc = ExcCode::Illegal as u64;
                self.rob.entry_mut(op.rob).completed = true;
                self.free_sched(op.sched, op.rob);
                return;
            }
        };
        match result {
            Ok(v) => {
                if op.has_dst {
                    let dst = self.ptr_repair(op.dst_preg, op.dst_ecc);
                    self.write_preg(dst, v);
                }
            }
            Err(_) => {
                self.rob.entry_mut(op.rob).exc = ExcCode::Overflow as u64;
            }
        }
        self.rob.entry_mut(op.rob).completed = true;
        self.free_sched(op.sched, op.rob);
    }

    fn complete_branch(&mut self, op: FuOp) {
        let insn = decode(op.raw as u32);
        let pc = op.pc;
        let fallthrough = pc.wrapping_add(4);
        let (taken, target) = match insn.mnemonic {
            Mnemonic::Br | Mnemonic::Bsr => (true, insn.branch_target(pc)),
            Mnemonic::Jmp | Mnemonic::Jsr | Mnemonic::Ret => (true, op.a & !3),
            m if insn.is_conditional_branch() => (alu::branch_taken(m, op.a), insn.branch_target(pc)),
            _ => {
                // Corrupted word in the branch unit: OPCDEC.
                self.rob.entry_mut(op.rob).exc = ExcCode::Illegal as u64;
                self.rob.entry_mut(op.rob).completed = true;
                self.free_sched(op.sched, op.rob);
                return;
            }
        };
        let actual_next = if taken { target & !3 } else { fallthrough };

        if op.has_dst {
            let dst = self.ptr_repair(op.dst_preg, op.dst_ecc);
            self.write_preg(dst, fallthrough);
        }
        let (ghr_snapshot, ras_snapshot) = {
            let e = self.rob.entry_mut(op.rob);
            e.next_pc = actual_next;
            e.completed = true;
            (e.ghr_snapshot, e.ras_snapshot)
        };
        self.free_sched(op.sched, op.rob);

        // Train the predictors with the resolved outcome.
        if insn.is_conditional_branch() {
            self.bpred.train(pc, taken, ghr_snapshot);
        }
        if insn.is_indirect() {
            self.btb.update(pc, target & !3);
        }

        self.stats.branches_resolved += 1;
        let predicted_next = if op.pred_taken { op.pred_target } else { fallthrough };
        if actual_next != predicted_next {
            self.stats.branch_mispredicts += 1;
            // Misprediction: recover the speculative history, walk the ROB
            // back, and redirect fetch.
            if insn.is_conditional_branch() {
                self.bpred.restore_ghr((ghr_snapshot << 1) | taken as u64);
            } else {
                self.bpred.restore_ghr(ghr_snapshot);
            }
            self.ras.restore_pointer(ras_snapshot);
            self.squash_after(op.rob, false);
            self.redirect(actual_next);
        }
    }

    /// Advances multi-cycle operations one cycle.
    pub(crate) fn execute_phase(&mut self) {
        self.fus.tick();
    }

    /// Select: oldest-first issue of up to 2 simple, 1 complex, 1 branch,
    /// and 2 AGU operations per cycle.
    pub(crate) fn issue_phase(&mut self) {
        // Clear satisfied memory-dependence waits.
        for i in 0..sizes::SCHEDULER {
            if self.sched.valid(i) && self.sched.wait_sq_valid(i) {
                let wsq = (self.sched.wait_sq(i) as usize) % sizes::STORE_QUEUE;
                if !self.lsq.sq_valid(wsq) || self.lsq.sq_addr_valid(wsq) {
                    self.sched.set_wait_sq_valid(i, false);
                }
            }
        }

        // Gather ready candidates.
        let mut cands: Vec<(usize, u64)> = Vec::new();
        for i in 0..sizes::SCHEDULER {
            if !self.sched.valid(i) || self.sched.issued(i) || self.sched.wait_sq_valid(i) {
                continue;
            }
            let ready = (0..3).all(|s| {
                !self.sched.src_needed(i, s) || {
                    let src = self.sched.src(i, s);
                    self.regfile.is_ready(src)
                        || self.spec_ready.get(src as usize).copied().unwrap_or(false)
                }
            });
            if ready {
                let rob_tag = self.sched.rob(i);
                cands.push((i, self.rob.age(rob_tag)));
            }
        }
        cands.sort_by_key(|&(_, age)| age);

        let mut free_simple: Vec<usize> = Vec::new();
        for i in 0..self.fus.simple.len() {
            if !self.fus.valid(FuBank::flat(0, i)) {
                free_simple.push(i);
            }
        }
        let mut complex_free = !self.fus.valid(FuBank::flat(1, 0));
        let mut branch_free = !self.fus.valid(FuBank::flat(2, 0));
        let mut free_agu: Vec<usize> = Vec::new();
        for i in 0..self.fus.agu.len() {
            if !self.fus.valid(FuBank::flat(3, i)) {
                free_agu.push(i);
            }
        }

        for (i, _) in cands {
            let class = FuClass::from_bits(self.sched.class(i));
            let slot: Option<FuRef> = match class {
                FuClass::Simple => free_simple.pop().map(|s| (0, s)),
                FuClass::Complex => {
                    if complex_free {
                        complex_free = false;
                        Some((1, 0))
                    } else {
                        None
                    }
                }
                FuClass::Branch => {
                    if branch_free {
                        branch_free = false;
                        Some((2, 0))
                    } else {
                        None
                    }
                }
                FuClass::Load | FuClass::Store => free_agu.pop().map(|s| (3, s)),
            };
            let Some(slot) = slot else { continue };
            self.issue_to(i, slot, class);
        }
    }

    fn issue_to(&mut self, sched_idx: usize, slot: FuRef, class: FuClass) {
        let mut e = self.sched.read_entry(sched_idx);
        // Pointer-ECC repair point: operand and destination pointers are
        // checked as they leave the scheduler.
        if self.config.pointer_ecc {
            for s in 0..3 {
                e.srcs[s] = self.ptr_repair(e.srcs[s], e.src_ecc[s]);
            }
            e.dst_preg = self.ptr_repair(e.dst_preg, e.dst_ecc);
            self.sched.set_repaired_ptrs(sched_idx, e.srcs, e.dst_preg);
        }
        let insn = decode(e.raw as u32);
        let mut vals = [0u64; 3];
        let mut spec = [false; 3];
        for s in 0..3 {
            if e.src_needed[s] {
                vals[s] = self.regfile.read(e.srcs[s]);
                spec[s] = !self.regfile.is_ready(e.srcs[s]);
            }
        }
        // Literal operand replaces Rb.
        if insn.uses_literal {
            vals[1] = insn.imm as u64;
        }
        let remaining = if class == FuClass::Complex { insn.exec_latency() as u64 } else { 1 };
        let op = FuOp {
            valid: true,
            sched: sched_idx as u64,
            rob: e.rob,
            dst_preg: e.dst_preg,
            has_dst: e.has_dst,
            a: vals[0],
            b: vals[1],
            c: vals[2],
            srcs: e.srcs,
            src_needed: e.src_needed,
            src_spec: spec,
            raw: e.raw,
            pc: e.pc,
            remaining: remaining.clamp(1, 7),
            pred_taken: e.pred_taken,
            pred_target: e.pred_target,
            lsq: e.lsq,
            class: e.class,
            src_ecc: e.src_ecc,
            dst_ecc: e.dst_ecc,
        };
        self.fus.install(FuBank::flat(slot.0, slot.1), op);
        self.sched.set_issued(sched_idx, true);
    }
}

/// Whether the mnemonic is a register-operate instruction executable by
/// the integer ALUs.
fn is_operate(m: Mnemonic) -> bool {
    use Mnemonic::*;
    matches!(
        m,
        Addl | S4addl
            | Subl
            | S4subl
            | Addq
            | S4addq
            | S8addq
            | Subq
            | S8subq
            | Addlv
            | Sublv
            | Addqv
            | Subqv
            | Cmpeq
            | Cmplt
            | Cmple
            | Cmpult
            | Cmpule
            | Cmpbge
            | And
            | Bic
            | Bis
            | Ornot
            | Xor
            | Eqv
            | Cmoveq
            | Cmovne
            | Cmovlbs
            | Cmovlbc
            | Cmovlt
            | Cmovge
            | Cmovle
            | Cmovgt
            | Sll
            | Srl
            | Sra
            | Zap
            | Zapnot
            | Extbl
            | Extwl
            | Extll
            | Extql
            | Insbl
            | Inswl
            | Insll
            | Insql
            | Mskbl
            | Mskwl
            | Mskll
            | Mskql
            | Mull
            | Mulq
            | Umulh
            | Mullv
            | Mulqv
    )
}
