//! Writeback, execute, and issue phases: ALU/branch completion with
//! speculative-wakeup replay, branch resolution with ROB-walk recovery,
//! latency counting, and oldest-first select.

use tfsim_isa::{alu, decode, Mnemonic};

use crate::config::sizes;
use crate::exec::{FuClass, FuOp};
use crate::queues::ExcCode;

use super::Pipeline;

/// Identifies one FU slot: (bank, index). Banks: 0 simple, 1 complex,
/// 2 branch, 3 agu.
pub(crate) type FuRef = (u8, usize);

impl Pipeline {
    pub(crate) fn fu(&mut self, r: FuRef) -> &mut FuOp {
        match r.0 {
            0 => &mut self.fus.simple[r.1],
            1 => &mut self.fus.complex[r.1],
            2 => &mut self.fus.branch[r.1],
            _ => &mut self.fus.agu[r.1],
        }
    }

    pub(crate) fn completing_ops(&self, banks: &[u8]) -> Vec<FuRef> {
        let mut refs: Vec<(FuRef, u64)> = Vec::new();
        for &bank in banks {
            let ops = match bank {
                0 => &self.fus.simple,
                1 => &self.fus.complex,
                2 => &self.fus.branch,
                _ => &self.fus.agu,
            };
            for (i, op) in ops.iter().enumerate() {
                if op.valid && op.remaining <= 1 {
                    refs.push(((bank, i), self.rob.age(op.rob)));
                }
            }
        }
        refs.sort_by_key(|&(_, age)| age);
        refs.into_iter().map(|(r, _)| r).collect()
    }

    pub(crate) fn writeback_phase(&mut self) {
        for r in self.completing_ops(&[0, 1, 2]) {
            if !self.fu(r).valid {
                continue; // squashed by an older branch earlier this phase
            }
            if self.replay_if_stale(r) {
                continue;
            }
            let op = std::mem::take(self.fu(r));
            if r.0 == 2 {
                self.complete_branch(op);
            } else {
                self.complete_alu(op);
            }
        }
    }

    /// If the op consumed speculatively woken operands that are still not
    /// ready, replay it (return its scheduler entry to waiting, free the
    /// FU slot) and return true. Operands that became ready in the
    /// meantime are refreshed in the operand latches (modeling the bypass
    /// network delivering the value at execute).
    pub(crate) fn replay_if_stale(&mut self, r: FuRef) -> bool {
        let (srcs, needed, spec, sched_idx, rob_tag) = {
            let op = self.fu(r);
            (op.srcs, op.src_needed, op.src_spec, op.sched as usize, op.rob)
        };
        let mut refreshed = [None; 3];
        for s in 0..3 {
            if needed[s] && spec[s] {
                if self.regfile.is_ready(srcs[s]) {
                    refreshed[s] = Some(self.regfile.read(srcs[s]));
                } else {
                    let entry = &mut self.sched.slots[sched_idx % sizes::SCHEDULER];
                    if entry.valid && entry.rob == rob_tag {
                        entry.issued = false;
                        self.stats.replays += 1;
                    }
                    *self.fu(r) = FuOp::default();
                    return true;
                }
            }
        }
        let op = self.fu(r);
        if let Some(v) = refreshed[0] {
            op.a = v;
        }
        if let Some(v) = refreshed[1] {
            op.b = v;
        }
        if let Some(v) = refreshed[2] {
            op.c = v;
        }
        false
    }

    /// Frees the scheduler entry an op came from (guarded against stale or
    /// corrupted links).
    pub(crate) fn free_sched(&mut self, sched_idx: u64, rob_tag: u64) {
        let entry = &mut self.sched.slots[(sched_idx as usize) % sizes::SCHEDULER];
        if entry.valid && entry.rob == rob_tag {
            *entry = Default::default();
        }
    }

    /// Writes `value` to `preg`, marking it ready and ending any
    /// speculative-wakeup window.
    pub(crate) fn write_preg(&mut self, preg: u64, value: u64) {
        self.regfile.write(preg, value);
        self.regfile.set_ready(preg, true);
        if let Some(b) = self.spec_ready.get_mut(preg as usize) {
            *b = false;
        }
    }

    fn complete_alu(&mut self, op: FuOp) {
        let insn = decode(op.raw as u32);
        let result = match insn.mnemonic {
            Mnemonic::Lda | Mnemonic::Ldah => Ok(alu::lda_value(insn.mnemonic, op.a, insn.imm)),
            m if is_operate(m) => alu::operate(m, op.a, op.b, op.c),
            // A corrupted word routed to an ALU: the decoded control no
            // longer names an executable operation. Raise OPCDEC at
            // retirement, as hardware decode checks would.
            _ => {
                self.rob.entry_mut(op.rob).exc = ExcCode::Illegal as u64;
                self.rob.entry_mut(op.rob).completed = true;
                self.free_sched(op.sched, op.rob);
                return;
            }
        };
        match result {
            Ok(v) => {
                if op.has_dst {
                    let dst = self.ptr_repair(op.dst_preg, op.dst_ecc);
                    self.write_preg(dst, v);
                }
            }
            Err(_) => {
                self.rob.entry_mut(op.rob).exc = ExcCode::Overflow as u64;
            }
        }
        self.rob.entry_mut(op.rob).completed = true;
        self.free_sched(op.sched, op.rob);
    }

    fn complete_branch(&mut self, op: FuOp) {
        let insn = decode(op.raw as u32);
        let pc = op.pc;
        let fallthrough = pc.wrapping_add(4);
        let (taken, target) = match insn.mnemonic {
            Mnemonic::Br | Mnemonic::Bsr => (true, insn.branch_target(pc)),
            Mnemonic::Jmp | Mnemonic::Jsr | Mnemonic::Ret => (true, op.a & !3),
            m if insn.is_conditional_branch() => (alu::branch_taken(m, op.a), insn.branch_target(pc)),
            _ => {
                // Corrupted word in the branch unit: OPCDEC.
                self.rob.entry_mut(op.rob).exc = ExcCode::Illegal as u64;
                self.rob.entry_mut(op.rob).completed = true;
                self.free_sched(op.sched, op.rob);
                return;
            }
        };
        let actual_next = if taken { target & !3 } else { fallthrough };

        if op.has_dst {
            let dst = self.ptr_repair(op.dst_preg, op.dst_ecc);
            self.write_preg(dst, fallthrough);
        }
        let (ghr_snapshot, ras_snapshot) = {
            let e = self.rob.entry_mut(op.rob);
            e.next_pc = actual_next;
            e.completed = true;
            (e.ghr_snapshot, e.ras_snapshot)
        };
        self.free_sched(op.sched, op.rob);

        // Train the predictors with the resolved outcome.
        if insn.is_conditional_branch() {
            self.bpred.train(pc, taken, ghr_snapshot);
        }
        if insn.is_indirect() {
            self.btb.update(pc, target & !3);
        }

        self.stats.branches_resolved += 1;
        let predicted_next = if op.pred_taken { op.pred_target } else { fallthrough };
        if actual_next != predicted_next {
            self.stats.branch_mispredicts += 1;
            // Misprediction: recover the speculative history, walk the ROB
            // back, and redirect fetch.
            if insn.is_conditional_branch() {
                self.bpred.restore_ghr((ghr_snapshot << 1) | taken as u64);
            } else {
                self.bpred.restore_ghr(ghr_snapshot);
            }
            self.ras.restore_pointer(ras_snapshot);
            self.squash_after(op.rob, false);
            self.redirect(actual_next);
        }
    }

    /// Advances multi-cycle operations one cycle.
    pub(crate) fn execute_phase(&mut self) {
        for op in self.fus.all_mut() {
            if op.valid && op.remaining > 1 {
                op.remaining -= 1;
            }
        }
    }

    /// Select: oldest-first issue of up to 2 simple, 1 complex, 1 branch,
    /// and 2 AGU operations per cycle.
    pub(crate) fn issue_phase(&mut self) {
        // Clear satisfied memory-dependence waits.
        for i in 0..sizes::SCHEDULER {
            let e = &self.sched.slots[i];
            if e.valid && e.wait_sq_valid {
                let wsq = (e.wait_sq as usize) % sizes::STORE_QUEUE;
                if !self.lsq.sq_valid(wsq) || self.lsq.sq_addr_valid(wsq) {
                    self.sched.slots[i].wait_sq_valid = false;
                }
            }
        }

        // Gather ready candidates.
        let mut cands: Vec<(usize, u64)> = Vec::new();
        for (i, e) in self.sched.slots.iter().enumerate() {
            if !e.valid || e.issued || e.wait_sq_valid {
                continue;
            }
            let ready = (0..3).all(|s| {
                !e.src_needed[s]
                    || self.regfile.is_ready(e.srcs[s])
                    || self.spec_ready.get(e.srcs[s] as usize).copied().unwrap_or(false)
            });
            if ready {
                cands.push((i, self.rob.age(e.rob)));
            }
        }
        cands.sort_by_key(|&(_, age)| age);

        let mut free_simple: Vec<usize> =
            (0..self.fus.simple.len()).filter(|&i| !self.fus.simple[i].valid).collect();
        let mut complex_free = !self.fus.complex[0].valid;
        let mut branch_free = !self.fus.branch[0].valid;
        let mut free_agu: Vec<usize> =
            (0..self.fus.agu.len()).filter(|&i| !self.fus.agu[i].valid).collect();

        for (i, _) in cands {
            let class = FuClass::from_bits(self.sched.slots[i].class);
            let slot: Option<FuRef> = match class {
                FuClass::Simple => free_simple.pop().map(|s| (0, s)),
                FuClass::Complex => {
                    if complex_free {
                        complex_free = false;
                        Some((1, 0))
                    } else {
                        None
                    }
                }
                FuClass::Branch => {
                    if branch_free {
                        branch_free = false;
                        Some((2, 0))
                    } else {
                        None
                    }
                }
                FuClass::Load | FuClass::Store => free_agu.pop().map(|s| (3, s)),
            };
            let Some(slot) = slot else { continue };
            self.issue_to(i, slot, class);
        }
    }

    fn issue_to(&mut self, sched_idx: usize, slot: FuRef, class: FuClass) {
        let mut e = self.sched.slots[sched_idx].clone();
        // Pointer-ECC repair point: operand and destination pointers are
        // checked as they leave the scheduler.
        if self.config.pointer_ecc {
            for s in 0..3 {
                e.srcs[s] = self.ptr_repair(e.srcs[s], e.src_ecc[s]);
            }
            e.dst_preg = self.ptr_repair(e.dst_preg, e.dst_ecc);
            self.sched.slots[sched_idx].srcs = e.srcs;
            self.sched.slots[sched_idx].dst_preg = e.dst_preg;
        }
        let insn = decode(e.raw as u32);
        let mut vals = [0u64; 3];
        let mut spec = [false; 3];
        for s in 0..3 {
            if e.src_needed[s] {
                vals[s] = self.regfile.read(e.srcs[s]);
                spec[s] = !self.regfile.is_ready(e.srcs[s]);
            }
        }
        // Literal operand replaces Rb.
        if insn.uses_literal {
            vals[1] = insn.imm as u64;
        }
        let remaining = if class == FuClass::Complex { insn.exec_latency() as u64 } else { 1 };
        let op = FuOp {
            valid: true,
            sched: sched_idx as u64,
            rob: e.rob,
            dst_preg: e.dst_preg,
            has_dst: e.has_dst,
            a: vals[0],
            b: vals[1],
            c: vals[2],
            srcs: e.srcs,
            src_needed: e.src_needed,
            src_spec: spec,
            raw: e.raw,
            pc: e.pc,
            remaining: remaining.clamp(1, 7),
            pred_taken: e.pred_taken,
            pred_target: e.pred_target,
            lsq: e.lsq,
            class: e.class,
            src_ecc: e.src_ecc,
            dst_ecc: e.dst_ecc,
        };
        *self.fu(slot) = op;
        self.sched.slots[sched_idx].issued = true;
    }
}

/// Whether the mnemonic is a register-operate instruction executable by
/// the integer ALUs.
fn is_operate(m: Mnemonic) -> bool {
    use Mnemonic::*;
    matches!(
        m,
        Addl | S4addl
            | Subl
            | S4subl
            | Addq
            | S4addq
            | S8addq
            | Subq
            | S8subq
            | Addlv
            | Sublv
            | Addqv
            | Subqv
            | Cmpeq
            | Cmplt
            | Cmple
            | Cmpult
            | Cmpule
            | Cmpbge
            | And
            | Bic
            | Bis
            | Ornot
            | Xor
            | Eqv
            | Cmoveq
            | Cmovne
            | Cmovlbs
            | Cmovlbc
            | Cmovlt
            | Cmovge
            | Cmovle
            | Cmovgt
            | Sll
            | Srl
            | Sra
            | Zap
            | Zapnot
            | Extbl
            | Extwl
            | Extll
            | Extql
            | Insbl
            | Inswl
            | Insll
            | Insql
            | Mskbl
            | Mskwl
            | Mskll
            | Mskql
            | Mull
            | Mulq
            | Umulh
            | Mullv
            | Mulqv
    )
}
