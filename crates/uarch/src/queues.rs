//! Pipeline queue structures: fetch queue, reorder buffer, and the load
//! and store queues.
//!
//! All payload storage is RAM-array state (the paper: "Pipeline structures
//! that are implemented using RAM arrays include ... scheduler and ROB
//! payloads, and various queues"); ring pointers are `qctrl` latches.
//! Ring arithmetic is performed modulo the capacity everywhere so that a
//! fault-corrupted pointer can wedge the machine (the paper's `locked`
//! failure mode) but can never crash the simulator.

use tfsim_bitstate::{visit_bool, visit_pc, Category, FieldMeta, StateVisitor, StorageKind};
use tfsim_isa::Reg;

use crate::access::AccessLog;
use crate::config::sizes;

/// An instruction traveling through fetch/decode, with its prediction
/// metadata. Used for fetch-stage buffers, fetch-queue entries, and the
/// decode/rename pipe latches.
#[derive(Debug, Clone, Default)]
pub struct SlotPayload {
    /// Slot holds an instruction.
    pub valid: bool,
    /// Raw 32-bit instruction word.
    pub raw: u64,
    /// Instruction address.
    pub pc: u64,
    /// Predicted direction (control instructions).
    pub pred_taken: bool,
    /// Predicted target (valid when `pred_taken`).
    pub pred_target: u64,
    /// Instruction fetch faulted (ITLB miss): raises `itlb` at retire.
    pub fetch_fault: bool,
    /// Even-parity bit over `raw` (instruction-word parity protection).
    pub parity: bool,
    /// Global history snapshot for squash recovery (prediction state:
    /// shadow, not injectable).
    pub ghr_snapshot: u64,
    /// RAS pointer snapshot for squash recovery (shadow).
    pub ras_snapshot: u64,
    /// Instrumentation only: global fetch sequence number. Not machine
    /// state — never visited, never affects execution.
    pub seq: u64,
}

impl SlotPayload {
    /// Visits the payload's state bits. `kind` distinguishes latch slots
    /// (pipe registers) from RAM slots (fetch queue entries);
    /// `parity_enabled` controls whether the parity bit exists.
    pub fn visit(&mut self, v: &mut dyn StateVisitor, kind: StorageKind, parity_enabled: bool) {
        visit_bool(v, FieldMeta::new(Category::Valid, kind), &mut self.valid);
        v.field(FieldMeta::new(Category::Insn, kind), 32, &mut self.raw);
        visit_pc(v, kind, &mut self.pc);
        visit_bool(v, FieldMeta::new(Category::Ctrl, kind), &mut self.pred_taken);
        visit_pc(v, kind, &mut self.pred_target);
        visit_bool(v, FieldMeta::new(Category::Ctrl, kind), &mut self.fetch_fault);
        if parity_enabled {
            visit_bool(v, FieldMeta::new(Category::Parity, kind), &mut self.parity);
        }
        v.field(FieldMeta::shadow(Category::Ctrl, kind), 12, &mut self.ghr_snapshot);
        v.field(FieldMeta::shadow(Category::Qctrl, kind), 3, &mut self.ras_snapshot);
    }
}

/// Fixed per-slot word ordinals for the front-end latch access log: the
/// fetch-buffer stages and the decode/rename pipe, all holding
/// [`SlotPayload`]s in latch form.
///
/// Slot numbering: fetch-buffer stage `st`, lane `i` is `st * FETCH_WIDTH
/// + i` (0..24), then `dec1`, `dec2`, `ren` (`DECODE_WIDTH` slots each,
/// 24..36). The parity word is reserved whether or not instruction parity
/// is configured (the drain mapping drops it when absent), so ordinals are
/// stable across configurations. Word order matches `SlotPayload::visit`.
pub mod flw {
    use crate::config::sizes;

    /// `valid` flag.
    pub const VALID: u32 = 0;
    /// Raw instruction word.
    pub const RAW: u32 = 1;
    /// Instruction address.
    pub const PC: u32 = 2;
    /// Predicted direction.
    pub const PRED_TAKEN: u32 = 3;
    /// Predicted target.
    pub const PRED_TARGET: u32 = 4;
    /// Fetch-fault flag.
    pub const FETCH_FAULT: u32 = 5;
    /// Instruction-word parity bit (reserved when parity is off).
    pub const PARITY: u32 = 6;
    /// GHR snapshot (shadow).
    pub const GHR: u32 = 7;
    /// RAS snapshot (shadow).
    pub const RAS: u32 = 8;
    /// Words per latch slot in the fixed numbering.
    pub const WORDS: u32 = 9;

    /// Flat slot index of fetch-buffer stage `st`, lane `i`.
    pub fn fstage(st: usize, i: usize) -> u32 {
        (st * sizes::FETCH_WIDTH + i) as u32
    }
    /// First `dec1` slot.
    pub const DEC1: u32 = 3 * sizes::FETCH_WIDTH as u32;
    /// First `dec2` slot.
    pub const DEC2: u32 = DEC1 + sizes::DECODE_WIDTH as u32;
    /// First `ren` slot.
    pub const REN: u32 = DEC2 + sizes::DECODE_WIDTH as u32;
    /// Total front-end latch slots.
    pub const SLOTS: u32 = REN + sizes::DECODE_WIDTH as u32;
}

/// The 32-entry fetch queue (a circular RAM queue of [`SlotPayload`]s).
///
/// The entry array is private: the step path goes through the logged
/// methods below, which record *entry-granular* accesses (ordinal = ring
/// position; `Pipeline::drain_accesses` expands an entry event to the
/// per-word visit ordinals of the active configuration). Pushes overwrite
/// a whole slot with content computed independently of it, so they are
/// logged as writes; pops consume the slot, so they are logged as reads.
#[derive(Debug, Clone)]
pub struct FetchQueue {
    slots: Vec<SlotPayload>,
    /// Ring head (5-bit).
    pub head: u64,
    /// Ring tail (5-bit).
    pub tail: u64,
    /// Occupancy (6-bit).
    pub count: u64,
    /// Entry-granular access log (extended-tier tracking).
    pub log: AccessLog,
}

impl FetchQueue {
    const CAP: u64 = sizes::FETCH_QUEUE as u64;

    /// Creates an empty fetch queue.
    pub fn new() -> FetchQueue {
        FetchQueue {
            slots: (0..sizes::FETCH_QUEUE).map(|_| SlotPayload::default()).collect(),
            head: 0,
            tail: 0,
            count: 0,
            log: AccessLog::default(),
        }
    }

    /// Unlogged slot access for observers and tests only.
    pub fn peek(&self, i: usize) -> &SlotPayload {
        &self.slots[i % sizes::FETCH_QUEUE]
    }

    /// Test-only mutable access; logs nothing.
    #[doc(hidden)]
    pub fn poke(&mut self, i: usize) -> &mut SlotPayload {
        &mut self.slots[i % sizes::FETCH_QUEUE]
    }

    /// Current occupancy (clamped to capacity).
    pub fn len(&self) -> u64 {
        self.count.min(Self::CAP)
    }

    /// Whether the queue holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free slots remaining.
    pub fn free(&self) -> u64 {
        Self::CAP - self.len()
    }

    /// Appends an instruction (caller must check [`FetchQueue::free`]).
    pub fn push(&mut self, p: SlotPayload) {
        let i = (self.tail % Self::CAP) as usize;
        self.log.write(i as u32);
        self.slots[i] = p;
        self.slots[i].valid = true;
        self.tail = (self.tail + 1) % Self::CAP;
        self.count = (self.count + 1) & 0x3f;
    }

    /// Removes and returns the oldest instruction.
    pub fn pop(&mut self) -> Option<SlotPayload> {
        if self.is_empty() {
            return None;
        }
        let i = (self.head % Self::CAP) as usize;
        self.log.read(i as u32);
        let p = std::mem::take(&mut self.slots[i]);
        self.head = (self.head + 1) % Self::CAP;
        self.count = (self.count - 1) & 0x3f;
        Some(p)
    }

    /// Empties the queue (squash): a content-independent full overwrite of
    /// every slot, logged as entry writes.
    pub fn clear(&mut self) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            self.log.write(i as u32);
            *s = SlotPayload::default();
        }
        self.head = 0;
        self.tail = 0;
        self.count = 0;
    }

    /// Empties the queue for a squash, returning the fetch sequence number
    /// of each occupied slot so the pipeline can flow-log the squashed
    /// instructions. The occupancy probe feeds instrumentation only (the
    /// flow log), never machine behaviour, so this is still logged as a
    /// pure full-queue overwrite.
    pub fn squash_all(&mut self) -> Vec<u64> {
        let seqs = self.slots.iter().filter(|s| s.valid).map(|s| s.seq).collect();
        self.clear();
        seqs
    }

    /// Visits all slots and ring pointers.
    pub fn visit(&mut self, v: &mut dyn StateVisitor, parity_enabled: bool) {
        for s in self.slots.iter_mut() {
            s.visit(v, StorageKind::Ram, parity_enabled);
        }
        let q = FieldMeta::new(Category::Qctrl, StorageKind::Latch);
        v.field(q, 5, &mut self.head);
        v.field(q, 5, &mut self.tail);
        v.field(q, 6, &mut self.count);
    }
}

impl Default for FetchQueue {
    fn default() -> Self {
        FetchQueue::new()
    }
}

/// Architectural exception codes carried in ROB entries (3-bit `ctrl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum ExcCode {
    /// No exception.
    #[default]
    None = 0,
    /// Undecodable instruction word.
    Illegal = 1,
    /// Misaligned memory access.
    Alignment = 2,
    /// Integer overflow from a `/V` operation.
    Overflow = 3,
    /// Instruction TLB miss (fetch outside the preloaded pages).
    Itlb = 4,
    /// Data TLB miss (access outside the preloaded pages).
    Dtlb = 5,
    /// Unimplemented PAL function or syscall.
    BadPal = 6,
}

impl ExcCode {
    /// Decodes a 3-bit field (corrupted encodings map to `BadPal`).
    pub fn from_bits(bits: u64) -> ExcCode {
        match bits & 7 {
            0 => ExcCode::None,
            1 => ExcCode::Illegal,
            2 => ExcCode::Alignment,
            3 => ExcCode::Overflow,
            4 => ExcCode::Itlb,
            5 => ExcCode::Dtlb,
            _ => ExcCode::BadPal,
        }
    }
}

/// One reorder buffer entry.
#[derive(Debug, Clone, Default)]
pub struct RobEntry {
    /// Instruction address.
    pub pc: u64,
    /// Resolved next PC (filled at dispatch for sequential flow, updated
    /// by the branch unit).
    pub next_pc: u64,
    /// Raw instruction word (retire re-decodes it; parity is checked over
    /// it when the protection is enabled).
    pub raw: u64,
    /// Destination architectural register (5-bit; meaningful if `has_dst`).
    pub dst_areg: u64,
    /// Whether the instruction writes a register.
    pub has_dst: bool,
    /// Destination physical register.
    pub dst_preg: u64,
    /// Previous mapping of `dst_areg` (freed at retire, restored on walk).
    pub old_preg: u64,
    /// Result (and side effects) are complete; the entry may retire.
    pub completed: bool,
    /// Exception accumulated for this instruction (3-bit code).
    pub exc: u64,
    /// Instruction is a store; `lsq` is its store-queue slot.
    pub is_store: bool,
    /// Instruction is a load; `lsq` is its load-queue slot.
    pub is_load: bool,
    /// Load/store queue slot index (4-bit).
    pub lsq: u64,
    /// Instruction is a control transfer.
    pub is_branch: bool,
    /// Parity bit traveling with the instruction word.
    pub parity: bool,
    /// Prediction metadata for recovery/training (shadow).
    pub pred_taken: bool,
    /// Global-history snapshot (shadow).
    pub ghr_snapshot: u64,
    /// RAS pointer snapshot (shadow).
    pub ras_snapshot: u64,
    /// Pointer-ECC check bits for `dst_preg`.
    pub dst_ecc: u64,
    /// Pointer-ECC check bits for `old_preg`.
    pub old_ecc: u64,
    /// Instrumentation only (never visited): fetch sequence number.
    pub seq: u64,
}

impl RobEntry {
    fn visit(&mut self, v: &mut dyn StateVisitor, parity_enabled: bool, ptr_ecc: bool) {
        let ram = StorageKind::Ram;
        visit_pc(v, ram, &mut self.pc);
        visit_pc(v, ram, &mut self.next_pc);
        v.field(FieldMeta::new(Category::Insn, ram), 32, &mut self.raw);
        v.field(FieldMeta::new(Category::Ctrl, ram), 5, &mut self.dst_areg);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.has_dst);
        v.field(FieldMeta::new(Category::Regptr, ram), 7, &mut self.dst_preg);
        v.field(FieldMeta::new(Category::Regptr, ram), 7, &mut self.old_preg);
        visit_bool(v, FieldMeta::new(Category::Valid, ram), &mut self.completed);
        v.field(FieldMeta::new(Category::Ctrl, ram), 3, &mut self.exc);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.is_store);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.is_load);
        v.field(FieldMeta::new(Category::Ctrl, ram), 4, &mut self.lsq);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.is_branch);
        if parity_enabled {
            visit_bool(v, FieldMeta::new(Category::Parity, ram), &mut self.parity);
        }
        if ptr_ecc {
            v.field(FieldMeta::new(Category::Ecc, ram), 4, &mut self.dst_ecc);
            v.field(FieldMeta::new(Category::Ecc, ram), 4, &mut self.old_ecc);
        }
        visit_bool(v, FieldMeta::shadow(Category::Ctrl, ram), &mut self.pred_taken);
        v.field(FieldMeta::shadow(Category::Ctrl, ram), 12, &mut self.ghr_snapshot);
        v.field(FieldMeta::shadow(Category::Qctrl, ram), 3, &mut self.ras_snapshot);
    }
}

/// The 64-entry reorder buffer (circular).
///
/// The entry array is private: step-path access goes through the logged
/// methods below, which record *entry-granular* events (ordinal = ring
/// position, expanded to per-word visit ordinals by
/// `Pipeline::drain_accesses`). [`Rob::entry`] / [`Rob::entry_mut`] log a
/// read of the whole entry — `entry_mut` callers may also write fields,
/// but an unlogged write only under-claims (the word looks live), never
/// over-claims, which is the safe direction for the dead-window proofs.
/// Only [`Rob::alloc`] and [`Rob::clear`] log writes: both replace whole
/// entries with content computed independently of the old bits.
#[derive(Debug, Clone)]
pub struct Rob {
    slots: Vec<RobEntry>,
    /// Ring head: the oldest unretired instruction (6-bit).
    pub head: u64,
    /// Ring tail: the next allocation slot (6-bit).
    pub tail: u64,
    /// Occupancy (7-bit).
    pub count: u64,
    /// Entry-granular access log (extended-tier tracking).
    pub log: AccessLog,
}

impl Rob {
    const CAP: u64 = sizes::ROB as u64;

    /// Creates an empty reorder buffer.
    pub fn new() -> Rob {
        Rob {
            slots: (0..sizes::ROB).map(|_| RobEntry::default()).collect(),
            head: 0,
            tail: 0,
            count: 0,
            log: AccessLog::default(),
        }
    }

    /// Unlogged entry access for observers and tests only.
    pub fn peek(&self, tag: u64) -> &RobEntry {
        &self.slots[(tag % Self::CAP) as usize]
    }

    /// Test-only mutable access; logs nothing.
    #[doc(hidden)]
    pub fn poke(&mut self, tag: u64) -> &mut RobEntry {
        &mut self.slots[(tag % Self::CAP) as usize]
    }

    /// Current occupancy (clamped).
    pub fn len(&self) -> u64 {
        self.count.min(Self::CAP)
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the ROB is full.
    pub fn is_full(&self) -> bool {
        self.len() >= Self::CAP
    }

    /// Allocates the tail entry and returns its tag: a logged full-entry
    /// write (the new entry is built from rename-stage state, never from
    /// the slot's old bits).
    pub fn alloc(&mut self, entry: RobEntry) -> u64 {
        let tag = self.tail % Self::CAP;
        self.log.write(tag as u32);
        self.slots[tag as usize] = entry;
        self.tail = (self.tail + 1) % Self::CAP;
        self.count = (self.count + 1) & 0x7f;
        tag
    }

    /// The tag of the oldest entry.
    pub fn head_tag(&self) -> u64 {
        self.head % Self::CAP
    }

    /// Pops the head entry (retirement): the entry's content is consumed,
    /// so this logs a read (the same-cycle zeroing write is shadowed by
    /// the read and deliberately unlogged).
    pub fn retire_head(&mut self) -> RobEntry {
        let tag = self.head_tag() as usize;
        self.log.read(tag as u32);
        let e = std::mem::take(&mut self.slots[tag]);
        self.head = (self.head + 1) % Self::CAP;
        self.count = (self.count - 1) & 0x7f;
        e
    }

    /// Removes the youngest entry (misprediction walk). Returns it, so
    /// like retirement it is a logged read.
    pub fn pop_tail(&mut self) -> RobEntry {
        self.tail = (self.tail + Self::CAP - 1) % Self::CAP;
        self.count = (self.count - 1) & 0x7f;
        let tag = (self.tail % Self::CAP) as usize;
        self.log.read(tag as u32);
        std::mem::take(&mut self.slots[tag])
    }

    /// Ring age of `tag`: 0 for the head, increasing toward the tail.
    pub fn age(&self, tag: u64) -> u64 {
        (tag + Self::CAP - self.head % Self::CAP) % Self::CAP
    }

    /// Whether `a` is strictly younger (allocated later) than `b`.
    pub fn younger(&self, a: u64, b: u64) -> bool {
        self.age(a) > self.age(b)
    }

    /// Access an entry by tag (always in range via masking): a logged
    /// whole-entry read.
    pub fn entry(&mut self, tag: u64) -> &RobEntry {
        let tag = (tag % Self::CAP) as usize;
        self.log.read(tag as u32);
        &self.slots[tag]
    }

    /// Mutable access by tag: logged as a read (field writes through the
    /// returned reference stay unlogged — the safe, under-claiming side).
    pub fn entry_mut(&mut self, tag: u64) -> &mut RobEntry {
        let tag = (tag % Self::CAP) as usize;
        self.log.read(tag as u32);
        &mut self.slots[tag]
    }

    /// Empties the ROB (full flush): logged full-entry writes.
    pub fn clear(&mut self) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            self.log.write(i as u32);
            *s = RobEntry::default();
        }
        self.head = 0;
        self.tail = 0;
        self.count = 0;
    }

    /// Visits all entries and ring pointers. ROB tags live in the `robptr`
    /// category.
    pub fn visit(&mut self, v: &mut dyn StateVisitor, parity_enabled: bool, ptr_ecc: bool) {
        for s in self.slots.iter_mut() {
            s.visit(v, parity_enabled, ptr_ecc);
        }
        let q = FieldMeta::new(Category::Qctrl, StorageKind::Latch);
        v.field(q, 6, &mut self.head);
        v.field(q, 6, &mut self.tail);
        v.field(q, 7, &mut self.count);
    }
}

impl Default for Rob {
    fn default() -> Self {
        Rob::new()
    }
}

/// Load queue entry states (2-bit `ctrl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadState {
    /// Waiting for address generation.
    #[default]
    WaitAddr = 0,
    /// Address known; access in progress or pending retry.
    Access = 1,
    /// Data returned and written back.
    Done = 2,
}

/// One load queue entry.
#[derive(Debug, Clone, Default)]
pub struct LqEntry {
    /// Entry allocated.
    pub valid: bool,
    /// Effective address (valid once `state != WaitAddr`).
    pub addr: u64,
    /// Access size in bytes (1/2/4/8, stored as log2: 2 bits).
    pub size_log2: u64,
    /// Progress state.
    pub state: LoadState,
    /// Cycles until data arrives (in-flight access).
    pub data_timer: u64,
    /// Whether an access is in flight (data_timer counting).
    pub inflight: bool,
    /// Waiting for a cache-line fill (MHR).
    pub fill_wait: bool,
    /// Data was forwarded from the store queue ("state in the memory unit
    /// that records store to load forwarding").
    pub forwarded: bool,
    /// Store queue slot the data was forwarded from.
    pub fwd_sq: u64,
    /// Forwarding source value (data category).
    pub fwd_value: u64,
    /// Scheduler slot of this load (freed when the data arrives).
    pub sched: u64,
    /// Pointer-ECC check bits for `dst_preg`.
    pub dst_ecc: u64,
    /// ROB tag of the load.
    pub rob: u64,
    /// Destination physical register.
    pub dst_preg: u64,
    /// Load PC (for store-set training).
    pub pc: u64,
    /// Raw instruction word (for extension semantics on writeback).
    pub raw: u64,
}

impl LqEntry {
    /// Access size in bytes.
    pub fn size(&self) -> u64 {
        1 << (self.size_log2 & 3)
    }

    fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        let ram = StorageKind::Ram;
        visit_bool(v, FieldMeta::new(Category::Valid, ram), &mut self.valid);
        v.field(FieldMeta::new(Category::Addr, ram), 64, &mut self.addr);
        v.field(FieldMeta::new(Category::Ctrl, ram), 2, &mut self.size_log2);
        let mut st = self.state as u64;
        v.field(FieldMeta::new(Category::Ctrl, ram), 2, &mut st);
        self.state = match st & 3 {
            0 => LoadState::WaitAddr,
            1 => LoadState::Access,
            _ => LoadState::Done,
        };
        v.field(FieldMeta::new(Category::Ctrl, ram), 4, &mut self.data_timer);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.inflight);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.fill_wait);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.forwarded);
        v.field(FieldMeta::new(Category::Ctrl, ram), 4, &mut self.fwd_sq);
        v.field(FieldMeta::new(Category::Data, ram), 64, &mut self.fwd_value);
        v.field(FieldMeta::new(Category::Ctrl, ram), 5, &mut self.sched);
        v.field(FieldMeta::new(Category::Robptr, ram), 6, &mut self.rob);
        v.field(FieldMeta::new(Category::Regptr, ram), 7, &mut self.dst_preg);
        if ptr_ecc {
            v.field(FieldMeta::new(Category::Ecc, ram), 4, &mut self.dst_ecc);
        }
        visit_pc(v, ram, &mut self.pc);
        v.field(FieldMeta::new(Category::Insn, ram), 32, &mut self.raw);
    }
}

/// One store queue entry.
#[derive(Debug, Clone, Default)]
pub struct SqEntry {
    /// Entry allocated.
    pub valid: bool,
    /// Effective address.
    pub addr: u64,
    /// Address computed.
    pub addr_valid: bool,
    /// Store data.
    pub data: u64,
    /// Data operand captured.
    pub data_valid: bool,
    /// Access size (log2, 2 bits).
    pub size_log2: u64,
    /// ROB tag.
    pub rob: u64,
    /// Store PC (store-set training).
    pub pc: u64,
    /// Retired, awaiting drain to the cache ("the store buffer maintains
    /// its state across pipe flushes").
    pub senior: bool,
}

impl SqEntry {
    /// Access size in bytes.
    pub fn size(&self) -> u64 {
        1 << (self.size_log2 & 3)
    }

    fn visit(&mut self, v: &mut dyn StateVisitor) {
        let ram = StorageKind::Ram;
        visit_bool(v, FieldMeta::new(Category::Valid, ram), &mut self.valid);
        v.field(FieldMeta::new(Category::Addr, ram), 64, &mut self.addr);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.addr_valid);
        v.field(FieldMeta::new(Category::Data, ram), 64, &mut self.data);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.data_valid);
        v.field(FieldMeta::new(Category::Ctrl, ram), 2, &mut self.size_log2);
        v.field(FieldMeta::new(Category::Robptr, ram), 6, &mut self.rob);
        visit_pc(v, ram, &mut self.pc);
        visit_bool(v, FieldMeta::new(Category::Qctrl, ram), &mut self.senior);
    }
}

/// Fixed (configuration-independent) word ordinals for the access log.
///
/// The log numbers every load-queue entry with [`lqw::WORDS`] words — the
/// full layout *including* `dst_ecc` — even when pointer ECC is off;
/// `Pipeline::drain_accesses` converts to the actual visit-order ordinal
/// for the active configuration. Keeping the log numbering fixed means no
/// structure needs to know the pipeline configuration.
pub mod lqw {
    /// Word ordinals of one load-queue entry, in visit order.
    pub const VALID: u32 = 0;
    /// Effective address.
    pub const ADDR: u32 = 1;
    /// Access size (log2).
    pub const SIZE: u32 = 2;
    /// Progress state.
    pub const STATE: u32 = 3;
    /// In-flight data timer.
    pub const TIMER: u32 = 4;
    /// Access in flight.
    pub const INFLIGHT: u32 = 5;
    /// Waiting on a line fill.
    pub const FILL_WAIT: u32 = 6;
    /// Data forwarded from the store queue.
    pub const FORWARDED: u32 = 7;
    /// Forwarding source slot.
    pub const FWD_SQ: u32 = 8;
    /// Forwarded value.
    pub const FWD_VALUE: u32 = 9;
    /// Scheduler slot.
    pub const SCHED: u32 = 10;
    /// ROB tag.
    pub const ROB: u32 = 11;
    /// Destination physical register.
    pub const DST_PREG: u32 = 12;
    /// Pointer-ECC check bits (exists in the visit walk only with pointer
    /// ECC enabled).
    pub const DST_ECC: u32 = 13;
    /// Load PC.
    pub const PC: u32 = 14;
    /// Raw instruction word.
    pub const RAW: u32 = 15;
    /// Words per entry in the fixed numbering.
    pub const WORDS: u32 = 16;
}

/// Fixed word ordinals of one store-queue entry, in visit order.
pub mod sqw {
    /// Entry allocated.
    pub const VALID: u32 = 0;
    /// Effective address.
    pub const ADDR: u32 = 1;
    /// Address computed.
    pub const ADDR_VALID: u32 = 2;
    /// Store data.
    pub const DATA: u32 = 3;
    /// Data captured.
    pub const DATA_VALID: u32 = 4;
    /// Access size (log2).
    pub const SIZE: u32 = 5;
    /// ROB tag.
    pub const ROB: u32 = 6;
    /// Store PC.
    pub const PC: u32 = 7;
    /// Senior (retired, draining).
    pub const SENIOR: u32 = 8;
    /// Words per entry.
    pub const WORDS: u32 = 9;
}

/// First store-queue word in the fixed Lsq-local numbering.
pub const SQ_BASE: u32 = sizes::LOAD_QUEUE as u32 * lqw::WORDS;

/// The 16-entry load queue and 16-entry store queue (circular).
///
/// The entry arrays are private: every read and full-word write from the
/// pipeline's step path goes through the logged accessors below, which is
/// what lets the word-parallel trial engine prove a flipped cell was never
/// consumed. Observers (state walks, invariant checks, tests) use
/// [`Lsq::peek_lq`] / [`Lsq::peek_sq`], which never log.
#[derive(Debug, Clone)]
pub struct Lsq {
    lq: Vec<LqEntry>,
    /// Load ring head (4-bit).
    pub lq_head: u64,
    /// Load ring tail.
    pub lq_tail: u64,
    /// Load occupancy (5-bit).
    pub lq_count: u64,
    sq: Vec<SqEntry>,
    /// Store ring head.
    pub sq_head: u64,
    /// Store ring tail.
    pub sq_tail: u64,
    /// Store occupancy.
    pub sq_count: u64,
    /// Word-granular access log for the sliced trial engine.
    pub log: AccessLog,
}

impl Lsq {
    const LCAP: u64 = sizes::LOAD_QUEUE as u64;
    const SCAP: u64 = sizes::STORE_QUEUE as u64;

    /// Creates empty queues.
    pub fn new() -> Lsq {
        Lsq {
            lq: (0..sizes::LOAD_QUEUE).map(|_| LqEntry::default()).collect(),
            lq_head: 0,
            lq_tail: 0,
            lq_count: 0,
            sq: (0..sizes::STORE_QUEUE).map(|_| SqEntry::default()).collect(),
            sq_head: 0,
            sq_tail: 0,
            sq_count: 0,
            log: AccessLog::default(),
        }
    }

    #[inline(always)]
    fn lord(i: usize, word: u32) -> u32 {
        (i % sizes::LOAD_QUEUE) as u32 * lqw::WORDS + word
    }

    #[inline(always)]
    fn sord(i: usize, word: u32) -> u32 {
        SQ_BASE + (i % sizes::STORE_QUEUE) as u32 * sqw::WORDS + word
    }

    /// Unlogged load-queue access for observers and tests only — never use
    /// on the step path.
    pub fn peek_lq(&self, i: usize) -> &LqEntry {
        &self.lq[i % sizes::LOAD_QUEUE]
    }

    /// Unlogged store-queue access for observers and tests only.
    pub fn peek_sq(&self, i: usize) -> &SqEntry {
        &self.sq[i % sizes::STORE_QUEUE]
    }

    /// Test-only mutable access; logs nothing.
    #[doc(hidden)]
    pub fn poke_lq(&mut self, i: usize) -> &mut LqEntry {
        &mut self.lq[i % sizes::LOAD_QUEUE]
    }

    /// Test-only mutable access; logs nothing.
    #[doc(hidden)]
    pub fn poke_sq(&mut self, i: usize) -> &mut SqEntry {
        &mut self.sq[i % sizes::STORE_QUEUE]
    }

    /// Free load slots.
    pub fn lq_free(&self) -> u64 {
        Self::LCAP - self.lq_count.min(Self::LCAP)
    }

    /// Free store slots.
    pub fn sq_free(&self) -> u64 {
        Self::SCAP - self.sq_count.min(Self::SCAP)
    }

    fn log_lq_entry_write(&mut self, i: usize) {
        if self.log.enabled() {
            for w in 0..lqw::WORDS {
                self.log.write(Self::lord(i, w));
            }
        }
    }

    fn log_sq_entry_write(&mut self, i: usize) {
        if self.log.enabled() {
            for w in 0..sqw::WORDS {
                self.log.write(Self::sord(i, w));
            }
        }
    }

    /// Allocates a load slot, returning its index.
    pub fn alloc_load(&mut self, e: LqEntry) -> u64 {
        let i = self.lq_tail % Self::LCAP;
        self.lq[i as usize] = e;
        self.lq[i as usize].valid = true;
        self.log_lq_entry_write(i as usize);
        self.lq_tail = (self.lq_tail + 1) % Self::LCAP;
        self.lq_count = (self.lq_count + 1) & 0x1f;
        i
    }

    /// Allocates a store slot, returning its index.
    pub fn alloc_store(&mut self, e: SqEntry) -> u64 {
        let i = self.sq_tail % Self::SCAP;
        self.sq[i as usize] = e;
        self.sq[i as usize].valid = true;
        self.log_sq_entry_write(i as usize);
        self.sq_tail = (self.sq_tail + 1) % Self::SCAP;
        self.sq_count = (self.sq_count + 1) & 0x1f;
        i
    }

    /// Frees the load at ring index `i` if it is the head (loads retire in
    /// order; out-of-order frees only happen through squashes).
    pub fn free_load_head(&mut self) {
        if self.lq_count.min(Self::LCAP) == 0 {
            return;
        }
        let i = (self.lq_head % Self::LCAP) as usize;
        self.lq[i] = LqEntry::default();
        self.log_lq_entry_write(i);
        self.lq_head = (self.lq_head + 1) % Self::LCAP;
        self.lq_count = (self.lq_count - 1) & 0x1f;
    }

    /// Pops the youngest load (misprediction walk).
    pub fn pop_load_tail(&mut self) {
        if self.lq_count.min(Self::LCAP) == 0 {
            return;
        }
        self.lq_tail = (self.lq_tail + Self::LCAP - 1) % Self::LCAP;
        let i = (self.lq_tail % Self::LCAP) as usize;
        self.lq[i] = LqEntry::default();
        self.log_lq_entry_write(i);
        self.lq_count = (self.lq_count - 1) & 0x1f;
    }

    /// Pops the youngest (non-senior) store (misprediction walk).
    pub fn pop_store_tail(&mut self) {
        if self.sq_count.min(Self::SCAP) == 0 {
            return;
        }
        self.sq_tail = (self.sq_tail + Self::SCAP - 1) % Self::SCAP;
        let i = (self.sq_tail % Self::SCAP) as usize;
        self.sq[i] = SqEntry::default();
        self.log_sq_entry_write(i);
        self.sq_count = (self.sq_count - 1) & 0x1f;
    }

    /// Drops every load and every non-senior store (full flush). Senior
    /// stores survive and continue draining.
    pub fn flush_keep_senior(&mut self) {
        for i in 0..sizes::LOAD_QUEUE {
            self.lq[i] = LqEntry::default();
            self.log_lq_entry_write(i);
        }
        self.lq_head = 0;
        self.lq_tail = 0;
        self.lq_count = 0;
        // Compact: drop non-senior stores from the tail side.
        while self.sq_count.min(Self::SCAP) > 0 {
            let last = ((self.sq_tail + Self::SCAP - 1) % Self::SCAP) as usize;
            if self.sq_senior(last) {
                break;
            }
            self.pop_store_tail();
        }
    }

    // --- Logged per-field accessors (the step path's only way in) ---
    //
    // Reads log the word consumed; setters log a full-word overwrite. Index
    // arguments are masked by capacity so fault-corrupted indices stay safe.

    /// Logged read: load entry allocated?
    pub fn lq_valid(&mut self, i: usize) -> bool {
        self.log.read(Self::lord(i, lqw::VALID));
        self.lq[i % sizes::LOAD_QUEUE].valid
    }

    /// Logged read: load effective address.
    pub fn lq_addr(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::ADDR));
        self.lq[i % sizes::LOAD_QUEUE].addr
    }

    /// Logged read: load access size in bytes.
    pub fn lq_size(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::SIZE));
        self.lq[i % sizes::LOAD_QUEUE].size()
    }

    /// Logged read: load progress state.
    pub fn lq_state(&mut self, i: usize) -> LoadState {
        self.log.read(Self::lord(i, lqw::STATE));
        self.lq[i % sizes::LOAD_QUEUE].state
    }

    /// Logged read: in-flight data timer.
    pub fn lq_data_timer(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::TIMER));
        self.lq[i % sizes::LOAD_QUEUE].data_timer
    }

    /// Logged read: access in flight?
    pub fn lq_inflight(&mut self, i: usize) -> bool {
        self.log.read(Self::lord(i, lqw::INFLIGHT));
        self.lq[i % sizes::LOAD_QUEUE].inflight
    }

    /// Logged read: waiting on a line fill?
    pub fn lq_fill_wait(&mut self, i: usize) -> bool {
        self.log.read(Self::lord(i, lqw::FILL_WAIT));
        self.lq[i % sizes::LOAD_QUEUE].fill_wait
    }

    /// Logged read: data forwarded from the store queue?
    pub fn lq_forwarded(&mut self, i: usize) -> bool {
        self.log.read(Self::lord(i, lqw::FORWARDED));
        self.lq[i % sizes::LOAD_QUEUE].forwarded
    }

    /// Logged read: forwarding source slot.
    pub fn lq_fwd_sq(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::FWD_SQ));
        self.lq[i % sizes::LOAD_QUEUE].fwd_sq
    }

    /// Logged read: forwarded value.
    pub fn lq_fwd_value(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::FWD_VALUE));
        self.lq[i % sizes::LOAD_QUEUE].fwd_value
    }

    /// Logged read: scheduler slot of the load.
    pub fn lq_sched(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::SCHED));
        self.lq[i % sizes::LOAD_QUEUE].sched
    }

    /// Logged read: ROB tag of the load.
    pub fn lq_rob(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::ROB));
        self.lq[i % sizes::LOAD_QUEUE].rob
    }

    /// Logged read: destination physical register.
    pub fn lq_dst_preg(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::DST_PREG));
        self.lq[i % sizes::LOAD_QUEUE].dst_preg
    }

    /// Logged read: pointer-ECC check bits for the destination.
    pub fn lq_dst_ecc(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::DST_ECC));
        self.lq[i % sizes::LOAD_QUEUE].dst_ecc
    }

    /// Logged read: load PC.
    pub fn lq_pc(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::PC));
        self.lq[i % sizes::LOAD_QUEUE].pc
    }

    /// Logged read: raw instruction word.
    pub fn lq_raw(&mut self, i: usize) -> u64 {
        self.log.read(Self::lord(i, lqw::RAW));
        self.lq[i % sizes::LOAD_QUEUE].raw
    }

    /// Logged write of the load's effective address.
    pub fn set_lq_addr(&mut self, i: usize, addr: u64) {
        self.log.write(Self::lord(i, lqw::ADDR));
        self.lq[i % sizes::LOAD_QUEUE].addr = addr;
    }

    /// Logged write of the load's scheduler slot.
    pub fn set_lq_sched(&mut self, i: usize, sched: u64) {
        self.log.write(Self::lord(i, lqw::SCHED));
        self.lq[i % sizes::LOAD_QUEUE].sched = sched;
    }

    /// Logged write of the load's progress state.
    pub fn set_lq_state(&mut self, i: usize, st: LoadState) {
        self.log.write(Self::lord(i, lqw::STATE));
        self.lq[i % sizes::LOAD_QUEUE].state = st;
    }

    /// Logged write of the in-flight data timer.
    pub fn set_lq_data_timer(&mut self, i: usize, t: u64) {
        self.log.write(Self::lord(i, lqw::TIMER));
        self.lq[i % sizes::LOAD_QUEUE].data_timer = t;
    }

    /// Logged write of the in-flight flag.
    pub fn set_lq_inflight(&mut self, i: usize, on: bool) {
        self.log.write(Self::lord(i, lqw::INFLIGHT));
        self.lq[i % sizes::LOAD_QUEUE].inflight = on;
    }

    /// Logged write of the fill-wait flag.
    pub fn set_lq_fill_wait(&mut self, i: usize, on: bool) {
        self.log.write(Self::lord(i, lqw::FILL_WAIT));
        self.lq[i % sizes::LOAD_QUEUE].fill_wait = on;
    }

    /// Logged write of the forwarded flag.
    pub fn set_lq_forwarded(&mut self, i: usize, on: bool) {
        self.log.write(Self::lord(i, lqw::FORWARDED));
        self.lq[i % sizes::LOAD_QUEUE].forwarded = on;
    }

    /// Logged write of the forwarding source slot.
    pub fn set_lq_fwd_sq(&mut self, i: usize, sq: u64) {
        self.log.write(Self::lord(i, lqw::FWD_SQ));
        self.lq[i % sizes::LOAD_QUEUE].fwd_sq = sq;
    }

    /// Logged write of the forwarded value.
    pub fn set_lq_fwd_value(&mut self, i: usize, v: u64) {
        self.log.write(Self::lord(i, lqw::FWD_VALUE));
        self.lq[i % sizes::LOAD_QUEUE].fwd_value = v;
    }

    /// Logged read: store entry allocated?
    pub fn sq_valid(&mut self, i: usize) -> bool {
        self.log.read(Self::sord(i, sqw::VALID));
        self.sq[i % sizes::STORE_QUEUE].valid
    }

    /// Logged read: store effective address.
    pub fn sq_addr(&mut self, i: usize) -> u64 {
        self.log.read(Self::sord(i, sqw::ADDR));
        self.sq[i % sizes::STORE_QUEUE].addr
    }

    /// Logged read: store address computed?
    pub fn sq_addr_valid(&mut self, i: usize) -> bool {
        self.log.read(Self::sord(i, sqw::ADDR_VALID));
        self.sq[i % sizes::STORE_QUEUE].addr_valid
    }

    /// Logged read: store data.
    pub fn sq_data(&mut self, i: usize) -> u64 {
        self.log.read(Self::sord(i, sqw::DATA));
        self.sq[i % sizes::STORE_QUEUE].data
    }

    /// Logged read: store data captured?
    pub fn sq_data_valid(&mut self, i: usize) -> bool {
        self.log.read(Self::sord(i, sqw::DATA_VALID));
        self.sq[i % sizes::STORE_QUEUE].data_valid
    }

    /// Logged read: store access size in bytes.
    pub fn sq_size(&mut self, i: usize) -> u64 {
        self.log.read(Self::sord(i, sqw::SIZE));
        self.sq[i % sizes::STORE_QUEUE].size()
    }

    /// Logged read: ROB tag of the store.
    pub fn sq_rob(&mut self, i: usize) -> u64 {
        self.log.read(Self::sord(i, sqw::ROB));
        self.sq[i % sizes::STORE_QUEUE].rob
    }

    /// Logged read: store PC.
    pub fn sq_pc(&mut self, i: usize) -> u64 {
        self.log.read(Self::sord(i, sqw::PC));
        self.sq[i % sizes::STORE_QUEUE].pc
    }

    /// Logged read: store is senior (retired, draining)?
    pub fn sq_senior(&mut self, i: usize) -> bool {
        self.log.read(Self::sord(i, sqw::SENIOR));
        self.sq[i % sizes::STORE_QUEUE].senior
    }

    /// Logged write of the store's effective address.
    pub fn set_sq_addr(&mut self, i: usize, addr: u64) {
        self.log.write(Self::sord(i, sqw::ADDR));
        self.sq[i % sizes::STORE_QUEUE].addr = addr;
    }

    /// Logged write of the address-computed flag.
    pub fn set_sq_addr_valid(&mut self, i: usize, on: bool) {
        self.log.write(Self::sord(i, sqw::ADDR_VALID));
        self.sq[i % sizes::STORE_QUEUE].addr_valid = on;
    }

    /// Logged write of the store data.
    pub fn set_sq_data(&mut self, i: usize, v: u64) {
        self.log.write(Self::sord(i, sqw::DATA));
        self.sq[i % sizes::STORE_QUEUE].data = v;
    }

    /// Logged write of the data-captured flag.
    pub fn set_sq_data_valid(&mut self, i: usize, on: bool) {
        self.log.write(Self::sord(i, sqw::DATA_VALID));
        self.sq[i % sizes::STORE_QUEUE].data_valid = on;
    }

    /// Logged write of the senior flag.
    pub fn set_sq_senior(&mut self, i: usize, on: bool) {
        self.log.write(Self::sord(i, sqw::SENIOR));
        self.sq[i % sizes::STORE_QUEUE].senior = on;
    }

    /// Clears a store entry (drain completion): logged full-entry write.
    pub fn clear_sq(&mut self, i: usize) {
        let i = i % sizes::STORE_QUEUE;
        self.sq[i] = SqEntry::default();
        self.log_sq_entry_write(i);
    }

    /// Visits both queues and their ring pointers.
    pub fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        for e in self.lq.iter_mut() {
            e.visit(v, ptr_ecc);
        }
        for e in self.sq.iter_mut() {
            e.visit(v);
        }
        let q = FieldMeta::new(Category::Qctrl, StorageKind::Latch);
        v.field(q, 4, &mut self.lq_head);
        v.field(q, 4, &mut self.lq_tail);
        v.field(q, 5, &mut self.lq_count);
        v.field(q, 4, &mut self.sq_head);
        v.field(q, 4, &mut self.sq_tail);
        v.field(q, 5, &mut self.sq_count);
    }
}

impl Default for Lsq {
    fn default() -> Self {
        Lsq::new()
    }
}

/// Converts an access size in bytes to the stored log2 form.
pub fn size_to_log2(size: u64) -> u64 {
    match size {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => 3,
    }
}

/// Whether two (addr, size) ranges overlap.
pub fn ranges_overlap(a: u64, asize: u64, b: u64, bsize: u64) -> bool {
    a < b.wrapping_add(bsize) && b < a.wrapping_add(asize)
}

/// Whether range `(inner, isize)` is fully contained in `(outer, osize)`.
pub fn range_contains(outer: u64, osize: u64, inner: u64, isize: u64) -> bool {
    inner >= outer && inner.wrapping_add(isize) <= outer.wrapping_add(osize)
}

/// The architectural register a 5-bit field names.
pub fn areg(bits: u64) -> Reg {
    Reg::from_number((bits & 31) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_bitstate::Census;

    #[test]
    fn fetch_queue_fifo_order() {
        let mut fq = FetchQueue::new();
        for i in 0..5u64 {
            let mut p = SlotPayload::default();
            p.pc = 0x1000 + i * 4;
            fq.push(p);
        }
        assert_eq!(fq.len(), 5);
        for i in 0..5u64 {
            assert_eq!(fq.pop().unwrap().pc, 0x1000 + i * 4);
        }
        assert!(fq.pop().is_none());
    }

    #[test]
    fn fetch_queue_capacity() {
        let mut fq = FetchQueue::new();
        for _ in 0..32 {
            fq.push(SlotPayload::default());
        }
        assert_eq!(fq.free(), 0);
        fq.clear();
        assert_eq!(fq.free(), 32);
    }

    #[test]
    fn rob_alloc_retire_cycle() {
        let mut rob = Rob::new();
        let t0 = rob.alloc(RobEntry { pc: 0x100, ..Default::default() });
        let t1 = rob.alloc(RobEntry { pc: 0x104, ..Default::default() });
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.head_tag(), t0);
        assert!(rob.younger(t1, t0));
        assert!(!rob.younger(t0, t1));
        let e = rob.retire_head();
        assert_eq!(e.pc, 0x100);
        assert_eq!(rob.head_tag(), t1);
    }

    #[test]
    fn rob_tail_walk() {
        let mut rob = Rob::new();
        rob.alloc(RobEntry { pc: 0x100, ..Default::default() });
        rob.alloc(RobEntry { pc: 0x104, ..Default::default() });
        rob.alloc(RobEntry { pc: 0x108, ..Default::default() });
        let e = rob.pop_tail();
        assert_eq!(e.pc, 0x108);
        assert_eq!(rob.len(), 2);
    }

    #[test]
    fn rob_age_wraps_correctly() {
        let mut rob = Rob::new();
        // Advance head/tail near the wrap point.
        for _ in 0..60 {
            rob.alloc(RobEntry::default());
            rob.retire_head();
        }
        let a = rob.alloc(RobEntry::default());
        let b = rob.alloc(RobEntry::default());
        let c = rob.alloc(RobEntry::default());
        let d = rob.alloc(RobEntry::default());
        let e = rob.alloc(RobEntry::default());
        assert!(rob.younger(e, a));
        assert!(rob.younger(d, c));
        assert_eq!(rob.age(a), 0);
        assert_eq!(rob.age(b), 1);
        assert_eq!(rob.age(e), 4);
    }

    #[test]
    fn lsq_allocation_and_flush() {
        let mut lsq = Lsq::new();
        let l = lsq.alloc_load(LqEntry { rob: 3, ..Default::default() });
        let s = lsq.alloc_store(SqEntry { rob: 4, ..Default::default() });
        assert_eq!((l, s), (0, 0));
        assert_eq!(lsq.lq_free(), 15);
        assert_eq!(lsq.sq_free(), 15);
        lsq.poke_sq(0).senior = true;
        lsq.alloc_store(SqEntry { rob: 9, ..Default::default() });
        lsq.flush_keep_senior();
        assert_eq!(lsq.lq_free(), 16, "loads fully cleared");
        assert_eq!(lsq.sq_free(), 15, "senior store survives the flush");
        assert!(lsq.peek_sq(0).senior);
        assert!(!lsq.peek_sq(1).valid);
    }

    #[test]
    fn overlap_and_containment() {
        assert!(ranges_overlap(100, 8, 104, 8));
        assert!(!ranges_overlap(100, 4, 104, 4));
        assert!(range_contains(100, 8, 104, 4));
        assert!(!range_contains(100, 8, 104, 8));
        assert!(range_contains(100, 8, 100, 8));
    }

    #[test]
    fn size_encoding_round_trip() {
        for s in [1u64, 2, 4, 8] {
            let e = LqEntry { size_log2: size_to_log2(s), ..Default::default() };
            assert_eq!(e.size(), s);
        }
    }

    #[test]
    fn exc_code_round_trip() {
        for bits in 0..8u64 {
            let c = ExcCode::from_bits(bits);
            if bits <= 6 {
                assert_eq!(c as u64, bits);
            } else {
                assert_eq!(c, ExcCode::BadPal);
            }
        }
    }

    #[test]
    fn census_categories_present() {
        let mut rob = Rob::new();
        let mut c = Census::new();
        rob.visit(&mut c, true, false);
        // 64 entries x 2 x 62-bit PC fields.
        assert_eq!(c.bits(Category::Pc, StorageKind::Ram), 64 * 124);
        assert_eq!(c.bits(Category::Insn, StorageKind::Ram), 64 * 32);
        assert_eq!(c.bits(Category::Regptr, StorageKind::Ram), 64 * 14);
        assert_eq!(c.bits(Category::Parity, StorageKind::Ram), 64);
        assert_eq!(c.bits(Category::Qctrl, StorageKind::Latch), 19);

        let mut lsq = Lsq::new();
        let mut c = Census::new();
        lsq.visit(&mut c, false);
        assert_eq!(c.bits(Category::Addr, StorageKind::Ram), 32 * 64);
        assert_eq!(c.bits(Category::Data, StorageKind::Ram), 32 * 64);
    }

    #[test]
    fn corrupted_ring_pointers_do_not_panic() {
        let mut fq = FetchQueue::new();
        fq.head = 63;
        fq.tail = 70;
        fq.count = 63;
        for _ in 0..100 {
            let _ = fq.pop();
        }
        let mut rob = Rob::new();
        rob.head = 127;
        rob.count = 127;
        let _ = rob.retire_head();
        let _ = rob.entry(999);
        let mut lsq = Lsq::new();
        lsq.sq_tail = 31;
        lsq.sq_count = 31;
        lsq.pop_store_tail();
        lsq.flush_keep_senior();
    }
}
