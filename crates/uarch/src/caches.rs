//! Cache timing models and miss handling registers.
//!
//! Cache *data* is not duplicated: the model is write-through, so line
//! contents always equal main memory, and loads read memory directly once
//! the tag model reports a hit (or after the miss latency). Only the tag/
//! valid/LRU arrays are modeled — they are *shadow* state (fingerprinted
//! but excluded from injection, as the paper excludes cache arrays).
//!
//! Miss handling registers (MHRs) *are* injectable pipeline state: the
//! paper explicitly injects "the various structures that support the
//! caches, such as miss handling registers".

use tfsim_bitstate::{Category, FieldMeta, StateVisitor, StorageKind, VisitState};

use crate::access::AccessLog;
use crate::config::sizes;

/// A 2-way set-associative tag array with 1-bit LRU per set.
#[derive(Debug, Clone)]
pub struct TagCache {
    valid: Vec<u64>, // [set * 2 + way]
    tags: Vec<u64>,
    lru: Vec<u64>, // 1 bit per set: way to replace next
    sets: u64,
    gen: u64, // generation stamp: advances on every content change
}

impl TagCache {
    /// Creates a cache of `bytes` capacity with the global line size and
    /// 2-way associativity.
    pub fn new(bytes: u64) -> TagCache {
        let sets = bytes / sizes::LINE_BYTES / sizes::CACHE_WAYS as u64;
        assert!(sets.is_power_of_two());
        TagCache {
            valid: vec![0; (sets * 2) as usize],
            tags: vec![0; (sets * 2) as usize],
            lru: vec![0; sets as usize],
            sets,
            gen: 0,
        }
    }

    /// Generation stamp for cached fingerprinting: unchanged stamp ⇒
    /// unchanged tag/valid/LRU content. Steady-state hits that re-confirm
    /// an already-correct LRU bit do not advance it.
    pub fn state_gen(&self) -> u64 {
        self.gen
    }

    fn set_and_tag(&self, addr: u64) -> (u64, u64) {
        let line = addr / sizes::LINE_BYTES;
        (line & (self.sets - 1), line / self.sets)
    }

    /// Probes the cache; updates LRU on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        for way in 0..2u64 {
            let i = (set * 2 + way) as usize;
            if self.valid[i] == 1 && self.tags[i] == tag {
                // LRU points at the way to replace: the other one.
                if self.lru[set as usize] != 1 - way {
                    self.lru[set as usize] = 1 - way;
                    self.gen += 1;
                }
                return true;
            }
        }
        false
    }

    /// Probes without touching LRU.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        (0..2u64).any(|way| {
            let i = (set * 2 + way) as usize;
            self.valid[i] == 1 && self.tags[i] == tag
        })
    }

    /// Installs the line containing `addr`, evicting per LRU.
    pub fn fill(&mut self, addr: u64) {
        if self.contains(addr) {
            return;
        }
        let (set, tag) = self.set_and_tag(addr);
        let way = self.lru[set as usize] & 1;
        let i = (set * 2 + way) as usize;
        self.valid[i] = 1;
        self.tags[i] = tag;
        self.lru[set as usize] = 1 - way;
        self.gen += 1;
    }
}

impl VisitState for TagCache {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        let m = FieldMeta::shadow(Category::Ctrl, StorageKind::Ram);
        v.array(m, 1, &mut self.valid);
        v.array(m, 40, &mut self.tags);
        v.array(m, 1, &mut self.lru);
    }
}

/// One miss handling register: an outstanding line fill.
#[derive(Debug, Clone, Default)]
pub struct Mhr {
    /// Entry holds a live miss.
    pub valid: bool,
    /// Line-aligned miss address.
    pub addr: u64,
    /// Cycles until the fill completes (4-bit down-counter).
    pub timer: u64,
}

/// The 16-entry non-coalescing miss handling register file.
///
/// Injectable: `valid` bits, `addr` fields, and the fill timers are all
/// real pipeline state that the campaigns target. Address fields are RAM
/// cells (matching the paper's Table 1, where the `addr` category is
/// predominantly RAM); the valid bits and timers are latches.
#[derive(Debug, Clone)]
pub struct MhrFile {
    entries: Vec<Mhr>,
    /// Word-granular access log for the sliced trial engine. Local word
    /// ordinals: entry `e` occupies `3*e + {0: valid, 1: addr, 2: timer}`.
    pub log: AccessLog,
}

/// Access-log words per MHR entry (valid, addr, timer).
pub const MHR_WORDS: u32 = 3;

impl MhrFile {
    /// Creates an empty MHR file of the configured capacity.
    pub fn new() -> MhrFile {
        MhrFile {
            entries: (0..sizes::MHRS).map(|_| Mhr::default()).collect(),
            log: AccessLog::default(),
        }
    }

    /// Allocates an MHR for the line containing `addr`. Returns `false`
    /// when all entries are busy (the access must retry — lockup-free but
    /// bounded).
    pub fn allocate(&mut self, addr: u64) -> bool {
        let line = addr & !(sizes::LINE_BYTES - 1);
        // Non-coalescing: a duplicate line still takes a fresh entry, but
        // an existing fill makes allocation unnecessary.
        if self.pending(line) {
            return true;
        }
        for i in 0..self.entries.len() {
            self.log.read(i as u32 * MHR_WORDS);
            if !self.entries[i].valid {
                self.log.write(i as u32 * MHR_WORDS);
                self.log.write(i as u32 * MHR_WORDS + 1);
                self.log.write(i as u32 * MHR_WORDS + 2);
                let e = &mut self.entries[i];
                e.valid = true;
                e.addr = line;
                e.timer = sizes::MISS_LATENCY as u64;
                return true;
            }
        }
        false
    }

    /// Whether a fill for the line containing `addr` is outstanding.
    ///
    /// Conservatively logs a read of every entry's valid bit and address —
    /// the scan's outcome can depend on any of them.
    pub fn pending(&mut self, addr: u64) -> bool {
        let line = addr & !(sizes::LINE_BYTES - 1);
        if self.log.enabled() {
            for i in 0..self.entries.len() as u32 {
                self.log.read(i * MHR_WORDS);
                self.log.read(i * MHR_WORDS + 1);
            }
        }
        self.entries.iter().any(|e| e.valid && e.addr == line)
    }

    /// Advances all timers one cycle and returns the addresses whose fills
    /// completed this cycle.
    pub fn tick(&mut self) -> Vec<u64> {
        let mut done = Vec::new();
        for i in 0..self.entries.len() {
            self.log.read(i as u32 * MHR_WORDS);
            if self.entries[i].valid {
                self.log.read(i as u32 * MHR_WORDS + 2);
                if self.entries[i].timer <= 1 {
                    self.log.read(i as u32 * MHR_WORDS + 1);
                    self.log.write(i as u32 * MHR_WORDS);
                    self.log.write(i as u32 * MHR_WORDS + 1);
                    self.log.write(i as u32 * MHR_WORDS + 2);
                    let e = &mut self.entries[i];
                    e.valid = false;
                    done.push(e.addr);
                    e.addr = 0;
                    e.timer = 0;
                } else {
                    self.entries[i].timer -= 1;
                }
            }
        }
        done
    }

    /// Drops all outstanding fills (used on full pipeline flush).
    pub fn clear(&mut self) {
        for i in 0..self.entries.len() {
            self.log.write(i as u32 * MHR_WORDS);
            self.log.write(i as u32 * MHR_WORDS + 1);
            self.log.write(i as u32 * MHR_WORDS + 2);
            let e = &mut self.entries[i];
            e.valid = false;
            e.addr = 0;
            e.timer = 0;
        }
    }

    /// Number of live entries (observer: never logs).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

impl Default for MhrFile {
    fn default() -> Self {
        MhrFile::new()
    }
}

impl VisitState for MhrFile {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        for e in self.entries.iter_mut() {
            tfsim_bitstate::visit_bool(
                v,
                FieldMeta::new(Category::Valid, StorageKind::Latch),
                &mut e.valid,
            );
            // Line-aligned address: expose the meaningful 58 bits so a
            // flip cannot break the alignment the hardware enforces by
            // wiring (low 6 bits do not physically exist in the MHR).
            let mut line = e.addr >> 6;
            v.field(FieldMeta::new(Category::Addr, StorageKind::Ram), 58, &mut line);
            e.addr = line << 6;
            v.field(FieldMeta::new(Category::Ctrl, StorageKind::Latch), 4, &mut e.timer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_miss_then_hit_after_fill() {
        let mut c = TagCache::new(sizes::DCACHE_BYTES);
        assert!(!c.access(0x1000));
        c.fill(0x1000);
        assert!(c.access(0x1000));
        assert!(c.access(0x1038), "same line must hit");
        assert!(!c.access(0x1040), "next line must miss");
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        let mut c = TagCache::new(sizes::ICACHE_BYTES);
        // Three addresses mapping to the same set (stride = sets*line).
        let sets = sizes::ICACHE_BYTES / sizes::LINE_BYTES / 2;
        let stride = sets * sizes::LINE_BYTES;
        c.fill(0x0);
        c.fill(stride);
        assert!(c.access(0x0) && c.access(stride));
        // Touch 0x0 so `stride` is LRU; filling a third evicts `stride`.
        c.access(0x0);
        c.fill(2 * stride);
        assert!(c.contains(0x0));
        assert!(!c.contains(stride));
        assert!(c.contains(2 * stride));
    }

    #[test]
    fn mhr_fills_complete_after_miss_latency() {
        let mut m = MhrFile::new();
        assert!(m.allocate(0x2345));
        assert!(m.pending(0x2340));
        let mut cycles = 0;
        loop {
            let done = m.tick();
            cycles += 1;
            if !done.is_empty() {
                assert_eq!(done, vec![0x2345 & !(sizes::LINE_BYTES - 1)]);
                break;
            }
            assert!(cycles < 20, "fill never completed");
        }
        assert_eq!(cycles, sizes::MISS_LATENCY);
        assert!(!m.pending(0x2345));
    }

    #[test]
    fn mhr_capacity_is_bounded() {
        let mut m = MhrFile::new();
        for i in 0..sizes::MHRS as u64 {
            assert!(m.allocate(i * 0x1000), "entry {i} should allocate");
        }
        assert_eq!(m.occupancy(), sizes::MHRS);
        assert!(!m.allocate(0x99_0000), "17th miss must be refused");
        // Duplicate of an in-flight line does not need a new entry.
        assert!(m.allocate(0x1000));
        m.clear();
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn mhr_state_is_injectable_but_cache_tags_are_not() {
        use tfsim_bitstate::{BitCount, InjectionMask};
        let mut m = MhrFile::new();
        let mut count = BitCount::new(InjectionMask::LatchesAndRams);
        m.visit_state(&mut count);
        assert_eq!(count.count as usize, sizes::MHRS * (1 + 58 + 4));
        let mut latches = BitCount::new(InjectionMask::LatchesOnly);
        m.visit_state(&mut latches);
        assert_eq!(latches.count as usize, sizes::MHRS * (1 + 4), "addr fields are RAM");
        let mut c = TagCache::new(sizes::DCACHE_BYTES);
        let mut count = BitCount::new(InjectionMask::LatchesAndRams);
        c.visit_state(&mut count);
        assert_eq!(count.count, 0);
    }

    #[test]
    fn mhr_visit_preserves_alignment() {
        use tfsim_bitstate::{FlipBit, InjectionMask};
        let mut m = MhrFile::new();
        m.allocate(0x12340);
        // Flip an addr bit; the stored address must stay line-aligned.
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 10);
        m.visit_state(&mut flip);
        for e in &m.entries {
            assert_eq!(e.addr % sizes::LINE_BYTES, 0);
        }
    }
}
