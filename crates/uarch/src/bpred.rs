//! Branch prediction: hybrid (bimodal + local + global) direction
//! predictor, 1024-entry 4-way BTB, and an 8-entry return address stack
//! with pointer recovery — the paper's Figure 2 front end.
//!
//! Prediction state only affects *timing*, never correctness (every
//! prediction is verified at execute), so the paper excludes it from fault
//! injection. All state here is therefore registered as *shadow* state:
//! fingerprinted for the µArch Match comparison but never injected.

use tfsim_bitstate::{Category, FieldMeta, StateVisitor, StorageKind, VisitState};

const BIMODAL_ENTRIES: usize = 4096;
const LOCAL_ENTRIES: usize = 1024;
const LOCAL_HIST_BITS: u32 = 10;
const GLOBAL_ENTRIES: usize = 4096;
const GHR_BITS: u32 = 12;

fn pc_index(pc: u64, entries: usize) -> usize {
    ((pc >> 2) as usize) & (entries - 1)
}

fn bump(counter: u64, taken: bool, max: u64) -> u64 {
    if taken {
        (counter + 1).min(max)
    } else {
        counter.saturating_sub(1)
    }
}

/// McFarling-style hybrid direction predictor: a bimodal table, a
/// two-level local predictor, a gshare global predictor, and two choosers
/// (local-vs-global, then hybrid-vs-bimodal).
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: Vec<u64>,     // 2-bit counters
    local_hist: Vec<u64>,  // 10-bit histories
    local_pred: Vec<u64>,  // 3-bit counters indexed by local history
    global_pred: Vec<u64>, // 2-bit counters indexed by pc ^ ghr
    choose_lg: Vec<u64>,   // 2-bit: local (low) vs global (high)
    choose_hb: Vec<u64>,   // 2-bit: bimodal (low) vs hybrid (high)
    ghr: u64,
    gen: u64, // generation stamp: advances on every content change
}

/// Writes `new` into `slot` and records whether the value changed. Keeps
/// generation stamps quiet when training saturated counters or re-shifting
/// an unchanged history — the common steady-state case.
fn set_changed(slot: &mut u64, new: u64, changed: &mut bool) {
    if *slot != new {
        *slot = new;
        *changed = true;
    }
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken initial state.
    pub fn new() -> BranchPredictor {
        BranchPredictor {
            bimodal: vec![1; BIMODAL_ENTRIES],
            local_hist: vec![0; LOCAL_ENTRIES],
            local_pred: vec![3; 1 << LOCAL_HIST_BITS],
            global_pred: vec![1; GLOBAL_ENTRIES],
            choose_lg: vec![1; GLOBAL_ENTRIES],
            choose_hb: vec![2; GLOBAL_ENTRIES],
            ghr: 0,
            gen: 0,
        }
    }

    /// Generation stamp for cached fingerprinting: unchanged stamp ⇒
    /// unchanged predictor content.
    pub fn state_gen(&self) -> u64 {
        self.gen
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        let b = self.bimodal[pc_index(pc, BIMODAL_ENTRIES)] >= 2;
        let lh = self.local_hist[pc_index(pc, LOCAL_ENTRIES)] as usize;
        let l = self.local_pred[lh] >= 4;
        let gi = self.global_index(pc);
        let g = self.global_pred[gi] >= 2;
        let hybrid = if self.choose_lg[gi] >= 2 { g } else { l };
        if self.choose_hb[pc_index(pc, GLOBAL_ENTRIES)] >= 2 {
            hybrid
        } else {
            b
        }
    }

    fn global_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.ghr) as usize) & (GLOBAL_ENTRIES - 1)
    }

    /// The current speculative global history (snapshot this at fetch so a
    /// squash can restore it).
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Restores the global history after a squash.
    pub fn restore_ghr(&mut self, ghr: u64) {
        let mut changed = false;
        set_changed(&mut self.ghr, ghr & ((1 << GHR_BITS) - 1), &mut changed);
        self.gen += changed as u64;
    }

    /// Speculatively shifts a predicted direction into the global history
    /// (called at fetch for every conditional branch).
    pub fn speculate(&mut self, taken: bool) {
        let mut changed = false;
        let new = ((self.ghr << 1) | taken as u64) & ((1 << GHR_BITS) - 1);
        set_changed(&mut self.ghr, new, &mut changed);
        self.gen += changed as u64;
    }

    /// Trains all components with the resolved outcome. `ghr_at_fetch` is
    /// the history snapshot taken when the branch was fetched (so the
    /// global component trains against the indices it predicted with).
    pub fn train(&mut self, pc: u64, taken: bool, ghr_at_fetch: u64) {
        let bi = pc_index(pc, BIMODAL_ENTRIES);
        let li = pc_index(pc, LOCAL_ENTRIES);
        let lh = self.local_hist[li] as usize;
        let gi = (((pc >> 2) ^ ghr_at_fetch) as usize) & (GLOBAL_ENTRIES - 1);

        let b_correct = (self.bimodal[bi] >= 2) == taken;
        let l_correct = (self.local_pred[lh] >= 4) == taken;
        let g_correct = (self.global_pred[gi] >= 2) == taken;
        let hybrid_correct = if self.choose_lg[gi] >= 2 { g_correct } else { l_correct };

        let mut changed = false;
        // Choosers move toward the component that was right.
        if g_correct != l_correct {
            let new = bump(self.choose_lg[gi], g_correct, 3);
            set_changed(&mut self.choose_lg[gi], new, &mut changed);
        }
        if hybrid_correct != b_correct {
            let hi = pc_index(pc, GLOBAL_ENTRIES);
            let new = bump(self.choose_hb[hi], hybrid_correct, 3);
            set_changed(&mut self.choose_hb[hi], new, &mut changed);
        }

        let new = bump(self.bimodal[bi], taken, 3);
        set_changed(&mut self.bimodal[bi], new, &mut changed);
        let new = bump(self.local_pred[lh], taken, 7);
        set_changed(&mut self.local_pred[lh], new, &mut changed);
        let new = bump(self.global_pred[gi], taken, 3);
        set_changed(&mut self.global_pred[gi], new, &mut changed);
        let new = ((self.local_hist[li] << 1) | taken as u64) & ((1 << LOCAL_HIST_BITS) - 1);
        set_changed(&mut self.local_hist[li], new, &mut changed);
        self.gen += changed as u64;
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new()
    }
}

impl VisitState for BranchPredictor {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        let m = FieldMeta::shadow(Category::Ctrl, StorageKind::Ram);
        v.array(m, 2, &mut self.bimodal);
        v.array(m, LOCAL_HIST_BITS, &mut self.local_hist);
        v.array(m, 3, &mut self.local_pred);
        v.array(m, 2, &mut self.global_pred);
        v.array(m, 2, &mut self.choose_lg);
        v.array(m, 2, &mut self.choose_hb);
        v.field(FieldMeta::shadow(Category::Ctrl, StorageKind::Latch), GHR_BITS, &mut self.ghr);
    }
}

/// Branch target buffer: 1024 entries, 4-way set-associative, holding the
/// last seen target of taken control transfers (used for indirect jumps;
/// direct targets are decoded from the instruction bits at fetch).
#[derive(Debug, Clone)]
pub struct Btb {
    // Per way: valid, tag, target. 256 sets x 4 ways.
    valid: Vec<u64>,
    tags: Vec<u64>,
    targets: Vec<u64>,
    lru: Vec<u64>, // 2-bit round-robin pointer per set
    gen: u64,      // generation stamp: advances on every content change
}

const BTB_SETS: usize = 256;
const BTB_WAYS: usize = 4;

impl Btb {
    /// Creates an empty BTB.
    pub fn new() -> Btb {
        Btb {
            valid: vec![0; BTB_SETS * BTB_WAYS],
            tags: vec![0; BTB_SETS * BTB_WAYS],
            targets: vec![0; BTB_SETS * BTB_WAYS],
            lru: vec![0; BTB_SETS],
            gen: 0,
        }
    }

    /// Generation stamp for cached fingerprinting: unchanged stamp ⇒
    /// unchanged BTB content. Re-recording an already-stored target does
    /// not advance it.
    pub fn state_gen(&self) -> u64 {
        self.gen
    }

    fn set_and_tag(pc: u64) -> (usize, u64) {
        let idx = (pc >> 2) as usize;
        ((idx & (BTB_SETS - 1)), (pc >> 10) & 0xffff_ffff)
    }

    /// Looks up the predicted target for `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let (set, tag) = Btb::set_and_tag(pc);
        for w in 0..BTB_WAYS {
            let i = set * BTB_WAYS + w;
            if self.valid[i] == 1 && self.tags[i] == tag {
                return Some(self.targets[i] << 2);
            }
        }
        None
    }

    /// Records the resolved target of the control transfer at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let (set, tag) = Btb::set_and_tag(pc);
        // Hit: update in place.
        for w in 0..BTB_WAYS {
            let i = set * BTB_WAYS + w;
            if self.valid[i] == 1 && self.tags[i] == tag {
                if self.targets[i] != target >> 2 {
                    self.targets[i] = target >> 2;
                    self.gen += 1;
                }
                return;
            }
        }
        // Miss: round-robin replacement (the LRU pointer always moves).
        let w = (self.lru[set] as usize) % BTB_WAYS;
        let i = set * BTB_WAYS + w;
        self.valid[i] = 1;
        self.tags[i] = tag;
        self.targets[i] = target >> 2;
        self.lru[set] = (self.lru[set] + 1) % BTB_WAYS as u64;
        self.gen += 1;
    }
}

impl Default for Btb {
    fn default() -> Self {
        Btb::new()
    }
}

impl VisitState for Btb {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        let m = FieldMeta::shadow(Category::Ctrl, StorageKind::Ram);
        v.array(m, 1, &mut self.valid);
        v.array(m, 32, &mut self.tags);
        v.array(FieldMeta::shadow(Category::Pc, StorageKind::Ram), 62, &mut self.targets);
        v.array(m, 2, &mut self.lru);
    }
}

/// 8-entry return address stack with pointer recovery: the top-of-stack
/// pointer is snapshotted at every fetched branch and restored on squash.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u64>, // 8 x 62-bit return addresses
    tos: u64,        // 3-bit pointer to the next free slot
    gen: u64,        // generation stamp: advances on every content change
}

const RAS_ENTRIES: u64 = 8;

impl Ras {
    /// Creates an empty stack.
    pub fn new() -> Ras {
        Ras { stack: vec![0; RAS_ENTRIES as usize], tos: 0, gen: 0 }
    }

    /// Generation stamp for cached fingerprinting: unchanged stamp ⇒
    /// unchanged stack and pointer.
    pub fn state_gen(&self) -> u64 {
        self.gen
    }

    /// Pushes a return address (calls: `BSR`/`JSR`). Wraps on overflow, as
    /// a real circular RAS does.
    pub fn push(&mut self, return_addr: u64) {
        self.stack[(self.tos % RAS_ENTRIES) as usize] = return_addr >> 2;
        self.tos = (self.tos + 1) % RAS_ENTRIES;
        self.gen += 1; // the pointer always moves
    }

    /// Pops the predicted return target (`RET`).
    pub fn pop(&mut self) -> u64 {
        self.tos = (self.tos + RAS_ENTRIES - 1) % RAS_ENTRIES;
        self.gen += 1; // the pointer always moves
        self.stack[(self.tos % RAS_ENTRIES) as usize] << 2
    }

    /// Snapshot of the pointer, taken per fetched branch.
    pub fn pointer(&self) -> u64 {
        self.tos
    }

    /// Pointer recovery after a squash.
    pub fn restore_pointer(&mut self, tos: u64) {
        if self.tos != tos % RAS_ENTRIES {
            self.tos = tos % RAS_ENTRIES;
            self.gen += 1;
        }
    }
}

impl Default for Ras {
    fn default() -> Self {
        Ras::new()
    }
}

impl VisitState for Ras {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        v.array(FieldMeta::shadow(Category::Pc, StorageKind::Ram), 62, &mut self.stack);
        v.field(FieldMeta::shadow(Category::Qctrl, StorageKind::Latch), 3, &mut self.tos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_always_taken() {
        let mut p = BranchPredictor::new();
        let pc = 0x1_0040;
        for _ in 0..16 {
            let ghr = p.ghr();
            p.speculate(true);
            p.train(pc, true, ghr);
        }
        assert!(p.predict(pc), "always-taken branch must be predicted taken");
    }

    #[test]
    fn predictor_learns_alternating_pattern_via_local_history() {
        let mut p = BranchPredictor::new();
        let pc = 0x2_0080;
        let mut outcome = false;
        for _ in 0..200 {
            let ghr = p.ghr();
            p.speculate(outcome);
            p.train(pc, outcome, ghr);
            outcome = !outcome;
        }
        // After training, prediction should track the alternation.
        let mut correct = 0;
        for _ in 0..20 {
            if p.predict(pc) == outcome {
                correct += 1;
            }
            let ghr = p.ghr();
            p.speculate(outcome);
            p.train(pc, outcome, ghr);
            outcome = !outcome;
        }
        assert!(correct >= 15, "local history should capture alternation: {correct}/20");
    }

    #[test]
    fn ghr_restore_round_trip() {
        let mut p = BranchPredictor::new();
        let before = p.ghr();
        p.speculate(true);
        p.speculate(false);
        assert_ne!(p.ghr(), before);
        p.restore_ghr(before);
        assert_eq!(p.ghr(), before);
    }

    #[test]
    fn btb_lookup_and_replacement() {
        let mut b = Btb::new();
        assert_eq!(b.lookup(0x4000), None);
        b.update(0x4000, 0x9000);
        assert_eq!(b.lookup(0x4000), Some(0x9000));
        b.update(0x4000, 0xa000);
        assert_eq!(b.lookup(0x4000), Some(0xa000));
        // Fill a set past associativity: 5 pcs mapping to the same set
        // (same low bits, different tags).
        let set_stride = 256 * 4; // pc stride that keeps the same set index
        for k in 0..5u64 {
            b.update(0x4000 + k * set_stride, 0x1000 + k * 8);
        }
        let present: usize = (0..5u64)
            .filter(|k| b.lookup(0x4000 + k * set_stride) == Some(0x1000 + k * 8))
            .count();
        assert_eq!(present, 4, "exactly one way must have been evicted");
    }

    #[test]
    fn ras_predicts_call_return_pairs() {
        let mut r = Ras::new();
        r.push(0x1004);
        r.push(0x2004);
        assert_eq!(r.pop(), 0x2004);
        assert_eq!(r.pop(), 0x1004);
    }

    #[test]
    fn ras_pointer_recovery() {
        let mut r = Ras::new();
        r.push(0x1004);
        let snap = r.pointer();
        // Wrong path pushes/pops garbage.
        r.push(0xdead0);
        r.pop();
        r.pop();
        r.restore_pointer(snap);
        assert_eq!(r.pop(), 0x1004);
    }

    #[test]
    fn ras_wraps_like_hardware() {
        let mut r = Ras::new();
        for i in 0..10u64 {
            r.push(0x1000 + i * 4);
        }
        // The two oldest entries were overwritten; the newest survives.
        assert_eq!(r.pop(), 0x1000 + 9 * 4);
    }

    #[test]
    fn shadow_state_is_not_injectable() {
        use tfsim_bitstate::{BitCount, Census, InjectionMask};
        let mut p = BranchPredictor::new();
        let mut count = BitCount::new(InjectionMask::LatchesAndRams);
        p.visit_state(&mut count);
        assert_eq!(count.count, 0, "predictor state must not be injectable");
        let mut census = Census::new();
        p.visit_state(&mut census);
        assert!(census.shadow_total() > 10_000, "predictor holds sizeable shadow state");
    }
}
