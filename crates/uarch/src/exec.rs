//! The dynamic scheduler (issue window) and functional-unit latches.
//!
//! The scheduler holds 32 entries with speculative wakeup and replay: a
//! load's consumers may issue during the cache-access shadow assuming a
//! hit; if the load misses (or the data is simply not there yet when the
//! consumer finishes executing), the consumer is *replayed* — returned to
//! the waiting state — rather than completing with garbage.
//!
//! Entries are freed only at successful completion, matching the paper's
//! observation that "our scheduler does not free an instruction's entry
//! until it is known that the instruction will complete" (a source of
//! dead-but-vulnerable state).

use tfsim_bitstate::{visit_bool, visit_pc, Category, FieldMeta, StateVisitor, StorageKind};

use crate::config::sizes;

/// Execution class routed to functional units (3-bit `ctrl` encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum FuClass {
    /// Single-cycle integer ALU.
    #[default]
    Simple = 0,
    /// Multi-cycle complex ALU (multiplies).
    Complex = 1,
    /// Branch unit.
    Branch = 2,
    /// Address generation for a load.
    Load = 3,
    /// Address generation for a store.
    Store = 4,
}

impl FuClass {
    /// Decodes a 3-bit field; corrupted encodings map to `Simple`.
    pub fn from_bits(bits: u64) -> FuClass {
        match bits & 7 {
            0 => FuClass::Simple,
            1 => FuClass::Complex,
            2 => FuClass::Branch,
            3 => FuClass::Load,
            4 => FuClass::Store,
            _ => FuClass::Simple,
        }
    }
}

/// One scheduler (issue window) entry.
#[derive(Debug, Clone, Default)]
pub struct SchedEntry {
    /// Entry allocated.
    pub valid: bool,
    /// Entry has been issued (awaiting completion; may be replayed).
    pub issued: bool,
    /// Raw instruction word.
    pub raw: u64,
    /// Instruction address.
    pub pc: u64,
    /// Source physical registers (slot 2 used by CMOV's old destination).
    pub srcs: [u64; 3],
    /// Which source slots carry a real dependence.
    pub src_needed: [bool; 3],
    /// Destination physical register.
    pub dst_preg: u64,
    /// Whether the instruction writes a register.
    pub has_dst: bool,
    /// ROB tag.
    pub rob: u64,
    /// Load/store queue slot (loads/stores only).
    pub lsq: u64,
    /// Functional-unit class (3-bit).
    pub class: u64,
    /// Predicted direction (branches).
    pub pred_taken: bool,
    /// Predicted target (branches).
    pub pred_target: u64,
    /// Memory-dependence wait: SQ slot whose address must resolve first.
    pub wait_sq: u64,
    /// Whether `wait_sq` is active.
    pub wait_sq_valid: bool,
    /// Pointer-ECC check bits for `srcs` (4 bits each; protection suite).
    pub src_ecc: [u64; 3],
    /// Pointer-ECC check bits for `dst_preg`.
    pub dst_ecc: u64,
}

impl SchedEntry {
    fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        let ram = StorageKind::Ram;
        visit_bool(v, FieldMeta::new(Category::Valid, ram), &mut self.valid);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.issued);
        v.field(FieldMeta::new(Category::Insn, ram), 32, &mut self.raw);
        visit_pc(v, ram, &mut self.pc);
        for s in self.srcs.iter_mut() {
            v.field(FieldMeta::new(Category::Regptr, ram), 7, s);
        }
        for n in self.src_needed.iter_mut() {
            visit_bool(v, FieldMeta::new(Category::Ctrl, ram), n);
        }
        v.field(FieldMeta::new(Category::Regptr, ram), 7, &mut self.dst_preg);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.has_dst);
        v.field(FieldMeta::new(Category::Robptr, ram), 6, &mut self.rob);
        v.field(FieldMeta::new(Category::Ctrl, ram), 4, &mut self.lsq);
        v.field(FieldMeta::new(Category::Ctrl, ram), 3, &mut self.class);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.pred_taken);
        visit_pc(v, ram, &mut self.pred_target);
        v.field(FieldMeta::new(Category::Ctrl, ram), 4, &mut self.wait_sq);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.wait_sq_valid);
        if ptr_ecc {
            for e in self.src_ecc.iter_mut() {
                v.field(FieldMeta::new(Category::Ecc, ram), 4, e);
            }
            v.field(FieldMeta::new(Category::Ecc, ram), 4, &mut self.dst_ecc);
        }
    }
}

/// The 32-entry scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Entries (no ring: free slots are reused; age comes from ROB tags).
    pub slots: Vec<SchedEntry>,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler { slots: (0..sizes::SCHEDULER).map(|_| SchedEntry::default()).collect() }
    }

    /// Index of a free slot, if any.
    pub fn free_slot(&self) -> Option<usize> {
        self.slots.iter().position(|e| !e.valid)
    }

    /// Number of free slots.
    pub fn free_count(&self) -> usize {
        self.slots.iter().filter(|e| !e.valid).count()
    }

    /// Clears every entry (full flush).
    pub fn clear(&mut self) {
        for e in self.slots.iter_mut() {
            *e = SchedEntry::default();
        }
    }

    /// Visits all entries (`ptr_ecc` adds the pointer check bits).
    pub fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        for e in self.slots.iter_mut() {
            e.visit(v, ptr_ecc);
        }
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// An operation in flight in a functional unit (pipeline latches: the
/// operand latches are the paper's dominant `data` latch population).
#[derive(Debug, Clone, Default)]
pub struct FuOp {
    /// Slot busy.
    pub valid: bool,
    /// Scheduler entry this op came from (5-bit).
    pub sched: u64,
    /// ROB tag.
    pub rob: u64,
    /// Destination physical register.
    pub dst_preg: u64,
    /// Whether a register is written.
    pub has_dst: bool,
    /// Operand latches (a = Ra/store-data, b = Rb, c = CMOV old value).
    pub a: u64,
    /// Second operand latch.
    pub b: u64,
    /// Third operand latch (CMOV old destination).
    pub c: u64,
    /// Source pregs (for replay re-reads).
    pub srcs: [u64; 3],
    /// Needed source slots.
    pub src_needed: [bool; 3],
    /// Source was speculative (not real-ready) at issue: its latched value
    /// is stale and must be re-read (bypass) at completion.
    pub src_spec: [bool; 3],
    /// Raw instruction word.
    pub raw: u64,
    /// Instruction address.
    pub pc: u64,
    /// Cycles until completion (1 = completing this cycle).
    pub remaining: u64,
    /// Predicted direction (branch unit).
    pub pred_taken: bool,
    /// Predicted target (branch unit).
    pub pred_target: u64,
    /// Load/store queue slot (AGU ops).
    pub lsq: u64,
    /// Functional-unit class.
    pub class: u64,
    /// Pointer-ECC check bits for `srcs`.
    pub src_ecc: [u64; 3],
    /// Pointer-ECC check bits for `dst_preg`.
    pub dst_ecc: u64,
}

impl FuOp {
    fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        let l = StorageKind::Latch;
        visit_bool(v, FieldMeta::new(Category::Valid, l), &mut self.valid);
        v.field(FieldMeta::new(Category::Ctrl, l), 5, &mut self.sched);
        v.field(FieldMeta::new(Category::Robptr, l), 6, &mut self.rob);
        v.field(FieldMeta::new(Category::Regptr, l), 7, &mut self.dst_preg);
        visit_bool(v, FieldMeta::new(Category::Ctrl, l), &mut self.has_dst);
        v.field(FieldMeta::new(Category::Data, l), 64, &mut self.a);
        v.field(FieldMeta::new(Category::Data, l), 64, &mut self.b);
        v.field(FieldMeta::new(Category::Data, l), 64, &mut self.c);
        for s in self.srcs.iter_mut() {
            v.field(FieldMeta::new(Category::Regptr, l), 7, s);
        }
        for n in self.src_needed.iter_mut() {
            visit_bool(v, FieldMeta::new(Category::Ctrl, l), n);
        }
        for s in self.src_spec.iter_mut() {
            visit_bool(v, FieldMeta::new(Category::Ctrl, l), s);
        }
        v.field(FieldMeta::new(Category::Insn, l), 32, &mut self.raw);
        visit_pc(v, l, &mut self.pc);
        v.field(FieldMeta::new(Category::Ctrl, l), 3, &mut self.remaining);
        visit_bool(v, FieldMeta::new(Category::Ctrl, l), &mut self.pred_taken);
        visit_pc(v, l, &mut self.pred_target);
        v.field(FieldMeta::new(Category::Ctrl, l), 4, &mut self.lsq);
        v.field(FieldMeta::new(Category::Ctrl, l), 3, &mut self.class);
        if ptr_ecc {
            for e in self.src_ecc.iter_mut() {
                v.field(FieldMeta::new(Category::Ecc, l), 4, e);
            }
            v.field(FieldMeta::new(Category::Ecc, l), 4, &mut self.dst_ecc);
        }
    }
}

/// The functional-unit complement of Figure 2: two simple ALUs, one
/// complex ALU, one branch ALU, two address generation units.
#[derive(Debug, Clone)]
pub struct FuBank {
    /// Simple ALU slots.
    pub simple: Vec<FuOp>,
    /// Complex ALU slot (non-pipelined, 2–5 cycles).
    pub complex: Vec<FuOp>,
    /// Branch ALU slot.
    pub branch: Vec<FuOp>,
    /// AGU slots.
    pub agu: Vec<FuOp>,
}

impl FuBank {
    /// Creates idle functional units.
    pub fn new() -> FuBank {
        FuBank {
            simple: vec![FuOp::default(), FuOp::default()],
            complex: vec![FuOp::default()],
            branch: vec![FuOp::default()],
            agu: vec![FuOp::default(), FuOp::default()],
        }
    }

    /// All slots, in a fixed deterministic order.
    pub fn all_mut(&mut self) -> impl Iterator<Item = &mut FuOp> {
        self.simple
            .iter_mut()
            .chain(self.complex.iter_mut())
            .chain(self.branch.iter_mut())
            .chain(self.agu.iter_mut())
    }

    /// Clears every slot (full flush).
    pub fn clear(&mut self) {
        for op in self.all_mut() {
            *op = FuOp::default();
        }
    }

    /// Visits all slots (`ptr_ecc` adds the pointer check bits).
    pub fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        for op in self.all_mut() {
            op.visit(v, ptr_ecc);
        }
    }
}

impl Default for FuBank {
    fn default() -> Self {
        FuBank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_bitstate::{BitCount, Census, InjectionMask};

    #[test]
    fn scheduler_slot_management() {
        let mut s = Scheduler::new();
        assert_eq!(s.free_count(), 32);
        let i = s.free_slot().unwrap();
        s.slots[i].valid = true;
        assert_eq!(s.free_count(), 31);
        assert_ne!(s.free_slot().unwrap(), i);
        s.clear();
        assert_eq!(s.free_count(), 32);
    }

    #[test]
    fn fu_class_decoding_is_total() {
        for bits in 0..8u64 {
            let _ = FuClass::from_bits(bits); // must not panic
        }
        assert_eq!(FuClass::from_bits(3), FuClass::Load);
        assert_eq!(FuClass::from_bits(7), FuClass::Simple);
    }

    #[test]
    fn fu_bank_has_figure2_complement() {
        let mut b = FuBank::new();
        assert_eq!(b.simple.len(), 2);
        assert_eq!(b.complex.len(), 1);
        assert_eq!(b.branch.len(), 1);
        assert_eq!(b.agu.len(), 2);
        assert_eq!(b.all_mut().count(), 6);
    }

    #[test]
    fn scheduler_census_is_ram() {
        let mut s = Scheduler::new();
        let mut census = Census::new();
        s.visit(&mut census, false);
        assert_eq!(census.bits(Category::Insn, StorageKind::Ram), 32 * 32);
        assert_eq!(census.bits(Category::Regptr, StorageKind::Ram), 32 * 28);
        assert_eq!(census.bits(Category::Pc, StorageKind::Ram), 32 * 124);
        let mut latch_only = BitCount::new(InjectionMask::LatchesOnly);
        s.visit(&mut latch_only, false);
        assert_eq!(latch_only.count, 0, "scheduler payloads are RAM");
    }

    #[test]
    fn fu_operand_latches_dominate_data_category() {
        let mut b = FuBank::new();
        let mut census = Census::new();
        b.visit(&mut census, false);
        // 6 units x 3 x 64-bit operand latches.
        assert_eq!(census.bits(Category::Data, StorageKind::Latch), 6 * 192);
        assert_eq!(census.bits(Category::Data, StorageKind::Ram), 0);
    }
}
