//! The dynamic scheduler (issue window) and functional-unit latches.
//!
//! The scheduler holds 32 entries with speculative wakeup and replay: a
//! load's consumers may issue during the cache-access shadow assuming a
//! hit; if the load misses (or the data is simply not there yet when the
//! consumer finishes executing), the consumer is *replayed* — returned to
//! the waiting state — rather than completing with garbage.
//!
//! Entries are freed only at successful completion, matching the paper's
//! observation that "our scheduler does not free an instruction's entry
//! until it is known that the instruction will complete" (a source of
//! dead-but-vulnerable state).

use tfsim_bitstate::{visit_bool, visit_pc, Category, FieldMeta, StateVisitor, StorageKind};

use crate::access::AccessLog;
use crate::config::sizes;

/// Execution class routed to functional units (3-bit `ctrl` encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum FuClass {
    /// Single-cycle integer ALU.
    #[default]
    Simple = 0,
    /// Multi-cycle complex ALU (multiplies).
    Complex = 1,
    /// Branch unit.
    Branch = 2,
    /// Address generation for a load.
    Load = 3,
    /// Address generation for a store.
    Store = 4,
}

impl FuClass {
    /// Decodes a 3-bit field; corrupted encodings map to `Simple`.
    pub fn from_bits(bits: u64) -> FuClass {
        match bits & 7 {
            0 => FuClass::Simple,
            1 => FuClass::Complex,
            2 => FuClass::Branch,
            3 => FuClass::Load,
            4 => FuClass::Store,
            _ => FuClass::Simple,
        }
    }
}

/// One scheduler (issue window) entry.
#[derive(Debug, Clone, Default)]
pub struct SchedEntry {
    /// Entry allocated.
    pub valid: bool,
    /// Entry has been issued (awaiting completion; may be replayed).
    pub issued: bool,
    /// Raw instruction word.
    pub raw: u64,
    /// Instruction address.
    pub pc: u64,
    /// Source physical registers (slot 2 used by CMOV's old destination).
    pub srcs: [u64; 3],
    /// Which source slots carry a real dependence.
    pub src_needed: [bool; 3],
    /// Destination physical register.
    pub dst_preg: u64,
    /// Whether the instruction writes a register.
    pub has_dst: bool,
    /// ROB tag.
    pub rob: u64,
    /// Load/store queue slot (loads/stores only).
    pub lsq: u64,
    /// Functional-unit class (3-bit).
    pub class: u64,
    /// Predicted direction (branches).
    pub pred_taken: bool,
    /// Predicted target (branches).
    pub pred_target: u64,
    /// Memory-dependence wait: SQ slot whose address must resolve first.
    pub wait_sq: u64,
    /// Whether `wait_sq` is active.
    pub wait_sq_valid: bool,
    /// Pointer-ECC check bits for `srcs` (4 bits each; protection suite).
    pub src_ecc: [u64; 3],
    /// Pointer-ECC check bits for `dst_preg`.
    pub dst_ecc: u64,
}

impl SchedEntry {
    fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        let ram = StorageKind::Ram;
        visit_bool(v, FieldMeta::new(Category::Valid, ram), &mut self.valid);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.issued);
        v.field(FieldMeta::new(Category::Insn, ram), 32, &mut self.raw);
        visit_pc(v, ram, &mut self.pc);
        for s in self.srcs.iter_mut() {
            v.field(FieldMeta::new(Category::Regptr, ram), 7, s);
        }
        for n in self.src_needed.iter_mut() {
            visit_bool(v, FieldMeta::new(Category::Ctrl, ram), n);
        }
        v.field(FieldMeta::new(Category::Regptr, ram), 7, &mut self.dst_preg);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.has_dst);
        v.field(FieldMeta::new(Category::Robptr, ram), 6, &mut self.rob);
        v.field(FieldMeta::new(Category::Ctrl, ram), 4, &mut self.lsq);
        v.field(FieldMeta::new(Category::Ctrl, ram), 3, &mut self.class);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.pred_taken);
        visit_pc(v, ram, &mut self.pred_target);
        v.field(FieldMeta::new(Category::Ctrl, ram), 4, &mut self.wait_sq);
        visit_bool(v, FieldMeta::new(Category::Ctrl, ram), &mut self.wait_sq_valid);
        if ptr_ecc {
            for e in self.src_ecc.iter_mut() {
                v.field(FieldMeta::new(Category::Ecc, ram), 4, e);
            }
            v.field(FieldMeta::new(Category::Ecc, ram), 4, &mut self.dst_ecc);
        }
    }
}

/// Fixed per-entry word ordinals for the scheduler's access log.
///
/// The numbering always reserves the pointer-ECC words (ordinals 19–22)
/// even when the protection is disabled, so log ordinals are stable across
/// configurations; the pipeline's drain mapping closes the gap for
/// configurations where those words are not visited. The order matches
/// `SchedEntry::visit` exactly.
pub mod schedw {
    /// `valid` flag.
    pub const VALID: u32 = 0;
    /// `issued` flag.
    pub const ISSUED: u32 = 1;
    /// Raw instruction word.
    pub const RAW: u32 = 2;
    /// Instruction address.
    pub const PC: u32 = 3;
    /// Source physical register `k` (0..3).
    pub const fn src(k: usize) -> u32 {
        4 + k as u32
    }
    /// Source-needed flag `k` (0..3).
    pub const fn src_needed(k: usize) -> u32 {
        7 + k as u32
    }
    /// Destination physical register.
    pub const DST_PREG: u32 = 10;
    /// `has_dst` flag.
    pub const HAS_DST: u32 = 11;
    /// ROB tag.
    pub const ROB: u32 = 12;
    /// LSQ slot.
    pub const LSQ: u32 = 13;
    /// Functional-unit class.
    pub const CLASS: u32 = 14;
    /// Predicted direction.
    pub const PRED_TAKEN: u32 = 15;
    /// Predicted target.
    pub const PRED_TARGET: u32 = 16;
    /// Memory-dependence wait SQ slot.
    pub const WAIT_SQ: u32 = 17;
    /// Whether `wait_sq` is active.
    pub const WAIT_SQ_VALID: u32 = 18;
    /// Pointer-ECC check bits for source `k` (0..3).
    pub const fn src_ecc(k: usize) -> u32 {
        19 + k as u32
    }
    /// Pointer-ECC check bits for the destination pointer.
    pub const DST_ECC: u32 = 22;
    /// Words per scheduler entry in the fixed numbering.
    pub const WORDS: u32 = 23;
}

/// The 32-entry scheduler.
///
/// Entries are private behind *word-granular* logged accessors: the
/// every-cycle select loops read only the `valid`/`issued`/wakeup words,
/// so an idle entry's payload words stay untouched in the access log and
/// can be proven dead analytically. Whole-entry operations (allocation,
/// free, flush) log a content-independent write of every word.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Entries (no ring: free slots are reused; age comes from ROB tags).
    slots: Vec<SchedEntry>,
    /// Word-granular access log (ordinal = `slot * schedw::WORDS + word`).
    pub log: AccessLog,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler {
            slots: (0..sizes::SCHEDULER).map(|_| SchedEntry::default()).collect(),
            log: AccessLog::default(),
        }
    }

    fn ord(i: usize, w: u32) -> u32 {
        (i as u32) * schedw::WORDS + w
    }

    /// Unlogged read-only view of an entry, for observers (occupancy
    /// statistics, invariant checks, rendering) that model no hardware
    /// port.
    pub fn peek(&self, i: usize) -> &SchedEntry {
        &self.slots[i % sizes::SCHEDULER]
    }

    /// Unlogged mutable view, for fault injection and tests only.
    #[doc(hidden)]
    pub fn poke(&mut self, i: usize) -> &mut SchedEntry {
        &mut self.slots[i % sizes::SCHEDULER]
    }

    /// Logged read of the `valid` flag.
    pub fn valid(&mut self, i: usize) -> bool {
        let i = i % sizes::SCHEDULER;
        self.log.read(Self::ord(i, schedw::VALID));
        self.slots[i].valid
    }

    /// Logged read of the `issued` flag.
    pub fn issued(&mut self, i: usize) -> bool {
        let i = i % sizes::SCHEDULER;
        self.log.read(Self::ord(i, schedw::ISSUED));
        self.slots[i].issued
    }

    /// Logged read of the ROB tag.
    pub fn rob(&mut self, i: usize) -> u64 {
        let i = i % sizes::SCHEDULER;
        self.log.read(Self::ord(i, schedw::ROB));
        self.slots[i].rob
    }

    /// Logged read of the functional-unit class field.
    pub fn class(&mut self, i: usize) -> u64 {
        let i = i % sizes::SCHEDULER;
        self.log.read(Self::ord(i, schedw::CLASS));
        self.slots[i].class
    }

    /// Logged read of source pointer `k`.
    pub fn src(&mut self, i: usize, k: usize) -> u64 {
        let i = i % sizes::SCHEDULER;
        self.log.read(Self::ord(i, schedw::src(k)));
        self.slots[i].srcs[k]
    }

    /// Logged read of source-needed flag `k`.
    pub fn src_needed(&mut self, i: usize, k: usize) -> bool {
        let i = i % sizes::SCHEDULER;
        self.log.read(Self::ord(i, schedw::src_needed(k)));
        self.slots[i].src_needed[k]
    }

    /// Logged read of the memory-dependence wait SQ slot.
    pub fn wait_sq(&mut self, i: usize) -> u64 {
        let i = i % sizes::SCHEDULER;
        self.log.read(Self::ord(i, schedw::WAIT_SQ));
        self.slots[i].wait_sq
    }

    /// Logged read of the `wait_sq_valid` flag.
    pub fn wait_sq_valid(&mut self, i: usize) -> bool {
        let i = i % sizes::SCHEDULER;
        self.log.read(Self::ord(i, schedw::WAIT_SQ_VALID));
        self.slots[i].wait_sq_valid
    }

    /// Logged write of the `issued` flag (issue / replay).
    pub fn set_issued(&mut self, i: usize, on: bool) {
        let i = i % sizes::SCHEDULER;
        self.log.write(Self::ord(i, schedw::ISSUED));
        self.slots[i].issued = on;
    }

    /// Logged write clearing the `wait_sq_valid` flag.
    pub fn set_wait_sq_valid(&mut self, i: usize, on: bool) {
        let i = i % sizes::SCHEDULER;
        self.log.write(Self::ord(i, schedw::WAIT_SQ_VALID));
        self.slots[i].wait_sq_valid = on;
    }

    /// Writes back pointer-ECC-repaired source/destination pointers.
    ///
    /// Deliberately *unlogged*: the repaired values derive from the old
    /// contents (not a content-independent overwrite), and the repair
    /// always follows a logged whole-entry read in the same cycle, which
    /// shadows any same-cycle write in the per-cycle access dedup anyway.
    pub fn set_repaired_ptrs(&mut self, i: usize, srcs: [u64; 3], dst_preg: u64) {
        let e = &mut self.slots[i % sizes::SCHEDULER];
        e.srcs = srcs;
        e.dst_preg = dst_preg;
    }

    /// Logged whole-entry read: clones the entry for issue, marking every
    /// word (including the reserved ECC ordinals) as read.
    pub fn read_entry(&mut self, i: usize) -> SchedEntry {
        let i = i % sizes::SCHEDULER;
        if self.log.enabled() {
            for w in 0..schedw::WORDS {
                self.log.read(Self::ord(i, w));
            }
        }
        self.slots[i].clone()
    }

    /// Logged whole-entry write: installs a freshly renamed instruction
    /// (content-independent overwrite of every word).
    pub fn install(&mut self, i: usize, e: SchedEntry) {
        let i = i % sizes::SCHEDULER;
        if self.log.enabled() {
            for w in 0..schedw::WORDS {
                self.log.write(Self::ord(i, w));
            }
        }
        self.slots[i] = e;
    }

    /// Logged whole-entry write: resets the entry to the idle state
    /// (completion free or squash).
    pub fn clear_slot(&mut self, i: usize) {
        let i = i % sizes::SCHEDULER;
        if self.log.enabled() {
            for w in 0..schedw::WORDS {
                self.log.write(Self::ord(i, w));
            }
        }
        self.slots[i] = SchedEntry::default();
    }

    /// Index of a free slot, if any (logged `valid` scan: stops at the
    /// first free entry, exactly the words the allocation port examines).
    pub fn free_slot(&mut self) -> Option<usize> {
        for i in 0..self.slots.len() {
            self.log.read(Self::ord(i, schedw::VALID));
            if !self.slots[i].valid {
                return Some(i);
            }
        }
        None
    }

    /// Number of free slots (unlogged observer).
    pub fn free_count(&self) -> usize {
        self.slots.iter().filter(|e| !e.valid).count()
    }

    /// Clears every entry (full flush).
    pub fn clear(&mut self) {
        for i in 0..sizes::SCHEDULER {
            self.clear_slot(i);
        }
    }

    /// Visits all entries (`ptr_ecc` adds the pointer check bits).
    pub fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        for e in self.slots.iter_mut() {
            e.visit(v, ptr_ecc);
        }
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// Fixed per-slot word ordinals for the functional units' access log.
///
/// Like [`schedw`], the numbering reserves the pointer-ECC words
/// (ordinals 24–27) even when the protection is disabled so ordinals are
/// stable across configurations; the pipeline's drain mapping drops them
/// when they are not visited. The order matches `FuOp::visit` exactly.
pub mod fuw {
    /// `valid` flag.
    pub const VALID: u32 = 0;
    /// Scheduler entry backlink.
    pub const SCHED: u32 = 1;
    /// ROB tag.
    pub const ROB: u32 = 2;
    /// Destination physical register.
    pub const DST_PREG: u32 = 3;
    /// `has_dst` flag.
    pub const HAS_DST: u32 = 4;
    /// Operand latch `a`.
    pub const A: u32 = 5;
    /// Operand latch `b`.
    pub const B: u32 = 6;
    /// Operand latch `c`.
    pub const C: u32 = 7;
    /// Source physical register `k` (0..3).
    pub const fn src(k: usize) -> u32 {
        8 + k as u32
    }
    /// Source-needed flag `k` (0..3).
    pub const fn src_needed(k: usize) -> u32 {
        11 + k as u32
    }
    /// Source-speculative flag `k` (0..3).
    pub const fn src_spec(k: usize) -> u32 {
        14 + k as u32
    }
    /// Raw instruction word.
    pub const RAW: u32 = 17;
    /// Instruction address.
    pub const PC: u32 = 18;
    /// Latency countdown.
    pub const REMAINING: u32 = 19;
    /// Predicted direction.
    pub const PRED_TAKEN: u32 = 20;
    /// Predicted target.
    pub const PRED_TARGET: u32 = 21;
    /// LSQ slot.
    pub const LSQ: u32 = 22;
    /// Functional-unit class.
    pub const CLASS: u32 = 23;
    /// Pointer-ECC check bits for source `k` (0..3).
    pub const fn src_ecc(k: usize) -> u32 {
        24 + k as u32
    }
    /// Pointer-ECC check bits for the destination pointer.
    pub const DST_ECC: u32 = 27;
    /// Words per FU slot in the fixed numbering.
    pub const WORDS: u32 = 28;
}

/// An operation in flight in a functional unit (pipeline latches: the
/// operand latches are the paper's dominant `data` latch population).
#[derive(Debug, Clone, Default)]
pub struct FuOp {
    /// Slot busy.
    pub valid: bool,
    /// Scheduler entry this op came from (5-bit).
    pub sched: u64,
    /// ROB tag.
    pub rob: u64,
    /// Destination physical register.
    pub dst_preg: u64,
    /// Whether a register is written.
    pub has_dst: bool,
    /// Operand latches (a = Ra/store-data, b = Rb, c = CMOV old value).
    pub a: u64,
    /// Second operand latch.
    pub b: u64,
    /// Third operand latch (CMOV old destination).
    pub c: u64,
    /// Source pregs (for replay re-reads).
    pub srcs: [u64; 3],
    /// Needed source slots.
    pub src_needed: [bool; 3],
    /// Source was speculative (not real-ready) at issue: its latched value
    /// is stale and must be re-read (bypass) at completion.
    pub src_spec: [bool; 3],
    /// Raw instruction word.
    pub raw: u64,
    /// Instruction address.
    pub pc: u64,
    /// Cycles until completion (1 = completing this cycle).
    pub remaining: u64,
    /// Predicted direction (branch unit).
    pub pred_taken: bool,
    /// Predicted target (branch unit).
    pub pred_target: u64,
    /// Load/store queue slot (AGU ops).
    pub lsq: u64,
    /// Functional-unit class.
    pub class: u64,
    /// Pointer-ECC check bits for `srcs`.
    pub src_ecc: [u64; 3],
    /// Pointer-ECC check bits for `dst_preg`.
    pub dst_ecc: u64,
}

impl FuOp {
    fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        let l = StorageKind::Latch;
        visit_bool(v, FieldMeta::new(Category::Valid, l), &mut self.valid);
        v.field(FieldMeta::new(Category::Ctrl, l), 5, &mut self.sched);
        v.field(FieldMeta::new(Category::Robptr, l), 6, &mut self.rob);
        v.field(FieldMeta::new(Category::Regptr, l), 7, &mut self.dst_preg);
        visit_bool(v, FieldMeta::new(Category::Ctrl, l), &mut self.has_dst);
        v.field(FieldMeta::new(Category::Data, l), 64, &mut self.a);
        v.field(FieldMeta::new(Category::Data, l), 64, &mut self.b);
        v.field(FieldMeta::new(Category::Data, l), 64, &mut self.c);
        for s in self.srcs.iter_mut() {
            v.field(FieldMeta::new(Category::Regptr, l), 7, s);
        }
        for n in self.src_needed.iter_mut() {
            visit_bool(v, FieldMeta::new(Category::Ctrl, l), n);
        }
        for s in self.src_spec.iter_mut() {
            visit_bool(v, FieldMeta::new(Category::Ctrl, l), s);
        }
        v.field(FieldMeta::new(Category::Insn, l), 32, &mut self.raw);
        visit_pc(v, l, &mut self.pc);
        v.field(FieldMeta::new(Category::Ctrl, l), 3, &mut self.remaining);
        visit_bool(v, FieldMeta::new(Category::Ctrl, l), &mut self.pred_taken);
        visit_pc(v, l, &mut self.pred_target);
        v.field(FieldMeta::new(Category::Ctrl, l), 4, &mut self.lsq);
        v.field(FieldMeta::new(Category::Ctrl, l), 3, &mut self.class);
        if ptr_ecc {
            for e in self.src_ecc.iter_mut() {
                v.field(FieldMeta::new(Category::Ecc, l), 4, e);
            }
            v.field(FieldMeta::new(Category::Ecc, l), 4, &mut self.dst_ecc);
        }
    }
}

/// The functional-unit complement of Figure 2: two simple ALUs, one
/// complex ALU, one branch ALU, two address generation units.
///
/// Carries its own word-granular [`AccessLog`] (extended footprint tier).
/// The hot per-cycle loops touch only the `valid` word of idle slots (the
/// short-circuit in every scan), so an idle unit's operand latches go
/// untouched until the next install overwrites them whole — exactly the
/// shape the analytic pruner turns into rides and heals.
#[derive(Debug, Clone)]
pub struct FuBank {
    /// Simple ALU slots.
    pub simple: Vec<FuOp>,
    /// Complex ALU slot (non-pipelined, 2–5 cycles).
    pub complex: Vec<FuOp>,
    /// Branch ALU slot.
    pub branch: Vec<FuOp>,
    /// AGU slots.
    pub agu: Vec<FuOp>,
    /// Word-granular access log (ordinals `slot * fuw::WORDS + word`).
    pub log: AccessLog,
}

impl FuBank {
    /// Total FU slots across the four banks.
    pub const SLOTS: usize = 6;

    /// Creates idle functional units.
    pub fn new() -> FuBank {
        FuBank {
            simple: vec![FuOp::default(), FuOp::default()],
            complex: vec![FuOp::default()],
            branch: vec![FuOp::default()],
            agu: vec![FuOp::default(), FuOp::default()],
            log: AccessLog::default(),
        }
    }

    /// Flat slot index of `(bank, idx)` in visit order: `simple[0]`,
    /// `simple[1]`, `complex[0]`, `branch[0]`, `agu[0]`, `agu[1]`.
    pub fn flat(bank: u8, idx: usize) -> usize {
        match bank {
            0 => idx,
            1 => 2,
            2 => 3,
            _ => 4 + idx,
        }
    }

    fn ord(slot: usize, w: u32) -> u32 {
        slot as u32 * fuw::WORDS + w
    }

    /// Unlogged slot access (observer paths and same-cycle-shadowed pokes).
    pub fn peek(&self, slot: usize) -> &FuOp {
        match slot {
            0 | 1 => &self.simple[slot],
            2 => &self.complex[0],
            3 => &self.branch[0],
            _ => &self.agu[slot - 4],
        }
    }

    /// Unlogged mutable slot access. Callers must guarantee the mutation
    /// is shadowed by a logged same-cycle whole-slot read (see
    /// `replay_if_stale`'s bypass refresh) or happens outside stepping.
    pub fn poke(&mut self, slot: usize) -> &mut FuOp {
        self.slot_mut(slot)
    }

    /// Logged read of a slot's `valid` word.
    pub fn valid(&mut self, slot: usize) -> bool {
        self.log.read(Self::ord(slot, fuw::VALID));
        self.peek(slot).valid
    }

    /// Logged read of a slot's latency countdown.
    pub fn remaining(&mut self, slot: usize) -> u64 {
        self.log.read(Self::ord(slot, fuw::REMAINING));
        self.peek(slot).remaining
    }

    /// Logged read of a slot's ROB tag.
    pub fn rob(&mut self, slot: usize) -> u64 {
        self.log.read(Self::ord(slot, fuw::ROB));
        self.peek(slot).rob
    }

    fn log_all(&mut self, slot: usize, write: bool) {
        if self.log.enabled() {
            for w in 0..fuw::WORDS {
                if write {
                    self.log.write(Self::ord(slot, w));
                } else {
                    self.log.read(Self::ord(slot, w));
                }
            }
        }
    }

    /// Logged whole-slot read: the completing op latches out every field.
    pub fn read_op(&mut self, slot: usize) -> FuOp {
        self.log_all(slot, false);
        self.peek(slot).clone()
    }

    /// Consumes a completing op: whole-slot read, then the slot is freed
    /// (a content-independent overwrite with the idle pattern).
    pub fn take_op(&mut self, slot: usize) -> FuOp {
        self.log_all(slot, false);
        self.log_all(slot, true);
        std::mem::take(self.slot_mut(slot))
    }

    /// Installs a newly issued op: a whole-slot overwrite whose value is
    /// computed entirely from scheduler/regfile state.
    pub fn install(&mut self, slot: usize, op: FuOp) {
        self.log_all(slot, true);
        *self.slot_mut(slot) = op;
    }

    /// Frees a slot without reading its payload (squash, failed replay).
    pub fn clear_slot(&mut self, slot: usize) {
        self.log_all(slot, true);
        *self.slot_mut(slot) = FuOp::default();
    }

    fn slot_mut(&mut self, slot: usize) -> &mut FuOp {
        match slot {
            0 | 1 => &mut self.simple[slot],
            2 => &mut self.complex[0],
            3 => &mut self.branch[0],
            _ => &mut self.agu[slot - 4],
        }
    }

    /// Per-cycle latency countdown. The decrement depends on the word's
    /// prior content, so it is logged as a read (which shadows the
    /// unlogged store in the per-cycle footprint dedup), never a write.
    pub fn tick(&mut self) {
        for slot in 0..Self::SLOTS {
            if self.valid(slot) && self.remaining(slot) > 1 {
                self.slot_mut(slot).remaining -= 1;
            }
        }
    }

    /// All slots, in a fixed deterministic order.
    pub fn all_mut(&mut self) -> impl Iterator<Item = &mut FuOp> {
        self.simple
            .iter_mut()
            .chain(self.complex.iter_mut())
            .chain(self.branch.iter_mut())
            .chain(self.agu.iter_mut())
    }

    /// Clears every slot (full flush): pure whole-slot overwrites.
    pub fn clear(&mut self) {
        for slot in 0..Self::SLOTS {
            self.clear_slot(slot);
        }
    }

    /// Visits all slots (`ptr_ecc` adds the pointer check bits).
    pub fn visit(&mut self, v: &mut dyn StateVisitor, ptr_ecc: bool) {
        for op in self.all_mut() {
            op.visit(v, ptr_ecc);
        }
    }
}

impl Default for FuBank {
    fn default() -> Self {
        FuBank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_bitstate::{BitCount, Census, InjectionMask};

    #[test]
    fn scheduler_slot_management() {
        let mut s = Scheduler::new();
        assert_eq!(s.free_count(), 32);
        let i = s.free_slot().unwrap();
        s.poke(i).valid = true;
        assert_eq!(s.free_count(), 31);
        assert_ne!(s.free_slot().unwrap(), i);
        s.clear();
        assert_eq!(s.free_count(), 32);
    }

    #[test]
    fn scheduler_log_is_word_granular() {
        let mut s = Scheduler::new();
        s.log.set_enabled(true);
        let _ = s.valid(3);
        s.set_issued(3, true);
        let mut events = Vec::new();
        s.log.drain(&mut |ord, is_write| events.push((ord, is_write)));
        assert_eq!(
            events,
            vec![
                (3 * schedw::WORDS + schedw::VALID, false),
                (3 * schedw::WORDS + schedw::ISSUED, true),
            ]
        );
        // A whole-entry install touches every reserved word exactly once.
        s.install(0, SchedEntry::default());
        let mut writes = 0;
        s.log.drain(&mut |ord, is_write| {
            assert!(is_write);
            assert!(ord < schedw::WORDS);
            writes += 1;
        });
        assert_eq!(writes, schedw::WORDS);
    }

    #[test]
    fn fu_class_decoding_is_total() {
        for bits in 0..8u64 {
            let _ = FuClass::from_bits(bits); // must not panic
        }
        assert_eq!(FuClass::from_bits(3), FuClass::Load);
        assert_eq!(FuClass::from_bits(7), FuClass::Simple);
    }

    #[test]
    fn fu_bank_has_figure2_complement() {
        let mut b = FuBank::new();
        assert_eq!(b.simple.len(), 2);
        assert_eq!(b.complex.len(), 1);
        assert_eq!(b.branch.len(), 1);
        assert_eq!(b.agu.len(), 2);
        assert_eq!(b.all_mut().count(), 6);
    }

    #[test]
    fn scheduler_census_is_ram() {
        let mut s = Scheduler::new();
        let mut census = Census::new();
        s.visit(&mut census, false);
        assert_eq!(census.bits(Category::Insn, StorageKind::Ram), 32 * 32);
        assert_eq!(census.bits(Category::Regptr, StorageKind::Ram), 32 * 28);
        assert_eq!(census.bits(Category::Pc, StorageKind::Ram), 32 * 124);
        let mut latch_only = BitCount::new(InjectionMask::LatchesOnly);
        s.visit(&mut latch_only, false);
        assert_eq!(latch_only.count, 0, "scheduler payloads are RAM");
    }

    #[test]
    fn fu_operand_latches_dominate_data_category() {
        let mut b = FuBank::new();
        let mut census = Census::new();
        b.visit(&mut census, false);
        // 6 units x 3 x 64-bit operand latches.
        assert_eq!(census.bits(Category::Data, StorageKind::Latch), 6 * 192);
        assert_eq!(census.bits(Category::Data, StorageKind::Ram), 0);
    }
}
