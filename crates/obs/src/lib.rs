//! Campaign telemetry for the transient-fault pipeline simulator.
//!
//! Hermetic (zero external dependencies) observability primitives, in the
//! spirit of `tfsim-check`:
//!
//! - [`event`] — the versioned per-trial event schema and its JSONL
//!   encoding ([`Event`], [`parse_trace`], [`SCHEMA_VERSION`]).
//! - [`sink`] — where events go: [`NoopSink`] (disabled — instrumented code
//!   must add no measurable overhead), [`RingSink`] (in-memory, for tests),
//!   [`JsonlSink`] (line-buffered trace files).
//! - [`metrics`] — monotonic counters and log2-bucketed latency histograms
//!   that workers update locally and merge once per task, so the hot path
//!   takes no locks and touches no atomics.
//! - [`span`] — hierarchical wall-time spans with the same local-scratchpad
//!   contention model, for campaign self-profiling (footer + collapsed
//!   stacks for flamegraph tooling).
//! - [`trace`] — change-only per-trial divergence timelines ([`DeepTrace`])
//!   backing the opt-in deep-trace mode.
//! - [`progress`] — a lock-free done/total gauge for live one-line meters.
//!
//! The crate knows nothing about pipelines or faults: producers (the
//! `tfsim-inject` campaign engine) fill in the event fields, consumers
//! (`tfsim-stats` reports, the `tfsim-run report` subcommand) interpret
//! them. That keeps the dependency arrow pointing one way and the schema in
//! a single place.

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod sink;
pub mod span;
pub mod trace;

pub use event::{
    parse_trace, strip_wall_clock, Event, PruneDispositions, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use metrics::{CounterId, Histogram, HistogramId, LocalMetrics, MetricsRegistry};
pub use progress::Progress;
pub use sink::{EventSink, JsonlSink, NoopSink, RingSink};
pub use span::{LocalSpans, SpanProfiler, SpanTree};
pub use trace::DeepTrace;
