//! The versioned trial-event schema for campaign traces.
//!
//! A trace is a JSONL stream: one event per line, first line always a
//! `CampaignStart` carrying [`SCHEMA_VERSION`]. Readers reject traces whose
//! version they do not understand, so the format can evolve without silent
//! misinterpretation.
//!
//! Determinism contract: for a fixed campaign seed and configuration the
//! event stream is identical across runs and thread counts *except* for the
//! `wall_ns` fields, which carry real elapsed time. [`strip_wall_clock`]
//! normalizes those away for stream comparison.

use crate::json::{obj, parse, Json};

/// Version stamp written into every `CampaignStart` event.
///
/// History: v1 — trial/phase/quarantine/footer events (PR 3, extended with
/// quarantine and prune keys in PRs 4/8 without a bump, since old readers
/// parse those traces correctly). v2 — adds the deep-trace `propagation`
/// event (per-trial divergence timelines) and the `span` event (hierarchical
/// wall-time profile).
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version this reader still understands. v1 traces contain a
/// strict subset of the v2 event kinds, so they parse unchanged.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Per-site disposition counts from the analytic masking pruner: how each
/// planned trial of a pruned campaign was discharged. Carried as `None` on
/// unpruned campaigns — the fields are then absent from the serialized
/// footer, so unpruned traces stay byte-identical to pre-pruner writers
/// (and pre-pruner readers simply ignore the extra keys).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneDispositions {
    /// Sites proved masked analytically from the golden access footprint
    /// (dead-window proofs: the faulted word is overwritten before its
    /// next read, or never read again inside the detection window).
    pub proved_dead: u64,
    /// Sites whose outcome was multiplied out from an equivalence-class
    /// representative's simulated trial.
    pub class_collapsed: u64,
    /// Sites actually simulated: class representatives plus everything the
    /// pruner could not discharge analytically.
    pub simulated: u64,
}

impl PruneDispositions {
    /// Total sites the pruner dispatched.
    pub fn total(&self) -> u64 {
        self.proved_dead + self.class_collapsed + self.simulated
    }

    /// Accumulates another disposition tally.
    pub fn merge(&mut self, other: &PruneDispositions) {
        self.proved_dead += other.proved_dead;
        self.class_collapsed += other.class_collapsed;
        self.simulated += other.simulated;
    }
}

/// One telemetry event in a campaign trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Campaign header: configuration needed to interpret the rest.
    CampaignStart {
        /// Trace schema version ([`SCHEMA_VERSION`] at write time).
        schema: u64,
        /// Campaign master seed.
        seed: u64,
        /// Workload names, in campaign order.
        benchmarks: Vec<String>,
        /// Start points sampled per benchmark.
        start_points: u64,
        /// Trials injected per start point.
        trials_per_start_point: u64,
        /// Width of the injection window, in cycles.
        inject_window: u64,
        /// Post-injection monitoring horizon, in cycles.
        monitor_cycles: u64,
    },
    /// Per-phase wall-clock timing for one (benchmark, start point) task.
    Phase {
        /// Benchmark index into the `CampaignStart` workload list.
        benchmark: u64,
        /// Start-point index within the benchmark.
        start_point: u64,
        /// Phase name: `warmup`, `prepare`, `advance`, or `monitor`.
        phase: String,
        /// Elapsed wall-clock nanoseconds (zeroed by [`strip_wall_clock`]).
        wall_ns: u64,
    },
    /// One completed injection trial.
    Trial {
        /// Benchmark index into the `CampaignStart` workload list.
        benchmark: u64,
        /// Start-point index within the benchmark.
        start_point: u64,
        /// Trial index within the start point.
        trial: u64,
        /// Injected bit index in the eligible-bit enumeration.
        target: u64,
        /// Cycle (relative to the start point) at which the bit was flipped.
        inject_cycle: u64,
        /// `Category` label of the injected field.
        category: String,
        /// `StorageKind` label of the injected field (`latch` or `ram`).
        kind: String,
        /// Pipeline unit owning the injected field, when attributable.
        unit: Option<String>,
        /// Outcome class: `match`, `gray`, or `fail`.
        outcome: String,
        /// Failure mode label when `outcome == "fail"`.
        mode: Option<String>,
        /// Cycle at which the outcome was decided.
        detect_cycle: u64,
        /// Cycle of the first microarchitectural divergence, if observed.
        divergence_cycle: Option<u64>,
        /// Unit whose fingerprint first diverged, if observed.
        diverged_unit: Option<String>,
        /// Architecturally valid instructions retired before the outcome.
        valid_instructions: u64,
    },
    /// Full divergence timeline of one deep-traced trial (schema v2).
    ///
    /// Each sample is `(cycle, diverged unit labels)`: the set of pipeline
    /// units whose fingerprints differed from the golden run at that cycle.
    /// Samples are change-only — one entry per *distinct* diverged set, at
    /// the first cycle it was observed — so a fault that settles into one
    /// unit costs one sample regardless of how long it survives. Emitted
    /// immediately after the matching `Trial` event; trials whose timeline
    /// is empty (no divergence ever observed) emit no propagation event.
    Propagation {
        /// Benchmark index into the `CampaignStart` workload list.
        benchmark: u64,
        /// Start-point index within the benchmark.
        start_point: u64,
        /// Trial index within the start point.
        trial: u64,
        /// `(cycle, unit labels)` change-only divergence samples, in
        /// cycle order. Labels within a sample are in `UnitId` order.
        samples: Vec<(u64, Vec<String>)>,
    },
    /// One node of the hierarchical span profile (schema v2).
    ///
    /// Emitted once per distinct span path at campaign end, sorted by
    /// path, before `CampaignEnd`. Paths are `;`-separated from the root
    /// (e.g. `campaign;task;trials;classify`), the collapsed-stack
    /// convention flamegraph tooling consumes directly.
    Span {
        /// Root-to-leaf span path, `;`-separated.
        path: String,
        /// Total wall-clock nanoseconds spent in this span, summed across
        /// all workers (zeroed by [`strip_wall_clock`]).
        wall_ns: u64,
        /// Number of times the span was entered.
        calls: u64,
    },
    /// A trial whose faulted run panicked and was contained by the
    /// harness supervisor. Harness bookkeeping, not an outcome: these
    /// never count toward the census totals in `CampaignEnd`.
    Quarantine {
        /// Benchmark index into the `CampaignStart` workload list.
        benchmark: u64,
        /// Start-point index within the benchmark.
        start_point: u64,
        /// Trial index within the start point (the slot the trial would
        /// have occupied in the census).
        trial: u64,
        /// Injected bit index in the eligible-bit enumeration.
        target: u64,
        /// Cycle at which the bit would have been flipped.
        inject_cycle: u64,
        /// The contained panic's message.
        panic_msg: String,
    },
    /// Campaign footer: aggregate counts for cheap sanity checks.
    CampaignEnd {
        /// Total trials recorded.
        trials: u64,
        /// Trials classified microarchitectural match.
        matched: u64,
        /// Trials classified gray area.
        gray: u64,
        /// Trials classified failure (any mode).
        failed: u64,
        /// Trials quarantined by the containment supervisor (not part of
        /// `trials`; absent in pre-quarantine traces, which parse as 0).
        quarantined: u64,
        /// Eligible bits in the injection mask.
        eligible_bits: u64,
        /// Campaign wall-clock nanoseconds (zeroed by [`strip_wall_clock`]).
        wall_ns: u64,
        /// Pruner disposition counts; `None` on unpruned campaigns (the
        /// keys are then absent from the serialized footer, keeping it
        /// byte-identical to pre-pruner traces).
        prune: Option<PruneDispositions>,
    },
}

fn opt_str(v: &Option<String>) -> Json {
    match v {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

fn opt_u64(v: &Option<u64>) -> Json {
    match v {
        Some(n) => Json::Int(*n as i128),
        None => Json::Null,
    }
}

impl Event {
    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let int = |n: u64| Json::Int(n as i128);
        let value = match self {
            Event::CampaignStart {
                schema,
                seed,
                benchmarks,
                start_points,
                trials_per_start_point,
                inject_window,
                monitor_cycles,
            } => obj([
                ("ev", Json::Str("campaign_start".to_string())),
                ("schema", int(*schema)),
                ("seed", int(*seed)),
                (
                    "benchmarks",
                    Json::Arr(benchmarks.iter().map(|b| Json::Str(b.clone())).collect()),
                ),
                ("start_points", int(*start_points)),
                ("trials_per_start_point", int(*trials_per_start_point)),
                ("inject_window", int(*inject_window)),
                ("monitor_cycles", int(*monitor_cycles)),
            ]),
            Event::Phase { benchmark, start_point, phase, wall_ns } => obj([
                ("ev", Json::Str("phase".to_string())),
                ("benchmark", int(*benchmark)),
                ("start_point", int(*start_point)),
                ("phase", Json::Str(phase.clone())),
                ("wall_ns", int(*wall_ns)),
            ]),
            Event::Trial {
                benchmark,
                start_point,
                trial,
                target,
                inject_cycle,
                category,
                kind,
                unit,
                outcome,
                mode,
                detect_cycle,
                divergence_cycle,
                diverged_unit,
                valid_instructions,
            } => obj([
                ("ev", Json::Str("trial".to_string())),
                ("benchmark", int(*benchmark)),
                ("start_point", int(*start_point)),
                ("trial", int(*trial)),
                ("target", int(*target)),
                ("inject_cycle", int(*inject_cycle)),
                ("category", Json::Str(category.clone())),
                ("kind", Json::Str(kind.clone())),
                ("unit", opt_str(unit)),
                ("outcome", Json::Str(outcome.clone())),
                ("mode", opt_str(mode)),
                ("detect_cycle", int(*detect_cycle)),
                ("divergence_cycle", opt_u64(divergence_cycle)),
                ("diverged_unit", opt_str(diverged_unit)),
                ("valid_instructions", int(*valid_instructions)),
            ]),
            Event::Propagation { benchmark, start_point, trial, samples } => obj([
                ("ev", Json::Str("propagation".to_string())),
                ("benchmark", int(*benchmark)),
                ("start_point", int(*start_point)),
                ("trial", int(*trial)),
                (
                    "samples",
                    Json::Arr(
                        samples
                            .iter()
                            .map(|(cycle, units)| {
                                Json::Arr(vec![
                                    int(*cycle),
                                    Json::Arr(
                                        units.iter().map(|u| Json::Str(u.clone())).collect(),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Event::Span { path, wall_ns, calls } => obj([
                ("ev", Json::Str("span".to_string())),
                ("path", Json::Str(path.clone())),
                ("wall_ns", int(*wall_ns)),
                ("calls", int(*calls)),
            ]),
            Event::Quarantine { benchmark, start_point, trial, target, inject_cycle, panic_msg } => {
                obj([
                    ("ev", Json::Str("quarantine".to_string())),
                    ("benchmark", int(*benchmark)),
                    ("start_point", int(*start_point)),
                    ("trial", int(*trial)),
                    ("target", int(*target)),
                    ("inject_cycle", int(*inject_cycle)),
                    ("panic_msg", Json::Str(panic_msg.clone())),
                ])
            }
            Event::CampaignEnd {
                trials,
                matched,
                gray,
                failed,
                quarantined,
                eligible_bits,
                wall_ns,
                prune,
            } => {
                let mut fields = vec![
                    ("ev", Json::Str("campaign_end".to_string())),
                    ("trials", int(*trials)),
                    ("matched", int(*matched)),
                    ("gray", int(*gray)),
                    ("failed", int(*failed)),
                    ("quarantined", int(*quarantined)),
                    ("eligible_bits", int(*eligible_bits)),
                    ("wall_ns", int(*wall_ns)),
                ];
                if let Some(p) = prune {
                    fields.push(("proved_dead", int(p.proved_dead)));
                    fields.push(("class_collapsed", int(p.class_collapsed)));
                    fields.push(("simulated", int(p.simulated)));
                }
                obj(fields)
            }
        };
        value.render()
    }

    /// Parses one JSON line back into an event.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let v = parse(line)?;
        let kind = v.get("ev").and_then(Json::as_str).ok_or("missing \"ev\" tag")?;
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind}: missing or non-integer {name:?}"))
        };
        let text = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind}: missing or non-string {name:?}"))
        };
        let opt_text = |name: &str| -> Result<Option<String>, String> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(format!("{kind}: non-string {name:?}")),
            }
        };
        let opt_field = |name: &str| -> Result<Option<u64>, String> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(x) => {
                    x.as_u64().map(Some).ok_or_else(|| format!("{kind}: non-integer {name:?}"))
                }
            }
        };
        match kind {
            "campaign_start" => {
                let benchmarks = match v.get("benchmarks") {
                    Some(Json::Arr(xs)) => xs
                        .iter()
                        .map(|x| x.as_str().map(str::to_string))
                        .collect::<Option<Vec<_>>>()
                        .ok_or("campaign_start: non-string benchmark name")?,
                    _ => return Err("campaign_start: missing \"benchmarks\" array".to_string()),
                };
                Ok(Event::CampaignStart {
                    schema: field("schema")?,
                    seed: field("seed")?,
                    benchmarks,
                    start_points: field("start_points")?,
                    trials_per_start_point: field("trials_per_start_point")?,
                    inject_window: field("inject_window")?,
                    monitor_cycles: field("monitor_cycles")?,
                })
            }
            "phase" => Ok(Event::Phase {
                benchmark: field("benchmark")?,
                start_point: field("start_point")?,
                phase: text("phase")?,
                wall_ns: field("wall_ns")?,
            }),
            "trial" => Ok(Event::Trial {
                benchmark: field("benchmark")?,
                start_point: field("start_point")?,
                trial: field("trial")?,
                target: field("target")?,
                inject_cycle: field("inject_cycle")?,
                category: text("category")?,
                kind: text("kind")?,
                unit: opt_text("unit")?,
                outcome: text("outcome")?,
                mode: opt_text("mode")?,
                detect_cycle: field("detect_cycle")?,
                divergence_cycle: opt_field("divergence_cycle")?,
                diverged_unit: opt_text("diverged_unit")?,
                valid_instructions: field("valid_instructions")?,
            }),
            "propagation" => {
                let samples = match v.get("samples") {
                    Some(Json::Arr(xs)) => xs
                        .iter()
                        .map(|x| match x {
                            Json::Arr(pair) if pair.len() == 2 => {
                                let cycle = pair[0].as_u64()?;
                                let units = match &pair[1] {
                                    Json::Arr(us) => us
                                        .iter()
                                        .map(|u| u.as_str().map(str::to_string))
                                        .collect::<Option<Vec<_>>>()?,
                                    _ => return None,
                                };
                                Some((cycle, units))
                            }
                            _ => None,
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or("propagation: malformed \"samples\" entry")?,
                    _ => return Err("propagation: missing \"samples\" array".to_string()),
                };
                Ok(Event::Propagation {
                    benchmark: field("benchmark")?,
                    start_point: field("start_point")?,
                    trial: field("trial")?,
                    samples,
                })
            }
            "span" => Ok(Event::Span {
                path: text("path")?,
                wall_ns: field("wall_ns")?,
                calls: field("calls")?,
            }),
            "quarantine" => Ok(Event::Quarantine {
                benchmark: field("benchmark")?,
                start_point: field("start_point")?,
                trial: field("trial")?,
                target: field("target")?,
                inject_cycle: field("inject_cycle")?,
                panic_msg: text("panic_msg")?,
            }),
            "campaign_end" => Ok(Event::CampaignEnd {
                trials: field("trials")?,
                matched: field("matched")?,
                gray: field("gray")?,
                failed: field("failed")?,
                // Absent in traces written before quarantine existed:
                // schema-compatible default of 0.
                quarantined: opt_field("quarantined")?.unwrap_or(0),
                eligible_bits: field("eligible_bits")?,
                wall_ns: field("wall_ns")?,
                // All three keys absent on unpruned campaigns and in
                // pre-pruner traces; any present key implies a pruned run.
                prune: match (
                    opt_field("proved_dead")?,
                    opt_field("class_collapsed")?,
                    opt_field("simulated")?,
                ) {
                    (None, None, None) => None,
                    (pd, cc, sim) => Some(PruneDispositions {
                        proved_dead: pd.unwrap_or(0),
                        class_collapsed: cc.unwrap_or(0),
                        simulated: sim.unwrap_or(0),
                    }),
                },
            }),
            other => Err(format!("unknown event tag {other:?}")),
        }
    }
}

/// Parses a whole JSONL trace, validating the header.
///
/// The first non-empty line must be a `CampaignStart` with a schema version
/// this reader understands.
pub fn parse_trace(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = Event::from_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if events.is_empty() {
            match ev {
                Event::CampaignStart { schema, .. }
                    if (MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) => {}
                Event::CampaignStart { schema, .. } => {
                    return Err(format!(
                        "unsupported schema version {schema} (reader understands \
                         {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
                    ));
                }
                _ => return Err("trace does not begin with a campaign_start event".to_string()),
            }
        }
        events.push(ev);
    }
    if events.is_empty() {
        return Err("empty trace".to_string());
    }
    Ok(events)
}

/// Returns the events with all wall-clock fields zeroed.
///
/// Two identical-seed campaigns must produce equal streams after this
/// normalization, regardless of thread count or machine speed.
pub fn strip_wall_clock(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .cloned()
        .map(|ev| match ev {
            Event::Phase { benchmark, start_point, phase, .. } => {
                Event::Phase { benchmark, start_point, phase, wall_ns: 0 }
            }
            Event::Span { path, calls, .. } => Event::Span { path, wall_ns: 0, calls },
            Event::CampaignEnd {
                trials,
                matched,
                gray,
                failed,
                quarantined,
                eligible_bits,
                prune,
                ..
            } => Event::CampaignEnd {
                trials,
                matched,
                gray,
                failed,
                quarantined,
                eligible_bits,
                wall_ns: 0,
                prune,
            },
            other => other,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::CampaignStart {
                schema: SCHEMA_VERSION,
                seed: 7,
                benchmarks: vec!["gzip-like".to_string(), "twolf-like".to_string()],
                start_points: 2,
                trials_per_start_point: 40,
                inject_window: 200,
                monitor_cycles: 3000,
            },
            Event::Phase { benchmark: 0, start_point: 0, phase: "warmup".to_string(), wall_ns: 12345 },
            Event::Trial {
                benchmark: 0,
                start_point: 0,
                trial: 3,
                target: 991,
                inject_cycle: 57,
                category: "rob".to_string(),
                kind: "latch".to_string(),
                unit: Some("rob".to_string()),
                outcome: "fail".to_string(),
                mode: Some("ctrl".to_string()),
                detect_cycle: 99,
                divergence_cycle: Some(60),
                diverged_unit: Some("rename".to_string()),
                valid_instructions: 14,
            },
            Event::Trial {
                benchmark: 1,
                start_point: 1,
                trial: 0,
                target: 4,
                inject_cycle: 0,
                category: "bpred".to_string(),
                kind: "ram".to_string(),
                unit: None,
                outcome: "match".to_string(),
                mode: None,
                detect_cycle: 31,
                divergence_cycle: None,
                diverged_unit: None,
                valid_instructions: 8,
            },
            Event::Quarantine {
                benchmark: 1,
                start_point: 0,
                trial: 7,
                target: 123,
                inject_cycle: 42,
                panic_msg: "index out of bounds: the len is 64 but the index is 91".to_string(),
            },
            Event::CampaignEnd {
                trials: 2,
                matched: 1,
                gray: 0,
                failed: 1,
                quarantined: 1,
                eligible_bits: 4096,
                wall_ns: 1_000_000,
                prune: None,
            },
            Event::CampaignEnd {
                trials: 100,
                matched: 80,
                gray: 15,
                failed: 5,
                quarantined: 0,
                eligible_bits: 4096,
                wall_ns: 2_000_000,
                prune: Some(PruneDispositions {
                    proved_dead: 70,
                    class_collapsed: 20,
                    simulated: 10,
                }),
            },
            Event::Propagation {
                benchmark: 0,
                start_point: 0,
                trial: 3,
                samples: vec![
                    (58, vec!["rob".to_string()]),
                    (60, vec!["rename".to_string(), "rob".to_string()]),
                    (64, vec![]),
                ],
            },
            Event::Span {
                path: "campaign;task;trials;classify".to_string(),
                wall_ns: 98765,
                calls: 40,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for ev in sample_events() {
            let line = ev.to_json();
            assert_eq!(Event::from_json(&line).unwrap(), ev, "line: {line}");
        }
    }

    #[test]
    fn trace_round_trips() {
        let events = sample_events();
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        assert_eq!(parse_trace(&text).unwrap(), events);
    }

    #[test]
    fn header_is_enforced() {
        assert!(parse_trace("").is_err());
        let trial_first = sample_events()[2].to_json();
        assert!(parse_trace(&trial_first).is_err());
        let bad_version = Event::CampaignStart {
            schema: SCHEMA_VERSION + 1,
            seed: 0,
            benchmarks: vec![],
            start_points: 0,
            trials_per_start_point: 0,
            inject_window: 0,
            monitor_cycles: 0,
        };
        assert!(parse_trace(&bad_version.to_json()).unwrap_err().contains("schema version"));
    }

    #[test]
    fn accepts_older_schema_versions_back_to_min() {
        // v1 traces are a strict subset of v2; the reader keeps accepting
        // them. Anything below MIN or above current is rejected.
        for schema in MIN_SCHEMA_VERSION..=SCHEMA_VERSION {
            let header = Event::CampaignStart {
                schema,
                seed: 0,
                benchmarks: vec![],
                start_points: 0,
                trials_per_start_point: 0,
                inject_window: 0,
                monitor_cycles: 0,
            };
            assert!(parse_trace(&header.to_json()).is_ok(), "schema {schema} rejected");
        }
        let too_old = Event::CampaignStart {
            schema: MIN_SCHEMA_VERSION - 1,
            seed: 0,
            benchmarks: vec![],
            start_points: 0,
            trials_per_start_point: 0,
            inject_window: 0,
            monitor_cycles: 0,
        };
        assert!(parse_trace(&too_old.to_json()).unwrap_err().contains("schema version"));
    }

    #[test]
    fn strip_wall_clock_zeroes_only_timing() {
        let events = sample_events();
        let stripped = strip_wall_clock(&events);
        assert_eq!(stripped.len(), events.len());
        assert_eq!(stripped[2], events[2]); // trials untouched
        assert_eq!(stripped[4], events[4]); // quarantines untouched
        match &stripped[1] {
            Event::Phase { wall_ns, .. } => assert_eq!(*wall_ns, 0),
            _ => panic!("expected phase"),
        }
        match &stripped[5] {
            Event::CampaignEnd { wall_ns, trials, quarantined, .. } => {
                assert_eq!(*wall_ns, 0);
                assert_eq!(*trials, 2);
                assert_eq!(*quarantined, 1);
            }
            _ => panic!("expected campaign_end"),
        }
        assert_eq!(stripped[7], events[7]); // propagation carries no wall clock
        match &stripped[8] {
            Event::Span { path, wall_ns, calls } => {
                assert_eq!(*wall_ns, 0);
                assert_eq!(*calls, 40);
                assert_eq!(path, "campaign;task;trials;classify");
            }
            _ => panic!("expected span"),
        }
    }

    #[test]
    fn unpruned_footer_serializes_without_prune_keys() {
        let footer = Event::CampaignEnd {
            trials: 2,
            matched: 1,
            gray: 0,
            failed: 1,
            quarantined: 0,
            eligible_bits: 64,
            wall_ns: 7,
            prune: None,
        };
        let line = footer.to_json();
        assert!(!line.contains("proved_dead"), "{line}");
        assert!(!line.contains("class_collapsed"), "{line}");
        assert!(!line.contains("simulated"), "{line}");
        assert_eq!(Event::from_json(&line).unwrap(), footer);
    }

    #[test]
    fn pruned_footer_round_trips_dispositions() {
        let prune = PruneDispositions { proved_dead: 3, class_collapsed: 2, simulated: 1 };
        assert_eq!(prune.total(), 6);
        let footer = Event::CampaignEnd {
            trials: 6,
            matched: 5,
            gray: 1,
            failed: 0,
            quarantined: 0,
            eligible_bits: 64,
            wall_ns: 7,
            prune: Some(prune),
        };
        let line = footer.to_json();
        assert!(line.contains("\"proved_dead\":3"), "{line}");
        match Event::from_json(&line).unwrap() {
            Event::CampaignEnd { prune: Some(p), .. } => assert_eq!(p, prune),
            other => panic!("expected pruned campaign_end, got {other:?}"),
        }
    }

    #[test]
    fn campaign_end_without_quarantined_parses_as_zero() {
        // Traces written before the quarantine field existed stay readable.
        let old = "{\"ev\":\"campaign_end\",\"trials\":2,\"matched\":1,\"gray\":0,\
                   \"failed\":1,\"eligible_bits\":4096,\"wall_ns\":5}";
        match Event::from_json(old).unwrap() {
            Event::CampaignEnd { quarantined, trials, .. } => {
                assert_eq!(quarantined, 0);
                assert_eq!(trials, 2);
            }
            other => panic!("expected campaign_end, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_events() {
        assert!(Event::from_json("{}").is_err());
        assert!(Event::from_json("{\"ev\":\"mystery\"}").is_err());
        assert!(Event::from_json("{\"ev\":\"phase\",\"benchmark\":0}").is_err());
        assert!(Event::from_json(
            "{\"ev\":\"campaign_end\",\"trials\":\"three\",\"matched\":0,\"gray\":0,\"failed\":0,\"eligible_bits\":0,\"wall_ns\":0}"
        )
        .is_err());
        // v2 event kinds reject missing or malformed payloads too.
        assert!(Event::from_json(
            "{\"ev\":\"propagation\",\"benchmark\":0,\"start_point\":0,\"trial\":0}"
        )
        .is_err());
        assert!(Event::from_json(
            "{\"ev\":\"propagation\",\"benchmark\":0,\"start_point\":0,\"trial\":0,\
             \"samples\":[[1]]}"
        )
        .is_err());
        assert!(Event::from_json(
            "{\"ev\":\"propagation\",\"benchmark\":0,\"start_point\":0,\"trial\":0,\
             \"samples\":[[1,[2]]]}"
        )
        .is_err());
        assert!(Event::from_json("{\"ev\":\"span\",\"path\":\"campaign\"}").is_err());
        assert!(Event::from_json("{\"ev\":\"span\",\"path\":7,\"wall_ns\":0,\"calls\":0}").is_err());
    }
}
