//! Event sinks: where campaign telemetry goes.
//!
//! The campaign engine emits through `&dyn EventSink`, so the cost model is
//! set by the sink: [`NoopSink`] reports `enabled() == false` and callers
//! skip trace construction entirely (the zero-overhead-when-disabled
//! contract), [`RingSink`] keeps the most recent events in memory for tests
//! and interactive use, and [`JsonlSink`] streams the versioned schema to a
//! line-buffered writer.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, MutexGuard};

use crate::event::Event;

/// Locks a sink mutex, recovering from poisoning: sinks hold plain
/// buffers that stay valid across an unwind, and telemetry must never be
/// the thing that kills a campaign.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A destination for campaign telemetry events.
///
/// Sinks must be shareable across campaign worker threads (`Sync`); the
/// engine serializes emission order itself, so implementations only need
/// interior mutability, not ordering guarantees.
pub trait EventSink: Sync {
    /// Whether emitting to this sink does anything.
    ///
    /// When `false`, instrumented code paths skip building events (and any
    /// per-trial bookkeeping feeding them) entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// A sink that discards everything and reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &Event) {}
}

/// An in-memory sink keeping the latest `capacity` events.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (oldest dropped).
    pub fn new(capacity: usize) -> Self {
        RingSink { capacity, events: Mutex::new(VecDeque::new()) }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        lock_recover(&self.events).iter().cloned().collect()
    }
}

impl EventSink for RingSink {
    fn emit(&self, event: &Event) {
        let mut q = lock_recover(&self.events);
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event.clone());
    }
}

/// A sink serializing events as JSON lines to a writer.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl JsonlSink<BufWriter<File>> {
    /// Opens (truncating) `path` as a line-buffered JSONL trace file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: Mutex::new(writer) }
    }

    /// Consumes the sink, flushing and returning the inner writer.
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().unwrap_or_else(|e| e.into_inner());
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, event: &Event) {
        let mut w = lock_recover(&self.writer);
        // Trace writes are best-effort: a full disk should not abort a
        // campaign whose scientific output is the aggregate result.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = lock_recover(&self.writer).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_trace;

    fn trial(trial: u64) -> Event {
        Event::Trial {
            benchmark: 0,
            start_point: 0,
            trial,
            target: trial * 3,
            inject_cycle: 1,
            category: "rob".to_string(),
            kind: "latch".to_string(),
            unit: None,
            outcome: "match".to_string(),
            mode: None,
            detect_cycle: 2,
            divergence_cycle: None,
            diverged_unit: None,
            valid_instructions: 0,
        }
    }

    #[test]
    fn noop_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.emit(&trial(0));
        sink.flush();
    }

    #[test]
    fn ring_keeps_latest() {
        let sink = RingSink::new(2);
        assert!(sink.enabled());
        for i in 0..5 {
            sink.emit(&trial(i));
        }
        assert_eq!(sink.events(), vec![trial(3), trial(4)]);
    }

    #[test]
    fn jsonl_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        let header = Event::CampaignStart {
            schema: crate::event::SCHEMA_VERSION,
            seed: 1,
            benchmarks: vec!["gzip-like".to_string()],
            start_points: 1,
            trials_per_start_point: 2,
            inject_window: 10,
            monitor_cycles: 100,
        };
        sink.emit(&header);
        sink.emit(&trial(0));
        sink.emit(&trial(1));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let events = parse_trace(&text).unwrap();
        assert_eq!(events, vec![header, trial(0), trial(1)]);
    }
}
