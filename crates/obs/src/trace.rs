//! Per-trial divergence timelines for the deep-trace mode.
//!
//! A [`DeepTrace`] is the compressed history of *which* structures held
//! faulty state over a trial's monitored window: a sequence of
//! `(cycle, unit bitmask)` samples recorded at the classifier's
//! microarchitectural checks, **change-only** — a sample is stored only
//! when the diverged-unit set differs from the previous sample's. A fault
//! that lands in one unit and stays there costs exactly one sample no
//! matter how many cycles it survives, so deep traces stay small even at
//! paper-scale monitoring horizons.
//!
//! The crate stays pipeline-agnostic: units are bit positions in a `u16`
//! (up to [`MAX_UNITS`] of them); the producer (`tfsim-inject`) maps its
//! `UnitId`s onto bits and back to labels when emitting
//! [`crate::Event::Propagation`] events.

/// Maximum number of distinct units a [`DeepTrace`] mask can carry.
pub const MAX_UNITS: usize = 16;

/// Change-only divergence timeline of one trial.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeepTrace {
    samples: Vec<(u64, u16)>,
}

impl DeepTrace {
    /// An empty timeline (trial never observed to diverge).
    pub fn new() -> Self {
        DeepTrace::default()
    }

    /// True when no divergence was ever sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Records the diverged-unit set observed at `cycle`.
    ///
    /// Change-only: the sample is dropped when `mask` equals the previous
    /// sample's mask, and a leading empty mask is never stored (before the
    /// first sample the set is implicitly empty). Samples at a repeated
    /// cycle overwrite the earlier one, so a refinement of the same check
    /// cycle never produces out-of-order entries. `cycle` must otherwise
    /// be non-decreasing.
    pub fn push(&mut self, cycle: u64, mask: u16) {
        match self.samples.last_mut() {
            None => {
                if mask != 0 {
                    self.samples.push((cycle, mask));
                }
            }
            Some(last) => {
                debug_assert!(cycle >= last.0, "deep-trace samples must be in cycle order");
                if last.0 == cycle {
                    last.1 = mask;
                    // Collapsing to the predecessor (or to the implicit
                    // leading empty set) keeps change-only form.
                    let n = self.samples.len();
                    let prev = if n >= 2 { self.samples[n - 2].1 } else { 0 };
                    if prev == mask {
                        self.samples.pop();
                    }
                } else if last.1 != mask {
                    self.samples.push((cycle, mask));
                }
            }
        }
    }

    /// The raw `(cycle, mask)` samples, in cycle order.
    pub fn samples(&self) -> &[(u64, u16)] {
        &self.samples
    }

    /// Derives a class member's timeline from its representative's.
    ///
    /// The member's first divergence is pinned to `first_cycle` (its own
    /// injection point plus one — the faulted word is live immediately),
    /// later samples keep their absolute cycles, and everything past
    /// `horizon` is dropped. Sound for state-identical equivalence classes:
    /// rep and member machines are step-identical from the class's shared
    /// read cycle on, and before it both timelines are the single sample
    /// `{injected unit}`.
    pub fn derive(&self, first_cycle: u64, horizon: u64) -> DeepTrace {
        let mut out = DeepTrace::new();
        for (i, &(cycle, mask)) in self.samples.iter().enumerate() {
            let cycle = if i == 0 { first_cycle } else { cycle };
            if cycle > horizon {
                break;
            }
            out.push(cycle, mask);
        }
        out
    }

    /// Expands the masks to label lists via `label_of` (bit index →
    /// label), producing the payload of an `Event::Propagation`.
    pub fn to_labels(&self, label_of: impl Fn(usize) -> String) -> Vec<(u64, Vec<String>)> {
        self.samples
            .iter()
            .map(|&(cycle, mask)| {
                let units =
                    (0..MAX_UNITS).filter(|i| mask & (1 << i) != 0).map(&label_of).collect();
                (cycle, units)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_is_change_only() {
        let mut t = DeepTrace::new();
        t.push(3, 0); // leading empty set: implicit, not stored
        assert!(t.is_empty());
        t.push(5, 0b01);
        t.push(6, 0b01); // unchanged: dropped
        t.push(9, 0b11);
        t.push(17, 0b11); // unchanged: dropped
        t.push(20, 0);
        assert_eq!(t.samples(), &[(5, 0b01), (9, 0b11), (20, 0)]);
    }

    #[test]
    fn same_cycle_refinement_overwrites() {
        let mut t = DeepTrace::new();
        t.push(5, 0b01);
        t.push(5, 0b11);
        assert_eq!(t.samples(), &[(5, 0b11)]);
        // Refining back to the previous mask collapses the sample away.
        t.push(9, 0b01);
        t.push(9, 0b11);
        assert_eq!(t.samples(), &[(5, 0b11)]);
        // Refining the only sample to empty removes it entirely.
        let mut u = DeepTrace::new();
        u.push(2, 0b1);
        u.push(2, 0);
        assert!(u.is_empty());
    }

    #[test]
    fn derive_rewrites_head_and_clips_horizon() {
        let mut rep = DeepTrace::new();
        rep.push(10, 0b001);
        rep.push(40, 0b011);
        rep.push(90, 0b010);
        let member = rep.derive(21, 50);
        assert_eq!(member.samples(), &[(21, 0b001), (40, 0b011)]);
        assert_eq!(rep.derive(21, 39).samples(), &[(21, 0b001)]);
        assert!(rep.derive(21, 10).is_empty()); // head past horizon: nothing left
        assert!(DeepTrace::new().derive(5, 100).is_empty());
    }

    #[test]
    fn labels_expand_in_bit_order() {
        let mut t = DeepTrace::new();
        t.push(4, 0b101);
        let labels = t.to_labels(|i| format!("u{i}"));
        assert_eq!(labels, vec![(4, vec!["u0".to_string(), "u2".to_string()])]);
    }
}
