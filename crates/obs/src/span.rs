//! Hierarchical wall-time spans for campaign self-profiling.
//!
//! The contention model mirrors [`crate::metrics`]: a worker owns a
//! [`LocalSpans`] scratchpad per task — entering and leaving spans touches
//! only plain vectors and one `Instant` read, no locks — and merges it into
//! the shared [`SpanProfiler`] once per completed task. Merging span trees
//! is associative and commutative (per-path sums), so the aggregate is
//! independent of worker scheduling.
//!
//! A span path is the `;`-joined chain of names from the root (e.g.
//! `campaign;gzip-like;sp0;trials;classify`) — the collapsed-stack
//! convention, so [`SpanTree::collapsed`] output feeds flamegraph tooling
//! unmodified. Wall-time recorded here is *summed across workers*: with N
//! threads the root can legitimately exceed campaign wall-clock by up to
//! N×. Coverage is therefore judged per level ([`SpanTree::coverage_at_depth`]):
//! the fraction of time at one tree depth that its child spans account for,
//! which is thread-count-sound.

use std::sync::Mutex;
use std::time::Instant;

use crate::event::Event;

/// One node of a span tree: a name, its accumulated wall time, and how
/// many times the span was entered.
#[derive(Debug, Clone)]
struct SpanNode {
    name: String,
    parent: Option<usize>,
    children: Vec<usize>,
    wall_ns: u64,
    calls: u64,
}

/// A forest of named spans with per-node wall time and call counts.
///
/// Structurally a tree of `(name, wall_ns, calls)` nodes; two trees are
/// equivalent when their [`SpanTree::flatten`] outputs agree (node storage
/// order is an implementation detail).
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
}

impl SpanTree {
    /// An empty tree (the merge identity).
    pub fn new() -> Self {
        SpanTree::default()
    }

    /// True when no span was ever entered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finds or creates the child of `parent` (or a root when `None`)
    /// named `name`, returning its index.
    fn child_of(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode {
            name: name.to_string(),
            parent,
            children: Vec::new(),
            wall_ns: 0,
            calls: 0,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Adds wall time and calls to the child of `parent` named `name`.
    fn charge(&mut self, parent: Option<usize>, name: &str, wall_ns: u64, calls: u64) -> usize {
        let idx = self.child_of(parent, name);
        self.nodes[idx].wall_ns += wall_ns;
        self.nodes[idx].calls += calls;
        idx
    }

    /// Merges every span of `other` into `self`, aligning nodes by path.
    /// Associative and commutative: per-path wall times and call counts
    /// simply add.
    pub fn merge(&mut self, other: &SpanTree) {
        // Walk `other` in an order that visits parents before children so
        // the alignment map is always populated. Node indices satisfy this
        // by construction (a child is always created after its parent).
        let mut map = vec![usize::MAX; other.nodes.len()];
        for (i, node) in other.nodes.iter().enumerate() {
            let parent = node.parent.map(|p| map[p]);
            map[i] = self.charge(parent, &node.name, node.wall_ns, node.calls);
        }
    }

    fn path_of(&self, mut idx: usize) -> String {
        let mut names = vec![self.nodes[idx].name.as_str()];
        while let Some(p) = self.nodes[idx].parent {
            names.push(self.nodes[p].name.as_str());
            idx = p;
        }
        names.reverse();
        names.join(";")
    }

    /// Every span as `(path, wall_ns, calls)`, sorted by path — the
    /// canonical order-independent view of the tree.
    pub fn flatten(&self) -> Vec<(String, u64, u64)> {
        let mut out: Vec<_> = (0..self.nodes.len())
            .map(|i| (self.path_of(i), self.nodes[i].wall_ns, self.nodes[i].calls))
            .collect();
        out.sort();
        out
    }

    /// The tree as schema-v2 [`Event::Span`] records, sorted by path.
    pub fn events(&self) -> Vec<Event> {
        self.flatten()
            .into_iter()
            .map(|(path, wall_ns, calls)| Event::Span { path, wall_ns, calls })
            .collect()
    }

    /// Collapsed-stack lines (`path self_ns`), sorted by path, suitable
    /// for flamegraph tooling. Each line carries the span's *self* time
    /// (wall time not attributed to any child), so the stack totals do not
    /// double count; zero-self spans are omitted.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for i in 0..self.nodes.len() {
            let child_ns: u64 = self.nodes[i].children.iter().map(|&c| self.nodes[c].wall_ns).sum();
            let self_ns = self.nodes[i].wall_ns.saturating_sub(child_ns);
            if self_ns > 0 {
                lines.push(format!("{} {}", self.path_of(i), self_ns));
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    fn depth_of(&self, mut idx: usize) -> usize {
        let mut d = 0;
        while let Some(p) = self.nodes[idx].parent {
            d += 1;
            idx = p;
        }
        d
    }

    /// Fraction of the wall time at tree depth `depth` (root = 0) that the
    /// child spans of those nodes account for, or `None` if that depth has
    /// no recorded time. Summing across nodes of one depth keeps the ratio
    /// meaningful under multi-threading: every worker's task time and its
    /// phase breakdown land at the same depths.
    pub fn coverage_at_depth(&self, depth: usize) -> Option<f64> {
        let mut total = 0u64;
        let mut covered = 0u64;
        for i in 0..self.nodes.len() {
            if self.depth_of(i) == depth {
                total += self.nodes[i].wall_ns;
                covered +=
                    self.nodes[i].children.iter().map(|&c| self.nodes[c].wall_ns).sum::<u64>();
            }
        }
        if total == 0 {
            None
        } else {
            Some(covered as f64 / total as f64)
        }
    }

    fn render_node(&self, idx: usize, scale: u64, out: &mut String) {
        let node = &self.nodes[idx];
        let depth = self.depth_of(idx);
        let pct = node.wall_ns as f64 * 100.0 / scale.max(1) as f64;
        let label = format!("{}{}", "  ".repeat(depth + 1), node.name);
        out.push_str(&format!(
            "{label:<28} {:>14} ns {pct:>6.1}%  x{}\n",
            node.wall_ns, node.calls
        ));
        let mut kids = node.children.clone();
        kids.sort_by(|&a, &b| {
            self.nodes[b].wall_ns.cmp(&self.nodes[a].wall_ns).then(self.nodes[a]
                .name
                .cmp(&self.nodes[b].name))
        });
        for k in kids {
            self.render_node(k, scale, out);
        }
    }

    /// Renders the tree as an indented table (largest child first), with
    /// percentages relative to the root total.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("  (no spans recorded)\n");
            return out;
        }
        let scale: u64 = self.roots.iter().map(|&r| self.nodes[r].wall_ns).sum();
        let mut roots = self.roots.clone();
        roots.sort_by_key(|&r| std::cmp::Reverse(self.nodes[r].wall_ns));
        for r in roots {
            self.render_node(r, scale, &mut out);
        }
        out
    }
}

/// Per-worker span scratchpad: an explicit enter/exit stack over a private
/// [`SpanTree`]. No synchronization anywhere.
#[derive(Debug, Default)]
pub struct LocalSpans {
    tree: SpanTree,
    stack: Vec<(usize, Instant)>,
}

impl LocalSpans {
    /// A fresh scratchpad with no open spans.
    pub fn new() -> Self {
        LocalSpans::default()
    }

    /// Opens a span named `name` nested under the currently open span
    /// (or at the root).
    pub fn enter(&mut self, name: &str) {
        let parent = self.stack.last().map(|&(idx, _)| idx);
        let idx = self.tree.child_of(parent, name);
        self.stack.push((idx, Instant::now()));
    }

    /// Closes the innermost open span, charging its elapsed wall time.
    pub fn exit(&mut self) {
        let (idx, t0) = self.stack.pop().expect("exit without matching enter");
        self.tree.nodes[idx].wall_ns += t0.elapsed().as_nanos() as u64;
        self.tree.nodes[idx].calls += 1;
    }

    /// Charges externally measured time to a child of the currently open
    /// span, without opening it. Used to attribute durations the engine
    /// already measures internally (e.g. a core's classify-time counter)
    /// to the span hierarchy.
    pub fn record(&mut self, name: &str, wall_ns: u64, calls: u64) {
        let parent = self.stack.last().map(|&(idx, _)| idx);
        self.tree.charge(parent, name, wall_ns, calls);
    }

    /// The accumulated tree. Must only be read with all spans closed.
    pub fn tree(&self) -> &SpanTree {
        assert!(self.stack.is_empty(), "spans still open");
        &self.tree
    }
}

/// Shared span aggregate: workers [`SpanProfiler::absorb`] their
/// [`LocalSpans`] once per task (one short lock).
#[derive(Debug, Default)]
pub struct SpanProfiler {
    total: Mutex<SpanTree>,
}

impl SpanProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        SpanProfiler::default()
    }

    /// Merges a completed scratchpad into the aggregate.
    pub fn absorb(&self, local: &LocalSpans) {
        let tree = local.tree();
        let mut total = self.total.lock().unwrap_or_else(|e| e.into_inner());
        total.merge(tree);
    }

    /// A snapshot of the merged tree.
    pub fn snapshot(&self) -> SpanTree {
        self.total.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(paths: &[(&str, u64, u64)]) -> SpanTree {
        // Builds a tree from (path, wall_ns, calls) rows.
        let mut t = SpanTree::new();
        for &(path, wall_ns, calls) in paths {
            let mut parent = None;
            let parts: Vec<&str> = path.split(';').collect();
            for (i, name) in parts.iter().enumerate() {
                if i + 1 == parts.len() {
                    parent = Some(t.charge(parent, name, wall_ns, calls));
                } else {
                    parent = Some(t.child_of(parent, name));
                }
            }
            let _ = parent;
        }
        t
    }

    /// Decodes fuzzed words into `(path, wall_ns, calls)` charges over a
    /// small fixed path alphabet and builds the resulting tree. Shared
    /// ops always map to the same tree, so rebuilding from a concatenated
    /// op stream is the ground truth for merge.
    fn ops_tree(ops: &[u64]) -> SpanTree {
        const PATHS: [&str; 8] = [
            "campaign",
            "campaign;gzip",
            "campaign;gzip;trials",
            "campaign;gzip;trials;classify",
            "campaign;gzip;warmup",
            "campaign;twolf",
            "campaign;twolf;trials",
            "campaign;twolf;trials;advance",
        ];
        let rows: Vec<(&str, u64, u64)> =
            ops.iter().map(|&v| (PATHS[(v % 8) as usize], (v >> 3) % 1000, (v >> 13) % 4)).collect();
        tree(&rows)
    }

    tfsim_check::prop_check! {
        /// Span-tree merge is a commutative monoid with the empty tree as
        /// identity, and merging two trees equals building one tree from
        /// the concatenated charge stream.
        fn span_merge_is_a_commutative_monoid(
            xs in tfsim_check::prop::vecs(tfsim_check::prop::any_u64(), 0..24),
            ys in tfsim_check::prop::vecs(tfsim_check::prop::any_u64(), 0..24),
            zs in tfsim_check::prop::vecs(tfsim_check::prop::any_u64(), 0..24),
        ) {
            use tfsim_check::prop_assert_eq;
            let (a, b, c) = (ops_tree(&xs), ops_tree(&ys), ops_tree(&zs));

            let mut a_e = a.clone();
            a_e.merge(&SpanTree::new());
            prop_assert_eq!(a_e.flatten(), a.flatten(), "empty must be a right identity");
            let mut e_a = SpanTree::new();
            e_a.merge(&a);
            prop_assert_eq!(e_a.flatten(), a.flatten(), "empty must be a left identity");

            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab.flatten(), ba.flatten(), "merge must commute");

            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(ab_c.flatten(), a_bc.flatten(), "merge must associate");

            let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
            prop_assert_eq!(
                ab_c.flatten(),
                ops_tree(&all).flatten(),
                "merge must equal the concatenated charge stream"
            );
        }
    }

    #[test]
    fn enter_exit_builds_nested_paths() {
        let mut l = LocalSpans::new();
        l.enter("campaign");
        l.enter("bench");
        l.enter("warmup");
        l.exit();
        l.enter("warmup"); // same span again: one node, two calls
        l.exit();
        l.record("classify", 123, 7);
        l.exit();
        l.exit();
        let flat = l.tree().flatten();
        let paths: Vec<&str> = flat.iter().map(|(p, _, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["campaign", "campaign;bench", "campaign;bench;classify", "campaign;bench;warmup"]);
        let warmup = flat.iter().find(|(p, _, _)| p.ends_with("warmup")).unwrap();
        assert_eq!(warmup.2, 2);
        let classify = flat.iter().find(|(p, _, _)| p.ends_with("classify")).unwrap();
        assert_eq!((classify.1, classify.2), (123, 7));
    }

    #[test]
    #[should_panic(expected = "spans still open")]
    fn open_spans_cannot_be_read() {
        let mut l = LocalSpans::new();
        l.enter("campaign");
        let _ = l.tree();
    }

    #[test]
    fn merge_sums_matching_paths_and_keeps_disjoint_ones() {
        let mut a = tree(&[("c;x", 10, 1), ("c;y", 5, 2)]);
        let b = tree(&[("c;x", 30, 3), ("c;z", 7, 1)]);
        a.merge(&b);
        assert_eq!(
            a.flatten(),
            vec![
                ("c".to_string(), 0, 0),
                ("c;x".to_string(), 40, 4),
                ("c;y".to_string(), 5, 2),
                ("c;z".to_string(), 7, 1),
            ]
        );
    }

    #[test]
    fn collapsed_emits_self_time_only() {
        let t = tree(&[("c", 100, 1), ("c;x", 60, 2), ("c;x;k", 60, 4), ("c;y", 40, 1)]);
        // c self = 100-60-40 = 0 (omitted); c;x self = 0 (omitted).
        assert_eq!(t.collapsed(), "c;x;k 60\nc;y 40\n");
        assert_eq!(SpanTree::new().collapsed(), "");
    }

    #[test]
    fn coverage_is_per_depth() {
        let t = tree(&[("c", 100, 1), ("c;x", 90, 1), ("c;y", 8, 1), ("c;x;k", 45, 1)]);
        assert!((t.coverage_at_depth(0).unwrap() - 0.98).abs() < 1e-9);
        assert!((t.coverage_at_depth(1).unwrap() - 45.0 / 98.0).abs() < 1e-9);
        assert_eq!(t.coverage_at_depth(5), None);
        assert_eq!(SpanTree::new().coverage_at_depth(0), None);
    }

    #[test]
    fn events_are_sorted_by_path() {
        let t = tree(&[("c;y", 1, 1), ("c;x", 2, 1)]);
        let evs = t.events();
        match (&evs[1], &evs[2]) {
            (
                Event::Span { path: p1, wall_ns: 2, calls: 1 },
                Event::Span { path: p2, wall_ns: 1, calls: 1 },
            ) => {
                assert_eq!(p1, "c;x");
                assert_eq!(p2, "c;y");
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn profiler_absorbs_locals() {
        let prof = SpanProfiler::new();
        let mut a = LocalSpans::new();
        a.enter("c");
        a.record("x", 5, 1);
        a.exit();
        let mut b = LocalSpans::new();
        b.enter("c");
        b.record("x", 7, 2);
        b.exit();
        prof.absorb(&a);
        prof.absorb(&b);
        let flat = prof.snapshot().flatten();
        let x = flat.iter().find(|(p, _, _)| p == "c;x").unwrap();
        assert_eq!((x.1, x.2), (12, 3));
        let rendered = prof.snapshot().render();
        assert!(rendered.contains("c"), "{rendered}");
        assert!(rendered.contains("x2"), "{rendered}"); // calls column
    }

    #[test]
    fn render_handles_empty() {
        assert!(SpanTree::new().render().contains("no spans"));
    }
}
