//! A minimal JSON value model, writer, and parser — just enough for the
//! JSONL trace format, with exact `u64` round-trips (integers are carried
//! as `i128`, never coerced through `f64`).
//!
//! Hermetic by policy: the trace schema is part of the reproduction's
//! reproducibility story, so the workspace owns its serialization the same
//! way it owns its PRNG (see `tfsim-check`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer literal (no `.`/exponent). Wide enough for exact `u64`.
    Int(i128),
    /// A fractional or exponent literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved by sorting (JSON objects are
    /// unordered; a canonical order keeps traces diffable).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value of object member `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes the value on one line (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                let _ = write!(out, "{f}");
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience builder for one JSON object from `(key, value)` pairs.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if float {
            text.parse().map(Json::Float).map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse().map(Json::Int).map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by the schema
                            // (labels are ASCII); reject rather than mangle.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected , or ] but found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("expected , or }} but found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = obj([
            ("a", Json::Int(18_446_744_073_709_551_615i128)),
            ("b", Json::Str("x\"\\\n".to_string())),
            ("c", Json::Null),
            ("d", Json::Bool(true)),
            ("e", Json::Arr(vec![Json::Int(-3), Json::Float(1.5)])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_max_survives_exactly() {
        let v = parse("{\"x\":18446744073709551615}").unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn accessors() {
        let v = parse("{\"s\":\"hi\",\"n\":7}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
        assert_eq!(Json::Float(1.0).as_u64(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)])));
    }
}
