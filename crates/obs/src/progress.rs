//! A shared campaign progress gauge.
//!
//! Workers bump an atomic as tasks finish; a display thread (or the main
//! thread between joins) polls [`Progress::render`] for a one-line meter.
//! No locks, no allocation on the update path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free done/total progress state.
#[derive(Debug, Default)]
pub struct Progress {
    done: AtomicU64,
    total: AtomicU64,
}

impl Progress {
    /// A gauge at 0 / 0.
    pub fn new() -> Self {
        Progress::default()
    }

    /// Sets the number of work items expected.
    pub fn set_total(&self, total: u64) {
        self.total.store(total, Ordering::Relaxed);
    }

    /// Marks `n` more work items complete.
    pub fn add(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Current `(done, total)` snapshot.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.done.load(Ordering::Relaxed), self.total.load(Ordering::Relaxed))
    }

    /// One-line text meter, e.g. `[#####.....] 12/24 tasks`.
    pub fn render(&self) -> String {
        let (done, total) = self.snapshot();
        const WIDTH: u64 = 20;
        let filled = (done.min(total) * WIDTH).checked_div(total).unwrap_or(0);
        let mut bar = String::with_capacity(WIDTH as usize + 2);
        bar.push('[');
        for i in 0..WIDTH {
            bar.push(if i < filled { '#' } else { '.' });
        }
        bar.push(']');
        format!("{bar} {done}/{total} tasks")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_and_renders() {
        let p = Progress::new();
        assert_eq!(p.render(), "[....................] 0/0 tasks");
        p.set_total(4);
        p.add(1);
        p.add(2);
        assert_eq!(p.snapshot(), (3, 4));
        assert_eq!(p.render(), "[###############.....] 3/4 tasks");
        p.add(1);
        assert_eq!(p.render(), "[####################] 4/4 tasks");
    }

    #[test]
    fn overshoot_clamps_bar_not_count() {
        let p = Progress::new();
        p.set_total(2);
        p.add(5);
        assert_eq!(p.render(), "[####################] 5/2 tasks");
    }
}
