//! Monotonic counters and log2-bucketed histograms for campaign workers.
//!
//! The contention model: the hot path (a worker recording per-trial samples)
//! touches only its own [`LocalMetrics`] — plain `u64` arithmetic, no atomics,
//! no locks. Workers call [`MetricsRegistry::absorb`] once per completed task
//! (a few dozen trials), which takes one short lock to merge. Merging is
//! associative and commutative, so the aggregate is independent of worker
//! scheduling.

use std::sync::Mutex;

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A histogram of `u64` samples with logarithmic (base-2) buckets.
///
/// Bucket 0 holds the value 0; bucket `k >= 1` holds values in
/// `[2^(k-1), 2^k)`. Every `u64` lands in exactly one bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { count: 0, sum: 0, buckets: [0; BUCKETS] }
    }

    /// Index of the bucket that `value` falls into.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive `(lo, hi)` value range covered by bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            k => (1 << (k - 1), (1 << k) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.buckets[Histogram::bucket_of(value)] += 1;
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw per-bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Mean of the recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 <= q <= 1.0`), or `None` if empty.
    ///
    /// Bucket resolution means the answer is exact only to within a factor
    /// of two — adequate for latency distributions spanning decades.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we are after, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Histogram::bucket_bounds(i).1);
            }
        }
        // Unreachable: counts sum to self.count >= rank.
        Some(u64::MAX)
    }

    /// Renders the non-empty buckets as an ASCII bar chart.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!("{label} (n={}", self.count);
        if let Some(m) = self.mean() {
            out.push_str(&format!(", mean={m:.1}"));
        }
        out.push_str(")\n");
        if self.count == 0 {
            out.push_str("  (no samples)\n");
            return out;
        }
        let peak = *self.buckets.iter().max().expect("nonempty");
        let first = self.buckets.iter().position(|&n| n > 0).expect("count > 0");
        let last = self.buckets.iter().rposition(|&n| n > 0).expect("count > 0");
        for i in first..=last {
            let (lo, hi) = Histogram::bucket_bounds(i);
            let n = self.buckets[i];
            let bar = "#".repeat(((n * 40).div_ceil(peak.max(1))) as usize);
            out.push_str(&format!("  [{lo:>12} .. {hi:>12}] {n:>8} {bar}\n"));
        }
        out
    }
}

/// Handle to a counter registered in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a histogram registered in a [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A named set of counters and histograms aggregated across workers.
///
/// Register instruments up front (requires `&mut self`), hand each worker a
/// [`LocalMetrics`] scratchpad via [`MetricsRegistry::local`], and merge
/// completed scratchpads back with [`MetricsRegistry::absorb`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counter_names: Vec<&'static str>,
    histogram_names: Vec<&'static str>,
    totals: Mutex<Totals>,
}

#[derive(Debug, Default)]
struct Totals {
    counters: Vec<u64>,
    histograms: Vec<Histogram>,
}

/// Per-worker metrics scratchpad: plain integers, no synchronization.
#[derive(Debug, Clone)]
pub struct LocalMetrics {
    counters: Vec<u64>,
    histograms: Vec<Histogram>,
}

impl LocalMetrics {
    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Records one histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].record(value);
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers a monotonic counter.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counter_names.push(name);
        let t = self.totals.get_mut().expect("metrics poisoned");
        t.counters.push(0);
        CounterId(self.counter_names.len() - 1)
    }

    /// Registers a histogram.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        self.histogram_names.push(name);
        let t = self.totals.get_mut().expect("metrics poisoned");
        t.histograms.push(Histogram::new());
        HistogramId(self.histogram_names.len() - 1)
    }

    /// A zeroed scratchpad matching the registered instruments.
    pub fn local(&self) -> LocalMetrics {
        LocalMetrics {
            counters: vec![0; self.counter_names.len()],
            histograms: vec![Histogram::new(); self.histogram_names.len()],
        }
    }

    /// Merges a scratchpad into the totals (one lock acquisition).
    pub fn absorb(&self, local: &LocalMetrics) {
        let mut t = self.totals.lock().expect("metrics poisoned");
        for (a, b) in t.counters.iter_mut().zip(local.counters.iter()) {
            *a += *b;
        }
        for (a, b) in t.histograms.iter_mut().zip(local.histograms.iter()) {
            a.merge(b);
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.totals.lock().expect("metrics poisoned").counters[id.0]
    }

    /// Snapshot of a histogram.
    pub fn histogram_value(&self, id: HistogramId) -> Histogram {
        self.totals.lock().expect("metrics poisoned").histograms[id.0].clone()
    }

    /// Renders all instruments: counters as a name/value table, histograms
    /// as bar charts.
    pub fn render(&self) -> String {
        let t = self.totals.lock().expect("metrics poisoned");
        let mut out = String::new();
        if !self.counter_names.is_empty() {
            let width = self.counter_names.iter().map(|n| n.len()).max().unwrap_or(0);
            for (name, value) in self.counter_names.iter().zip(t.counters.iter()) {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        for (name, h) in self.histogram_names.iter().zip(t.histograms.iter()) {
            out.push_str(&h.render(name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_of(1 << 63), 64);
        assert_eq!(Histogram::bucket_of((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        let (lo, hi) = Histogram::bucket_bounds(0);
        assert_eq!((lo, hi), (0, 0));
        for k in 1..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(k);
            let (_, prev_hi) = Histogram::bucket_bounds(k - 1);
            assert_eq!(lo, prev_hi + 1, "bucket {k} not contiguous");
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_of(lo), k);
            assert_eq!(Histogram::bucket_of(hi), k);
        }
        assert_eq!(Histogram::bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn mean_and_quantile() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean().unwrap() - 21.2).abs() < 1e-9);
        // Median sample (rank 3) is 2, in bucket [2, 3].
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.0), Some(0));
        // Max sample 100 lands in [64, 127].
        assert_eq!(h.quantile(1.0), Some(127));
    }

    #[test]
    fn render_shows_only_occupied_range() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(6);
        h.record(40);
        let text = h.render("latency");
        assert!(text.contains("latency (n=3"));
        assert!(text.contains("[           4 ..            7]"));
        assert!(text.contains("[          32 ..           63]"));
        assert!(!text.contains("[           0 ..            0]"));
        assert_eq!(Histogram::new().render("empty"), "empty (n=0)\n  (no samples)\n");
    }

    #[test]
    fn registry_absorbs_locals() {
        let mut reg = MetricsRegistry::new();
        let trials = reg.counter("trials");
        let fails = reg.counter("failures");
        let lat = reg.histogram("latency");

        let mut a = reg.local();
        a.add(trials, 10);
        a.observe(lat, 4);
        let mut b = reg.local();
        b.add(trials, 5);
        b.add(fails, 2);
        b.observe(lat, 9);
        reg.absorb(&a);
        reg.absorb(&b);

        assert_eq!(reg.counter_value(trials), 15);
        assert_eq!(reg.counter_value(fails), 2);
        let h = reg.histogram_value(lat);
        assert_eq!(h.count(), 2);
        let rendered = reg.render();
        assert!(rendered.contains("trials"));
        assert!(rendered.contains("15"));
        assert!(rendered.contains("latency (n=2"));
    }
}
