//! The functional simulator core.

use tfsim_isa::{alu, decode, syscall, ExecClass, Mnemonic, PalFunc, Program, Reg};
use tfsim_mem::{is_aligned, PageSet, SparseMemory};

/// Program-visible register and control state.
///
/// `R31` is maintained as zero by construction: [`ArchState::write_reg`]
/// drops writes to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [u64; 32],
    /// The program counter.
    pub pc: u64,
}

impl ArchState {
    /// Creates a state with all registers zero and the given entry PC.
    pub fn new(entry: u64) -> ArchState {
        ArchState { regs: [0; 32], pc: entry }
    }

    /// Reads a register (`R31` reads zero).
    pub fn read_reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }

    /// Writes a register (writes to `R31` are discarded).
    pub fn write_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.number() as usize] = v;
        }
    }

    /// All register values in numeric order (including the zero register).
    pub fn regs(&self) -> &[u64; 32] {
        &self.regs
    }
}

/// An architectural exception.
///
/// In the pipeline model these surface when the faulting instruction
/// retires, and an injected fault that provokes one is a `Terminated`
/// (`except`) trial outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exception {
    /// The instruction word does not decode (`OPCDEC`).
    IllegalInstruction,
    /// A load/store address violated natural alignment.
    Alignment {
        /// The faulting effective address.
        addr: u64,
    },
    /// A `/V` operation overflowed.
    ArithmeticOverflow,
    /// `CALL_PAL` with an unimplemented function code.
    BadPalCall,
}

impl std::fmt::Display for Exception {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exception::IllegalInstruction => write!(f, "illegal instruction"),
            Exception::Alignment { addr } => write!(f, "alignment fault at {addr:#x}"),
            Exception::ArithmeticOverflow => write!(f, "arithmetic overflow"),
            Exception::BadPalCall => write!(f, "unimplemented PAL call"),
        }
    }
}

/// A retired store, as seen by the memory image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRecord {
    /// Effective address.
    pub addr: u64,
    /// Value written (low `size` bytes significant).
    pub value: u64,
    /// Access size in bytes.
    pub size: u64,
}

/// One architecturally retired instruction.
///
/// The microarchitectural checker compares the pipeline's k-th retirement
/// against the functional simulator's k-th record; any field mismatch is a
/// failure with a mode determined by which field diverged (wrong
/// destination value → `regfile`, wrong store → `mem`, wrong PC → `ctrl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireRecord {
    /// Zero-based dynamic instruction number.
    pub seq: u64,
    /// Address of the instruction.
    pub pc: u64,
    /// Address of the next instruction (branch outcomes included).
    pub next_pc: u64,
    /// The raw instruction word executed.
    pub raw: u32,
    /// Destination register and the value written, if any.
    pub dst: Option<(Reg, u64)>,
    /// Store performed, if any.
    pub store: Option<StoreRecord>,
}

/// The observable result of one [`FuncSim::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvent {
    /// An instruction retired normally.
    Retired(RetireRecord),
    /// The program executed `CALL_PAL halt` or `exit()`.
    Halted {
        /// Exit code (zero for a bare `halt`).
        code: u64,
    },
    /// An exception was raised; the simulator stops.
    Exception(Exception),
}

/// Summary of a [`FuncSim::run`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions retired during this call.
    pub retired: u64,
    /// Exit code if the program halted.
    pub exit_code: Option<u64>,
    /// Exception if one was raised.
    pub exception: Option<Exception>,
    /// Whether the instruction budget expired first.
    pub out_of_budget: bool,
}

/// An architectural fault to apply to the next instruction executed.
///
/// These are the paper's six Section-5 fault models, applied to one
/// dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchFault {
    /// Flip bit `bit` (0–31) of the result of the next register write.
    FlipResultBit32 {
        /// Bit index within the low 32 bits.
        bit: u8,
    },
    /// Flip bit `bit` (0–63) of the result of the next register write.
    FlipResultBit64 {
        /// Bit index.
        bit: u8,
    },
    /// Replace the result of the next register write with `value`.
    RandomResult {
        /// The replacement bits.
        value: u64,
    },
    /// Flip bit `bit` of the next instruction word before decoding.
    FlipInsnBit {
        /// Bit index (0–31).
        bit: u8,
    },
    /// Execute the next instruction as a no-op.
    MakeNop,
    /// Force the next conditional branch to take the wrong direction.
    FlipBranch,
}

/// The functional simulator.
///
/// Executes one instruction per [`step`](FuncSim::step), maintains the
/// memory image and the output stream, and records the pages touched (used
/// to preload the pipeline model's TLBs).
#[derive(Debug, Clone)]
pub struct FuncSim {
    /// Program-visible state.
    pub state: ArchState,
    /// The memory image.
    pub mem: SparseMemory,
    output: Vec<u8>,
    halted: Option<u64>,
    exception: Option<Exception>,
    retired: u64,
    syscalls: u64,
    code_pages: PageSet,
    data_pages: PageSet,
    pending_fault: Option<ArchFault>,
}

impl FuncSim {
    /// Creates a simulator loaded with `program`, PC at its entry point.
    pub fn new(program: &Program) -> FuncSim {
        let mut code_pages = PageSet::new();
        let mut data_pages = PageSet::new();
        for s in &program.sections {
            code_pages.insert_range(s.addr, s.bytes.len() as u64);
            data_pages.insert_range(s.addr, s.bytes.len() as u64);
        }
        FuncSim {
            state: ArchState::new(program.entry),
            mem: SparseMemory::from_program(program),
            output: Vec::new(),
            halted: None,
            exception: None,
            retired: 0,
            syscalls: 0,
            code_pages,
            data_pages,
            pending_fault: None,
        }
    }

    /// Bytes written by the program so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Exit code, if the program has halted.
    pub fn exit_code(&self) -> Option<u64> {
        self.halted
    }

    /// The exception that stopped the program, if any.
    pub fn exception(&self) -> Option<Exception> {
        self.exception
    }

    /// Whether the simulator can still make progress.
    pub fn running(&self) -> bool {
        self.halted.is_none() && self.exception.is_none()
    }

    /// Total instructions retired.
    pub fn instret(&self) -> u64 {
        self.retired
    }

    /// Number of system calls executed so far (syscall boundaries are the
    /// synchronization points of the Section-5 outcome classification).
    pub fn syscall_count(&self) -> u64 {
        self.syscalls
    }

    /// Pages touched by instruction fetch so far.
    pub fn code_pages(&self) -> &PageSet {
        &self.code_pages
    }

    /// Pages touched by data accesses so far (includes the initial image).
    pub fn data_pages(&self) -> &PageSet {
        &self.data_pages
    }

    /// Arms a one-shot architectural fault consumed by the next `step`.
    ///
    /// `FlipBranch` stays armed until a conditional branch executes.
    pub fn inject(&mut self, fault: ArchFault) {
        self.pending_fault = Some(fault);
    }

    /// Whether an armed fault has not yet been consumed.
    pub fn fault_pending(&self) -> bool {
        self.pending_fault.is_some()
    }

    /// Executes one instruction.
    ///
    /// After a halt or exception, further calls return the same terminal
    /// event without advancing.
    pub fn step(&mut self) -> StepEvent {
        if let Some(code) = self.halted {
            return StepEvent::Halted { code };
        }
        if let Some(e) = self.exception {
            return StepEvent::Exception(e);
        }

        let pc = self.state.pc;
        self.code_pages.insert_range(pc, 4);
        let mut raw = self.mem.read_u32(pc);

        // Fault models operating on the instruction word.
        let mut force_branch_flip = false;
        let mut result_xor: u64 = 0;
        let mut result_replace: Option<u64> = None;
        if let Some(fault) = self.pending_fault {
            match fault {
                ArchFault::FlipInsnBit { bit } => {
                    raw ^= 1 << (bit % 32);
                    self.pending_fault = None;
                }
                ArchFault::MakeNop => {
                    // BIS r31, r31, r31 is the canonical Alpha nop.
                    raw = (0x11 << 26) | (31 << 21) | (31 << 16) | (0x20 << 5) | 31;
                    self.pending_fault = None;
                }
                ArchFault::FlipResultBit32 { bit } => {
                    result_xor = 1 << (bit % 32);
                    self.pending_fault = None;
                }
                ArchFault::FlipResultBit64 { bit } => {
                    result_xor = 1 << (bit % 64);
                    self.pending_fault = None;
                }
                ArchFault::RandomResult { value } => {
                    result_replace = Some(value);
                    self.pending_fault = None;
                }
                ArchFault::FlipBranch => {
                    // Consumed only when a conditional branch executes.
                    force_branch_flip = true;
                }
            }
        }

        let insn = decode(raw);
        let mut next_pc = pc.wrapping_add(4);
        let mut dst: Option<(Reg, u64)> = None;
        let mut store: Option<StoreRecord> = None;

        macro_rules! raise {
            ($e:expr) => {{
                self.exception = Some($e);
                return StepEvent::Exception($e);
            }};
        }

        match insn.exec_class() {
            ExecClass::SimpleAlu | ExecClass::ComplexAlu => match insn.mnemonic {
                Mnemonic::Lda | Mnemonic::Ldah => {
                    let vb = self.state.read_reg(insn.rb);
                    dst = Some((insn.ra, alu::lda_value(insn.mnemonic, vb, insn.imm)));
                }
                m => {
                    let va = self.state.read_reg(insn.ra);
                    let vb = if insn.uses_literal {
                        insn.imm as u64
                    } else {
                        self.state.read_reg(insn.rb)
                    };
                    let old_c = self.state.read_reg(insn.rc);
                    match alu::operate(m, va, vb, old_c) {
                        Ok(v) => dst = Some((insn.rc, v)),
                        Err(_) => raise!(Exception::ArithmeticOverflow),
                    }
                }
            },
            ExecClass::Load => {
                let base = self.state.read_reg(insn.rb);
                let addr = base.wrapping_add(insn.imm as u64);
                let size = insn.access_size();
                if !is_aligned(addr, size) {
                    raise!(Exception::Alignment { addr });
                }
                self.data_pages.insert_range(addr, size);
                let rawv = self.mem.read_sized(addr, size);
                dst = Some((insn.ra, alu::extend_load(insn.mnemonic, rawv)));
            }
            ExecClass::Store => {
                let base = self.state.read_reg(insn.rb);
                let addr = base.wrapping_add(insn.imm as u64);
                let size = insn.access_size();
                if !is_aligned(addr, size) {
                    raise!(Exception::Alignment { addr });
                }
                self.data_pages.insert_range(addr, size);
                let value = self.state.read_reg(insn.ra);
                self.mem.write_sized(addr, value, size);
                store = Some(StoreRecord { addr, value, size });
            }
            ExecClass::Branch => match insn.mnemonic {
                Mnemonic::Br | Mnemonic::Bsr => {
                    dst = Some((insn.ra, pc.wrapping_add(4)));
                    next_pc = insn.branch_target(pc);
                }
                Mnemonic::Jmp | Mnemonic::Jsr | Mnemonic::Ret => {
                    let target = self.state.read_reg(insn.rb) & !3;
                    dst = Some((insn.ra, pc.wrapping_add(4)));
                    next_pc = target;
                }
                m => {
                    let va = self.state.read_reg(insn.ra);
                    let mut taken = alu::branch_taken(m, va);
                    if force_branch_flip {
                        taken = !taken;
                        self.pending_fault = None;
                    }
                    if taken {
                        next_pc = insn.branch_target(pc);
                    }
                }
            },
            ExecClass::Pal => match insn.mnemonic {
                Mnemonic::CallPal => match insn.pal {
                    PalFunc::Halt => {
                        self.halted = Some(0);
                        return StepEvent::Halted { code: 0 };
                    }
                    PalFunc::CallSys => {
                        self.syscalls += 1;
                        match self.state.read_reg(Reg::V0) {
                            syscall::EXIT => {
                                let code = self.state.read_reg(Reg::A0);
                                self.halted = Some(code);
                                return StepEvent::Halted { code };
                            }
                            syscall::WRITE => {
                                // No return value is architecturally
                                // visible (keeps PAL calls free of renamed
                                // destinations in the pipeline model).
                                let buf = self.state.read_reg(Reg::A1);
                                let len = self.state.read_reg(Reg::A2).min(1 << 20);
                                for i in 0..len {
                                    self.output.push(self.mem.read_u8(buf.wrapping_add(i)));
                                    self.data_pages.insert_addr(buf.wrapping_add(i));
                                }
                            }
                            _ => raise!(Exception::BadPalCall),
                        }
                    }
                    PalFunc::Other(_) => raise!(Exception::BadPalCall),
                },
                _ => raise!(Exception::IllegalInstruction),
            },
        }

        // Result-corrupting fault models.
        if let Some((r, v)) = dst {
            let corrupted = match result_replace {
                Some(nv) => nv,
                None => v ^ result_xor,
            };
            self.state.write_reg(r, corrupted);
            dst = Some((r, corrupted));
        } else if result_xor != 0 || result_replace.is_some() {
            // The chosen instruction had no register destination; the fault
            // model still consumes the injection (it corrupted dead state).
        }

        self.state.pc = next_pc;
        let record = RetireRecord {
            seq: self.retired,
            pc,
            next_pc,
            raw,
            dst: dst.filter(|(r, _)| !r.is_zero()),
            store,
        };
        self.retired += 1;
        StepEvent::Retired(record)
    }

    /// Runs until halt, exception, or `max_insns` retirements.
    pub fn run(&mut self, max_insns: u64) -> RunResult {
        let mut retired = 0;
        while retired < max_insns {
            match self.step() {
                StepEvent::Retired(_) => retired += 1,
                StepEvent::Halted { code } => {
                    return RunResult {
                        retired,
                        exit_code: Some(code),
                        exception: None,
                        out_of_budget: false,
                    }
                }
                StepEvent::Exception(e) => {
                    return RunResult {
                        retired,
                        exit_code: None,
                        exception: Some(e),
                        out_of_budget: false,
                    }
                }
            }
        }
        RunResult { retired, exit_code: None, exception: None, out_of_budget: true }
    }

    /// Runs and collects every retirement record (the golden trace used by
    /// the microarchitectural checker).
    pub fn run_trace(&mut self, max_insns: u64) -> (Vec<RetireRecord>, RunResult) {
        let mut trace = Vec::new();
        loop {
            if trace.len() as u64 >= max_insns {
                return (
                    trace,
                    RunResult {
                        retired: max_insns,
                        exit_code: None,
                        exception: None,
                        out_of_budget: true,
                    },
                );
            }
            match self.step() {
                StepEvent::Retired(r) => trace.push(r),
                StepEvent::Halted { code } => {
                    let retired = trace.len() as u64;
                    return (
                        trace,
                        RunResult {
                            retired,
                            exit_code: Some(code),
                            exception: None,
                            out_of_budget: false,
                        },
                    );
                }
                StepEvent::Exception(e) => {
                    let retired = trace.len() as u64;
                    return (
                        trace,
                        RunResult {
                            retired,
                            exit_code: None,
                            exception: Some(e),
                            out_of_budget: false,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_isa::Asm;

    fn exit_program(code: u64) -> Program {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::V0, syscall::EXIT);
        a.li(Reg::A0, code);
        a.callsys();
        Program::new("exit", a)
    }

    #[test]
    fn exit_syscall() {
        let mut sim = FuncSim::new(&exit_program(7));
        let r = sim.run(100);
        assert_eq!(r.exit_code, Some(7));
        assert!(!sim.running());
        assert_eq!(sim.syscall_count(), 1);
    }

    #[test]
    fn write_syscall_produces_output() {
        let mut a = Asm::new(0x1_0000);
        let data = 0x2_0000u64;
        a.li(Reg::V0, syscall::WRITE);
        a.li(Reg::A0, 1);
        a.li(Reg::A1, data);
        a.li(Reg::A2, 5);
        a.callsys();
        a.li(Reg::V0, syscall::EXIT);
        a.li(Reg::A0, 0);
        a.callsys();
        let p = Program::new("hello", a).with_data(data, b"hello".to_vec());
        let mut sim = FuncSim::new(&p);
        let r = sim.run(1000);
        assert_eq!(r.exit_code, Some(0));
        assert_eq!(sim.output(), b"hello");
    }

    #[test]
    fn loop_and_arithmetic() {
        // Sum 1..=10 into R3, store to memory, load back, exit with it.
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 10);
        a.li(Reg::R3, 0);
        let top = a.here_label();
        a.addq(Reg::R3, Reg::R1, Reg::R3);
        a.subq_i(Reg::R1, 1, Reg::R1);
        a.bne(Reg::R1, top);
        a.li(Reg::R5, 0x2_0000);
        a.stq(Reg::R3, Reg::R5, 0);
        a.ldq(Reg::R4, Reg::R5, 0);
        a.li(Reg::V0, syscall::EXIT);
        a.mov(Reg::R4, Reg::A0);
        a.callsys();
        let mut sim = FuncSim::new(&Program::new("sum", a));
        let r = sim.run(10_000);
        assert_eq!(r.exit_code, Some(55));
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new(0x1_0000);
        let func = a.label();
        let done = a.label();
        a.bsr(Reg::RA, func);
        a.br(done);
        a.bind(func);
        a.li(Reg::R9, 99);
        a.ret(Reg::RA);
        a.bind(done);
        a.li(Reg::V0, syscall::EXIT);
        a.mov(Reg::R9, Reg::A0);
        a.callsys();
        let mut sim = FuncSim::new(&Program::new("call", a));
        assert_eq!(sim.run(100).exit_code, Some(99));
    }

    #[test]
    fn alignment_exception() {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 0x2_0001);
        a.ldq(Reg::R2, Reg::R1, 0);
        let mut sim = FuncSim::new(&Program::new("misalign", a));
        let r = sim.run(100);
        assert_eq!(r.exception, Some(Exception::Alignment { addr: 0x2_0001 }));
    }

    #[test]
    fn overflow_exception() {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, i64::MAX as u64);
        a.addqv(Reg::R1, Reg::R1, Reg::R2);
        let mut sim = FuncSim::new(&Program::new("ovf", a));
        assert_eq!(sim.run(100).exception, Some(Exception::ArithmeticOverflow));
    }

    #[test]
    fn illegal_instruction_exception() {
        let p = Program::new("illegal", Asm::new(0x1_0000))
            .with_data(0x1_0000, (0x17u32 << 26).to_le_bytes().to_vec());
        let mut sim = FuncSim::new(&p);
        assert_eq!(sim.run(10).exception, Some(Exception::IllegalInstruction));
    }

    #[test]
    fn retire_records_capture_effects() {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 5); // lda r1, 5
        a.li(Reg::R2, 0x2_0000);
        a.stq(Reg::R1, Reg::R2, 8);
        a.halt();
        let mut sim = FuncSim::new(&Program::new("rec", a));
        let (trace, result) = sim.run_trace(100);
        assert_eq!(result.exit_code, Some(0));
        assert_eq!(trace[0].dst, Some((Reg::R1, 5)));
        let st = trace.iter().find_map(|r| r.store).unwrap();
        assert_eq!(st, StoreRecord { addr: 0x2_0008, value: 5, size: 8 });
        // Sequence numbers are dense.
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn fault_flip_result_bit() {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 0);
        a.halt();
        let mut sim = FuncSim::new(&Program::new("f", a));
        sim.inject(ArchFault::FlipResultBit64 { bit: 63 });
        sim.step();
        assert_eq!(sim.state.read_reg(Reg::R1), 1 << 63);
        assert!(!sim.fault_pending());
    }

    #[test]
    fn fault_branch_flip_waits_for_branch() {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 1);
        let skip = a.label();
        a.bne(Reg::R1, skip); // would be taken; fault flips to not-taken
        a.li(Reg::R9, 11); // executed only when flipped
        a.bind(skip);
        a.li(Reg::V0, syscall::EXIT);
        a.mov(Reg::R9, Reg::A0);
        a.callsys();
        let mut sim = FuncSim::new(&Program::new("bf", a));
        sim.inject(ArchFault::FlipBranch);
        // The fault must stay pending across the non-branch li.
        sim.step();
        assert!(sim.fault_pending());
        let r = sim.run(100);
        assert_eq!(r.exit_code, Some(11));
    }

    #[test]
    fn fault_make_nop() {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 123);
        a.halt();
        let mut sim = FuncSim::new(&Program::new("nop", a));
        sim.inject(ArchFault::MakeNop);
        sim.step();
        assert_eq!(sim.state.read_reg(Reg::R1), 0);
        assert_eq!(sim.state.pc, 0x1_0004);
    }

    #[test]
    fn fault_insn_bit_can_change_opcode() {
        let mut a = Asm::new(0x1_0000);
        a.addq(Reg::R1, Reg::R2, Reg::R3);
        a.halt();
        let mut sim = FuncSim::new(&Program::new("ib", a));
        sim.state.write_reg(Reg::R1, 10);
        sim.state.write_reg(Reg::R2, 3);
        // Flip bits turning ADDQ (0x20) into SUBQ (0x29): bits 5+8... flip a
        // single bit (bit 8) -> func 0x28, unassigned -> illegal.
        sim.inject(ArchFault::FlipInsnBit { bit: 8 });
        match sim.step() {
            StepEvent::Exception(Exception::IllegalInstruction) => {}
            other => panic!("expected illegal instruction, got {other:?}"),
        }
    }

    #[test]
    fn terminal_events_are_sticky() {
        let mut sim = FuncSim::new(&exit_program(3));
        sim.run(100);
        assert_eq!(sim.step(), StepEvent::Halted { code: 3 });
        assert_eq!(sim.step(), StepEvent::Halted { code: 3 });
    }

    #[test]
    fn page_tracking() {
        let mut sim = FuncSim::new(&exit_program(0));
        sim.run(100);
        assert!(sim.code_pages().covers(0x1_0000, 4));
        assert!(!sim.code_pages().covers(0x9_0000, 4));
    }
}
