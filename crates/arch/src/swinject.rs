//! Section-5 architectural fault injection (the paper's Figure 11).
//!
//! Faults that escape the microarchitecture appear to software as corrupted
//! architectural state. The paper models them with six fault models applied
//! to one randomly chosen dynamic instruction in a functional simulation,
//! then classifies each trial as *Exception*, *State OK*, *Output OK*, or
//! *Output Bad*.
//!
//! A trial is *State OK* when the architectural state (registers, PC,
//! memory) completely matches the fault-free execution just before a system
//! call — the only form of external communication — meaning the fault was
//! masked by the software layer before anything escaped. *Output OK* is the
//! weaker condition that the program's user-visible output still matched.
//!
//! ```
//! use tfsim_arch::swinject::{golden_ref, run_campaign, FaultModel};
//! use tfsim_isa::{Asm, Program, Reg};
//!
//! let mut a = Asm::new(0x1_0000);
//! a.li(Reg::R0, 1);
//! a.li(Reg::R16, 0);
//! a.callsys();
//! let p = Program::new("t", a);
//! let golden = golden_ref(&p, 10_000);
//! let tally = run_campaign(&p, &golden, FaultModel::ResultBit64, 20, 42);
//! assert_eq!(tally.total(), 20);
//! ```

use tfsim_check::Rng;
use tfsim_isa::{decode, Mnemonic, PalFunc, Program};

use crate::sim::{ArchFault, ArchState, FuncSim, StepEvent};

/// The six architectural fault models of Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Single bit flip in the lower 32 bits of a register-write result.
    ResultBit32,
    /// Single bit flip anywhere in the 64-bit register-write result.
    ResultBit64,
    /// Replace a register-write result with 64 random bits.
    ResultRandom,
    /// Single bit flip in a dynamic instruction word.
    InsnBit,
    /// Replace a dynamic instruction with a no-op.
    Nop,
    /// Force a conditional branch to the wrong direction.
    BranchFlip,
}

impl FaultModel {
    /// All six models, in the paper's presentation order.
    pub const ALL: [FaultModel; 6] = [
        FaultModel::ResultBit32,
        FaultModel::ResultBit64,
        FaultModel::ResultRandom,
        FaultModel::InsnBit,
        FaultModel::Nop,
        FaultModel::BranchFlip,
    ];

    /// Short label used in reports (matches Figure 11's x-axis).
    pub fn label(self) -> &'static str {
        match self {
            FaultModel::ResultBit32 => "reg-bit-32",
            FaultModel::ResultBit64 => "reg-bit-64",
            FaultModel::ResultRandom => "reg-random",
            FaultModel::InsnBit => "insn-bit",
            FaultModel::Nop => "insn-nop",
            FaultModel::BranchFlip => "branch-flip",
        }
    }
}

/// Outcome of one architectural injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwOutcome {
    /// The injected program raised an exception (a "noisy" failure).
    Exception,
    /// Architectural state fully reconverged with the fault-free run before
    /// any external communication.
    StateOk {
        /// Whether the control-flow path temporarily diverged before the
        /// fault was masked (the paper reports 10–20% of *State OK* trials
        /// show this).
        control_diverged: bool,
    },
    /// State never reconverged, but the user-visible output (and exit code)
    /// matched the reference.
    OutputOk,
    /// The program produced wrong output, hung, or never terminated.
    OutputBad,
}

/// Architectural state snapshot at a syscall boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Snapshot {
    state: ArchState,
    mem_checksum: u64,
}

/// Reference data from the fault-free execution, reused by every trial.
#[derive(Debug, Clone)]
pub struct GoldenRef {
    /// PC of every dynamic instruction, in order.
    pc_trace: Vec<u64>,
    /// Dynamic indices of instructions that write a register.
    dst_writers: Vec<u64>,
    /// Dynamic indices of conditional branches.
    cond_branches: Vec<u64>,
    /// State snapshots taken immediately before each syscall.
    snapshots: Vec<Snapshot>,
    /// Complete program output.
    output: Vec<u8>,
    /// Exit code of the reference run.
    exit_code: Option<u64>,
    /// Dynamic instruction count of the reference run.
    retired: u64,
}

impl GoldenRef {
    /// Dynamic instruction count of the fault-free run.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The fault-free program output.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// The fault-free exit code (None if the run hit the budget).
    pub fn exit_code(&self) -> Option<u64> {
        self.exit_code
    }
}

fn is_syscall_word(raw: u32) -> bool {
    let insn = decode(raw);
    insn.mnemonic == Mnemonic::CallPal && insn.pal == PalFunc::CallSys
}

/// Runs the fault-free execution of `program` and captures everything the
/// trial classifier needs.
///
/// # Panics
///
/// Panics if the program does not terminate within `max_insns` (workloads
/// used for the Section-5 experiments must run to completion).
pub fn golden_ref(program: &Program, max_insns: u64) -> GoldenRef {
    let mut sim = FuncSim::new(program);
    let mut pc_trace = Vec::new();
    let mut dst_writers = Vec::new();
    let mut cond_branches = Vec::new();
    let mut snapshots = Vec::new();
    loop {
        assert!(
            (pc_trace.len() as u64) < max_insns,
            "golden run of {} exceeded {} instructions",
            program.name,
            max_insns
        );
        // Snapshot before executing a syscall.
        let next_raw = sim.mem.read_u32(sim.state.pc);
        if is_syscall_word(next_raw) {
            snapshots.push(Snapshot {
                state: sim.state.clone(),
                mem_checksum: sim.mem.checksum(),
            });
        }
        match sim.step() {
            StepEvent::Retired(r) => {
                pc_trace.push(r.pc);
                let insn = decode(r.raw);
                if r.dst.is_some() {
                    dst_writers.push(r.seq);
                }
                if insn.is_conditional_branch() {
                    cond_branches.push(r.seq);
                }
            }
            StepEvent::Halted { code } => {
                return GoldenRef {
                    retired: pc_trace.len() as u64,
                    pc_trace,
                    dst_writers,
                    cond_branches,
                    snapshots,
                    output: sim.output().to_vec(),
                    exit_code: Some(code),
                };
            }
            StepEvent::Exception(e) => {
                panic!("golden run of {} raised {e}", program.name);
            }
        }
    }
}

/// Runs a single architectural injection trial.
///
/// `rng` supplies the dynamic-instruction choice and the model's random
/// bits. The trial runs the injected program for up to twice the reference
/// instruction count (plus slack) before declaring a hang.
pub fn run_trial(
    program: &Program,
    golden: &GoldenRef,
    model: FaultModel,
    rng: &mut Rng,
) -> SwOutcome {
    // Choose the dynamic instruction to corrupt, uniform over the
    // instructions the model can apply to.
    let target_pool: &[u64] = match model {
        FaultModel::ResultBit32 | FaultModel::ResultBit64 | FaultModel::ResultRandom => {
            &golden.dst_writers
        }
        FaultModel::BranchFlip => &golden.cond_branches,
        FaultModel::InsnBit | FaultModel::Nop => &[],
    };
    let k = if target_pool.is_empty() {
        rng.gen_range(0..golden.retired.max(1))
    } else {
        target_pool[rng.gen_range(0..target_pool.len())]
    };
    let fault = match model {
        FaultModel::ResultBit32 => ArchFault::FlipResultBit32 { bit: rng.gen_range(0..32) },
        FaultModel::ResultBit64 => ArchFault::FlipResultBit64 { bit: rng.gen_range(0..64) },
        FaultModel::ResultRandom => ArchFault::RandomResult { value: rng.next_u64() },
        FaultModel::InsnBit => ArchFault::FlipInsnBit { bit: rng.gen_range(0..32) },
        FaultModel::Nop => ArchFault::MakeNop,
        FaultModel::BranchFlip => ArchFault::FlipBranch,
    };

    let mut sim = FuncSim::new(program);
    let budget = golden.retired * 2 + 10_000;
    let mut executed: u64 = 0;
    let mut syscall_index = 0usize;
    let mut control_diverged = false;

    loop {
        if executed >= budget {
            return SwOutcome::OutputBad; // hang / runaway
        }
        if executed == k {
            sim.inject(fault);
        }
        // Syscall boundary: check for architectural reconvergence, but only
        // once the fault has actually been applied.
        if executed > k && !sim.fault_pending() {
            let next_raw = sim.mem.read_u32(sim.state.pc);
            if is_syscall_word(next_raw) {
                if let Some(snap) = golden.snapshots.get(syscall_index) {
                    if snap.state == sim.state && snap.mem_checksum == sim.mem.checksum() {
                        return SwOutcome::StateOk { control_diverged };
                    }
                }
            }
        }
        let next_raw = sim.mem.read_u32(sim.state.pc);
        if is_syscall_word(next_raw) {
            syscall_index += 1;
        }
        match sim.step() {
            StepEvent::Retired(r) => {
                if executed >= k {
                    match golden.pc_trace.get(executed as usize) {
                        Some(&gpc) if gpc == r.pc => {}
                        _ => control_diverged = true,
                    }
                }
                executed += 1;
            }
            StepEvent::Halted { code } => {
                let output_ok =
                    sim.output() == golden.output() && Some(code) == golden.exit_code;
                return if output_ok { SwOutcome::OutputOk } else { SwOutcome::OutputBad };
            }
            StepEvent::Exception(_) => return SwOutcome::Exception,
        }
    }
}

/// Aggregated results of an architectural injection campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwTally {
    /// Trials ending in an exception.
    pub exception: u64,
    /// Trials whose architectural state fully reconverged.
    pub state_ok: u64,
    /// `state_ok` trials whose control flow temporarily diverged.
    pub state_ok_diverged: u64,
    /// Trials with matching output but divergent state.
    pub output_ok: u64,
    /// Trials with corrupted user-visible output.
    pub output_bad: u64,
}

impl SwTally {
    /// Total number of trials.
    pub fn total(&self) -> u64 {
        self.exception + self.state_ok + self.output_ok + self.output_bad
    }

    /// Adds one outcome to the tally.
    pub fn record(&mut self, outcome: SwOutcome) {
        match outcome {
            SwOutcome::Exception => self.exception += 1,
            SwOutcome::StateOk { control_diverged } => {
                self.state_ok += 1;
                if control_diverged {
                    self.state_ok_diverged += 1;
                }
            }
            SwOutcome::OutputOk => self.output_ok += 1,
            SwOutcome::OutputBad => self.output_bad += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &SwTally) {
        self.exception += other.exception;
        self.state_ok += other.state_ok;
        self.state_ok_diverged += other.state_ok_diverged;
        self.output_ok += other.output_ok;
        self.output_bad += other.output_bad;
    }
}

/// Runs `trials` injection trials of `model` against `program`.
pub fn run_campaign(
    program: &Program,
    golden: &GoldenRef,
    model: FaultModel,
    trials: u64,
    seed: u64,
) -> SwTally {
    let mut rng = Rng::from_seed_stream(seed, model as u64);
    let mut tally = SwTally::default();
    for _ in 0..trials {
        tally.record(run_trial(program, golden, model, &mut rng));
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_isa::{syscall, Asm, Reg};

    /// A program with dead values: computes into R9 but never uses it, then
    /// writes a constant and exits. Register-result faults on dead writes
    /// must be masked (State OK).
    fn dead_value_program() -> Program {
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R9, 1234); // dead
        a.li(Reg::R9, 0); // overwritten
        a.li(Reg::R1, 5);
        a.li(Reg::R2, 0x2_0000);
        a.stq(Reg::R1, Reg::R2, 0);
        a.li(Reg::V0, syscall::EXIT);
        a.li(Reg::A0, 0);
        a.callsys();
        Program::new("dead", a)
    }

    #[test]
    fn golden_ref_captures_structure() {
        let p = dead_value_program();
        let g = golden_ref(&p, 1000);
        assert!(g.retired() > 5);
        assert_eq!(g.exit_code(), Some(0));
        assert!(!g.dst_writers.is_empty());
        assert_eq!(g.snapshots.len(), 1); // one syscall: exit
    }

    #[test]
    fn campaign_is_deterministic() {
        let p = dead_value_program();
        let g = golden_ref(&p, 1000);
        let a = run_campaign(&p, &g, FaultModel::ResultBit64, 50, 7);
        let b = run_campaign(&p, &g, FaultModel::ResultBit64, 50, 7);
        assert_eq!(a, b);
        assert_eq!(a.total(), 50);
    }

    #[test]
    fn dead_value_faults_are_often_masked() {
        let p = dead_value_program();
        let g = golden_ref(&p, 1000);
        let tally = run_campaign(&p, &g, FaultModel::ResultBit64, 200, 11);
        // The two dead `li r9` sequences absorb a sizeable share of hits.
        assert!(tally.state_ok > 0, "expected some masked faults: {tally:?}");
    }

    #[test]
    fn live_store_value_faults_corrupt_output() {
        // Store R1 to memory then WRITE that memory as output: a fault on
        // the R1-producing write that survives to the output is Output Bad.
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 0x41);
        a.li(Reg::R2, 0x2_0000);
        a.stq(Reg::R1, Reg::R2, 0);
        a.li(Reg::V0, syscall::WRITE);
        a.li(Reg::A0, 1);
        a.li(Reg::A1, 0x2_0000);
        a.li(Reg::A2, 1);
        a.callsys();
        a.li(Reg::V0, syscall::EXIT);
        a.li(Reg::A0, 0);
        a.callsys();
        let p = Program::new("live", a);
        let g = golden_ref(&p, 1000);
        let tally = run_campaign(&p, &g, FaultModel::ResultRandom, 300, 3);
        assert!(tally.output_bad > 0, "expected some corrupted outputs: {tally:?}");
        assert_eq!(tally.total(), 300);
    }

    #[test]
    fn branch_flip_diverges_control() {
        // Loop bound 4: flipping the back-edge branch changes iteration
        // count, normally corrupting the sum that is the exit code.
        let mut a = Asm::new(0x1_0000);
        a.li(Reg::R1, 4);
        a.li(Reg::R3, 0);
        let top = a.here_label();
        a.addq(Reg::R3, Reg::R1, Reg::R3);
        a.subq_i(Reg::R1, 1, Reg::R1);
        a.bne(Reg::R1, top);
        a.li(Reg::V0, syscall::EXIT);
        a.mov(Reg::R3, Reg::A0);
        a.callsys();
        let p = Program::new("loop", a);
        let g = golden_ref(&p, 1000);
        let tally = run_campaign(&p, &g, FaultModel::BranchFlip, 100, 5);
        assert!(
            tally.output_bad + tally.exception > 0,
            "branch flips should usually damage this program: {tally:?}"
        );
    }

    #[test]
    fn nop_model_masks_dead_instructions() {
        let p = dead_value_program();
        let g = golden_ref(&p, 1000);
        let tally = run_campaign(&p, &g, FaultModel::Nop, 200, 13);
        assert!(tally.state_ok > 0, "{tally:?}");
    }

    #[test]
    fn tally_merge() {
        let mut a = SwTally { exception: 1, state_ok: 2, state_ok_diverged: 1, output_ok: 3, output_bad: 4 };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert_eq!(a.state_ok_diverged, 2);
    }
}
