#![warn(missing_docs)]

//! # tfsim-arch — architectural simulator
//!
//! A functional (instruction-at-a-time) simulator for the Alpha subset.
//! It plays two roles in the reproduction:
//!
//! 1. **Golden reference.** The microarchitectural fault-injection framework
//!    compares the pipeline's retirement stream against the retirement
//!    records ([`RetireRecord`]) this simulator produces.
//! 2. **Section-5 substrate.** The paper's architectural-level experiments
//!    (Figure 11) inject faults into the dynamic instruction stream of a
//!    SimpleScalar-like functional simulator; [`swinject`] reproduces those
//!    six fault models and the four-way outcome classification.
//!
//! ```
//! use tfsim_arch::FuncSim;
//! use tfsim_isa::{Asm, Program, Reg};
//!
//! let mut a = Asm::new(0x1_0000);
//! a.li(Reg::R0, 1);     // syscall: exit
//! a.li(Reg::R16, 42);   // exit code
//! a.callsys();
//! let mut sim = FuncSim::new(&Program::new("exit42", a));
//! let result = sim.run(1000);
//! assert_eq!(result.exit_code, Some(42));
//! ```

mod sim;
pub mod swinject;

pub use sim::{ArchFault, ArchState, Exception, FuncSim, RetireRecord, RunResult, StepEvent, StoreRecord};
