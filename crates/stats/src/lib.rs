#![warn(missing_docs)]

//! # tfsim-stats — statistics for injection campaigns
//!
//! The paper reports binomial confidence intervals for campaign outcome
//! fractions (±0.7% at 95% confidence for 25–30k trials; ±10% for the
//! ~100-trial `qctrl` slice) and fits a least-mean-squares trendline to the
//! Figure 6 scatter. This crate implements both, plus small table-rendering
//! helpers used by the figure harness.
//!
//! ```
//! use tfsim_stats::{binomial_ci, Confidence};
//!
//! // 25,000 trials at 85% masking: the paper's "<0.7%" claim.
//! let ci = binomial_ci(21_250, 25_000, Confidence::P95);
//! assert!(ci.half_width < 0.007);
//! ```

mod report;

pub use report::{census_rows, render_census, TelemetryReport};

/// Supported confidence levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// 90% two-sided confidence (z ≈ 1.645).
    P90,
    /// 95% two-sided confidence (z ≈ 1.960).
    P95,
    /// 99% two-sided confidence (z ≈ 2.576).
    P99,
}

impl Confidence {
    /// The z-score of the two-sided normal quantile.
    pub fn z(self) -> f64 {
        match self {
            Confidence::P90 => 1.6449,
            Confidence::P95 => 1.9600,
            Confidence::P99 => 2.5758,
        }
    }
}

/// A binomial proportion with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionCi {
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Half-width of the normal-approximation interval.
    pub half_width: f64,
    /// Lower bound (clamped to 0).
    pub lo: f64,
    /// Upper bound (clamped to 1).
    pub hi: f64,
}

/// Normal-approximation (Wald) confidence interval for a binomial
/// proportion — the formula behind the paper's "confidence interval of
/// less than 0.7% at a 95% confidence level".
///
/// # Panics
///
/// Panics if `trials` is zero or `successes > trials`.
pub fn binomial_ci(successes: u64, trials: u64, confidence: Confidence) -> ProportionCi {
    assert!(trials > 0, "confidence interval of zero trials");
    assert!(successes <= trials);
    let p = successes as f64 / trials as f64;
    let half = confidence.z() * (p * (1.0 - p) / trials as f64).sqrt();
    ProportionCi {
        estimate: p,
        half_width: half,
        lo: (p - half).max(0.0),
        hi: (p + half).min(1.0),
    }
}

/// Wilson score interval — better behaved at extreme proportions and small
/// counts (used for the per-category slices, some of which have only ~100
/// trials).
///
/// # Panics
///
/// Panics if `trials` is zero or `successes > trials`.
pub fn wilson_ci(successes: u64, trials: u64, confidence: Confidence) -> ProportionCi {
    assert!(trials > 0, "confidence interval of zero trials");
    assert!(successes <= trials);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = confidence.z();
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt();
    ProportionCi {
        estimate: p,
        half_width: half,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// Result of a simple linear least-squares fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Pearson correlation coefficient.
    pub r: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// The fitted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a least-mean-squares line through `(x, y)` points (the Figure 6
/// trendline).
///
/// Returns `None` with fewer than two distinct x values.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let syy: f64 = points.iter().map(|(_, y)| y * y).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let var_x = sxx - sx * sx / nf;
    if var_x.abs() < 1e-12 {
        return None;
    }
    let cov = sxy - sx * sy / nf;
    let var_y = syy - sy * sy / nf;
    let slope = cov / var_x;
    let intercept = (sy - slope * sx) / nf;
    let r = if var_y.abs() < 1e-12 { 0.0 } else { cov / (var_x * var_y).sqrt() };
    Some(LinearFit { slope, intercept, r, n })
}

/// Mean of a sample (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (0 for fewer than two points).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// A minimal fixed-width text table builder used by the figure harness.
///
/// ```
/// use tfsim_stats::Table;
/// let mut t = Table::new(&["benchmark", "masked %"]);
/// t.row(&["gzip-like", "84.2"]);
/// assert!(t.render().contains("gzip-like"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align text.
                let numeric =
                    cell.chars().next().is_some_and(|ch| ch.is_ascii_digit() || ch == '-' || ch == '+');
                if numeric && c > 0 {
                    line.push_str(&format!("{:>width$}", cell, width = widths[c]));
                } else {
                    line.push_str(&format!("{:<width$}", cell, width = widths[c]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        return "-".to_string();
    }
    format!("{:.1}", 100.0 * num as f64 / den as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_ci_is_under_point_seven_percent() {
        for p in [0.5f64, 0.85, 0.12] {
            let successes = (25_000.0 * p) as u64;
            let ci = binomial_ci(successes, 25_000, Confidence::P95);
            assert!(ci.half_width < 0.007, "p={p}: {ci:?}");
        }
    }

    #[test]
    fn hundred_trial_ci_is_about_ten_percent() {
        // The paper's qctrl extreme: ~100 trials -> ~10% interval.
        let ci = binomial_ci(50, 100, Confidence::P95);
        assert!(ci.half_width > 0.08 && ci.half_width < 0.11, "{ci:?}");
    }

    #[test]
    fn wald_bounds_are_clamped() {
        let ci = binomial_ci(0, 10, Confidence::P95);
        assert_eq!(ci.lo, 0.0);
        let ci = binomial_ci(10, 10, Confidence::P95);
        assert_eq!(ci.hi, 1.0);
    }

    #[test]
    fn wilson_handles_extremes_sanely() {
        let ci = wilson_ci(0, 10, Confidence::P95);
        assert!(ci.lo >= 0.0 && ci.hi > 0.0 && ci.hi < 0.5);
        let ci = wilson_ci(10, 10, Confidence::P95);
        assert!(ci.lo > 0.5 && ci.hi <= 1.0);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn ci_zero_trials_panics() {
        let _ = binomial_ci(0, 0, Confidence::P95);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 3.0 * i as f64 - 7.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 7.0).abs() < 1e-9);
        assert!((fit.r - 1.0).abs() < 1e-9);
        assert!((fit.predict(100.0) - 293.0).abs() < 1e-6);
    }

    #[test]
    fn linear_fit_negative_correlation() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 100.0 - 0.25 * i as f64)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!(fit.slope < 0.0);
        assert!((fit.r + 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none(), "vertical line");
    }

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "count"]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "12345"]);
        let s = t.render();
        assert!(s.contains("longer-name"));
        assert!(s.lines().count() >= 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].split_whitespace().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1, 8), "12.5");
        assert_eq!(pct(0, 0), "-");
        assert_eq!(pct(3, 3), "100.0");
    }
}
